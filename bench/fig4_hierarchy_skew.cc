// Reproduces Fig. 4: the average size of the 5 deepest communities that
// contain a query node, under three hierarchy constructions —
//   CODU: agglomerative clustering of the raw graph,
//   CODR: agglomerative clustering of the attribute-weighted graph g_l,
//   CODL: LORE's local recluster spliced under the global hierarchy.
// The paper's point: global hierarchies are skewed (even the deepest
// communities around an average node are huge), LORE's are fine-grained.

#include "bench/bench_util.h"
#include "common/table.h"

namespace cod::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags =
      ParseFlags(argc, argv, /*default_queries=*/100, SmallDatasetNames());
  std::printf("== Fig. 4: avg size of the 5 deepest communities ==\n");
  std::printf("(%zu queries per dataset)\n\n", flags.queries);
  TablePrinter table({"dataset", "CODU", "CODR", "CODL"});
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    EngineOptions options;
    options.cache_codr_hierarchies = true;
    CodEngine engine(data.graph, data.attributes, options);
    Rng rng(flags.seed);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, rng);

    auto five_deepest_avg = [](const CodChain& chain) {
      double total = 0.0;
      size_t count = 0;
      for (size_t h = 0; h < std::min<size_t>(5, chain.NumLevels()); ++h) {
        total += chain.community_size[h];
        ++count;
      }
      return count == 0 ? 0.0 : total / static_cast<double>(count);
    };

    double codu = 0.0;
    double codr = 0.0;
    double codl = 0.0;
    for (const Query& q : queries) {
      codu += five_deepest_avg(engine.BuildCoduChain(q.node));
      codr += five_deepest_avg(engine.BuildCodrChain(q.node, q.attribute));
      codl += five_deepest_avg(
          engine.BuildCodlChain(q.node, q.attribute).chain);
    }
    const double n = static_cast<double>(queries.size());
    table.AddRow({name, TablePrinter::Fmt(codu / n, 1),
                  TablePrinter::Fmt(codr / n, 1),
                  TablePrinter::Fmt(codl / n, 1)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): hub-dominated datasets (pubmed/retweet) give\n"
      "global hierarchies (CODU, CODR) whose deepest communities are large;\n"
      "LORE's locally reclustered hierarchy (CODL) is markedly finer there.\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
