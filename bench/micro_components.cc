// google-benchmark micro-suite for the substrate components (not a paper
// figure): RR-graph sampling, LCA queries, agglomerative clustering, LORE
// score computation, compressed evaluation, and HIMOR construction.

#include <benchmark/benchmark.h>

#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "hierarchy/lca.h"
#include "influence/im.h"

namespace cod {
namespace {

const AttributedGraph& Cora() {
  static const AttributedGraph* data =
      new AttributedGraph(std::move(MakeDataset("cora-sim")).value());
  return *data;
}

const CodEngine& CoraEngine() {
  static CodEngine* engine = [] {
    auto* e = new CodEngine(Cora().graph, Cora().attributes, {});
    return e;
  }();
  return *engine;
}

void BM_RrGraphSample(benchmark::State& state) {
  const auto& data = Cora();
  const DiffusionModel model = DiffusionModel::WeightedCascadeIc(data.graph);
  RrSampler sampler(model);
  Rng rng(1);
  RrGraph rr;
  NodeId source = 0;
  for (auto _ : state) {
    sampler.Sample(source, rng, &rr);
    source = static_cast<NodeId>((source + 1) % data.graph.NumNodes());
    benchmark::DoNotOptimize(rr.nodes.data());
  }
}
BENCHMARK(BM_RrGraphSample);

void BM_LcaQuery(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const LcaIndex& lca = engine.base_lca();
  Rng rng(2);
  const size_t n = engine.graph().NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    benchmark::DoNotOptimize(lca.LcaOfNodes(u, v));
  }
}
BENCHMARK(BM_LcaQuery);

void BM_AgglomerativeCluster(benchmark::State& state) {
  const auto& data = Cora();
  for (auto _ : state) {
    const Dendrogram d = AgglomerativeCluster(data.graph);
    benchmark::DoNotOptimize(d.Root());
  }
}
BENCHMARK(BM_AgglomerativeCluster)->Unit(benchmark::kMillisecond);

void BM_LoreScores(benchmark::State& state) {
  const auto& data = Cora();
  const CodEngine& engine = CoraEngine();
  Rng rng(3);
  const auto queries = GenerateQueries(data.attributes, 64, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        ComputeReclusteringScores(data.graph, data.attributes,
                                  engine.base_hierarchy(), engine.base_lca(),
                                  q.node, q.attribute)
            .selected);
  }
}
BENCHMARK(BM_LoreScores);

void BM_CompressedEvaluate(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  CompressedEvaluator evaluator(engine.model(), 10);
  Rng rng(4);
  const auto queries = GenerateQueries(data.attributes, 16, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    const CodChain chain = engine.BuildCoduChain(q.node);
    benchmark::DoNotOptimize(
        evaluator.Evaluate(chain, q.node, 5, rng).best_level);
  }
}
BENCHMARK(BM_CompressedEvaluate)->Unit(benchmark::kMillisecond);

void BM_HimorBuild(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const DiffusionModel& model = engine.model();
  Rng rng(5);
  for (auto _ : state) {
    const HimorIndex index = HimorIndex::Build(
        model, engine.base_hierarchy(), engine.base_lca(), 10, rng);
    benchmark::DoNotOptimize(index.NumEntries());
  }
}
BENCHMARK(BM_HimorBuild)->Unit(benchmark::kMillisecond);

void BM_InfluenceMaximizationRis(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaximizeInfluenceRis(engine.model(), 10, 20000, rng)
            .estimated_influence);
  }
}
BENCHMARK(BM_InfluenceMaximizationRis)->Unit(benchmark::kMillisecond);

void BM_CodlQuery(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  Rng rng(6);
  if (engine.himor() == nullptr) engine.BuildHimor(rng);
  const auto queries = GenerateQueries(data.attributes, 32, rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.QueryCodL(q.node, q.attribute, 5, ws).found);
  }
}
BENCHMARK(BM_CodlQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cod

BENCHMARK_MAIN();
