// google-benchmark micro-suite for the substrate components (not a paper
// figure): RR-graph sampling, LCA queries, agglomerative clustering, LORE
// score computation, compressed evaluation, and HIMOR construction.
//
// Besides the interactive gbench suite, `--bench-json=PATH` runs a
// hand-rolled canonical RR-pool suite (serial vs thread pools of 1/2/4/8)
// and writes BenchJsonEntry records (bench/bench_util.h) to PATH — the
// regression-tracking format CI archives. With --bench-json the gbench
// suite is skipped; without it the binary behaves as a plain gbench runner.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "hierarchy/lca.h"
#include "influence/im.h"
#include "influence/rr_pool.h"

namespace cod {
namespace {

const AttributedGraph& Cora() {
  static const AttributedGraph* data =
      new AttributedGraph(std::move(MakeDataset("cora-sim")).value());
  return *data;
}

const CodEngine& CoraEngine() {
  static CodEngine* engine = [] {
    auto* e = new CodEngine(Cora().graph, Cora().attributes, {});
    return e;
  }();
  return *engine;
}

void BM_RrGraphSample(benchmark::State& state) {
  const auto& data = Cora();
  const DiffusionModel model = DiffusionModel::WeightedCascadeIc(data.graph);
  RrSampler sampler(model);
  Rng rng(1);
  RrGraph rr;
  NodeId source = 0;
  for (auto _ : state) {
    sampler.Sample(source, rng, &rr);
    source = static_cast<NodeId>((source + 1) % data.graph.NumNodes());
    benchmark::DoNotOptimize(rr.nodes.data());
  }
}
BENCHMARK(BM_RrGraphSample);

void BM_LcaQuery(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const LcaIndex& lca = engine.base_lca();
  Rng rng(2);
  const size_t n = engine.graph().NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    benchmark::DoNotOptimize(lca.LcaOfNodes(u, v));
  }
}
BENCHMARK(BM_LcaQuery);

void BM_AgglomerativeCluster(benchmark::State& state) {
  const auto& data = Cora();
  for (auto _ : state) {
    const Dendrogram d = AgglomerativeCluster(data.graph);
    benchmark::DoNotOptimize(d.Root());
  }
}
BENCHMARK(BM_AgglomerativeCluster)->Unit(benchmark::kMillisecond);

void BM_LoreScores(benchmark::State& state) {
  const auto& data = Cora();
  const CodEngine& engine = CoraEngine();
  Rng rng(3);
  const auto queries = GenerateQueries(data.attributes, 64, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        ComputeReclusteringScores(data.graph, data.attributes,
                                  engine.base_hierarchy(), engine.base_lca(),
                                  q.node, q.attribute)
            .selected);
  }
}
BENCHMARK(BM_LoreScores);

void BM_CompressedEvaluate(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  CompressedEvaluator evaluator(engine.model(), 10);
  Rng rng(4);
  const auto queries = GenerateQueries(data.attributes, 16, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    const CodChain chain = engine.BuildCoduChain(q.node);
    benchmark::DoNotOptimize(
        evaluator.Evaluate(chain, q.node, 5, rng).best_level);
  }
}
BENCHMARK(BM_CompressedEvaluate)->Unit(benchmark::kMillisecond);

void BM_HimorBuild(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const DiffusionModel& model = engine.model();
  Rng rng(5);
  for (auto _ : state) {
    const HimorIndex index = HimorIndex::Build(
        model, engine.base_hierarchy(), engine.base_lca(), 10, rng);
    benchmark::DoNotOptimize(index.NumEntries());
  }
}
BENCHMARK(BM_HimorBuild)->Unit(benchmark::kMillisecond);

void BM_InfluenceMaximizationRis(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaximizeInfluenceRis(engine.model(), 10, 20000, rng)
            .estimated_influence);
  }
}
BENCHMARK(BM_InfluenceMaximizationRis)->Unit(benchmark::kMillisecond);

void BM_CodlQuery(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  Rng rng(6);
  if (engine.himor() == nullptr) engine.BuildHimor(rng);
  const auto queries = GenerateQueries(data.attributes, 32, rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.QueryCodL(q.node, q.attribute, 5, ws).found);
  }
}
BENCHMARK(BM_CodlQuery)->Unit(benchmark::kMillisecond);

// Canonical RR-pool construction suite: one cora-sim CODU chain, same pool
// seed everywhere (the paths are bit-identical by contract, so only wall
// time may differ across configs). Each repetition rebuilds the full pool;
// quantiles are over repetition times after warm-up.
int RunCanonicalRrPoolSuite(const std::string& path, bool smoke) {
  const CodEngine& engine = CoraEngine();
  const CodChain chain = engine.BuildCoduChain(/*q=*/0);
  const uint32_t theta = smoke ? 4 : 16;
  const size_t warmup = smoke ? 1 : 3;
  const size_t reps = smoke ? 5 : 15;
  const uint64_t pool_seed = 12345;
  const size_t samples = chain.universe.size() * theta;

  std::vector<bench::BenchJsonEntry> entries;
  const auto run_config = [&](const std::string& config, ThreadPool* pool) {
    ParallelRrPool builder(engine.model());
    RrSlabPool slab;
    ParallelRrPool::BuildStats stats;
    std::vector<double> times;
    WallTimer timer;
    for (size_t r = 0; r < warmup + reps; ++r) {
      timer.Restart();
      const StatusCode code =
          builder.Build(chain.universe, theta, chain.in_universe, pool_seed,
                        Budget{}, pool, &slab, &stats);
      const double seconds = timer.ElapsedSeconds();
      COD_CHECK(code == StatusCode::kOk);
      if (r >= warmup) times.push_back(seconds);
    }
    bench::BenchJsonEntry e;
    e.name = "rr_pool_build";
    e.config = config;
    e.samples = samples;
    e.p50_seconds = bench::Quantile(times, 0.5);
    e.p95_seconds = bench::Quantile(times, 0.95);
    e.samples_per_sec =
        e.p50_seconds > 0.0 ? static_cast<double>(samples) / e.p50_seconds
                            : 0.0;
    entries.push_back(e);
  };

  run_config("serial", nullptr);
  for (const size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    run_config("pool" + std::to_string(threads), &pool);
  }
  return bench::WriteBenchJson(path, entries);
}

}  // namespace
}  // namespace cod

int main(int argc, char** argv) {
  // Strip our flags before gbench sees them (it rejects unknown args).
  std::string bench_json;
  bool smoke = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(13);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!bench_json.empty()) {
    return cod::RunCanonicalRrPoolSuite(bench_json, smoke);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
