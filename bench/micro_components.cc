// google-benchmark micro-suite for the substrate components (not a paper
// figure): RR-graph sampling, LCA queries, agglomerative clustering, LORE
// score computation, compressed evaluation, and HIMOR construction.
//
// Besides the interactive gbench suite, `--bench-json=PATH` runs two
// hand-rolled canonical suites and writes BenchJsonEntry records
// (bench/bench_util.h) to PATH — the regression-tracking format CI
// archives:
//   rr_pool_build   RR-pool construction, serial vs schedulers of 1/2/4/8
//   sched_overload  interactive queue-to-start latency under rebuild load,
//                   flat FIFO pool (baseline, hand-rolled below) vs the
//                   priority TaskScheduler
//   snapshot_restart  time-to-first-query: cold epoch rebuild vs warm
//                     restore from a durable epoch snapshot
// With --bench-json the gbench suite is skipped; without it the binary
// behaves as a plain gbench runner.

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "core/cod_engine.h"
#include "serving/dynamic_service.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "hierarchy/lca.h"
#include "influence/im.h"
#include "influence/rr_pool.h"

namespace cod {
namespace {

const AttributedGraph& Cora() {
  static const AttributedGraph* data =
      new AttributedGraph(std::move(MakeDataset("cora-sim")).value());
  return *data;
}

const CodEngine& CoraEngine() {
  static CodEngine* engine = [] {
    auto* e = new CodEngine(Cora().graph, Cora().attributes, {});
    return e;
  }();
  return *engine;
}

void BM_RrGraphSample(benchmark::State& state) {
  const auto& data = Cora();
  const DiffusionModel model = DiffusionModel::WeightedCascadeIc(data.graph);
  RrSampler sampler(model);
  Rng rng(1);
  RrGraph rr;
  NodeId source = 0;
  for (auto _ : state) {
    sampler.Sample(source, rng, &rr);
    source = static_cast<NodeId>((source + 1) % data.graph.NumNodes());
    benchmark::DoNotOptimize(rr.nodes.data());
  }
}
BENCHMARK(BM_RrGraphSample);

void BM_LcaQuery(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const LcaIndex& lca = engine.base_lca();
  Rng rng(2);
  const size_t n = engine.graph().NumNodes();
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    benchmark::DoNotOptimize(lca.LcaOfNodes(u, v));
  }
}
BENCHMARK(BM_LcaQuery);

void BM_AgglomerativeCluster(benchmark::State& state) {
  const auto& data = Cora();
  for (auto _ : state) {
    const Dendrogram d = AgglomerativeCluster(data.graph);
    benchmark::DoNotOptimize(d.Root());
  }
}
BENCHMARK(BM_AgglomerativeCluster)->Unit(benchmark::kMillisecond);

void BM_LoreScores(benchmark::State& state) {
  const auto& data = Cora();
  const CodEngine& engine = CoraEngine();
  Rng rng(3);
  const auto queries = GenerateQueries(data.attributes, 64, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        ComputeReclusteringScores(data.graph, data.attributes,
                                  engine.base_hierarchy(), engine.base_lca(),
                                  q.node, q.attribute)
            .selected);
  }
}
BENCHMARK(BM_LoreScores);

void BM_CompressedEvaluate(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  CompressedEvaluator evaluator(engine.model(), 10);
  Rng rng(4);
  const auto queries = GenerateQueries(data.attributes, 16, rng);
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    const CodChain chain = engine.BuildCoduChain(q.node);
    benchmark::DoNotOptimize(
        evaluator.Evaluate(chain, q.node, 5, rng).best_level);
  }
}
BENCHMARK(BM_CompressedEvaluate)->Unit(benchmark::kMillisecond);

void BM_HimorBuild(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  const DiffusionModel& model = engine.model();
  Rng rng(5);
  for (auto _ : state) {
    const HimorIndex index = HimorIndex::Build(
        model, engine.base_hierarchy(), engine.base_lca(), 10, rng);
    benchmark::DoNotOptimize(index.NumEntries());
  }
}
BENCHMARK(BM_HimorBuild)->Unit(benchmark::kMillisecond);

void BM_InfluenceMaximizationRis(benchmark::State& state) {
  const CodEngine& engine = CoraEngine();
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaximizeInfluenceRis(engine.model(), 10, 20000, rng)
            .estimated_influence);
  }
}
BENCHMARK(BM_InfluenceMaximizationRis)->Unit(benchmark::kMillisecond);

void BM_CodlQuery(benchmark::State& state) {
  const auto& data = Cora();
  CodEngine& engine = const_cast<CodEngine&>(CoraEngine());
  Rng rng(6);
  if (engine.himor() == nullptr) engine.BuildHimor(rng);
  const auto queries = GenerateQueries(data.attributes, 32, rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  size_t i = 0;
  for (auto _ : state) {
    const Query& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.QueryCodL(q.node, q.attribute, 5, ws).found);
  }
}
BENCHMARK(BM_CodlQuery)->Unit(benchmark::kMillisecond);

// Canonical RR-pool construction suite: one cora-sim CODU chain, same pool
// seed everywhere (the paths are bit-identical by contract, so only wall
// time may differ across configs). Each repetition rebuilds the full pool;
// quantiles are over repetition times after warm-up.
std::vector<bench::BenchJsonEntry> RunCanonicalRrPoolSuite(bool smoke) {
  const CodEngine& engine = CoraEngine();
  const CodChain chain = engine.BuildCoduChain(/*q=*/0);
  const uint32_t theta = smoke ? 4 : 16;
  const size_t warmup = smoke ? 1 : 3;
  const size_t reps = smoke ? 5 : 15;
  const uint64_t pool_seed = 12345;
  const size_t samples = chain.universe.size() * theta;

  std::vector<bench::BenchJsonEntry> entries;
  const auto run_config = [&](const std::string& config,
                              TaskScheduler* scheduler) {
    ParallelRrPool builder(engine.model());
    RrSlabPool slab;
    ParallelRrPool::BuildStats stats;
    std::vector<double> times;
    WallTimer timer;
    for (size_t r = 0; r < warmup + reps; ++r) {
      timer.Restart();
      const StatusCode code =
          builder.Build(chain.universe, theta, chain.in_universe, pool_seed,
                        Budget{}, scheduler, &slab, &stats);
      const double seconds = timer.ElapsedSeconds();
      COD_CHECK(code == StatusCode::kOk);
      if (r >= warmup) times.push_back(seconds);
    }
    bench::BenchJsonEntry e;
    e.name = "rr_pool_build";
    e.config = config;
    e.samples = samples;
    e.p50_seconds = bench::Quantile(times, 0.5);
    e.p95_seconds = bench::Quantile(times, 0.95);
    e.p99_seconds = bench::Quantile(times, 0.99);
    e.samples_per_sec =
        e.p50_seconds > 0.0 ? static_cast<double>(samples) / e.p50_seconds
                            : 0.0;
    entries.push_back(e);
  };

  run_config("serial", nullptr);
  for (const size_t threads : {1, 2, 4, 8}) {
    TaskScheduler scheduler(threads);
    run_config("pool" + std::to_string(threads), &scheduler);
  }
  return entries;
}

// ---------------------------------------------------------------------------
// sched_overload: interactive queue-to-start latency under rebuild load.
//
// The baseline is the retired flat FIFO ThreadPool, hand-rolled here (single
// queue, no priorities): queued interactive work waits behind every queued
// rebuild. The TaskScheduler serves the same mixed load priority-major, so
// its interactive queue-to-start tail must come in at or below the FIFO
// baseline — the acceptance criterion of the scheduler PR.
// ---------------------------------------------------------------------------

// Minimal single-queue FIFO pool, equivalent to the retired pre-scheduler
// ThreadPool. Local to this bench on purpose: production code routes
// through TaskScheduler, which would measure the wrong thing.
class FifoPool {
 public:
  explicit FifoPool(size_t num_threads) {
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }
  ~FifoPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
      ++outstanding_;
    }
    cv_.notify_one();
  }
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> fn = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
      if (--outstanding_ == 0) idle_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

// ~the cost of one RR-sampling chunk; enough for queueing to dominate.
void BusyWork() {
  WallTimer timer;
  volatile uint64_t sink = 0;
  while (timer.ElapsedSeconds() < 200e-6) sink = sink + 1;
}

std::vector<bench::BenchJsonEntry> RunSchedOverloadSuite(bool smoke) {
  const size_t workers = 2;
  const size_t rebuilds_per_rep = smoke ? 16 : 64;
  const size_t interactives_per_rep = smoke ? 8 : 16;
  const size_t reps = smoke ? 3 : 10;
  using Clock = TaskScheduler::Clock;

  std::vector<bench::BenchJsonEntry> entries;
  // submit_all(submit_rebuild, submit_interactive) queues one rep's mixed
  // load; the caller then waits the pool/scheduler idle.
  const auto measure = [&](const std::string& config, auto&& submit_rebuild,
                           auto&& submit_interactive, auto&& wait_idle) {
    std::mutex mu;
    std::vector<double> latencies;
    for (size_t r = 0; r < reps; ++r) {
      // Saturate first: every worker busy, a backlog of rebuilds queued.
      for (size_t i = 0; i < rebuilds_per_rep; ++i) {
        submit_rebuild([] { BusyWork(); });
      }
      // Interactive arrivals race the backlog; their queue-to-start delay is
      // the measurement.
      for (size_t i = 0; i < interactives_per_rep; ++i) {
        const Clock::time_point submitted = Clock::now();
        submit_interactive([&, submitted] {
          const double delay =
              std::chrono::duration<double>(Clock::now() - submitted).count();
          BusyWork();
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(delay);
        });
      }
      wait_idle();
    }
    bench::BenchJsonEntry e;
    e.name = "sched_overload";
    e.config = config;
    e.samples = latencies.size();
    e.p50_seconds = bench::Quantile(latencies, 0.5);
    e.p95_seconds = bench::Quantile(latencies, 0.95);
    e.p99_seconds = bench::Quantile(latencies, 0.99);
    e.samples_per_sec =
        e.p50_seconds > 0.0 ? 1.0 / e.p50_seconds : 0.0;
    entries.push_back(e);
  };

  {
    FifoPool pool(workers);
    measure(
        "fifo" + std::to_string(workers),
        [&](std::function<void()> fn) { pool.Submit(std::move(fn)); },
        [&](std::function<void()> fn) { pool.Submit(std::move(fn)); },
        [&] { pool.WaitIdle(); });
  }
  {
    TaskScheduler scheduler(workers);
    TaskGroup group(scheduler);
    measure(
        "scheduler" + std::to_string(workers),
        [&](std::function<void()> fn) {
          scheduler.Submit(TaskPriority::kRebuild, group, std::move(fn));
        },
        [&](std::function<void()> fn) {
          scheduler.Submit(TaskPriority::kInteractive, group, std::move(fn));
        },
        [&] { group.Wait(); });
  }
  return entries;
}

// ---------------------------------------------------------------------------
// snapshot_restart: time-to-first-query after a process restart.
//
// cold_rebuild constructs the service from the raw graph (hierarchy +
// HIMOR built from scratch); warm_restore recovers it from the durable
// epoch snapshot written by the cold run. Both clocks stop after the first
// CODL answer, so the numbers are the restart gap an operator would see.
// ---------------------------------------------------------------------------
std::vector<bench::BenchJsonEntry> RunSnapshotRestartSuite(bool smoke) {
  const size_t reps = smoke ? 2 : 5;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cod_bench_snapshots")
          .string();
  ServiceOptions options;
  options.seed = 5;
  options.snapshot_dir = dir;

  const auto first_query = [](DynamicCodService& service) {
    Rng rng(3);
    const auto attrs = service.engine().attributes().AttributesOf(0);
    COD_CHECK(!attrs.empty());
    (void)service.QueryCodL(0, attrs[0], /*k=*/5, rng);
  };

  std::vector<double> cold_times;
  std::vector<double> warm_times;
  WallTimer timer;
  for (size_t r = 0; r < reps; ++r) {
    std::filesystem::remove_all(dir);
    Result<AttributedGraph> data = MakeDataset("cora-sim");
    COD_CHECK(data.ok());
    timer.Restart();
    auto service = std::make_unique<DynamicCodService>(
        std::move(data->graph), std::move(data->attributes), options);
    first_query(*service);
    cold_times.push_back(timer.ElapsedSeconds());
    service.reset();  // the snapshot written at publish survives

    timer.Restart();
    Result<std::unique_ptr<DynamicCodService>> recovered =
        DynamicCodService::Recover(options);
    COD_CHECK(recovered.ok());
    first_query(**recovered);
    warm_times.push_back(timer.ElapsedSeconds());
  }
  std::filesystem::remove_all(dir);

  std::vector<bench::BenchJsonEntry> entries;
  for (const auto& [config, times] :
       {std::pair<const char*, std::vector<double>&>{"cold_rebuild",
                                                     cold_times},
        {"warm_restore", warm_times}}) {
    bench::BenchJsonEntry e;
    e.name = "snapshot_restart";
    e.config = config;
    e.samples = times.size();
    e.p50_seconds = bench::Quantile(times, 0.5);
    e.p95_seconds = bench::Quantile(times, 0.95);
    e.p99_seconds = bench::Quantile(times, 0.99);
    e.samples_per_sec = e.p50_seconds > 0.0 ? 1.0 / e.p50_seconds : 0.0;
    entries.push_back(e);
  }
  return entries;
}

}  // namespace
}  // namespace cod

int main(int argc, char** argv) {
  // Strip our flags before gbench sees them (it rejects unknown args).
  std::string bench_json;
  bool smoke = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(13);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!bench_json.empty()) {
    std::vector<cod::bench::BenchJsonEntry> entries =
        cod::RunCanonicalRrPoolSuite(smoke);
    const std::vector<cod::bench::BenchJsonEntry> overload =
        cod::RunSchedOverloadSuite(smoke);
    entries.insert(entries.end(), overload.begin(), overload.end());
    const std::vector<cod::bench::BenchJsonEntry> restart =
        cod::RunSnapshotRestartSuite(smoke);
    entries.insert(entries.end(), restart.begin(), restart.end());
    return cod::bench::WriteBenchJson(bench_json, entries);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
