// Overload / graceful-degradation bench: throughput and answer quality of
// the batch-query API as the per-query budget shrinks. A CODL workload runs
// under a sweep of budgets from unlimited down to well below one query's
// cost; with the degradation ladder on, shrinking budgets trade full answers
// for cheaper (eventually index-only) ones instead of failing — the
// qps/degraded-fraction curve is the serving stack's overload behavior.
//
// Besides the human-readable table, each configuration emits one
// machine-readable line:
//   OVERLOAD_JSON {"dataset":"cora-sim","budget_ms":2.0,...}
// for dashboards / regression tracking (grep for OVERLOAD_JSON).

#include <vector>

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/table.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "serving/dynamic_service.h"
#include "core/query_batch.h"

namespace cod::bench {
namespace {

// Second overload axis: the REBUILD pipeline. When a budgeted HIMOR build
// blows its rebuild_budget_seconds, DynamicCodService publishes the epoch
// anyway in index-absent degraded mode (publish_without_index) — CODL keeps
// answering through the compressed-evaluation fallback instead of the
// service withholding fresh epochs. The himor/build failpoint stands in for
// the budget blowout so the mode is deterministic to demonstrate.
void RunDegradedEpochSection(const Flags& flags, TablePrinter& table) {
  std::printf(
      "\n== Degraded epochs: publish-without-index under rebuild overload "
      "==\n\n");
  for (const std::string& name : flags.datasets) {
    AttributedGraph data = LoadDatasetOrDie(name);
    const size_t num_nodes = data.graph.NumNodes();

    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, query_rng);

    ServiceOptions options;
    options.seed = flags.seed;
    options.rebuild_threshold = 1e9;  // refreshes are explicit below
    DynamicCodService service(std::move(data.graph),
                              std::move(data.attributes), options);
    std::vector<QuerySpec> specs;
    specs.reserve(queries.size());
    for (const Query& q : queries) {
      specs.push_back(QuerySpec{CodVariant::kCodL, q.node,
                                service.engine().options().k,
                                {q.attribute}});
    }

    TaskScheduler pool(4);
    WallTimer timer;
    const char* modes[] = {"indexed", "no-index (degraded)"};
    for (int mode = 0; mode < 2; ++mode) {
      if (mode == 1) {
        // Overloaded rebuild: every index build "blows its budget"; the
        // epoch still ships, marked degraded and index-absent.
        ScopedFailpoint fp("himor/build", /*count=*/-1);
        service.AddEdge(0, static_cast<NodeId>(num_nodes - 1));
        const Status s = service.Refresh();
        if (!s.ok()) {
          std::printf("refresh failed: %s\n", s.message().c_str());
          continue;
        }
      }
      const DynamicCodService::EpochSnapshot snap = service.Snapshot();
      timer.Restart();
      const std::vector<CodResult> results =
          RunQueryBatch(*snap.core, specs, pool, flags.seed);
      const double seconds = timer.ElapsedSeconds();

      size_t full = 0;
      size_t degraded = 0;
      size_t timeout = 0;
      for (const CodResult& r : results) {
        if (r.code != StatusCode::kOk) {
          ++timeout;
        } else if (r.degraded) {
          ++degraded;
        } else {
          ++full;
        }
      }
      const double n = static_cast<double>(results.size());
      const double qps = seconds > 0.0 ? n / seconds : 0.0;
      table.AddRow({name + " [" + modes[mode] + "]",
                    snap.degraded ? "degraded" : "healthy",
                    TablePrinter::Fmt(results.size()),
                    TablePrinter::Fmt(seconds, 3), TablePrinter::Fmt(qps, 1),
                    TablePrinter::Fmt(static_cast<double>(full) / n, 2),
                    TablePrinter::Fmt(static_cast<double>(degraded) / n, 2),
                    TablePrinter::Fmt(static_cast<double>(timeout) / n, 2)});
      std::printf(
          "OVERLOAD_JSON {\"dataset\":\"%s\",\"mode\":\"%s\","
          "\"epoch\":%llu,\"index_present\":%s,\"queries\":%zu,"
          "\"seconds\":%.6f,\"queries_per_sec\":%.2f,\"full_ok\":%zu,"
          "\"degraded_ok\":%zu,\"timeout\":%zu,\"seed\":%llu}\n",
          name.c_str(), mode == 0 ? "indexed" : "degraded_no_index",
          static_cast<unsigned long long>(snap.epoch),
          snap.core->index_present() ? "true" : "false", results.size(),
          seconds, qps, full, degraded, timeout,
          static_cast<unsigned long long>(flags.seed));
    }
  }
}

int Run(int argc, char** argv) {
  Flags flags =
      ParseFlags(argc, argv, /*default_queries=*/200, {"cora-sim"});
  std::printf("== Overload degradation: answer mix vs per-query budget ==\n\n");
  TablePrinter table({"dataset", "budget ms", "queries", "seconds",
                      "queries/sec", "full ok", "degraded", "timeout"});
  // 0 = unlimited; the rest shrink toward (and past) one query's cost.
  const double budgets_ms[] = {0.0, 50.0, 10.0, 2.0, 0.5, 0.1, 0.02};
  const size_t threads = 4;
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});
    Rng rng(flags.seed);
    engine.BuildHimor(rng);

    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, query_rng);
    std::vector<QuerySpec> specs;
    specs.reserve(queries.size());
    for (const Query& q : queries) {
      specs.push_back(QuerySpec{CodVariant::kCodL, q.node,
                                engine.options().k, {q.attribute}});
    }

    TaskScheduler pool(threads);
    engine.QueryBatch(specs, pool, flags.seed);  // warm-up (cache, pages)
    WallTimer timer;
    for (const double budget_ms : budgets_ms) {
      BatchOptions options;
      options.default_budget_seconds = budget_ms / 1000.0;
      timer.Restart();
      const std::vector<CodResult> results =
          engine.QueryBatch(specs, pool, flags.seed, options);
      const double seconds = timer.ElapsedSeconds();

      size_t full = 0;
      size_t degraded = 0;
      size_t timeout = 0;
      for (const CodResult& r : results) {
        if (r.code != StatusCode::kOk) {
          ++timeout;
        } else if (r.degraded) {
          ++degraded;
        } else {
          ++full;
        }
      }
      const double n = static_cast<double>(results.size());
      const double qps = seconds > 0.0 ? n / seconds : 0.0;
      table.AddRow({name,
                    budget_ms == 0.0 ? "unlimited"
                                     : TablePrinter::Fmt(budget_ms, 2),
                    TablePrinter::Fmt(results.size()),
                    TablePrinter::Fmt(seconds, 3), TablePrinter::Fmt(qps, 1),
                    TablePrinter::Fmt(static_cast<double>(full) / n, 2),
                    TablePrinter::Fmt(static_cast<double>(degraded) / n, 2),
                    TablePrinter::Fmt(static_cast<double>(timeout) / n, 2)});
      std::printf(
          "OVERLOAD_JSON {\"dataset\":\"%s\",\"budget_ms\":%.3f,"
          "\"threads\":%zu,\"queries\":%zu,\"seconds\":%.6f,"
          "\"queries_per_sec\":%.2f,\"full_ok\":%zu,\"degraded_ok\":%zu,"
          "\"timeout\":%zu,\"seed\":%llu}\n",
          name.c_str(), budget_ms, threads, results.size(), seconds, qps,
          full, degraded, timeout,
          static_cast<unsigned long long>(flags.seed));
    }
  }
  TablePrinter epoch_table({"dataset [epoch mode]", "epoch", "queries",
                            "seconds", "queries/sec", "full ok", "degraded",
                            "timeout"});
  RunDegradedEpochSection(flags, epoch_table);

  std::printf("\n");
  table.Print(stdout);
  std::printf("\n");
  epoch_table.Print(stdout);
  std::printf(
      "\nAs the budget shrinks, full answers give way to degraded (cheaper\n"
      "rung, eventually index-only) ones; timeouts appear only below the\n"
      "index lookup's own cost. Throughput RISES under pressure — the\n"
      "ladder sheds work instead of queueing it. The epoch table shows the\n"
      "same trade on the REBUILD side: an index build that blows its budget\n"
      "no longer withholds the epoch — it ships index-absent, and CODL\n"
      "answers through the compressed-evaluation fallback, tagged degraded.\n");
  return DumpMetrics(flags);
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
