// Reproduces Fig. 8: Compressed vs Independent COD evaluation on Cora and
// CiteSeer stand-ins, sweeping theta in {10, 20, 40, 80}:
//   (a)/(d) average top-k precision (does a high-sample re-estimation
//           confirm the query is top-k in the returned community?),
//   (b)/(e) average/min/max |C*|,
//   (c)/(f) execution time.
// Both are CODR variants: the chain comes from global reclustering of g_l.

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/independent_eval.h"
#include "eval/metrics.h"

namespace cod::bench {
namespace {

constexpr uint32_t kK = 5;
constexpr uint32_t kVerifyTheta = 400;

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, /*default_queries=*/30,
                                 {"cora-sim", "citeseer-sim"});
  std::printf("== Fig. 8: Compressed vs Independent (k = %u) ==\n", kK);
  std::printf("(%zu queries per dataset; precision verified with %u RR sets "
              "per member)\n\n",
              flags.queries, kVerifyTheta);

  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    EngineOptions options;
    options.cache_codr_hierarchies = true;
    CodEngine engine(data.graph, data.attributes, options);
    Rng rng(flags.seed);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, rng);

    // Chains are shared across both evaluators and all thetas.
    std::vector<CodChain> chains;
    chains.reserve(queries.size());
    for (const Query& q : queries) {
      chains.push_back(engine.BuildCodrChain(q.node, q.attribute));
    }

    TablePrinter table({"evaluator", "theta", "precision", "avg |C*|",
                        "min", "max", "time/query (s)"});
    for (const uint32_t theta : {10u, 20u, 40u, 80u}) {
      for (const bool compressed : {true, false}) {
        CompressedEvaluator comp(engine.model(), theta);
        IndependentEvaluator indep(engine.model(), theta);
        Accumulator size_acc;
        size_t served = 0;
        size_t precise = 0;
        WallTimer timer;
        double eval_seconds = 0.0;
        for (size_t i = 0; i < queries.size(); ++i) {
          timer.Restart();
          const ChainEvalOutcome outcome =
              compressed ? comp.Evaluate(chains[i], queries[i].node, kK, rng)
                         : indep.Evaluate(chains[i], queries[i].node, kK, rng);
          eval_seconds += timer.ElapsedSeconds();
          if (outcome.best_level < 0) continue;
          ++served;
          const std::vector<NodeId> members = chains[i].MembersOfLevel(
              static_cast<uint32_t>(outcome.best_level));
          size_acc.Add(static_cast<double>(members.size()));
          const uint32_t verified_rank = VerifiedRank(
              engine.model(), members, queries[i].node, kVerifyTheta, rng);
          precise += verified_rank < kK;
        }
        table.AddRow(
            {compressed ? "Compressed" : "Independent",
             TablePrinter::Fmt(static_cast<size_t>(theta)),
             TablePrinter::Fmt(
                 served == 0 ? 0.0
                             : static_cast<double>(precise) /
                                   static_cast<double>(served),
                 3),
             TablePrinter::Fmt(size_acc.Mean(), 1),
             TablePrinter::Fmt(size_acc.count() ? size_acc.Min() : 0.0, 0),
             TablePrinter::Fmt(size_acc.count() ? size_acc.Max() : 0.0, 0),
             TablePrinter::Fmt(eval_seconds / queries.size(), 4)});
      }
    }
    std::printf("-- %s --\n", name.c_str());
    table.Print(stdout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): Compressed is several times faster at every\n"
      "theta with equal-or-better precision; Independent returns somewhat\n"
      "larger C* (independent samples avoid correlated false exclusions).\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
