// Reproduces Table I: network statistics, including the average number of
// hierarchical communities containing a query node under LORE's attribute-
// aware hierarchy (|H_l(q)| averaged over the query workload).

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace cod::bench {
namespace {

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, /*default_queries=*/100,
                                 DatasetNames());
  std::printf("== Table I: network statistics ==\n");
  std::printf("(avg |H_l(q)| over %zu LORE chains per dataset)\n\n",
              flags.queries);
  TablePrinter table({"network", "|V|", "|E|", "|A|", "avg |H_l(q)|"});
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});
    Rng rng(flags.seed);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, rng);
    double levels = 0.0;
    for (const Query& q : queries) {
      levels += engine.BuildCodlChain(q.node, q.attribute).chain.NumLevels();
    }
    table.AddRow({name, TablePrinter::Fmt(data.graph.NumNodes()),
                  TablePrinter::Fmt(data.graph.NumEdges()),
                  TablePrinter::Fmt(data.attributes.NumAttributes()),
                  TablePrinter::Fmt(levels / queries.size(), 1)});
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
