// Ablation studies for design choices DESIGN.md calls out (not a paper
// figure):
//
//  A. Reclustering-score variants (Definition 4): the paper weights each
//     divided query-attributed edge by the depth of its lca. We compare
//     against (i) counting edges without depth weighting, (ii) always
//     reclustering the deepest non-trivial ancestor C_1, and (iii) always
//     reclustering the root (i.e., LORE degrading to global reclustering),
//     by the size of the chosen C_ell, the quality (attribute density) of
//     the resulting characteristic community, and query time.
//
//  B. The g_l transform's attribute boost beta: sweep beta and report how
//     attribute density and size of CODR communities respond.

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "hierarchy/quality.h"

namespace cod::bench {
namespace {

constexpr uint32_t kK = 5;

// Re-derives LORE's per-ancestor Delta counts so score variants can be
// evaluated side by side.
std::vector<uint64_t> DeltaCounts(const Graph& g, const AttributeTable& attrs,
                                  const Dendrogram& d, const LcaIndex& lca,
                                  NodeId q, AttributeId attr,
                                  std::vector<CommunityId>* chain) {
  *chain = d.PathToRoot(q);
  std::vector<uint64_t> delta(chain->size(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    if (!attrs.Has(u, attr) || !attrs.Has(v, attr)) continue;
    const CommunityId c = lca.LcaOfNodes(u, v);
    if (!d.Contains(c, q)) continue;
    ++delta[chain->size() - d.Depth(c)];
  }
  return delta;
}

enum class ScoreVariant { kDepthWeighted, kCountOnly, kAlwaysC1, kAlwaysRoot };

CommunityId SelectCell(ScoreVariant variant, const Dendrogram& d,
                       const std::vector<CommunityId>& chain,
                       const std::vector<uint64_t>& delta) {
  switch (variant) {
    case ScoreVariant::kAlwaysC1:
      return chain[std::min<size_t>(1, chain.size() - 1)];
    case ScoreVariant::kAlwaysRoot:
      return chain.back();
    default:
      break;
  }
  double numerator = 0.0;
  double best = 0.0;
  size_t selected = std::min<size_t>(1, chain.size() - 1);
  for (size_t i = 1; i < chain.size(); ++i) {
    const double weight = variant == ScoreVariant::kDepthWeighted
                              ? static_cast<double>(d.Depth(chain[i]))
                              : 1.0;
    numerator += static_cast<double>(delta[i]) * weight;
    const double score = numerator / d.LeafCount(chain[i]);
    if (score > best) {
      best = score;
      selected = i;
    }
  }
  return chain[selected];
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, /*default_queries=*/40,
                                 {"cora-sim", "pubmed-sim"});

  // ---- A: reclustering-score variants. ----
  std::printf("== Ablation A: LORE reclustering-score variants (k = %u) ==\n",
              kK);
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});
    CompressedEvaluator evaluator(engine.model(), engine.options().theta);
    Rng rng(flags.seed);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, rng);

    struct Row {
      const char* label;
      ScoreVariant variant;
    };
    const Row rows[] = {
        {"depth-weighted (paper)", ScoreVariant::kDepthWeighted},
        {"count-only", ScoreVariant::kCountOnly},
        {"always C_1", ScoreVariant::kAlwaysC1},
        {"always root (global)", ScoreVariant::kAlwaysRoot},
    };
    TablePrinter table({"score variant", "avg |C_ell|", "avg |C*|",
                        "avg phi", "found", "time/query (s)"});
    for (const Row& row : rows) {
      double cell_size = 0.0;
      double found_size = 0.0;
      double phi = 0.0;
      size_t found = 0;
      WallTimer timer;
      for (const Query& q : queries) {
        std::vector<CommunityId> chain_ids;
        const std::vector<uint64_t> delta =
            DeltaCounts(data.graph, data.attributes, engine.base_hierarchy(),
                        engine.base_lca(), q.node, q.attribute, &chain_ids);
        const CommunityId c_ell =
            SelectCell(row.variant, engine.base_hierarchy(), chain_ids, delta);
        cell_size += engine.base_hierarchy().LeafCount(c_ell);

        // LORE pipeline with the chosen C_ell: local weighted recluster,
        // splice, evaluate.
        const auto members = engine.base_hierarchy().Members(c_ell);
        const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
            data.graph, data.attributes, q.attribute,
            engine.options().transform, members);
        NodeId local_q = kInvalidNode;
        for (size_t i = 0; i < sub.to_parent.size(); ++i) {
          if (sub.to_parent[i] == q.node) local_q = static_cast<NodeId>(i);
        }
        const Dendrogram local = AgglomerativeCluster(sub.graph);
        CodChain chain =
            BuildChainFromDendrogram(local, local_q, kInvalidCommunity,
                                     &sub.to_parent, data.graph.NumNodes());
        // Splice global ancestors (coarse version: AppendLevel).
        for (CommunityId a = engine.base_hierarchy().Parent(c_ell);
             a != kInvalidCommunity; a = engine.base_hierarchy().Parent(a)) {
          AppendLevel(&chain, engine.base_hierarchy().Members(a));
        }
        const ChainEvalOutcome outcome =
            evaluator.Evaluate(chain, q.node, kK, rng);
        if (outcome.best_level >= 0) {
          const std::vector<NodeId> result =
              chain.MembersOfLevel(static_cast<uint32_t>(outcome.best_level));
          found_size += static_cast<double>(result.size());
          phi += AttributeDensity(data.attributes, q.attribute, result);
          ++found;
        }
      }
      const double nq = static_cast<double>(queries.size());
      table.AddRow({row.label, TablePrinter::Fmt(cell_size / nq, 1),
                    TablePrinter::Fmt(found_size / nq, 1),
                    TablePrinter::Fmt(phi / nq, 3),
                    TablePrinter::Fmt(found),
                    TablePrinter::Fmt(timer.ElapsedSeconds() / nq, 4)});
    }
    std::printf("\n-- %s --\n", name.c_str());
    table.Print(stdout);
  }

  // ---- B: CODR beta sweep. ----
  std::printf("\n== Ablation B: g_l attribute boost beta (CODR, k = %u) ==\n",
              kK);
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    Rng rng(flags.seed);
    TablePrinter table({"beta", "avg |C*|", "avg phi", "found"});
    for (const double beta : {0.0, 1.0, 2.0, 4.0, 8.0}) {
      EngineOptions options;
      options.transform.beta = beta;
      options.cache_codr_hierarchies = true;
      CodEngine engine(data.graph, data.attributes, options);
      CompressedEvaluator evaluator(engine.model(), options.theta);
      Rng query_rng(flags.seed + 1);
      const std::vector<Query> queries =
          GenerateQueries(data.attributes, flags.queries, query_rng);
      double size = 0.0;
      double phi = 0.0;
      size_t found = 0;
      for (const Query& q : queries) {
        const CodChain chain = engine.BuildCodrChain(q.node, q.attribute);
        const ChainEvalOutcome outcome =
            evaluator.Evaluate(chain, q.node, kK, rng);
        if (outcome.best_level < 0) continue;
        const std::vector<NodeId> result =
            chain.MembersOfLevel(static_cast<uint32_t>(outcome.best_level));
        size += static_cast<double>(result.size());
        phi += AttributeDensity(data.attributes, q.attribute, result);
        ++found;
      }
      const double nq = static_cast<double>(queries.size());
      table.AddRow({TablePrinter::Fmt(beta, 1), TablePrinter::Fmt(size / nq, 1),
                    TablePrinter::Fmt(phi / nq, 3), TablePrinter::Fmt(found)});
    }
    std::printf("\n-- %s --\n", name.c_str());
    table.Print(stdout);
  }
  // ---- C: g_l transform variants. ----
  std::printf("\n== Ablation C: g_l transform variants (CODR, k = %u) ==\n",
              kK);
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    Rng rng(flags.seed);
    TablePrinter table({"transform", "avg |C*|", "avg phi", "found"});
    const std::pair<const char*, AttributeTransform> variants[] = {
        {"query-boost (default)", AttributeTransform::kQueryBoost},
        {"jaccard", AttributeTransform::kJaccard},
        {"query-jaccard", AttributeTransform::kQueryJaccard},
    };
    for (const auto& [label, transform] : variants) {
      EngineOptions options;
      options.transform.transform = transform;
      options.cache_codr_hierarchies = true;
      CodEngine engine(data.graph, data.attributes, options);
      CompressedEvaluator evaluator(engine.model(), options.theta);
      Rng query_rng(flags.seed + 1);
      const std::vector<Query> queries =
          GenerateQueries(data.attributes, flags.queries, query_rng);
      double size = 0.0;
      double phi = 0.0;
      size_t found = 0;
      for (const Query& q : queries) {
        const CodChain chain = engine.BuildCodrChain(q.node, q.attribute);
        const ChainEvalOutcome outcome =
            evaluator.Evaluate(chain, q.node, kK, rng);
        if (outcome.best_level < 0) continue;
        const std::vector<NodeId> result =
            chain.MembersOfLevel(static_cast<uint32_t>(outcome.best_level));
        size += static_cast<double>(result.size());
        phi += AttributeDensity(data.attributes, q.attribute, result);
        ++found;
      }
      const double nq = static_cast<double>(queries.size());
      table.AddRow({label, TablePrinter::Fmt(size / nq, 1),
                    TablePrinter::Fmt(phi / nq, 3), TablePrinter::Fmt(found)});
    }
    std::printf("\n-- %s --\n", name.c_str());
    table.Print(stdout);
  }

  // ---- D: linkage functions for the base hierarchy. ----
  std::printf("\n== Ablation D: linkage function of the base hierarchy ==\n");
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    TablePrinter table({"linkage", "Dasgupta cost", "modularity@64",
                        "avg 5-deepest", "cluster time (s)"});
    const std::pair<const char*, Linkage> linkages[] = {
        {"unweighted-average (paper)", Linkage::kUnweightedAverage},
        {"single", Linkage::kSingle},
        {"weighted-average (WPGMA)", Linkage::kWeightedAverage},
    };
    for (const auto& [label, linkage] : linkages) {
      AgglomerativeOptions cluster_options;
      cluster_options.linkage = linkage;
      WallTimer timer;
      const Dendrogram d = AgglomerativeCluster(data.graph, cluster_options);
      const double cluster_seconds = timer.ElapsedSeconds();
      const LcaIndex lca(d);
      const double cost = DasguptaCost(data.graph, d, lca);
      const double modularity =
          Modularity(data.graph, CutToClusters(d, 64));
      Rng rng(flags.seed);
      const std::vector<Query> queries =
          GenerateQueries(data.attributes, flags.queries, rng);
      double deepest = 0.0;
      for (const Query& q : queries) {
        const CodChain chain = BuildChainFromDendrogram(d, q.node);
        size_t count = 0;
        for (size_t h = 0; h < std::min<size_t>(5, chain.NumLevels()); ++h) {
          deepest += chain.community_size[h] / 5.0;
          ++count;
        }
        (void)count;
      }
      table.AddRow({label, TablePrinter::Fmt(cost, 0),
                    TablePrinter::Fmt(modularity, 3),
                    TablePrinter::Fmt(deepest / queries.size(), 1),
                    TablePrinter::Fmt(cluster_seconds, 3)});
    }
    std::printf("\n-- %s --\n", name.c_str());
    table.Print(stdout);
  }

  std::printf(
      "\nReading: depth weighting picks smaller, better-fitting C_ell than\n"
      "count-only; fixed choices either under-recluster (C_1) or pay global\n"
      "reclustering cost (root). Larger beta raises attribute density of\n"
      "CODR communities until the hierarchy over-fragments; the gated\n"
      "(query-aware) transforms beat attribute-blind Jaccard on phi.\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
