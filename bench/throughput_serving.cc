// Serving throughput of the batch-query API: queries/sec of one immutable
// EngineCore snapshot under 1/2/4/8 worker threads. Every sweep runs the
// identical workload with the identical batch seed, so the determinism
// contract (core/query_batch.h) lets us assert bit-identical answers across
// thread counts while only wall time changes.
//
// Besides the human-readable table, each configuration emits one
// machine-readable line:
//   THROUGHPUT_JSON {"dataset":"cora-sim","threads":4,...}
// for dashboards / regression tracking (grep for THROUGHPUT_JSON).
//
// --bench-json=PATH additionally writes canonical BenchJsonEntry records
// (bench/bench_util.h): one "serving_batch" entry per thread config with
// p50/p95 over repeated batch runs and queries/sec at the median.

#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "core/query_batch.h"
#include "tests/test_util.h"

namespace cod::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags =
      ParseFlags(argc, argv, /*default_queries=*/200, {"cora-sim"});
  std::printf("== Serving throughput: QueryBatch queries/sec ==\n\n");
  TablePrinter table({"dataset", "threads", "queries", "seconds",
                      "queries/sec", "speedup vs 1"});
  std::vector<BenchJsonEntry> bench_entries;
  const std::vector<size_t> thread_counts =
      flags.smoke ? std::vector<size_t>{1, 2}
                  : std::vector<size_t>{1, 2, 4, 8};
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});
    Rng rng(flags.seed);
    engine.BuildHimor(rng);

    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, flags.queries, query_rng);
    std::vector<QuerySpec> specs;
    specs.reserve(queries.size());
    for (const Query& q : queries) {
      specs.push_back(QuerySpec{CodVariant::kCodL, q.node,
                                engine.options().k, {q.attribute}});
    }

    std::vector<CodResult> reference;
    double base_seconds = 0.0;
    WallTimer timer;
    const size_t reps = flags.smoke ? 3 : 7;
    for (const size_t threads : thread_counts) {
      TaskScheduler pool(threads);
      engine.QueryBatch(specs, pool, flags.seed);  // warm-up (cache, pages)
      std::vector<double> times;
      std::vector<CodResult> results;
      for (size_t r = 0; r < reps; ++r) {
        timer.Restart();
        results = engine.QueryBatch(specs, pool, flags.seed);
        times.push_back(timer.ElapsedSeconds());
      }
      const double seconds = Quantile(times, 0.5);

      // Thread count must not change a single answer.
      if (reference.empty()) {
        reference = results;
        base_seconds = seconds;
      } else {
        for (size_t i = 0; i < specs.size(); ++i) {
          if (!cod::testing::SameResult(results[i], reference[i])) {
            std::fprintf(stderr,
                         "FATAL: %s query %zu differs at %zu threads — "
                         "determinism contract broken\n",
                         name.c_str(), i, threads);
            return 1;
          }
        }
      }

      const double qps =
          seconds > 0.0 ? static_cast<double>(specs.size()) / seconds : 0.0;
      table.AddRow({name, TablePrinter::Fmt(threads),
                    TablePrinter::Fmt(specs.size()),
                    TablePrinter::Fmt(seconds, 3), TablePrinter::Fmt(qps, 1),
                    TablePrinter::Fmt(
                        seconds > 0.0 ? base_seconds / seconds : 0.0, 2)});
      std::printf(
          "THROUGHPUT_JSON {\"dataset\":\"%s\",\"threads\":%zu,"
          "\"queries\":%zu,\"seconds\":%.6f,\"queries_per_sec\":%.2f,"
          "\"seed\":%llu}\n",
          name.c_str(), threads, specs.size(), seconds, qps,
          static_cast<unsigned long long>(flags.seed));

      BenchJsonEntry entry;
      entry.name = "serving_batch_" + name;
      entry.config = "threads=" + std::to_string(threads);
      entry.samples = specs.size();
      entry.p50_seconds = seconds;
      entry.p95_seconds = Quantile(times, 0.95);
      entry.p99_seconds = Quantile(times, 0.99);
      entry.samples_per_sec = qps;
      bench_entries.push_back(std::move(entry));
    }
  }
  std::printf("\n");
  table.Print(stdout);
  std::printf(
      "\nAll thread counts answered the workload bit-identically (checked\n"
      "against the 1-thread run). Speedup tracks available cores; on a\n"
      "single-core machine expect ~1.0 across the sweep.\n");
  if (const int rc = WriteBenchJson(flags.bench_json, bench_entries);
      rc != 0) {
    return rc;
  }
  return DumpMetrics(flags);
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
