// Shared plumbing for the paper-reproduction bench binaries: flag parsing,
// dataset loading, and the one-evaluation-covers-all-k trick.
//
// Every bench accepts:
//   --queries=N          queries per dataset (default set per bench)
//   --datasets=a,b,c     comma-separated dataset names (default per bench)
//   --seed=S             workload seed (default 1)
//   --smoke              tiny workload for CI: proves the binary runs and
//                        emits its machine-readable lines, not a benchmark
//   --metrics-json=PATH  after the run, dump the process metrics registry
//                        (common/metrics.h JsonDump) to PATH
//   --bench-json=PATH    write the bench's canonical result entries
//                        (BenchJsonEntry below) to PATH as a JSON array —
//                        the regression-tracking format CI archives

#ifndef COD_BENCH_BENCH_UTIL_H_
#define COD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"

namespace cod::bench {

struct Flags {
  size_t queries = 0;
  std::vector<std::string> datasets;
  uint64_t seed = 1;
  size_t threads = 1;        // worker threads for batch benches
  bool smoke = false;        // CI smoke run: minimal workload
  std::string metrics_json;  // dump the metrics registry here ("" = don't)
  std::string bench_json;    // canonical bench results here ("" = don't)
};

inline Flags ParseFlags(int argc, char** argv, size_t default_queries,
                        std::vector<std::string> default_datasets) {
  Flags flags;
  flags.queries = default_queries;
  flags.datasets = std::move(default_datasets);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) {
      flags.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      flags.threads = std::strtoull(arg.c_str() + 10, nullptr, 10);
      if (flags.threads == 0) flags.threads = 1;
    } else if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      flags.metrics_json = arg.substr(15);
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      flags.bench_json = arg.substr(13);
    } else if (arg.rfind("--datasets=", 0) == 0) {
      flags.datasets.clear();
      std::string list = arg.substr(11);
      size_t pos = 0;
      while (pos != std::string::npos) {
        const size_t comma = list.find(',', pos);
        flags.datasets.push_back(list.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expected --queries= --datasets= "
                   "--seed= --threads= --smoke --metrics-json= "
                   "--bench-json=)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  if (flags.smoke && flags.queries > 20) flags.queries = 20;
  return flags;
}

// Writes MetricsRegistry::JsonDump() to flags.metrics_json if set (and
// always prints it as a METRICS_JSON line for log scraping). Call at the
// end of a bench's Run().
inline int DumpMetrics(const Flags& flags) {
  const std::string json = MetricsRegistry::Instance().JsonDump();
  std::printf("METRICS_JSON %s\n", json.c_str());
  if (flags.metrics_json.empty()) return 0;
  std::FILE* f = std::fopen(flags.metrics_json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 flags.metrics_json.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

// One canonical bench result: a named measurement under a named
// configuration. Wall-clock quantiles are over per-repetition times of one
// unit of work; samples_per_sec is the work-rate at the median.
struct BenchJsonEntry {
  std::string name;    // what was measured, e.g. "rr_pool_build"
  std::string config;  // how, e.g. "serial" / "pool4" / "threads=2"
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double samples_per_sec = 0.0;  // units of work per second at p50
  size_t samples = 0;            // units of work timed per repetition
};

// Writes `entries` to `path` as a JSON array (one object per entry) and
// echoes each as a BENCH_JSON line for log scraping. Returns 0 on success.
inline int WriteBenchJson(const std::string& path,
                          const std::vector<BenchJsonEntry>& entries) {
  std::string out = "[";
  char buf[512];
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchJsonEntry& e = entries[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\":\"%s\",\"config\":\"%s\","
                  "\"p50_seconds\":%.9f,\"p95_seconds\":%.9f,"
                  "\"p99_seconds\":%.9f,"
                  "\"samples_per_sec\":%.2f,\"samples\":%zu}",
                  i == 0 ? "" : ",", e.name.c_str(), e.config.c_str(),
                  e.p50_seconds, e.p95_seconds, e.p99_seconds,
                  e.samples_per_sec, e.samples);
    out += buf;
    std::printf("BENCH_JSON {\"name\":\"%s\",\"config\":\"%s\","
                "\"p50_seconds\":%.9f,\"p95_seconds\":%.9f,"
                "\"p99_seconds\":%.9f,"
                "\"samples_per_sec\":%.2f,\"samples\":%zu}\n",
                e.name.c_str(), e.config.c_str(), e.p50_seconds,
                e.p95_seconds, e.p99_seconds, e.samples_per_sec, e.samples);
  }
  out += "\n]\n";
  if (path.empty()) return 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return 0;
}

// p-th quantile (0 <= p <= 1) of `times` by sorting a copy; nearest-rank.
inline double Quantile(std::vector<double> times, double p) {
  if (times.empty()) return 0.0;
  std::sort(times.begin(), times.end());
  const size_t idx = static_cast<size_t>(p * (times.size() - 1) + 0.5);
  return times[idx < times.size() ? idx : times.size() - 1];
}

inline AttributedGraph LoadDatasetOrDie(const std::string& name) {
  Result<AttributedGraph> data = MakeDataset(name);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to build dataset %s: %s\n", name.c_str(),
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

// Derives, for each k in [1, max_k], the best (largest) chain level where
// the query is top-k, from ONE evaluation run at k = max_k: levels with
// rank_per_level[h] < k qualify. Returns -1 when none qualifies.
inline int BestLevelForK(const ChainEvalOutcome& outcome, uint32_t k) {
  int best = -1;
  for (size_t h = 0; h < outcome.rank_per_level.size(); ++h) {
    if (outcome.rank_per_level[h] < k) best = static_cast<int>(h);
  }
  return best;
}

}  // namespace cod::bench

#endif  // COD_BENCH_BENCH_UTIL_H_
