// Scatter/gather router bench: batch-query latency of the sharded serving
// tier versus the mono engine on the SAME world, at 1 / 2 / 4 shards.
//
// The dataset is replicated into disjoint components (3 copies; 2 under
// --smoke) so a component-atomic partition has real spreading to do —
// cora-sim alone is one giant component and every shard count would route
// to shard 0. All layouts run component-scoped, so the merged answer
// vectors must be BIT-IDENTICAL across shard counts; the bench verifies
// that on every repetition and fails hard on a mismatch, making it a
// determinism canary as well as a latency meter.
//
// The 1-shard config is the router-free mono baseline (MakeCodService
// builds a DynamicCodService); the delta to shards=2/4 is the router's
// scatter/gather overhead plus whatever parallelism the layout buys.
//
// Emits one BenchJsonEntry per (dataset, shard count):
//   name   = "shard_scatter_gather"
//   config = "<dataset>/shards=<n>/threads=<t>"
// CI archives the --bench-json output as BENCH_PR8.json.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "serving/service_interface.h"
#include "tests/test_util.h"

namespace cod::bench {
namespace {

struct World {
  Graph graph;
  AttributeTable attrs;
};

// `replicas` disjoint copies of `data`, node ids offset per copy. Every
// copy keeps the original attribute names, so queries generated against
// the replicated table exercise the same topic mix as the original.
World ReplicateWorld(const AttributedGraph& data, size_t replicas) {
  const size_t n = data.graph.NumNodes();
  GraphBuilder gb(replicas * n);
  AttributeTableBuilder ab;
  for (size_t r = 0; r < replicas; ++r) {
    const NodeId base = static_cast<NodeId>(r * n);
    for (EdgeId e = 0; e < data.graph.NumEdges(); ++e) {
      const auto [u, v] = data.graph.Endpoints(e);
      gb.AddEdge(base + u, base + v, data.graph.Weight(e));
    }
    for (NodeId v = 0; v < n; ++v) {
      for (const AttributeId a : data.attributes.AttributesOf(v)) {
        ab.Add(base + v, data.attributes.Name(a));
      }
    }
  }
  World w;
  w.graph = std::move(gb).Build();
  w.attrs = std::move(ab).Build(replicas * n);
  return w;
}

int Run(const Flags& flags) {
  const size_t replicas = flags.smoke ? 2 : 3;
  const size_t reps = flags.smoke ? 3 : 9;
  const std::vector<uint32_t> shard_counts = {1, 2, 4};

  std::vector<BenchJsonEntry> entries;
  TablePrinter table({"dataset", "shards", "threads", "p50 ms", "p95 ms",
                      "qps@p50", "identical"});
  int exit_code = 0;

  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    // One spec workload shared by every layout, keyed to the replicated
    // node space.
    const World probe = ReplicateWorld(data, replicas);
    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(probe.attrs, flags.queries, query_rng);
    std::vector<QuerySpec> specs;
    specs.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      QuerySpec spec;
      spec.node = queries[i].node;
      if (i % 3 == 2) {
        spec.variant = CodVariant::kCodU;
      } else {
        spec.variant = CodVariant::kCodL;
        spec.attrs = {queries[i].attribute};
      }
      specs.push_back(std::move(spec));
    }

    std::vector<CodResult> reference;
    for (const uint32_t num_shards : shard_counts) {
      World w = ReplicateWorld(data, replicas);
      ServiceOptions options;
      options.seed = flags.seed;
      options.rebuild_threshold = 1e9;  // static world: no rebuilds
      options.num_shards = num_shards;
      // The mono baseline must serve the same component-scoped answers
      // the shard engines are forced into, or the latency comparison
      // would compare different work.
      options.engine.component_scoped = true;
      const std::unique_ptr<CodServiceInterface> service = MakeCodService(
          std::move(w.graph), std::move(w.attrs), options);

      TaskScheduler scheduler(flags.threads);
      std::vector<double> times;
      times.reserve(reps);
      bool identical = true;
      WallTimer timer;
      for (size_t rep = 0; rep < reps; ++rep) {
        timer.Restart();
        const std::vector<CodResult> got =
            service->QueryBatch(specs, scheduler, flags.seed);
        times.push_back(timer.ElapsedSeconds());
        if (reference.empty()) {
          reference = got;
        } else {
          for (size_t i = 0; i < got.size(); ++i) {
            identical = identical && testing::SameResult(got[i], reference[i]);
          }
        }
      }
      if (!identical) exit_code = 1;

      const double p50 = Quantile(times, 0.5);
      BenchJsonEntry entry;
      entry.name = "shard_scatter_gather";
      entry.config = name + "/shards=" + std::to_string(num_shards) +
                     "/threads=" + std::to_string(flags.threads);
      entry.p50_seconds = p50;
      entry.p95_seconds = Quantile(times, 0.95);
      entry.p99_seconds = Quantile(times, 0.99);
      entry.samples = specs.size();
      entry.samples_per_sec =
          p50 > 0.0 ? static_cast<double>(specs.size()) / p50 : 0.0;
      entries.push_back(entry);

      table.AddRow({name, std::to_string(num_shards),
                    std::to_string(flags.threads),
                    TablePrinter::Fmt(entry.p50_seconds * 1e3, 2),
                    TablePrinter::Fmt(entry.p95_seconds * 1e3, 2),
                    TablePrinter::Fmt(entry.samples_per_sec, 0),
                    identical ? "yes" : "MISMATCH"});
    }
  }

  table.Print(stdout);
  if (exit_code != 0) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: merged batch answers diverged "
                 "across shard counts\n");
  }
  const int json_rc = WriteBenchJson(flags.bench_json, entries);
  const int metrics_rc = DumpMetrics(flags);
  return exit_code != 0 ? exit_code : (json_rc != 0 ? json_rc : metrics_rc);
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) {
  const cod::bench::Flags flags =
      cod::bench::ParseFlags(argc, argv, /*default_queries=*/192,
                             /*default_datasets=*/{"cora-sim"});
  return cod::bench::Run(flags);
}
