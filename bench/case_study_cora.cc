// Reproduces the Section V-E case study (Fig. 10) on the Cora stand-in with
// k = 1: for concrete query nodes, contrast the characteristic community
// found by CODL with the communities of ATC, ACQ, and CAC — reporting size,
// the query's verified influence rank inside each community, and conductance.

#include <algorithm>

#include "baselines/atc.h"
#include "baselines/kcore.h"
#include "baselines/ktruss.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "eval/metrics.h"
#include "graph/connectivity.h"

namespace cod::bench {
namespace {

constexpr uint32_t kK = 1;
constexpr uint32_t kVerifyTheta = 300;

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, /*default_queries=*/2,
                                 {"cora-sim"});
  const AttributedGraph data = LoadDatasetOrDie(flags.datasets.front());
  CodEngine engine(data.graph, data.attributes, {});
  Rng rng(flags.seed);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;

  std::printf("== Case study (Sec. V-E analog): %s, k = %u ==\n\n",
              flags.datasets.front().c_str(), kK);

  // Pick the first queries for which CODL returns a community.
  Rng query_rng(flags.seed + 1);
  const std::vector<Query> candidates =
      GenerateQueries(data.attributes, 100, query_rng);
  // Prefer queries every method can serve, so the comparison is head-on;
  // fall back to CODL-only queries if too few exist.
  std::vector<std::pair<Query, CodResult>> selected;
  std::vector<std::pair<Query, CodResult>> fallback;
  for (const Query& query : candidates) {
    if (selected.size() >= flags.queries) break;
    CodResult codl = engine.QueryCodL(query.node, query.attribute, kK, ws);
    if (!codl.found || codl.members.size() < 5) continue;
    if (!AtcSearch(data.graph, data.attributes, query.node, query.attribute)
             .empty()) {
      selected.emplace_back(query, std::move(codl));
    } else if (fallback.size() < flags.queries) {
      fallback.emplace_back(query, std::move(codl));
    }
  }
  while (selected.size() < flags.queries && !fallback.empty()) {
    selected.push_back(std::move(fallback.back()));
    fallback.pop_back();
  }
  for (const auto& [query, codl] : selected) {

    std::printf("query node %u, attribute '%s'\n", query.node,
                data.attributes.Name(query.attribute).c_str());
    TablePrinter table(
        {"method", "|C|", "verified rank of q", "conductance"});
    auto add_row = [&](const char* method, std::span<const NodeId> members) {
      if (members.empty()) {
        table.AddRow({method, "0", "-", "-"});
        return;
      }
      const uint32_t rank =
          VerifiedRank(engine.model(), members, query.node, kVerifyTheta, rng);
      table.AddRow({method, TablePrinter::Fmt(members.size()),
                    TablePrinter::Fmt(static_cast<size_t>(rank + 1)),
                    TablePrinter::Fmt(Conductance(data.graph, members), 3)});
    };
    add_row("CODL", codl.members);
    add_row("ATC",
            AtcSearch(data.graph, data.attributes, query.node, query.attribute));
    add_row("ACQ",
            AcqSearch(data.graph, data.attributes, query.node, query.attribute));
    add_row("CAC",
            CacSearch(data.graph, data.attributes, query.node, query.attribute));
    table.Print(stdout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 10): the query is rank 1 in CODL's\n"
      "community; CODL's community is larger with lower conductance, while\n"
      "CAC returns tiny communities and ACQ large ones where the query\n"
      "ranks poorly.\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
