// Reproduces Fig. 7: effectiveness of COD methods vs attributed community
// search, for required influence rank k = 1..5, on six datasets.
//
//   (a)-(f)  average community size |C*|
//   (g)-(l)  average topology density rho(C*)
//   (m)-(r)  average attribute density phi(C*)
//   (s)-(x)  average query influence I(q) over queries the method served
//
// Methods: ACQ, ATC, CAC (community search baselines; a community counts as
// characteristic for k only if the query verifies as top-k inside it) and
// CODU, CODR, CODL (hierarchical COD variants). As in the paper, a query a
// method cannot serve contributes 0 to |C*|, rho, and phi.
//
// One chain evaluation at k = 5 serves all k (rank_per_level is reusable),
// and CODL's effectiveness is computed from its LORE hierarchy (identical to
// the HIMOR-accelerated CODL up to estimation noise; Fig. 9 covers runtime).

#include <array>

#include "baselines/atc.h"
#include "baselines/kcore.h"
#include "baselines/ktruss.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "eval/metrics.h"
#include "influence/monte_carlo.h"

namespace cod::bench {
namespace {

constexpr uint32_t kMaxK = 5;
constexpr uint32_t kVerifyTheta = 50;
constexpr size_t kInfluenceTrials = 300;

const char* kMethods[] = {"ACQ", "ATC", "CAC", "CODU", "CODR", "CODL"};
constexpr size_t kNumMethods = 6;

struct Cell {
  double size = 0.0;
  double rho = 0.0;
  double phi = 0.0;
  double influence = 0.0;  // summed over served queries only
  size_t served = 0;
};

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(
      argc, argv, /*default_queries=*/0,
      {"cora-sim", "citeseer-sim", "pubmed-sim", "retweet-sim", "amazon-sim",
       "dblp-sim"});
  std::printf("== Fig. 7: effectiveness vs community search, k = 1..%u ==\n",
              kMaxK);
  std::printf("(measures averaged over all queries, unserved queries count "
              "0;\n I(q) averaged over served queries)\n");

  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    EngineOptions options;
    options.cache_codr_hierarchies = true;
    CodEngine engine(data.graph, data.attributes, options);
    CompressedEvaluator evaluator(engine.model(), options.theta);
    MonteCarloSimulator simulator(engine.model());
    Rng rng(flags.seed);
    // Auto workload: RR sampling on hub-heavy graphs is inherently costlier
    // (a reached hub pays one coin per incident edge), so bigger/hubbier
    // datasets get fewer queries by default; --queries=N overrides.
    size_t num_queries = flags.queries;
    if (num_queries == 0) {
      const size_t n = data.graph.NumNodes();
      num_queries = n <= 3000 ? 100 : (name == "retweet-sim" ? 15 : 30);
    }
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, num_queries, rng);
    std::printf("\n[%s: %zu queries]\n", name.c_str(), queries.size());

    // accum[method][k-1]
    std::array<std::array<Cell, kMaxK>, kNumMethods> accum{};

    for (const Query& query : queries) {
      const double influence =
          simulator.EstimateInfluence(query.node, kInfluenceTrials, rng);

      auto record = [&](size_t method, uint32_t k,
                        std::span<const NodeId> members) {
        Cell& cell = accum[method][k - 1];
        if (members.empty()) return;
        cell.size += static_cast<double>(members.size());
        cell.rho += TopologyDensity(data.graph, members);
        cell.phi += AttributeDensity(data.attributes, query.attribute, members);
        cell.influence += influence;
        ++cell.served;
      };

      // --- Community-search baselines: one community, verified per k. ---
      const std::vector<std::vector<NodeId>> base_communities = {
          AcqSearch(data.graph, data.attributes, query.node, query.attribute),
          AtcSearch(data.graph, data.attributes, query.node, query.attribute),
          CacSearch(data.graph, data.attributes, query.node, query.attribute)};
      for (size_t b = 0; b < base_communities.size(); ++b) {
        const auto& community = base_communities[b];
        if (community.empty()) continue;
        const uint32_t rank = VerifiedRank(engine.model(), community,
                                           query.node, kVerifyTheta, rng);
        for (uint32_t k = rank + 1; k <= kMaxK; ++k) {
          record(b, k, community);
        }
      }

      // --- Hierarchical COD variants: one evaluation covers every k. ---
      const CodChain chains[3] = {
          engine.BuildCoduChain(query.node),
          engine.BuildCodrChain(query.node, query.attribute),
          engine.BuildCodlChain(query.node, query.attribute).chain};
      for (size_t c = 0; c < 3; ++c) {
        const ChainEvalOutcome outcome =
            evaluator.Evaluate(chains[c], query.node, kMaxK, rng);
        for (uint32_t k = 1; k <= kMaxK; ++k) {
          const int best = BestLevelForK(outcome, k);
          if (best < 0) continue;
          const std::vector<NodeId> members =
              chains[c].MembersOfLevel(static_cast<uint32_t>(best));
          record(3 + c, k, members);
        }
      }
    }

    const double nq = static_cast<double>(queries.size());
    struct Metric {
      const char* title;
      double Cell::* sum;
      bool over_served;
    };
    const Metric metrics[] = {
        {"avg |C*|", &Cell::size, false},
        {"avg topology density rho", &Cell::rho, false},
        {"avg attribute density phi", &Cell::phi, false},
        {"avg I(q) of served queries", &Cell::influence, true},
    };
    for (const Metric& metric : metrics) {
      std::printf("\n-- %s: %s --\n", name.c_str(), metric.title);
      TablePrinter table({"method", "k=1", "k=2", "k=3", "k=4", "k=5"});
      for (size_t m = 0; m < kNumMethods; ++m) {
        std::vector<std::string> row{kMethods[m]};
        for (uint32_t k = 1; k <= kMaxK; ++k) {
          const Cell& cell = accum[m][k - 1];
          const double denom =
              metric.over_served ? static_cast<double>(cell.served) : nq;
          const double value =
              denom == 0.0 ? 0.0 : cell.*(metric.sum) / denom;
          row.push_back(TablePrinter::Fmt(value, 3));
        }
        table.AddRow(std::move(row));
      }
      table.Print(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): COD variants find much larger C* than\n"
      "ACQ/ATC/CAC; CODL leads topology and attribute density among COD\n"
      "variants; sizes grow and I(q) falls as k increases; CODL serves\n"
      "queries with the lowest I(q).\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
