// Reproduces Fig. 9: end-to-end COD query runtime of CODR, CODL- (LORE
// without the index), and fully optimized CODL (LORE + HIMOR), including the
// scalability run on the livejournal-sim stand-in.
//
// Timings include everything a fresh query pays: CODR re-clusters the whole
// weighted graph; CODL- re-clusters only C_ell and evaluates the full
// spliced chain; CODL consults HIMOR and only falls back to local
// evaluation. HIMOR construction cost is reported separately (Table II).

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace cod::bench {
namespace {

int Run(int argc, char** argv) {
  Flags flags = ParseFlags(
      argc, argv, /*default_queries=*/0,
      {"cora-sim", "citeseer-sim", "pubmed-sim", "retweet-sim", "amazon-sim",
       "dblp-sim", "livejournal-sim"});
  std::printf("== Fig. 9: query runtime (seconds/query) ==\n\n");
  TablePrinter table(
      {"dataset", "queries", "CODR", "CODL-", "CODL", "speedup R/L"});
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});  // no CODR cache
    Rng rng(flags.seed);
    engine.BuildHimor(rng);

    // Default workload sizes shrink with graph size so the sweep stays
    // laptop-friendly; --queries overrides for all datasets.
    size_t num_queries = flags.queries;
    if (num_queries == 0) {
      const size_t n = data.graph.NumNodes();
      num_queries =
          n <= 3000 ? 60
                    : (name == "retweet-sim" ? 8
                                             : (n <= 40000 ? 15 : 6));
    }
    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, num_queries, query_rng);

    double codr = 0.0;
    double codl_minus = 0.0;
    double codl = 0.0;
    WallTimer timer;
    for (const Query& q : queries) {
      timer.Restart();
      engine.QueryCodR(q.node, q.attribute, engine.options().k, rng);
      codr += timer.ElapsedSeconds();
      timer.Restart();
      engine.QueryCodLMinus(q.node, q.attribute, engine.options().k, rng);
      codl_minus += timer.ElapsedSeconds();
      timer.Restart();
      engine.QueryCodL(q.node, q.attribute, engine.options().k, rng);
      codl += timer.ElapsedSeconds();
    }
    const double nq = static_cast<double>(queries.size());
    table.AddRow({name, TablePrinter::Fmt(queries.size()),
                  TablePrinter::Fmt(codr / nq, 4),
                  TablePrinter::Fmt(codl_minus / nq, 4),
                  TablePrinter::Fmt(codl / nq, 4),
                  TablePrinter::Fmt(codl > 0.0 ? codr / codl : 0.0, 1)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): CODL- beats CODR (local vs global\n"
      "reclustering); CODL beats CODL- by a further 5-10x via HIMOR; the\n"
      "gap widens with graph size (paper reports ~25x CODR/CODL on DBLP).\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
