// Reproduces Fig. 9: end-to-end COD query runtime of CODR, CODL- (LORE
// without the index), and fully optimized CODL (LORE + HIMOR), including the
// scalability run on the livejournal-sim stand-in.
//
// Timings include everything a fresh query pays: CODR re-clusters the whole
// weighted graph; CODL- re-clusters only C_ell and evaluates the full
// spliced chain; CODL consults HIMOR and only falls back to local
// evaluation. HIMOR construction cost is reported separately (Table II).
//
// The workload now runs through the concurrent batch API (one QuerySpec
// vector per variant). The default --threads=1 keeps per-query averages
// comparable to a sequential sweep; higher thread counts divide wall time
// without changing any answer (see core/query_batch.h's determinism
// contract).

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "core/query_batch.h"

namespace cod::bench {
namespace {

std::vector<QuerySpec> SpecsFor(const std::vector<Query>& queries,
                                CodVariant variant, uint32_t k) {
  std::vector<QuerySpec> specs;
  specs.reserve(queries.size());
  for (const Query& q : queries) {
    specs.push_back(QuerySpec{variant, q.node, k, {q.attribute}});
  }
  return specs;
}

int Run(int argc, char** argv) {
  Flags flags = ParseFlags(
      argc, argv, /*default_queries=*/0,
      {"cora-sim", "citeseer-sim", "pubmed-sim", "retweet-sim", "amazon-sim",
       "dblp-sim", "livejournal-sim"});
  std::printf("== Fig. 9: query runtime (seconds/query, %zu thread%s) ==\n\n",
              flags.threads, flags.threads == 1 ? "" : "s");
  TaskScheduler pool(flags.threads);
  TablePrinter table(
      {"dataset", "queries", "CODR", "CODL-", "CODL", "speedup R/L"});
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});  // no CODR cache
    Rng rng(flags.seed);
    engine.BuildHimor(rng);

    // Default workload sizes shrink with graph size so the sweep stays
    // laptop-friendly; --queries overrides for all datasets.
    size_t num_queries = flags.queries;
    if (num_queries == 0) {
      const size_t n = data.graph.NumNodes();
      num_queries =
          n <= 3000 ? 60
                    : (name == "retweet-sim" ? 8
                                             : (n <= 40000 ? 15 : 6));
    }
    Rng query_rng(flags.seed + 1);
    const std::vector<Query> queries =
        GenerateQueries(data.attributes, num_queries, query_rng);
    const uint32_t k = engine.options().k;

    WallTimer timer;
    double per_variant[3] = {0.0, 0.0, 0.0};
    const CodVariant variants[3] = {CodVariant::kCodR, CodVariant::kCodLMinus,
                                    CodVariant::kCodL};
    for (int v = 0; v < 3; ++v) {
      const std::vector<QuerySpec> specs = SpecsFor(queries, variants[v], k);
      timer.Restart();
      engine.QueryBatch(specs, pool, flags.seed);
      per_variant[v] = timer.ElapsedSeconds();
    }
    const double nq = static_cast<double>(queries.size());
    const double codr = per_variant[0];
    const double codl_minus = per_variant[1];
    const double codl = per_variant[2];
    table.AddRow({name, TablePrinter::Fmt(queries.size()),
                  TablePrinter::Fmt(codr / nq, 4),
                  TablePrinter::Fmt(codl_minus / nq, 4),
                  TablePrinter::Fmt(codl / nq, 4),
                  TablePrinter::Fmt(codl > 0.0 ? codr / codl : 0.0, 1)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): CODL- beats CODR (local vs global\n"
      "reclustering); CODL beats CODL- by a further 5-10x via HIMOR; the\n"
      "gap widens with graph size (paper reports ~25x CODR/CODL on DBLP).\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
