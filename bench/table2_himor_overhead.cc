// Reproduces Table II: HIMOR index construction time and memory overhead,
// next to the size of the input data (graph + base hierarchy), and the
// hierarchy-balance term sum_v dep(v) that drives construction cost.

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace cod::bench {
namespace {

size_t GraphBytes(const Graph& g) {
  // CSR adjacency + canonical edge list (+ optional weights).
  return g.NumNodes() * sizeof(size_t) + 2 * g.NumEdges() * sizeof(AdjEntry) +
         g.NumEdges() * sizeof(std::pair<NodeId, NodeId>) +
         (g.HasWeights() ? g.NumEdges() * sizeof(double) : 0);
}

size_t DendrogramBytes(const Dendrogram& d) {
  // parents, children CSR, depth, leaf intervals, leaf order/positions.
  return d.NumVertices() *
             (sizeof(CommunityId) * 2 + sizeof(size_t) + 3 * sizeof(uint32_t)) +
         d.NumLeaves() * 2 * sizeof(uint32_t);
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv, /*default_queries=*/0,
                                 DatasetNames());
  std::printf("== Table II: HIMOR construction time and memory ==\n\n");
  TablePrinter table({"dataset", "build time (s)", "index (MB)", "input (MB)",
                      "sum dep(v)/|V|"});
  for (const std::string& name : flags.datasets) {
    const AttributedGraph data = LoadDatasetOrDie(name);
    CodEngine engine(data.graph, data.attributes, {});
    Rng rng(flags.seed);
    WallTimer timer;
    engine.BuildHimor(rng);
    const double build_seconds = timer.ElapsedSeconds();
    const HimorIndex& index = *engine.himor();
    const Dendrogram& base = engine.base_hierarchy();
    double total_depth = 0.0;
    for (NodeId v = 0; v < data.graph.NumNodes(); ++v) {
      total_depth += base.Depth(base.LeafOf(v));
    }
    const double input_mb =
        (GraphBytes(data.graph) + DendrogramBytes(base)) / 1e6;
    table.AddRow({name, TablePrinter::Fmt(build_seconds, 2),
                  TablePrinter::Fmt(index.MemoryBytes() / 1e6, 2),
                  TablePrinter::Fmt(input_mb, 2),
                  TablePrinter::Fmt(
                      total_depth / data.graph.NumNodes(), 1)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): index size comparable to the input data;\n"
      "construction time scales with sum_v dep(v), so hierarchy skew (e.g.\n"
      "retweet-sim) costs more than a balanced hierarchy of equal size.\n");
  return 0;
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
