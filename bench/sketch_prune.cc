// Sketch-accelerated pruning and the approximate sketch rung (PR 10).
//
// Two measurements on one dataset build:
//
//  1. Prune speedup: per-query latency of exact CODU and CODL- on two
//     engines that share the same HIMOR/sketch build seed and differ ONLY
//     in EngineOptions::sketch_prune. The bench cross-checks every answer
//     pair for bit-equality (pruning is a pure skip; any divergence is a
//     bug and fails the run), and reports the prune rate actually achieved.
//
//  2. Sketch-rung quality: direct kCodSketch queries against the exact
//     CODU answer for the same (q, k). Precision = |S cap E| / |S| and
//     recall = |S cap E| / |E| over the member sets, averaged across
//     queries where the exact side found a community; found/not-found
//     agreement is reported alongside. The rung's latency quantiles show
//     what an admission-shedding tier pays per answer.
//
// JSON schema note: BenchJsonEntry carries latency quantiles only, so the
// dimensionless quality rates ride in p50_seconds under the
// "sketch_rung_quality" name (config "precision" / "recall" /
// "found_agreement"); consumers key on name+config, and the table output
// prints them under their real units.

#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"

namespace cod::bench {
namespace {

constexpr uint32_t kTopK = 4;

// Sorted copy: member lists are per-level scans, not guaranteed ordered.
std::vector<NodeId> Sorted(const std::vector<NodeId>& v) {
  std::vector<NodeId> out = v;
  std::sort(out.begin(), out.end());
  return out;
}

bool SameAnswer(const CodResult& a, const CodResult& b) {
  return a.found == b.found && a.rank == b.rank &&
         a.num_levels == b.num_levels && a.code == b.code &&
         Sorted(a.members) == Sorted(b.members);
}

struct LatencyRow {
  std::vector<double> times;  // seconds per query
  uint64_t levels_pruned = 0;
  uint64_t levels_considered = 0;
};

BenchJsonEntry MakeEntry(const std::string& name, const std::string& config,
                         const std::vector<double>& times) {
  BenchJsonEntry e;
  e.name = name;
  e.config = config;
  e.p50_seconds = Quantile(times, 0.5);
  e.p95_seconds = Quantile(times, 0.95);
  e.p99_seconds = Quantile(times, 0.99);
  e.samples_per_sec = e.p50_seconds > 0.0 ? 1.0 / e.p50_seconds : 0.0;
  e.samples = times.size();
  return e;
}

int Run(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv, /*default_queries=*/100, {"cora-sim"});
  const std::string dataset = flags.datasets.front();
  std::printf("== Sketch pruning + sketch rung (%s, %zu queries) ==\n\n",
              dataset.c_str(), flags.queries);

  const AttributedGraph data = LoadDatasetOrDie(dataset);
  EngineOptions opts;
  opts.sketch_bits = 6;
  EngineOptions plain_opts = opts;
  plain_opts.sketch_prune = false;

  CodEngine pruned(data.graph, data.attributes, opts);
  CodEngine plain(data.graph, data.attributes, plain_opts);
  // Same schedule seed: both engines hold bit-identical HIMOR indexes and
  // sketches, so any answer divergence below is the prune bound's fault.
  pruned.BuildHimorParallel(flags.seed, flags.threads);
  plain.BuildHimorParallel(flags.seed, flags.threads);

  Rng query_rng(flags.seed + 17);
  const std::vector<Query> queries =
      GenerateQueries(data.attributes, flags.queries, query_rng);

  QueryWorkspace ws_pruned = pruned.MakeWorkspace(flags.seed);
  QueryWorkspace ws_plain = plain.MakeWorkspace(flags.seed);

  // ---- 1. Prune speedup on the exact evaluators. ----
  struct VariantCase {
    const char* label;
    bool attributed;  // CODL- takes the query attribute; CODU ignores it
  };
  const VariantCase cases[] = {{"codu", false}, {"codlminus", true}};
  std::vector<BenchJsonEntry> entries;
  WallTimer timer;
  for (const VariantCase& vc : cases) {
    LatencyRow on;
    LatencyRow off;
    size_t mismatches = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const Query& q = queries[i];
      const uint64_t qseed = flags.seed + 1000 + i;
      ws_pruned.ReseedRng(qseed);
      timer.Restart();
      const CodResult a =
          vc.attributed
              ? pruned.QueryCodLMinus(q.node, q.attribute, kTopK, ws_pruned)
              : pruned.QueryCodU(q.node, kTopK, ws_pruned);
      on.times.push_back(timer.ElapsedSeconds());
      on.levels_pruned += a.stats.sketch_levels_pruned;
      on.levels_considered += a.stats.sketch_levels_considered;

      ws_plain.ReseedRng(qseed);
      timer.Restart();
      const CodResult b =
          vc.attributed
              ? plain.QueryCodLMinus(q.node, q.attribute, kTopK, ws_plain)
              : plain.QueryCodU(q.node, kTopK, ws_plain);
      off.times.push_back(timer.ElapsedSeconds());
      if (!SameAnswer(a, b)) {
        ++mismatches;
        std::fprintf(stderr, "ANSWER DIVERGENCE: %s q=%u\n", vc.label,
                     q.node);
      }
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "%zu pruned-vs-plain mismatches on %s\n",
                   mismatches, vc.label);
      return 1;
    }
    entries.push_back(MakeEntry(std::string("sketch_prune_") + vc.label,
                                dataset + "/prune_on", on.times));
    entries.push_back(MakeEntry(std::string("sketch_prune_") + vc.label,
                                dataset + "/prune_off", off.times));
    const double p50_on = entries[entries.size() - 2].p50_seconds;
    const double p50_off = entries.back().p50_seconds;
    const double prune_rate =
        on.levels_considered > 0
            ? static_cast<double>(on.levels_pruned) /
                  static_cast<double>(on.levels_considered)
            : 0.0;
    std::printf(
        "%-10s p50 %.6fs (prune on) vs %.6fs (off)  speedup %.2fx  "
        "pruned %" PRIu64 "/%" PRIu64 " levels (%.1f%%)\n",
        vc.label, p50_on, p50_off, p50_on > 0.0 ? p50_off / p50_on : 0.0,
        on.levels_pruned, on.levels_considered, 100.0 * prune_rate);
  }

  // ---- 2. Sketch-rung quality + latency vs exact CODU. ----
  std::vector<double> rung_times;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  size_t quality_samples = 0;
  size_t found_agreements = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    ws_pruned.ReseedRng(flags.seed + 2000 + i);
    const CodResult exact = pruned.QueryCodU(q.node, kTopK, ws_pruned);
    const QuerySpec spec{CodVariant::kCodSketch, q.node, kTopK, {}};
    timer.Restart();
    const CodResult approx = pruned.Query(spec, ws_pruned);
    rung_times.push_back(timer.ElapsedSeconds());
    if (approx.found == exact.found) ++found_agreements;
    if (!exact.found) continue;
    ++quality_samples;
    if (!approx.found) continue;  // counts as precision/recall 0
    const std::vector<NodeId> e = Sorted(exact.members);
    const std::vector<NodeId> s = Sorted(approx.members);
    std::vector<NodeId> both;
    std::set_intersection(e.begin(), e.end(), s.begin(), s.end(),
                          std::back_inserter(both));
    precision_sum += static_cast<double>(both.size()) /
                     static_cast<double>(s.size());
    recall_sum +=
        static_cast<double>(both.size()) / static_cast<double>(e.size());
  }
  const double precision =
      quality_samples > 0 ? precision_sum / quality_samples : 1.0;
  const double recall =
      quality_samples > 0 ? recall_sum / quality_samples : 1.0;
  const double agreement =
      queries.empty()
          ? 1.0
          : static_cast<double>(found_agreements) / queries.size();
  std::printf(
      "sketch rung p50 %.6fs  precision %.3f  recall %.3f  "
      "found-agreement %.3f (%zu attributed queries)\n\n",
      Quantile(rung_times, 0.5), precision, recall, agreement,
      quality_samples);

  entries.push_back(MakeEntry("sketch_rung", dataset + "/latency",
                              rung_times));
  // Dimensionless rates in p50_seconds — see the file comment.
  for (const auto& [config, value] :
       {std::pair<const char*, double>{"precision", precision},
        {"recall", recall},
        {"found_agreement", agreement}}) {
    BenchJsonEntry e;
    e.name = "sketch_rung_quality";
    e.config = dataset + "/" + config;
    e.p50_seconds = value;
    e.samples = quality_samples;
    entries.push_back(e);
  }

  TablePrinter table({"name", "config", "p50", "p95", "samples"});
  for (const BenchJsonEntry& e : entries) {
    table.AddRow({e.name, e.config, TablePrinter::Fmt(e.p50_seconds, 6),
                  TablePrinter::Fmt(e.p95_seconds, 6),
                  TablePrinter::Fmt(e.samples)});
  }
  table.Print(stdout);

  if (int rc = WriteBenchJson(flags.bench_json, entries); rc != 0) return rc;
  return DumpMetrics(flags);
}

}  // namespace
}  // namespace cod::bench

int main(int argc, char** argv) { return cod::bench::Run(argc, argv); }
