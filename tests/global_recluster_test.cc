#include "core/global_recluster.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

AttributeTable TwoSidedAttributes() {
  AttributeTableBuilder b;
  for (NodeId v : {0, 1, 4, 5}) b.Add(v, "X");
  for (NodeId v : {2, 3, 6, 7}) b.Add(v, "Y");
  return std::move(b).Build(8);
}

TEST(GlobalReclusterTest, BoostsOnlyQueryAttributedEdges) {
  // Cycle 0-1-2-3-0; X on {0,1}, Y on {2,3}.
  GraphBuilder gb(4);
  gb.AddEdge(0, 1);
  gb.AddEdge(1, 2);
  gb.AddEdge(2, 3);
  gb.AddEdge(3, 0);
  const Graph g = std::move(gb).Build();
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  ab.Add(2, "Y");
  ab.Add(3, "Y");
  const AttributeTable attrs = std::move(ab).Build(4);

  const Graph weighted =
      BuildAttributeWeightedGraph(g, attrs, attrs.Find("X"),
                                  TransformOptions{});
  EXPECT_EQ(weighted.NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(weighted.Weight(weighted.FindEdge(0, 1)), 3.0);
  EXPECT_DOUBLE_EQ(weighted.Weight(weighted.FindEdge(1, 2)), 1.0);
  EXPECT_DOUBLE_EQ(weighted.Weight(weighted.FindEdge(2, 3)), 1.0);
  EXPECT_DOUBLE_EQ(weighted.Weight(weighted.FindEdge(0, 3)), 1.0);
}

TEST(GlobalReclusterTest, InvalidAttributeMeansNoBoost) {
  const Graph g = testing::MakeClique(4);
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  const AttributeTable attrs = std::move(ab).Build(4);
  const Graph weighted =
      BuildAttributeWeightedGraph(g, attrs, kInvalidAttribute,
                                  TransformOptions{});
  EXPECT_FALSE(weighted.HasWeights());
}

TEST(GlobalReclusterTest, SubgraphVariantRestrictsAndWeights) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const AttributeTable attrs = TwoSidedAttributes();
  const std::vector<NodeId> members = {0, 1, 2, 3};
  const InducedSubgraph sub = BuildAttributeWeightedSubgraph(
      g, attrs, attrs.Find("X"), TransformOptions{}, members);
  EXPECT_EQ(sub.graph.NumNodes(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 6u);  // the 4-clique
  // Local edge (0,1) corresponds to parent (0,1): both X -> boosted.
  EXPECT_DOUBLE_EQ(sub.graph.Weight(sub.graph.FindEdge(0, 1)), 3.0);
  // Parent (2,3): both Y, not the query attribute -> weight 1.
  EXPECT_DOUBLE_EQ(sub.graph.Weight(sub.graph.FindEdge(2, 3)), 1.0);
}

TEST(GlobalReclusterTest, JaccardTransformUsesFullAttributeSets) {
  GraphBuilder gb(4);
  gb.AddEdge(0, 1);  // identical sets -> J = 1
  gb.AddEdge(1, 2);  // {X,Y} vs {Y}  -> J = 1/2
  gb.AddEdge(2, 3);  // disjoint      -> J = 0
  const Graph g = std::move(gb).Build();
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(0, "Y");
  ab.Add(1, "X");
  ab.Add(1, "Y");
  ab.Add(2, "Y");
  ab.Add(3, "Z");
  const AttributeTable attrs = std::move(ab).Build(4);
  TransformOptions options;
  options.transform = AttributeTransform::kJaccard;
  options.beta = 3.0;
  const Graph w =
      BuildAttributeWeightedGraph(g, attrs, attrs.Find("X"), options);
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(0, 1)), 1.0 + 3.0);        // J = 1
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(1, 2)), 1.0 + 3.0 / 2.0);  // J = 1/2
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(2, 3)), 1.0);              // J = 0
}

TEST(GlobalReclusterTest, QueryJaccardGatesOnQueryAttribute) {
  GraphBuilder gb(4);
  gb.AddEdge(0, 1);  // both carry X -> boosted by their Jaccard
  gb.AddEdge(2, 3);  // identical sets but no X -> unboosted
  const Graph g = std::move(gb).Build();
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  ab.Add(2, "Y");
  ab.Add(3, "Y");
  const AttributeTable attrs = std::move(ab).Build(4);
  TransformOptions options;
  options.transform = AttributeTransform::kQueryJaccard;
  options.beta = 2.0;
  const Graph w =
      BuildAttributeWeightedGraph(g, attrs, attrs.Find("X"), options);
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(0, 1)), 3.0);  // J = 1, gated in
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(2, 3)), 1.0);  // gated out
}

TEST(GlobalReclusterTest, AttributeWeightsSteerHierarchy) {
  // 4-cycle of unit edges plus attribute X on the two "diagonal-opposite"
  // pairs: boosting X makes {0,1} and {2,3} the first merges.
  GraphBuilder gb(4);
  gb.AddEdge(0, 1);
  gb.AddEdge(1, 2);
  gb.AddEdge(2, 3);
  gb.AddEdge(3, 0);
  const Graph g = std::move(gb).Build();
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  ab.Add(2, "Y");
  ab.Add(3, "Y");
  const AttributeTable attrs = std::move(ab).Build(4);

  TransformOptions strong;
  strong.beta = 4.0;
  const Dendrogram d = GlobalRecluster(g, attrs, attrs.Find("X"), strong);
  // First merge pairs {0,1}; second {2,3} (also tied via Y edge weight 1
  // vs cross edges weight 1 — but {0,1} must be a community).
  bool found_01 = false;
  for (CommunityId c = 0; c < d.NumVertices(); ++c) {
    if (d.IsLeaf(c)) continue;
    std::vector<NodeId> mem(d.Members(c).begin(), d.Members(c).end());
    std::sort(mem.begin(), mem.end());
    if (mem == std::vector<NodeId>{0, 1}) found_01 = true;
  }
  EXPECT_TRUE(found_01);
}

}  // namespace
}  // namespace cod
