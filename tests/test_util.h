// Shared fixtures for the codlib test suite: tiny hand-built graphs and the
// paper's running example (Fig. 2 graph + hierarchy, Fig. 5 attributes).

#ifndef COD_TESTS_TEST_UTIL_H_
#define COD_TESTS_TEST_UTIL_H_

#include <vector>

#include "core/engine_core.h"
#include "graph/attributes.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod::testing {

// Bit-level equality of two query answers (every observable field), used by
// the determinism and concurrency suites.
inline bool SameResult(const CodResult& a, const CodResult& b) {
  return a.found == b.found && a.members == b.members && a.rank == b.rank &&
         a.num_levels == b.num_levels &&
         a.answered_from_index == b.answered_from_index &&
         a.code == b.code && a.degraded == b.degraded &&
         a.variant_served == b.variant_served;
}

// Path 0-1-2-...-(n-1).
inline Graph MakePath(size_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return std::move(b).Build();
}

// Complete graph on n nodes.
inline Graph MakeClique(size_t n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

// Two k-cliques {0..k-1} and {k..2k-1} joined by the bridge (k-1, k).
inline Graph MakeTwoCliquesWithBridge(size_t k) {
  GraphBuilder b(2 * k);
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) {
      b.AddEdge(u, v);
      b.AddEdge(u + k, v + k);
    }
  }
  b.AddEdge(static_cast<NodeId>(k - 1), static_cast<NodeId>(k));
  return std::move(b).Build();
}

// The paper's Fig. 2 example: 10 nodes, 15 edges, hierarchy
//   C0 = {v0..v3}, C2 = {v6,v7}, C3 = C0+C2, C1 = {v4,v5}, C4 = C3+C1,
//   C5 = {v8,v9}, C6 = C4+C5 (root).
// Depths: C6=1, C4=2, C5=2, C3=3, C1=3, C0=4, C2=4 — matching Example 2's
// dep(C3) = 3 and H(v0) = {C0, C3, C4, C6}.
struct PaperExample {
  Graph graph;
  Dendrogram dendrogram;
  CommunityId c0, c1, c2, c3, c4, c5, c6;
};

inline PaperExample MakePaperExample() {
  PaperExample ex;
  GraphBuilder b(10);
  // Dense block {v0..v3}.
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  // Block {v6, v7} attached to C0.
  b.AddEdge(6, 7);
  b.AddEdge(3, 7);
  b.AddEdge(2, 6);
  // Block {v4, v5} attached to C3's nodes.
  b.AddEdge(4, 5);
  b.AddEdge(2, 4);
  b.AddEdge(3, 5);
  b.AddEdge(5, 6);
  // Block {v8, v9} attached to the rest.
  b.AddEdge(8, 9);
  b.AddEdge(4, 8);
  b.AddEdge(7, 9);
  ex.graph = std::move(b).Build();

  DendrogramBuilder db(10);
  // Build bottom-up; leaves are 0..9. C0 is a 4-way vertex exactly as in
  // Fig. 2 (the builder supports arbitrary fan-out).
  const CommunityId c0_children[4] = {0, 1, 2, 3};
  ex.c0 = db.Merge(c0_children);           // C0 = {0,1,2,3}
  ex.c2 = db.Merge(6, 7);                  // C2 = {6,7}
  ex.c3 = db.Merge(ex.c0, ex.c2);          // C3
  ex.c1 = db.Merge(4, 5);                  // C1 = {4,5}
  ex.c4 = db.Merge(ex.c3, ex.c1);          // C4
  ex.c5 = db.Merge(8, 9);                  // C5 = {8,9}
  ex.c6 = db.Merge(ex.c4, ex.c5);          // C6 = root
  ex.dendrogram = std::move(db).Build();
  return ex;
}

// Fig. 5 attributes: DB on v2, v3, v4, v5, v7 (the query-attributed edges on
// v0's chain are then (v2,v4), (v3,v5) with lca C4 and (v3,v7) with lca C3,
// reproducing Delta(C3) = 1, Delta(C4) = 2 of Example 6; note v2-v3 is an
// in-C0 edge and must stay excluded from every score).
inline AttributeTable MakePaperAttributes() {
  AttributeTableBuilder b;
  for (NodeId v : {2, 3, 4, 5, 7}) b.Add(v, "DB");
  b.Add(0, "IR");
  b.Add(1, "IR");
  b.Add(8, "ML");
  b.Add(9, "ML");
  return std::move(b).Build(10);
}

}  // namespace cod::testing

#endif  // COD_TESTS_TEST_UTIL_H_
