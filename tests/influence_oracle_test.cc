#include "influence/influence_oracle.h"

#include <gtest/gtest.h>

#include "influence/monte_carlo.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(InfluenceOracleTest, CountsMatchMonteCarloWithinCommunity) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  InfluenceOracle oracle(m);
  MonteCarloSimulator sim(m);
  Rng rng(1);

  const std::vector<NodeId> members = {0, 1, 2, 3, 6, 7};  // C3
  std::vector<char> allowed(10, 0);
  for (NodeId v : members) allowed[v] = 1;

  const uint32_t theta = 5000;
  const std::vector<uint32_t> counts = oracle.CountsWithin(members, theta, rng);
  ASSERT_EQ(counts.size(), members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    const double rr_estimate = static_cast<double>(counts[i]) / theta;
    const double mc_estimate =
        sim.EstimateInfluence(members[i], 60000, rng, &allowed);
    EXPECT_NEAR(rr_estimate, mc_estimate, 0.1) << "node " << members[i];
  }
}

TEST(InfluenceOracleTest, MaskIsResetBetweenCalls) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  InfluenceOracle oracle(m);
  Rng rng(2);
  const std::vector<NodeId> left = {0, 1, 2};
  const std::vector<NodeId> right = {3, 4, 5};
  // With p=1, everyone reaches everyone within a clique: count = theta*|C|.
  const std::vector<uint32_t> c1 = oracle.CountsWithin(left, 10, rng);
  for (uint32_t c : c1) EXPECT_EQ(c, 30u);
  const std::vector<uint32_t> c2 = oracle.CountsWithin(right, 10, rng);
  for (uint32_t c : c2) EXPECT_EQ(c, 30u);
}

TEST(InfluenceOracleTest, RankOfCountsStrictlyGreater) {
  const std::vector<NodeId> members = {10, 20, 30, 40};
  const std::vector<uint32_t> counts = {5, 9, 5, 2};
  EXPECT_EQ(InfluenceOracle::RankOf(members, counts, 20), 0u);
  EXPECT_EQ(InfluenceOracle::RankOf(members, counts, 10), 1u);  // tie with 30
  EXPECT_EQ(InfluenceOracle::RankOf(members, counts, 30), 1u);
  EXPECT_EQ(InfluenceOracle::RankOf(members, counts, 40), 3u);
}

TEST(InfluenceOracleTest, HubOutranksLeaves) {
  // Star graph: the center's influence dominates under weighted cascade.
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  InfluenceOracle oracle(m);
  Rng rng(3);
  const std::vector<NodeId> members = {0, 1, 2, 3, 4, 5};
  const std::vector<uint32_t> counts = oracle.CountsWithin(members, 400, rng);
  EXPECT_EQ(InfluenceOracle::RankOf(members, counts, 0), 0u);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_GT(InfluenceOracle::RankOf(members, counts, v), 0u);
  }
}

}  // namespace
}  // namespace cod
