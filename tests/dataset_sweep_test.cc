// Parameterized pipeline-invariant sweep over the registry's small datasets
// (the paper's real-attribute group): whatever the graph shape, every chain,
// LORE selection, HIMOR entry list, and query answer must satisfy the
// structural contracts the algorithms rely on.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"

namespace cod {
namespace {

class DatasetSweepTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Result<AttributedGraph> data = MakeDataset(GetParam());
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    data_ = std::move(data).value();
    engine_ = std::make_unique<CodEngine>(data_.graph, data_.attributes,
                                          EngineOptions{});
    Rng rng(11);
    engine_->BuildHimor(rng);
    Rng query_rng(13);
    queries_ = GenerateQueries(data_.attributes, 6, query_rng);
  }

  AttributedGraph data_;
  std::unique_ptr<CodEngine> engine_;
  std::vector<Query> queries_;
};

TEST_P(DatasetSweepTest, ChainsAreWellFormed) {
  for (const Query& q : queries_) {
    for (int variant = 0; variant < 2; ++variant) {
      const CodChain chain =
          variant == 0
              ? engine_->BuildCoduChain(q.node)
              : engine_->BuildCodlChain(q.node, q.attribute).chain;
      ASSERT_GE(chain.NumLevels(), 1u);
      EXPECT_EQ(chain.level[q.node], 0u);
      EXPECT_TRUE(chain.in_universe[q.node]);
      EXPECT_EQ(chain.community_size.back(), data_.graph.NumNodes());
      for (size_t h = 1; h < chain.NumLevels(); ++h) {
        EXPECT_GE(chain.community_size[h], chain.community_size[h - 1]);
      }
      // The universe is exactly the nodes marked in_universe, and level
      // histogram matches community sizes.
      size_t marked = 0;
      for (char m : chain.in_universe) marked += m;
      EXPECT_EQ(marked, chain.universe.size());
      EXPECT_EQ(chain.universe.size(), data_.graph.NumNodes());
    }
  }
}

TEST_P(DatasetSweepTest, LoreSelectionIsOnTheChain) {
  for (const Query& q : queries_) {
    const LoreScores scores = ComputeReclusteringScores(
        data_.graph, data_.attributes, engine_->base_hierarchy(),
        engine_->base_lca(), q.node, q.attribute);
    ASSERT_GE(scores.chain.size(), 1u);
    EXPECT_LT(scores.selected, scores.chain.size());
    EXPECT_GE(scores.selected, scores.chain.size() == 1 ? 0u : 1u);
    for (double s : scores.score) EXPECT_GE(s, 0.0);
    // Selected community contains the query node.
    EXPECT_TRUE(
        engine_->base_hierarchy().Contains(scores.Selected(), q.node));
  }
}

TEST_P(DatasetSweepTest, HimorEntriesLieOnEachNodesPath) {
  for (const Query& q : queries_) {
    const auto entries = engine_->himor()->RanksOf(q.node);
    const auto path = engine_->base_hierarchy().PathToRoot(q.node);
    size_t path_pos = 0;
    for (const auto& entry : entries) {
      // Entries are a deepest-first subsequence of the ancestor path.
      while (path_pos < path.size() && path[path_pos] != entry.community) {
        ++path_pos;
      }
      ASSERT_LT(path_pos, path.size())
          << "entry community not on the ancestor path";
      EXPECT_LT(entry.rank, engine_->himor()->max_rank());
    }
  }
}

TEST_P(DatasetSweepTest, QueriesReturnConsistentCommunities) {
  QueryWorkspace ws = engine_->MakeWorkspace(17);
  for (const Query& q : queries_) {
    const CodResult r = engine_->QueryCodL(q.node, q.attribute, 5, ws);
    if (!r.found) continue;
    EXPECT_FALSE(r.members.empty());
    EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q.node) !=
                r.members.end());
    EXPECT_LT(r.rank, 5u);
    std::vector<NodeId> sorted = r.members;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDatasets, DatasetSweepTest,
                         ::testing::Values("cora-sim", "citeseer-sim",
                                           "pubmed-sim", "retweet-sim"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cod
