#include "hierarchy/girvan_newman.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(EdgeBetweennessTest, PathGraphCenterEdgeHighest) {
  // Path 0-1-2-3: edge (1,2) carries 2*2 = 4 shortest paths; ends carry 3.
  const Graph g = testing::MakePath(4);
  const std::vector<double> score = EdgeBetweenness(g);
  const EdgeId mid = g.FindEdge(1, 2);
  const EdgeId end = g.FindEdge(0, 1);
  EXPECT_DOUBLE_EQ(score[mid], 4.0);
  EXPECT_DOUBLE_EQ(score[end], 3.0);
}

TEST(EdgeBetweennessTest, CliqueEdgesAreUniform) {
  const Graph g = testing::MakeClique(5);
  const std::vector<double> score = EdgeBetweenness(g);
  for (double s : score) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(EdgeBetweennessTest, BridgeDominates) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const std::vector<double> score = EdgeBetweenness(g);
  const EdgeId bridge = g.FindEdge(3, 4);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != bridge) {
      EXPECT_LT(score[e], score[bridge]);
    }
  }
  // The bridge carries all 4*4 cross pairs plus its own endpoints' path.
  EXPECT_DOUBLE_EQ(score[bridge], 16.0);
}

TEST(GirvanNewmanTest, TopSplitSeparatesCliques) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const Dendrogram d = GirvanNewmanCluster(g);
  EXPECT_EQ(d.NumLeaves(), 8u);
  EXPECT_EQ(d.LeafCount(d.Root()), 8u);
  const auto kids = d.Children(d.Root());
  ASSERT_EQ(kids.size(), 2u);
  std::vector<NodeId> side(d.Members(kids[0]).begin(),
                           d.Members(kids[0]).end());
  std::sort(side.begin(), side.end());
  const std::vector<NodeId> left{0, 1, 2, 3};
  const std::vector<NodeId> right{4, 5, 6, 7};
  EXPECT_TRUE(side == left || side == right);
}

TEST(GirvanNewmanTest, HandlesDisconnectedInput) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const Graph g = std::move(b).Build();
  const Dendrogram d = GirvanNewmanCluster(g);
  EXPECT_EQ(d.LeafCount(d.Root()), 4u);
}

TEST(GirvanNewmanTest, ValidHierarchyOnPaperGraph) {
  const auto ex = testing::MakePaperExample();
  const Dendrogram d = GirvanNewmanCluster(ex.graph);
  EXPECT_EQ(d.NumLeaves(), 10u);
  for (NodeId v = 0; v < 10; ++v) {
    const auto path = d.PathToRoot(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), d.Root());
  }
}

}  // namespace
}  // namespace cod
