#include "baselines/kcore.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(CoreNumbersTest, Clique) {
  const Graph g = testing::MakeClique(5);
  const std::vector<uint32_t> core = CoreNumbers(g);
  for (uint32_t c : core) EXPECT_EQ(c, 4u);
}

TEST(CoreNumbersTest, Path) {
  const Graph g = testing::MakePath(5);
  const std::vector<uint32_t> core = CoreNumbers(g);
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
}

TEST(CoreNumbersTest, CliqueWithTail) {
  // 4-clique {0..3} plus tail 3-4-5: tail is 1-core, clique is 3-core.
  GraphBuilder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(CoreNumbersTest, IsolatedNodeIsZeroCore) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(CoreNumbers(g)[2], 0u);
}

TEST(ConnectedKCoreTest, ComponentOfQueryOnly) {
  // Two disjoint triangles: the 2-core component of node 0 is one triangle.
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> core = CoreNumbers(g);
  EXPECT_EQ(ConnectedKCore(g, 0, 2, core),
            (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(ConnectedKCore(g, 0, 3, core).empty());
}

TEST(AcqTest, FiltersByAttribute) {
  // 4-clique where only {0,1,2} share "X": ACQ returns the X-triangle.
  const Graph g = testing::MakeClique(4);
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  ab.Add(2, "X");
  ab.Add(3, "Y");
  const AttributeTable attrs = std::move(ab).Build(4);
  const std::vector<NodeId> community =
      AcqSearch(g, attrs, 0, attrs.Find("X"));
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2}));
}

TEST(AcqTest, QueryWithoutAttributeFails) {
  const Graph g = testing::MakeClique(3);
  AttributeTableBuilder ab;
  ab.Add(1, "X");
  ab.Add(2, "X");
  const AttributeTable attrs = std::move(ab).Build(3);
  EXPECT_TRUE(AcqSearch(g, attrs, 0, attrs.Find("X")).empty());
}

TEST(AcqTest, IsolatedAttributeHolderFails) {
  // q has the attribute but no attributed neighbor: 0-core -> empty.
  const Graph g = testing::MakePath(3);
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(2, "X");
  const AttributeTable attrs = std::move(ab).Build(3);
  EXPECT_TRUE(AcqSearch(g, attrs, 0, attrs.Find("X")).empty());
}

TEST(AcqTest, ExplicitKRelaxesCommunity) {
  // Attribute-filtered graph: 4-clique + pendant attributed node 4.
  GraphBuilder b(5);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(3, 4);
  const Graph g = std::move(b).Build();
  AttributeTableBuilder ab;
  for (NodeId v = 0; v < 5; ++v) ab.Add(v, "X");
  const AttributeTable attrs = std::move(ab).Build(5);
  const AttributeId x = attrs.Find("X");
  // Auto k = core number of q (3): pendant excluded.
  EXPECT_EQ(AcqSearch(g, attrs, 0, x), (std::vector<NodeId>{0, 1, 2, 3}));
  // k = 1 keeps the pendant.
  EXPECT_EQ(AcqSearch(g, attrs, 0, x, 1),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(CoreNumbersTest, PropertyEveryKCoreHasMinDegreeK) {
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const size_t n = 40 + rng.UniformInt(80);
    GraphBuilder b(n);
    const size_t m = 3 * n;
    for (size_t i = 0; i < m; ++i) {
      b.AddEdge(static_cast<NodeId>(rng.UniformInt(n)),
                static_cast<NodeId>(rng.UniformInt(n)));
    }
    const Graph g = std::move(b).Build();
    const std::vector<uint32_t> core = CoreNumbers(g);
    uint32_t max_core = 0;
    for (uint32_t c : core) max_core = std::max(max_core, c);
    for (uint32_t k = 1; k <= max_core; ++k) {
      // Inside the subgraph induced by {core >= k}, every node has degree
      // >= k (the defining property of the k-core).
      for (NodeId v = 0; v < n; ++v) {
        if (core[v] < k) continue;
        uint32_t degree = 0;
        for (const AdjEntry& a : g.Neighbors(v)) degree += core[a.to] >= k;
        EXPECT_GE(degree, k) << "node " << v << " k " << k;
      }
    }
  }
}

}  // namespace
}  // namespace cod
