// Satellite stress test for the RCU-style serving stack: several reader
// threads fan QueryBatch workloads across a shared scheduler while a writer
// thread ingests edge updates and kicks off background rebuilds. Readers
// pin a Snapshot() per iteration, so every answer must be bit-consistent
// with a sequential rerun against that same pinned epoch — a torn read or
// a query straddling two epochs would break the comparison.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "serving/dynamic_service.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

using ::cod::testing::SameResult;

// CI's failpoint-fuzz job points COD_METRICS_DUMP at a file and archives it
// when a shard fails — the counter state (trips, degraded epochs, fallbacks)
// is the first thing to read when reproducing a fuzz failure.
class MetricsDumpEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("COD_METRICS_DUMP");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    out << MetricsRegistry::Instance().JsonDump() << "\n";
  }
};
const ::testing::Environment* const kMetricsDumpEnv =
    ::testing::AddGlobalTestEnvironment(new MetricsDumpEnvironment);

// CI shards override the fuzz stream via COD_FUZZ_SEED; the per-test offset
// keeps the three instantiations distinct within a shard.
uint64_t FuzzSeed(uint64_t offset) {
  const char* env = std::getenv("COD_FUZZ_SEED");
  const uint64_t base =
      (env == nullptr || *env == '\0') ? 0 : std::strtoull(env, nullptr, 10);
  return base + offset;
}

struct World {
  Graph graph;
  AttributeTable attrs;
};

// Kept deliberately small: each refresh rebuilds the hierarchy + HIMOR, and
// the test runs several epochs' worth of rebuilds under TSAN.
World MakeWorld(uint64_t seed, size_t n = 150) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

std::vector<QuerySpec> MakeSpecs(const AttributeTable& attrs, size_t count) {
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; specs.size() < count; ++q) {
    const NodeId node = q % static_cast<NodeId>(attrs.NumNodes());
    const auto own = attrs.AttributesOf(node);
    QuerySpec spec;
    spec.node = node;
    spec.k = 4;
    if (own.empty() || specs.size() % 3 == 0) {
      spec.variant = CodVariant::kCodU;
    } else if (specs.size() % 3 == 1) {
      spec.variant = CodVariant::kCodL;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    } else {
      spec.variant = CodVariant::kCodR;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ServingStressTest, BatchQueriesRaceBackgroundRebuilds) {
  World w = MakeWorld(1);
  const size_t num_nodes = w.attrs.NumNodes();
  const std::vector<QuerySpec> specs = MakeSpecs(w.attrs, 12);

  TaskScheduler rebuild_pool(1);
  ServiceOptions options;
  options.rebuild_threshold = 100.0;  // writer refreshes explicitly
  options.seed = 3;
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  TaskScheduler query_pool(4);
  constexpr int kReaders = 4;
  constexpr int kIterations = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> max_epoch_seen{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      for (int it = 0; it < kIterations; ++it) {
        const DynamicCodService::EpochSnapshot snap = service.Snapshot();
        // Publication is monotonic: a reader can never observe the epoch
        // counter going backwards.
        if (snap.epoch < last_epoch) ++failures;
        last_epoch = snap.epoch;
        uint64_t prev = max_epoch_seen.load();
        while (prev < snap.epoch &&
               !max_epoch_seen.compare_exchange_weak(prev, snap.epoch)) {
        }

        const uint64_t batch_seed = r * 100 + it;
        const std::vector<CodResult> batch =
            RunQueryBatch(*snap.core, specs, query_pool, batch_seed);
        if (batch.size() != specs.size()) {
          ++failures;
          continue;
        }
        // Sequential rerun against the SAME pinned epoch. Any divergence
        // means a query read state from a different (or half-published)
        // epoch.
        QueryWorkspace ws(*snap.core, 0);
        for (size_t i = 0; i < specs.size(); ++i) {
          ws.ReseedRng(BatchQuerySeed(batch_seed, i));
          if (!SameResult(batch[i], RunQuerySpec(*snap.core, specs[i], ws))) {
            ++failures;
          }
        }
      }
    });
  }

  std::thread writer([&] {
    Rng rng(42);
    int refreshes = 0;
    while (!stop.load()) {
      const NodeId u = static_cast<NodeId>(rng.Next() % num_nodes);
      const NodeId v = static_cast<NodeId>(rng.Next() % num_nodes);
      if (u != v) {
        if (rng.Next() % 2 == 0) {
          service.AddEdge(u, v);
        } else {
          service.RemoveEdge(u, v);
        }
      }
      if (rng.Next() % 4 == 0) {
        if (service.RefreshAsync()) ++refreshes;
      }
      std::this_thread::yield();
    }
    // Guarantee at least one successful background rebuild happened.
    while (refreshes == 0) {
      service.AddEdge(0, static_cast<NodeId>(num_nodes - 1));
      if (service.RefreshAsync()) ++refreshes;
    }
  });

  for (std::thread& t : readers) t.join();
  stop.store(true);
  writer.join();
  service.WaitForRebuild();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(service.epoch(), 1u);  // background rebuilds actually published
  EXPECT_GE(max_epoch_seen.load(), 1u);
}

// Metric scrapes race the serving stack: while readers run batches and the
// writer publishes epochs, a scraper thread pulls ExpositionText/JsonDump in
// a loop. Exercises (under TSAN) the sharded-cell merge against concurrent
// relaxed bumps, and the scrape-time callback gauges reading service state
// (registry lock -> service mutex ordering).
TEST(ServingStressTest, ConcurrentScrapesRaceServingAndRebuilds) {
  World w = MakeWorld(3);
  const size_t num_nodes = w.attrs.NumNodes();
  const std::vector<QuerySpec> specs = MakeSpecs(w.attrs, 10);

  TaskScheduler rebuild_pool(1);
  ServiceOptions options;
  options.rebuild_threshold = 100.0;
  options.seed = 7;
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  TaskScheduler query_pool(3);
  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};

  std::thread scraper([&] {
    while (!stop.load()) {
      const std::string text = MetricsRegistry::Instance().ExpositionText();
      // The service's callback gauges must be present in every scrape.
      if (text.find("cod_service_epoch ") == std::string::npos) {
        ++scrape_failures;
      }
      if (MetricsRegistry::Instance().JsonDump().find(
              "\"cod_service_pending_updates\"") == std::string::npos) {
        ++scrape_failures;
      }
      std::this_thread::yield();
    }
  });

  std::thread writer([&] {
    Rng rng(11);
    int refreshes = 0;
    for (int i = 0; i < 200 || refreshes == 0; ++i) {
      const NodeId u = static_cast<NodeId>(rng.Next() % num_nodes);
      const NodeId v = static_cast<NodeId>(rng.Next() % num_nodes);
      if (u != v) service.AddEdge(u, v);
      if (rng.Next() % 8 == 0 && service.RefreshAsync()) ++refreshes;
      std::this_thread::yield();
    }
  });

  for (int it = 0; it < 6; ++it) {
    const DynamicCodService::EpochSnapshot snap = service.Snapshot();
    const std::vector<CodResult> batch =
        RunQueryBatch(*snap.core, specs, query_pool, /*batch_seed=*/it);
    EXPECT_EQ(batch.size(), specs.size());
  }

  writer.join();
  stop.store(true);
  scraper.join();
  service.WaitForRebuild();
  EXPECT_EQ(scrape_failures.load(), 0);
}

// A snapshot taken before a rebuild keeps answering from its own epoch even
// while newer epochs are published and the old one is retired from
// published_.
TEST(ServingStressTest, PinnedSnapshotStableAcrossRebuilds) {
  World w = MakeWorld(2);
  const std::vector<QuerySpec> specs = MakeSpecs(w.attrs, 8);

  ServiceOptions options;
  options.rebuild_threshold = 100.0;
  options.seed = 5;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  TaskScheduler pool(2);
  const DynamicCodService::EpochSnapshot pinned = service.Snapshot();
  const std::vector<CodResult> before =
      RunQueryBatch(*pinned.core, specs, pool, 17);

  for (int i = 0; i < 3; ++i) {
    service.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(100 + i));
    service.Refresh();
  }
  ASSERT_EQ(service.epoch(), pinned.epoch + 3);

  const std::vector<CodResult> after =
      RunQueryBatch(*pinned.core, specs, pool, 17);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(SameResult(before[i], after[i])) << "spec " << i;
  }
}

// Tentpole: chaos-monkey the WHOLE serving stack. Fuzz mode trips every
// failpoint site (rebuild, himor/build, codr_cache, query_batch/worker,
// rr/sample) with a small independent probability while readers batch-query
// snapshots and a writer ingests edges and triggers rebuilds. The draws'
// assignment to sites depends on interleaving, so we assert invariants
// only: the failure taxonomy, monotonic epoch publication, no crash/hang —
// and full recovery once the fuzz scope ends.
class RandomFailpointStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFailpointStressTest, ServingSurvivesRandomFaults) {
  World w = MakeWorld(4);
  const size_t num_nodes = w.attrs.NumNodes();
  const std::vector<QuerySpec> specs = MakeSpecs(w.attrs, 10);

  TaskScheduler rebuild_pool(1);
  ServiceOptions options;
  options.rebuild_threshold = 100.0;
  options.seed = 9;
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  // Fast, bounded retries so fuzz-failed rebuilds resolve within the test.
  options.max_rebuild_retries = 2;
  options.rebuild_backoff_initial_ms = 5;
  options.rebuild_backoff_max_ms = 20;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  TaskScheduler query_pool(3);
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  {
    // Arm AFTER construction: a service that failed to build is not a
    // serving-invariant violation, just a shorter test.
    ScopedRandomFailpoints fuzz(FuzzSeed(GetParam()), /*trip_probability=*/
                                0.02);

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
      readers.emplace_back([&, r] {
        uint64_t last_epoch = 0;
        for (int it = 0; it < 5; ++it) {
          const DynamicCodService::EpochSnapshot snap = service.Snapshot();
          if (snap.epoch < last_epoch) ++violations;
          last_epoch = snap.epoch;
          const std::vector<CodResult> batch = RunQueryBatch(
              *snap.core, specs, query_pool, /*batch_seed=*/r * 100 + it);
          if (batch.size() != specs.size()) {
            ++violations;
            continue;
          }
          for (const CodResult& res : batch) {
            // The complete failure taxonomy — nothing else may come back.
            if (res.code != StatusCode::kOk &&
                res.code != StatusCode::kTimeout &&
                res.code != StatusCode::kCancelled) {
              ++violations;
            }
            if (res.found) {
              if (res.code != StatusCode::kOk || res.members.empty()) {
                ++violations;
              }
              for (const NodeId v : res.members) {
                if (v >= snap.core->graph().NumNodes()) ++violations;
              }
            }
          }
        }
      });
    }

    std::thread writer([&] {
      Rng rng(13);
      while (!stop.load()) {
        const NodeId u = static_cast<NodeId>(rng.Next() % num_nodes);
        const NodeId v = static_cast<NodeId>(rng.Next() % num_nodes);
        if (u != v) service.AddEdge(u, v);
        if (rng.Next() % 6 == 0) service.RefreshAsync();
        std::this_thread::yield();
      }
    });

    for (std::thread& t : readers) t.join();
    stop.store(true);
    writer.join();
    service.WaitForRebuild();
  }  // fuzz disarmed

  EXPECT_EQ(violations.load(), 0);
  // Recovery: with the chaos gone, a refresh publishes a HEALTHY epoch and
  // ordinary queries answer undegraded.
  service.AddEdge(0, static_cast<NodeId>(num_nodes - 1));
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_FALSE(service.epoch_degraded());
  const DynamicCodService::EpochSnapshot snap = service.Snapshot();
  EXPECT_TRUE(snap.core->index_present());
  const std::vector<CodResult> healthy =
      RunQueryBatch(*snap.core, specs, query_pool, /*batch_seed=*/999);
  for (const CodResult& res : healthy) {
    EXPECT_EQ(res.code, StatusCode::kOk);
    EXPECT_FALSE(res.degraded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFailpointStressTest,
                         ::testing::Values(201, 202, 203));

}  // namespace
}  // namespace cod
