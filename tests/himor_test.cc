#include "core/himor.h"

#include "core/compressed_eval.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "influence/influence_oracle.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// With p = 1, sigma_C(v) is exactly the size of v's connected component in
// C's induced subgraph, so every HIMOR rank is deterministic.
uint32_t DeterministicRank(const Graph& g, const Dendrogram& d, CommunityId c,
                           NodeId q) {
  const auto span = d.Members(c);
  std::vector<char> allowed(g.NumNodes(), 0);
  for (NodeId v : span) allowed[v] = 1;
  std::vector<uint32_t> comp_size(g.NumNodes(), 0);
  std::vector<char> visited(g.NumNodes(), 0);
  for (NodeId start : span) {
    if (visited[start]) continue;
    std::vector<NodeId> comp{start};
    visited[start] = 1;
    for (size_t head = 0; head < comp.size(); ++head) {
      for (const AdjEntry& a : g.Neighbors(comp[head])) {
        if (allowed[a.to] && !visited[a.to]) {
          visited[a.to] = 1;
          comp.push_back(a.to);
        }
      }
    }
    for (NodeId v : comp) comp_size[v] = static_cast<uint32_t>(comp.size());
  }
  uint32_t rank = 0;
  for (NodeId v : span) {
    if (comp_size[v] > comp_size[q]) ++rank;
  }
  return rank;
}

TEST(HimorTest, EntriesCoverEveryAncestor) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  const LcaIndex lca(ex.dendrogram);
  Rng rng(1);
  const HimorIndex index =
      HimorIndex::Build(m, ex.dendrogram, lca, /*theta=*/5, rng,
                        std::numeric_limits<uint32_t>::max());
  for (NodeId v = 0; v < 10; ++v) {
    const auto entries = index.RanksOf(v);
    const auto path = ex.dendrogram.PathToRoot(v);
    ASSERT_EQ(entries.size(), path.size());
    for (size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(entries[i].community, path[i]);  // deepest first
    }
  }
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(HimorTest, DeterministicWorldRanksExact) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  const LcaIndex lca(ex.dendrogram);
  Rng rng(2);
  const HimorIndex index =
      HimorIndex::Build(m, ex.dendrogram, lca, /*theta=*/2, rng,
                        std::numeric_limits<uint32_t>::max());
  for (NodeId v = 0; v < 10; ++v) {
    for (const auto& entry : index.RanksOf(v)) {
      EXPECT_EQ(entry.rank,
                DeterministicRank(ex.graph, ex.dendrogram, entry.community, v))
          << "node " << v << " community " << entry.community;
    }
  }
}

class HimorRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HimorRandomTest, DeterministicWorldRanksOnRandomGraphs) {
  Rng rng(GetParam());
  const size_t n = 30 + rng.UniformInt(70);
  // Deliberately NOT EnsureConnected: disconnected communities exercise the
  // component-size rank logic.
  const Graph g = ErdosRenyi(n, 2 * n, rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  const HimorIndex index = HimorIndex::Build(
      m, d, lca, 1, rng, std::numeric_limits<uint32_t>::max());
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    for (const auto& entry : index.RanksOf(v)) {
      ASSERT_EQ(entry.rank, DeterministicRank(g, d, entry.community, v))
          << "n=" << n << " node " << v << " community " << entry.community;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HimorRandomTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(HimorTest, StatisticalRanksMatchOracle) {
  // Star-of-cliques with clear influence gaps: HIMOR's ranks at the deepest
  // and root communities must match a high-sample oracle.
  GraphBuilder b(10);
  for (NodeId v = 1; v <= 4; ++v) b.AddEdge(0, v);  // star around 0
  for (NodeId u = 5; u <= 9; ++u) {
    for (NodeId v = u + 1; v <= 9; ++v) b.AddEdge(u, v);  // clique
  }
  b.AddEdge(4, 5);
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(3);
  const HimorIndex index = HimorIndex::Build(m, d, lca, /*theta=*/600, rng);

  InfluenceOracle oracle(m);
  // Check the hub's rank in its deepest community.
  const auto entries = index.RanksOf(0);
  ASSERT_FALSE(entries.empty());
  const CommunityId deepest = entries[0].community;
  const auto members = d.Members(deepest);
  const std::vector<uint32_t> counts =
      oracle.CountsWithin(members, 800, rng);
  const uint32_t oracle_rank = InfluenceOracle::RankOf(members, counts, 0);
  EXPECT_EQ(entries[0].rank, oracle_rank);
}

TEST(HimorTest, FindTopKAncestorWalksTopDown) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  const LcaIndex lca(ex.dendrogram);
  Rng rng(4);
  const HimorIndex index = HimorIndex::Build(m, ex.dendrogram, lca, 2, rng);
  // p=1 on a connected graph: everyone ties at rank 0 in every community,
  // so the largest ancestor (the root) wins for any k.
  const auto* hit = index.FindTopKAncestor(0, ex.c0, 1, ex.dendrogram);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->community, ex.c6);
  EXPECT_EQ(hit->rank, 0u);
  // With c_ell = c4 the scan stops at c4 but the root still qualifies first.
  const auto* hit2 = index.FindTopKAncestor(0, ex.c4, 1, ex.dendrogram);
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->community, ex.c6);
}

TEST(HimorTest, SparseIndexAnswersLikeFullIndex) {
  // The max_rank pruning ("selected communities") must never change an
  // Algorithm-3 answer for k <= max_rank. Deterministic world makes the two
  // builds produce identical counts.
  Rng gen_rng(6);
  const Graph g = ErdosRenyi(80, 200, gen_rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  Rng rng1(7);
  Rng rng2(7);
  const uint32_t max_rank = 6;
  const HimorIndex sparse = HimorIndex::Build(m, d, lca, 1, rng1, max_rank);
  const HimorIndex full = HimorIndex::Build(
      m, d, lca, 1, rng2, std::numeric_limits<uint32_t>::max());
  EXPECT_LE(sparse.NumEntries(), full.NumEntries());
  for (NodeId q = 0; q < 80; ++q) {
    const auto path = d.PathToRoot(q);
    for (CommunityId c_ell : path) {
      for (uint32_t k = 1; k <= max_rank; ++k) {
        const auto* a = sparse.FindTopKAncestor(q, c_ell, k, d);
        const auto* b = full.FindTopKAncestor(q, c_ell, k, d);
        ASSERT_EQ(a == nullptr, b == nullptr)
            << "q=" << q << " c_ell=" << c_ell << " k=" << k;
        if (a != nullptr) {
          EXPECT_EQ(a->community, b->community);
          EXPECT_EQ(a->rank, b->rank);
        }
      }
    }
  }
}

TEST(HimorTest, IndexedAnswerMatchesCompressedChainInDeterministicWorld) {
  // Cross-pipeline exactness: with p = 1 the HIMOR walk (tree buckets,
  // bottom-up merge, top-down scan) and the compressed chain evaluation
  // (linear buckets, incremental top-k) must pick the same best level for
  // the base chain of every node.
  Rng gen_rng(9);
  const Graph g = ErdosRenyi(70, 180, gen_rng);  // disconnected on purpose
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  Rng rng(10);
  const HimorIndex index = HimorIndex::Build(m, d, lca, 1, rng, 8);
  CompressedEvaluator evaluator(m, 1);
  for (NodeId q = 0; q < 70; ++q) {
    for (uint32_t k = 1; k <= 8; k += 3) {
      const HimorIndex::Entry* hit =
          index.FindTopKAncestor(q, d.Parent(d.LeafOf(q)), k, d);
      const CodChain chain = BuildChainFromDendrogram(d, q);
      const ChainEvalOutcome outcome = evaluator.Evaluate(chain, q, k, rng);
      if (hit == nullptr) {
        EXPECT_EQ(outcome.best_level, -1) << "q=" << q << " k=" << k;
      } else {
        ASSERT_GE(outcome.best_level, 0) << "q=" << q << " k=" << k;
        EXPECT_EQ(d.LeafCount(hit->community),
                  chain.community_size[outcome.best_level])
            << "q=" << q << " k=" << k;
      }
    }
  }
}

TEST(HimorTest, FindTopKAncestorReturnsNullWhenNoneQualify) {
  // Make node 9 a peripheral leaf of a hub graph; with k=1 it should not be
  // top-1 anywhere above its deepest communities under p=1 (component sizes
  // tie, so rank 0...). Use a handcrafted index check instead: ask for an
  // ancestor of a *different* branch.
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  const LcaIndex lca(ex.dendrogram);
  Rng rng(5);
  const HimorIndex index = HimorIndex::Build(m, ex.dendrogram, lca, 2, rng);
  // c_ell = C5 = {8,9} is not on node 0's chain: the top-down scan stops
  // immediately after the shared prefix; with k = 0 nothing can qualify.
  const auto* hit = index.FindTopKAncestor(0, ex.c0, 0, ex.dendrogram);
  EXPECT_EQ(hit, nullptr);
}

}  // namespace
}  // namespace cod
