#include "hierarchy/quality.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(DasguptaCostTest, HandComputedOnPath) {
  // Path 0-1-2. Tree A: merge (0,1) first -> lca(0,1) has 2 leaves,
  // lca(1,2) has 3: cost = 2 + 3 = 5. Tree B: merge (1,2) first: also 5 by
  // symmetry. Tree C: merge (0,2) first (the non-edge!): both edges pay 3:
  // cost = 6.
  const Graph g = testing::MakePath(3);
  {
    DendrogramBuilder b(3);
    const CommunityId m = b.Merge(0, 1);
    b.Merge(m, 2);
    const Dendrogram d = std::move(b).Build();
    const LcaIndex lca(d);
    EXPECT_DOUBLE_EQ(DasguptaCost(g, d, lca), 5.0);
  }
  {
    DendrogramBuilder b(3);
    const CommunityId m = b.Merge(0, 2);
    b.Merge(m, 1);
    const Dendrogram d = std::move(b).Build();
    const LcaIndex lca(d);
    EXPECT_DOUBLE_EQ(DasguptaCost(g, d, lca), 6.0);
  }
}

TEST(DasguptaCostTest, GoodSplitBeatsBadSplit) {
  // Two cliques + bridge: separating the cliques at the top is cheaper than
  // a tree that mixes them.
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const Dendrogram good = AgglomerativeCluster(g);
  // Bad tree: caterpillar interleaving the cliques.
  DendrogramBuilder b(8);
  CommunityId acc = b.Merge(0, 4);
  for (NodeId v : {1, 5, 2, 6, 3, 7}) acc = b.Merge(acc, v);
  const Dendrogram bad = std::move(b).Build();
  const LcaIndex lca_good(good);
  const LcaIndex lca_bad(bad);
  EXPECT_LT(DasguptaCost(g, good, lca_good), DasguptaCost(g, bad, lca_bad));
}

TEST(DasguptaCostTest, WeightsMatter) {
  // Heavy edge cut at the root dominates the cost.
  GraphBuilder gb(3);
  gb.AddEdge(0, 1, 10.0);
  gb.AddEdge(1, 2, 1.0);
  const Graph g = std::move(gb).Build();
  DendrogramBuilder b(3);
  const CommunityId m = b.Merge(1, 2);  // cuts the heavy edge at the root
  b.Merge(m, 0);
  const Dendrogram d = std::move(b).Build();
  const LcaIndex lca(d);
  EXPECT_DOUBLE_EQ(DasguptaCost(g, d, lca), 10.0 * 3 + 1.0 * 2);
}

TEST(CutToClustersTest, SplitsTwoCliques) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::vector<uint32_t> labels = CutToClusters(d, 2);
  // The two cliques get distinct labels.
  for (NodeId v = 1; v < 4; ++v) EXPECT_EQ(labels[v], labels[0]);
  for (NodeId v = 5; v < 8; ++v) EXPECT_EQ(labels[v], labels[4]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(CutToClustersTest, TargetOneIsSingleCluster) {
  const Graph g = testing::MakeClique(5);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::vector<uint32_t> labels = CutToClusters(d, 1);
  for (uint32_t label : labels) EXPECT_EQ(label, 0u);
}

TEST(CutToClustersTest, LargeTargetGivesSingletons) {
  const Graph g = testing::MakeClique(5);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::vector<uint32_t> labels = CutToClusters(d, 100);
  std::vector<uint32_t> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());  // all distinct
}

TEST(ModularityTest, TwoCliquesPartitionIsPositive) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  std::vector<uint32_t> split(8, 0);
  for (NodeId v = 4; v < 8; ++v) split[v] = 1;
  std::vector<uint32_t> together(8, 0);
  EXPECT_GT(Modularity(g, split), 0.3);
  EXPECT_DOUBLE_EQ(Modularity(g, together), 0.0);
  EXPECT_GT(Modularity(g, split), Modularity(g, together));
}

TEST(ModularityTest, HandComputedTwoTriangles) {
  // Two disjoint triangles, correct split: Q = 2 * (3/6 - (6/12)^2) = 0.5.
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(Modularity(g, labels), 0.5);
}

TEST(QualityIntegrationTest, AverageLinkageBeatsRandomTreeOnPlanted) {
  Rng rng(1);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.levels = 2;
  params.fanout = 4;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  const Dendrogram good = AgglomerativeCluster(gen.graph);
  // Random caterpillar as the straw man.
  DendrogramBuilder b(200);
  CommunityId acc = b.Merge(0, 1);
  for (NodeId v = 2; v < 200; ++v) acc = b.Merge(acc, v);
  const Dendrogram bad = std::move(b).Build();
  const LcaIndex lg(good);
  const LcaIndex lb(bad);
  EXPECT_LT(DasguptaCost(gen.graph, good, lg),
            DasguptaCost(gen.graph, bad, lb));
  // Cutting the good hierarchy at the planted block count recovers a
  // higher-modularity partition than a size-16 cut of the caterpillar.
  EXPECT_GT(Modularity(gen.graph, CutToClusters(good, gen.num_blocks)),
            Modularity(gen.graph, CutToClusters(bad, gen.num_blocks)));
}

}  // namespace
}  // namespace cod
