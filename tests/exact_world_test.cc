// Exact possible-world semantics tests.
//
// For tiny graphs the IC model is exactly computable: every directed edge
// orientation is independently live, so enumerating all 2^(2|E|) worlds and
// averaging reachable-set sizes gives sigma_C(v) to machine precision. This
// validates, against ground truth rather than against another estimator:
//   * the forward Monte-Carlo simulator,
//   * RR-set counting (Theorem 1),
//   * induced-community estimation through shared RR graphs (Theorem 2),
//   * the compressed evaluator's per-level ranks, and
//   * HIMOR's stored ranks.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/compressed_eval.h"
#include "core/himor.h"
#include "hierarchy/lca.h"
#include "influence/influence_oracle.h"
#include "influence/monte_carlo.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Exact expected influence of every node within the community `allowed`
// (nullptr = whole graph), by enumerating all live-edge worlds.
std::vector<double> ExactInfluence(const Graph& g, const DiffusionModel& m,
                                   const std::vector<char>* allowed) {
  const size_t num_directed = 2 * g.NumEdges();
  COD_CHECK(num_directed <= 22);  // 4M worlds tops
  const size_t num_worlds = size_t{1} << num_directed;

  // Directed edge i: orientation toward Endpoints(e).second for even i,
  // toward .first for odd i (matching edge id e = i / 2).
  auto prob_of = [&](size_t i) {
    const EdgeId e = static_cast<EdgeId>(i / 2);
    const auto [lo, hi] = g.Endpoints(e);
    return m.ProbToward(e, i % 2 == 0 ? hi : lo);
  };

  std::vector<double> sigma(g.NumNodes(), 0.0);
  std::vector<char> reached(g.NumNodes());
  std::vector<NodeId> stack;
  for (size_t world = 0; world < num_worlds; ++world) {
    double probability = 1.0;
    for (size_t i = 0; i < num_directed; ++i) {
      const double p = prob_of(i);
      probability *= (world >> i & 1) ? p : (1.0 - p);
    }
    if (probability == 0.0) continue;
    // Reachability from each seed within `allowed` along live edges.
    for (NodeId seed = 0; seed < g.NumNodes(); ++seed) {
      if (allowed != nullptr && !(*allowed)[seed]) continue;
      std::fill(reached.begin(), reached.end(), 0);
      stack.assign(1, seed);
      reached[seed] = 1;
      size_t count = 1;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const AdjEntry& a : g.Neighbors(u)) {
          if (reached[a.to]) continue;
          if (allowed != nullptr && !(*allowed)[a.to]) continue;
          // Live orientation u -> a.to?
          const auto [lo, hi] = g.Endpoints(a.edge);
          const size_t bit = 2 * a.edge + (a.to == hi ? 0 : 1);
          if (!(world >> bit & 1)) continue;
          reached[a.to] = 1;
          stack.push_back(a.to);
          ++count;
        }
      }
      sigma[seed] += probability * static_cast<double>(count);
    }
  }
  return sigma;
}

// Small asymmetric test graph: distinct degrees give well-separated sigmas.
Graph TestGraph() {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  return std::move(b).Build();
}

TEST(ExactWorldTest, MonteCarloMatchesEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.4);
  const std::vector<double> exact = ExactInfluence(g, m, nullptr);
  MonteCarloSimulator simulator(m);
  Rng rng(1);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(simulator.EstimateInfluence(v, 200000, rng), exact[v], 0.02)
        << "node " << v;
  }
}

TEST(ExactWorldTest, WeightedCascadeMonteCarloMatchesEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const std::vector<double> exact = ExactInfluence(g, m, nullptr);
  MonteCarloSimulator simulator(m);
  Rng rng(2);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(simulator.EstimateInfluence(v, 200000, rng), exact[v], 0.02);
  }
}

TEST(ExactWorldTest, RrCountingMatchesEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const std::vector<double> exact = ExactInfluence(g, m, nullptr);
  InfluenceOracle oracle(m);
  Rng rng(3);
  std::vector<NodeId> everyone = {0, 1, 2, 3, 4, 5};
  const uint32_t theta = 60000;
  const std::vector<uint32_t> counts =
      oracle.CountsWithin(everyone, theta, rng);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / theta, exact[v], 0.03)
        << "node " << v;
  }
}

TEST(ExactWorldTest, RestrictedRrMatchesCommunityEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  std::vector<char> community(6, 0);
  for (NodeId v : {0, 1, 2, 3}) community[v] = 1;
  const std::vector<double> exact = ExactInfluence(g, m, &community);
  InfluenceOracle oracle(m);
  Rng rng(4);
  const std::vector<NodeId> members = {0, 1, 2, 3};
  const uint32_t theta = 60000;
  const std::vector<uint32_t> counts = oracle.CountsWithin(members, theta, rng);
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / theta, exact[members[i]],
                0.03)
        << "node " << members[i];
  }
}

// Exact rank (strictly greater count) with a tie guard: returns the exact
// rank only if no other node's sigma is within `margin` of q's.
int GuardedExactRank(const std::vector<double>& sigma,
                     std::span<const NodeId> members, NodeId q,
                     double margin) {
  uint32_t rank = 0;
  for (NodeId v : members) {
    if (v == q) continue;
    if (std::abs(sigma[v] - sigma[q]) < margin) return -1;  // too close
    if (sigma[v] > sigma[q]) ++rank;
  }
  return static_cast<int>(rank);
}

TEST(ExactWorldTest, CompressedEvaluatorRanksMatchEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  // Hand-built chain over the dendrogram {0,1,2} < {0,1,2,3} < all.
  DendrogramBuilder db(6);
  const CommunityId c01 = db.Merge(0, 1);
  const CommunityId c012 = db.Merge(c01, 2);
  const CommunityId c0123 = db.Merge(c012, 3);
  const CommunityId c45 = db.Merge(4, 5);
  db.Merge(c0123, c45);
  const Dendrogram d = std::move(db).Build();

  CompressedEvaluator evaluator(m, /*theta=*/4000);
  Rng rng(5);
  const uint32_t k = 2;
  for (NodeId q : {0u, 1u, 3u}) {
    const CodChain chain = BuildChainFromDendrogram(d, q);
    const ChainEvalOutcome outcome = evaluator.Evaluate(chain, q, k, rng);
    for (uint32_t h = 0; h < chain.NumLevels(); ++h) {
      const std::vector<NodeId> members = chain.MembersOfLevel(h);
      std::vector<char> allowed(6, 0);
      for (NodeId v : members) allowed[v] = 1;
      const std::vector<double> exact = ExactInfluence(g, m, &allowed);
      const int exact_rank = GuardedExactRank(exact, members, q, 0.08);
      if (exact_rank < 0) continue;  // near-tie: estimator may flip
      EXPECT_EQ(outcome.rank_per_level[h],
                std::min<uint32_t>(static_cast<uint32_t>(exact_rank), k))
          << "q=" << q << " level=" << h;
    }
  }
}

TEST(ExactWorldTest, HimorRanksMatchEnumeration) {
  const Graph g = TestGraph();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  DendrogramBuilder db(6);
  const CommunityId c01 = db.Merge(0, 1);
  const CommunityId c012 = db.Merge(c01, 2);
  const CommunityId c0123 = db.Merge(c012, 3);
  const CommunityId c45 = db.Merge(4, 5);
  db.Merge(c0123, c45);
  const Dendrogram d = std::move(db).Build();
  const LcaIndex lca(d);
  Rng rng(6);
  const HimorIndex index = HimorIndex::Build(m, d, lca, /*theta=*/4000, rng);

  for (NodeId q = 0; q < 6; ++q) {
    for (const auto& entry : index.RanksOf(q)) {
      const auto span = d.Members(entry.community);
      std::vector<char> allowed(6, 0);
      for (NodeId v : span) allowed[v] = 1;
      const std::vector<double> exact = ExactInfluence(g, m, &allowed);
      const int exact_rank = GuardedExactRank(exact, span, q, 0.08);
      if (exact_rank < 0) continue;
      EXPECT_EQ(entry.rank, static_cast<uint32_t>(exact_rank))
          << "q=" << q << " community=" << entry.community;
    }
  }
}

}  // namespace
}  // namespace cod
