#include "core/adaptive_eval.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(AdaptiveEvalTest, DeterministicWorldStopsEarly) {
  // p = 1: every round reports the identical best level, so the evaluator
  // stops after exactly stable_rounds + 1 rounds.
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  AdaptiveOptions options;
  options.initial_theta = 2;
  options.max_theta = 64;
  options.stable_rounds = 2;
  AdaptiveEvaluator evaluator(m, options);
  Rng rng(1);
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  const AdaptiveOutcome result = evaluator.Evaluate(chain, 0, 1, rng);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_EQ(result.final_theta, 8u);
  EXPECT_EQ(result.outcome.best_level,
            static_cast<int>(chain.NumLevels()) - 1);
}

TEST(AdaptiveEvalTest, RespectsBudget) {
  Rng gen_rng(2);
  const Graph g = EnsureConnected(ErdosRenyi(80, 240, gen_rng), gen_rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  AdaptiveOptions options;
  options.initial_theta = 1;
  options.max_theta = 4;
  options.stable_rounds = 50;  // unreachable: budget must stop it
  AdaptiveEvaluator evaluator(m, options);
  Rng rng(3);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  const AdaptiveOutcome result = evaluator.Evaluate(chain, 0, 5, rng);
  EXPECT_LE(result.final_theta, 4u);
  EXPECT_EQ(result.rounds, 3);  // theta = 1, 2, 4
}

TEST(AdaptiveEvalTest, AgreesWithFixedThetaInSeparatedInstances) {
  // Star hub: the decision is unambiguous, so adaptive and a large fixed
  // theta must land on the same community.
  GraphBuilder b(12);
  for (NodeId v = 1; v < 8; ++v) b.AddEdge(0, v);
  for (NodeId u = 8; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(7, 8);
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const CodChain chain = BuildChainFromDendrogram(d, 0);

  AdaptiveOptions options;
  options.initial_theta = 20;
  options.max_theta = 640;
  AdaptiveEvaluator adaptive(m, options);
  CompressedEvaluator fixed(m, 2000);
  Rng rng1(4);
  Rng rng2(5);
  const AdaptiveOutcome a = adaptive.Evaluate(chain, 0, 1, rng1);
  const ChainEvalOutcome f = fixed.Evaluate(chain, 0, 1, rng2);
  EXPECT_EQ(a.outcome.best_level, f.best_level);
}

TEST(AdaptiveEvalTest, FinalThetaGrowsWithAmbiguity) {
  // Clique: everyone ties, rank estimates flap near the boundary; adaptive
  // should spend more rounds than in the deterministic world.
  const Graph g = testing::MakeClique(12);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  AdaptiveOptions options;
  options.initial_theta = 2;
  options.max_theta = 256;
  options.stable_rounds = 3;
  AdaptiveEvaluator evaluator(m, options);
  Rng rng(6);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  const AdaptiveOutcome result = evaluator.Evaluate(chain, 0, 1, rng);
  EXPECT_GE(result.rounds, 4);  // at least stable_rounds + 1
}

}  // namespace
}  // namespace cod
