#include "eval/query_gen.h"

#include <set>

#include <gtest/gtest.h>

namespace cod {
namespace {

AttributeTable MakeAttrs() {
  AttributeTableBuilder b;
  b.Add(0, "A");
  b.Add(1, "A");
  b.Add(1, "B");
  b.Add(3, "C");
  b.Add(4, "A");
  b.Add(5, "B");
  return std::move(b).Build(8);  // nodes 2, 6, 7 have no attributes
}

TEST(QueryGenTest, QueriesUseOwnAttributes) {
  const AttributeTable attrs = MakeAttrs();
  Rng rng(1);
  const std::vector<Query> queries = GenerateQueries(attrs, 50, rng);
  ASSERT_EQ(queries.size(), 50u);
  for (const Query& q : queries) {
    EXPECT_TRUE(attrs.Has(q.node, q.attribute))
        << "node " << q.node << " attr " << q.attribute;
  }
}

TEST(QueryGenTest, SkipsAttributelessNodes) {
  const AttributeTable attrs = MakeAttrs();
  Rng rng(2);
  for (const Query& q : GenerateQueries(attrs, 100, rng)) {
    EXPECT_NE(q.node, 2u);
    EXPECT_NE(q.node, 6u);
    EXPECT_NE(q.node, 7u);
  }
}

TEST(QueryGenTest, WithoutReplacementWhenEnoughCandidates) {
  const AttributeTable attrs = MakeAttrs();  // 5 candidates
  Rng rng(3);
  const std::vector<Query> queries = GenerateQueries(attrs, 5, rng);
  std::set<NodeId> nodes;
  for (const Query& q : queries) nodes.insert(q.node);
  EXPECT_EQ(nodes.size(), 5u);
}

TEST(QueryGenTest, Deterministic) {
  const AttributeTable attrs = MakeAttrs();
  Rng rng1(4);
  Rng rng2(4);
  const auto a = GenerateQueries(attrs, 20, rng1);
  const auto b = GenerateQueries(attrs, 20, rng2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].attribute, b[i].attribute);
  }
}

}  // namespace
}  // namespace cod
