#include "graph/attributes.h"

#include <gtest/gtest.h>

namespace cod {
namespace {

TEST(AttributeTableTest, InternIsStable) {
  AttributeTableBuilder b;
  const AttributeId db = b.Intern("DB");
  const AttributeId ir = b.Intern("IR");
  EXPECT_NE(db, ir);
  EXPECT_EQ(b.Intern("DB"), db);
}

TEST(AttributeTableTest, BuildAndLookup) {
  AttributeTableBuilder b;
  b.Add(0, "DB");
  b.Add(0, "IR");
  b.Add(2, "DB");
  const AttributeTable t = std::move(b).Build(4);
  EXPECT_EQ(t.NumNodes(), 4u);
  EXPECT_EQ(t.NumAttributes(), 2u);
  const AttributeId db = t.Find("DB");
  const AttributeId ir = t.Find("IR");
  ASSERT_NE(db, kInvalidAttribute);
  ASSERT_NE(ir, kInvalidAttribute);
  EXPECT_TRUE(t.Has(0, db));
  EXPECT_TRUE(t.Has(0, ir));
  EXPECT_FALSE(t.Has(1, db));
  EXPECT_TRUE(t.Has(2, db));
  EXPECT_FALSE(t.Has(2, ir));
  EXPECT_TRUE(t.AttributesOf(3).empty());
}

TEST(AttributeTableTest, FindUnknownReturnsInvalid) {
  AttributeTableBuilder b;
  b.Add(0, "X");
  const AttributeTable t = std::move(b).Build(1);
  EXPECT_EQ(t.Find("missing"), kInvalidAttribute);
}

TEST(AttributeTableTest, DuplicatePairsCollapse) {
  AttributeTableBuilder b;
  b.Add(1, "A");
  b.Add(1, "A");
  b.Add(1, "A");
  const AttributeTable t = std::move(b).Build(2);
  EXPECT_EQ(t.AttributesOf(1).size(), 1u);
}

TEST(AttributeTableTest, AttributesOfIsSorted) {
  AttributeTableBuilder b;
  // Intern in one order, attach in another.
  b.Intern("z");
  b.Intern("a");
  b.Add(0, "a");
  b.Add(0, "z");
  const AttributeTable t = std::move(b).Build(1);
  const auto attrs = t.AttributesOf(0);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_LT(attrs[0], attrs[1]);
}

TEST(AttributeTableTest, NamesRoundTrip) {
  AttributeTableBuilder b;
  const AttributeId x = b.Intern("hello");
  const AttributeTable t = std::move(b).Build(0);
  EXPECT_EQ(t.Name(x), "hello");
}

}  // namespace
}  // namespace cod
