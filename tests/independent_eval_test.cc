#include "core/independent_eval.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(IndependentEvalTest, DeterministicWorldRanks) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  IndependentEvaluator eval(m, /*theta=*/1);
  Rng rng(1);
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  const ChainEvalOutcome outcome = eval.Evaluate(chain, 0, 3, rng);
  // The paper-example graph is connected at every level of v0's chain, so
  // with p=1 every member ties: rank 0 everywhere.
  for (uint32_t r : outcome.rank_per_level) EXPECT_EQ(r, 0u);
  EXPECT_EQ(outcome.best_level, static_cast<int>(chain.NumLevels()) - 1);
  EXPECT_FALSE(eval.last_timed_out());
}

TEST(IndependentEvalTest, AgreesWithCompressedInDeterministicWorld) {
  Rng gen_rng(2);
  const Graph g = EnsureConnected(ErdosRenyi(60, 150, gen_rng), gen_rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  IndependentEvaluator independent(m, 1);
  CompressedEvaluator compressed(m, 1);
  Rng rng(3);
  for (NodeId q = 0; q < 12; ++q) {
    const CodChain chain = BuildChainFromDendrogram(d, q);
    const auto a = independent.Evaluate(chain, q, 4, rng);
    const auto b = compressed.Evaluate(chain, q, 4, rng);
    // rank_per_level clamping differs: independent reports exact ranks.
    ASSERT_EQ(a.rank_per_level.size(), b.rank_per_level.size());
    for (size_t h = 0; h < a.rank_per_level.size(); ++h) {
      EXPECT_EQ(std::min(a.rank_per_level[h], 4u), b.rank_per_level[h])
          << "q=" << q << " h=" << h;
    }
    EXPECT_EQ(a.best_level, b.best_level) << "q=" << q;
  }
}

TEST(IndependentEvalTest, TimeoutAborts) {
  Rng gen_rng(4);
  const Graph g = EnsureConnected(ErdosRenyi(400, 1600, gen_rng), gen_rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  IndependentEvaluator eval(m, 50);
  Rng rng(5);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  eval.Evaluate(chain, 0, 5, rng, /*deadline_seconds=*/1e-9);
  EXPECT_TRUE(eval.last_timed_out());
}

TEST(IndependentEvalTest, SampleCostGrowsWithChain) {
  // Independent explores far more RR nodes than compressed — the asymmetry
  // behind Fig. 8(c)/(f).
  Rng gen_rng(6);
  const Graph g = EnsureConnected(ErdosRenyi(150, 600, gen_rng), gen_rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  IndependentEvaluator independent(m, 10);
  CompressedEvaluator compressed(m, 10);
  Rng rng(7);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  independent.Evaluate(chain, 0, 5, rng);
  compressed.Evaluate(chain, 0, 5, rng);
  EXPECT_GT(independent.last_explored_nodes(),
            2 * compressed.last_explored_nodes());
}

}  // namespace
}  // namespace cod
