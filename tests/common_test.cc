#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace cod {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::IoError("x").ToString(), "IO_ERROR: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Timeout("x").ToString(), "TIMEOUT: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailThenPropagate() {
  COD_RETURN_IF_ERROR(Status::Timeout("deadline"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailThenPropagate().code(), StatusCode::kTimeout);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  int counts[10] = {};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.15);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(StatsTest, AccumulatorBasics) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.Min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 4.0);
  EXPECT_NEAR(acc.StdDev(), 1.2909944, 1e-6);
}

TEST(StatsTest, AccumulatorSingleValueHasZeroStdDev) {
  Accumulator acc;
  acc.Add(5.0);
  EXPECT_DOUBLE_EQ(acc.StdDev(), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  // Render to a temp file and check the contents line up.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::rewind(f);
  char buf[256];
  std::string all;
  while (std::fgets(buf, sizeof(buf), f)) all += buf;
  std::fclose(f);
  EXPECT_NE(all.find("name"), std::string::npos);
  EXPECT_NE(all.find("longer-name"), std::string::npos);
  // Header and rows share column offsets: "value" starts after widest name.
  EXPECT_NE(all.find("name         value"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Fmt(size_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(-3), "-3");
}

}  // namespace
}  // namespace cod
