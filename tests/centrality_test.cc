#include "graph/centrality.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(PageRankTest, SumsToOne) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const std::vector<double> pr = PageRank(g);
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, SymmetryOnRegularGraphs) {
  // Clique: every node identical.
  const Graph g = testing::MakeClique(6);
  const std::vector<double> pr = PageRank(g);
  for (double p : pr) EXPECT_NEAR(p, 1.0 / 6.0, 1e-9);
}

TEST(PageRankTest, HubDominatesStar) {
  GraphBuilder b(6);
  for (NodeId v = 1; v < 6; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const std::vector<double> pr = PageRank(g);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_GT(pr[0], pr[v]);
    EXPECT_NEAR(pr[v], pr[1], 1e-12);  // leaves identical
  }
  // Known closed form for an undirected star: hub mass
  // = (1-d)/n + d * (leaf mass sum); verify the fixed point numerically.
  const double d = 0.85;
  EXPECT_NEAR(pr[0], (1.0 - d) / 6.0 + d * 5.0 * pr[1], 1e-6);
}

TEST(PageRankTest, IsolatedNodesKeepTeleportMass) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  const std::vector<double> pr = PageRank(g);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(pr[0], pr[2]);
}

TEST(PageRankTest, WeightsSteerMass) {
  // Path 0-1-2 where (1,2) is heavy: node 2 outranks node 0.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 10.0);
  const Graph g = std::move(b).Build();
  const std::vector<double> pr = PageRank(g);
  EXPECT_GT(pr[2], pr[0]);
}

TEST(PageRankTest, EmptyGraph) {
  const Graph g = GraphBuilder(0).Build();
  EXPECT_TRUE(PageRank(g).empty());
}

}  // namespace
}  // namespace cod
