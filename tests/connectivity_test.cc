#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

Graph TwoComponents() {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);  // second component {3,4,5}
  b.AddEdge(4, 5);
  return std::move(b).Build();
}

TEST(ConnectivityTest, SingleComponent) {
  const Graph g = testing::MakePath(5);
  const Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 1u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ConnectivityTest, MultipleComponentsLabeled) {
  const Graph g = TwoComponents();
  const Components c = ConnectedComponents(g);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_FALSE(IsConnected(g));
}

TEST(ConnectivityTest, IsolatedNodesAreComponents) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(ConnectedComponents(g).count, 2u);
}

TEST(ConnectivityTest, LargestComponentExtraction) {
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);  // component {2,3,4,5} is largest; 6 isolated
  const Graph g = std::move(b).Build();
  const InducedSubgraph sub = LargestComponent(g);
  EXPECT_EQ(sub.graph.NumNodes(), 4u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  EXPECT_EQ(sub.to_parent, (std::vector<NodeId>{2, 3, 4, 5}));
}

TEST(ConnectivityTest, EmptyGraphIsConnected) {
  const Graph g = GraphBuilder(0).Build();
  EXPECT_TRUE(IsConnected(g));
}

TEST(ConductanceTest, BridgeCutOfTwoCliques) {
  // Two 3-cliques + bridge: cutting at one clique severs exactly the bridge.
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const std::vector<NodeId> s = {0, 1, 2};
  // vol(S) = 2+2+3 = 7, cut = 1, vol(rest) = 7 -> 1/7.
  EXPECT_NEAR(Conductance(g, s), 1.0 / 7.0, 1e-12);
}

TEST(ConductanceTest, WholeGraphIsZero) {
  const Graph g = testing::MakeClique(4);
  const std::vector<NodeId> s = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Conductance(g, s), 0.0);
}

TEST(ConductanceTest, SingleNodeOfClique) {
  const Graph g = testing::MakeClique(4);
  const std::vector<NodeId> s = {0};
  // vol(S)=3, cut=3, vol(rest)=9 -> 3/3 = 1.
  EXPECT_DOUBLE_EQ(Conductance(g, s), 1.0);
}

}  // namespace
}  // namespace cod
