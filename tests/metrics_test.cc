#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(TopologyDensityTest, CliqueIsOne) {
  const Graph g = testing::MakeClique(5);
  const std::vector<NodeId> all = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(TopologyDensity(g, all), 1.0);
}

TEST(TopologyDensityTest, SubsetCountsInternalEdgesOnly) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const std::vector<NodeId> left = {0, 1, 2};
  EXPECT_DOUBLE_EQ(TopologyDensity(g, left), 1.0);
  const std::vector<NodeId> mixed = {0, 1, 3};  // edge (0,1) only
  EXPECT_NEAR(TopologyDensity(g, mixed), 1.0 / 3.0, 1e-12);
}

TEST(TopologyDensityTest, DegenerateSets) {
  const Graph g = testing::MakePath(3);
  EXPECT_DOUBLE_EQ(TopologyDensity(g, std::vector<NodeId>{}), 0.0);
  EXPECT_DOUBLE_EQ(TopologyDensity(g, std::vector<NodeId>{1}), 0.0);
}

TEST(AttributeDensityTest, Fractions) {
  AttributeTableBuilder b;
  b.Add(0, "X");
  b.Add(1, "X");
  b.Add(2, "Y");
  const AttributeTable attrs = std::move(b).Build(4);
  const AttributeId x = attrs.Find("X");
  const std::vector<NodeId> all = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(AttributeDensity(attrs, x, all), 0.5);
  const std::vector<NodeId> two = {0, 1};
  EXPECT_DOUBLE_EQ(AttributeDensity(attrs, x, two), 1.0);
  EXPECT_DOUBLE_EQ(AttributeDensity(attrs, x, std::vector<NodeId>{}), 0.0);
}

TEST(VerifiedRankTest, DeterministicWorld) {
  // p=1 on a connected community: everyone ties, rank 0.
  const Graph g = testing::MakeClique(4);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  Rng rng(1);
  const std::vector<NodeId> members = {0, 1, 2, 3};
  EXPECT_EQ(VerifiedRank(m, members, 2, 5, rng), 0u);
}

TEST(VerifiedRankTest, HubBeatsLeaves) {
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(2);
  const std::vector<NodeId> members = {0, 1, 2, 3, 4};
  EXPECT_EQ(VerifiedRank(m, members, 0, 500, rng), 0u);
  EXPECT_GT(VerifiedRank(m, members, 3, 500, rng), 0u);
}

}  // namespace
}  // namespace cod
