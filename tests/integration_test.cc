// End-to-end pipeline tests: datasets -> engine -> all four COD variants and
// the three community-search baselines, with results cross-checked against
// the Monte-Carlo-backed rank verifier.

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/atc.h"
#include "baselines/kcore.h"
#include "baselines/ktruss.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/generators.h"

namespace cod {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(77);
    HppParams params;
    params.num_nodes = 600;
    params.num_edges = 2400;
    params.levels = 3;
    params.fanout = 3;
    GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
    graph_ = new Graph(std::move(gen.graph));
    attrs_ = new AttributeTable(
        AssignCorrelatedAttributes(gen.block, 6, 0.8, 0.1, rng));
    EngineOptions options;
    options.theta = 30;  // extra samples for stabler ranks in assertions
    engine_ = new CodEngine(*graph_, *attrs_, options);
    Rng build_rng(78);
    engine_->BuildHimor(build_rng);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete attrs_;
    delete graph_;
    engine_ = nullptr;
    attrs_ = nullptr;
    graph_ = nullptr;
  }

  static Graph* graph_;
  static AttributeTable* attrs_;
  static CodEngine* engine_;
};

Graph* PipelineTest::graph_ = nullptr;
AttributeTable* PipelineTest::attrs_ = nullptr;
CodEngine* PipelineTest::engine_ = nullptr;

TEST_F(PipelineTest, AllVariantsProduceValidCommunities) {
  QueryWorkspace ws = engine_->MakeWorkspace(1);
  Rng query_rng(2);
  const std::vector<Query> queries = GenerateQueries(*attrs_, 12, query_rng);
  constexpr CodVariant kVariants[] = {CodVariant::kCodU, CodVariant::kCodR,
                                      CodVariant::kCodLMinus,
                                      CodVariant::kCodL};
  for (const Query& q : queries) {
    for (CodVariant variant : kVariants) {
      QuerySpec spec;
      spec.variant = variant;
      spec.node = q.node;
      spec.k = 5;
      if (variant != CodVariant::kCodU) spec.attrs = {q.attribute};
      const CodResult r = engine_->Query(spec, ws);
      EXPECT_EQ(r.variant_served, variant);
      if (!r.found) continue;
      // Community contains the query and is a set (no duplicates).
      std::vector<NodeId> sorted = r.members;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::binary_search(sorted.begin(), sorted.end(), q.node));
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end());
      EXPECT_LT(r.rank, 5u);
    }
  }
}

TEST_F(PipelineTest, ClaimedRanksSurviveVerification) {
  // For found communities, an independent high-sample verification should
  // confirm the query is at least *near* the top-k (estimators are noisy;
  // the paper's Fig. 8 reports precision well below 1.0 for theta = 10).
  Rng rng(3);  // feeds the Monte-Carlo verifier
  QueryWorkspace ws = engine_->MakeWorkspace(3);
  Rng query_rng(4);
  const std::vector<Query> queries = GenerateQueries(*attrs_, 8, query_rng);
  int verified = 0;
  int found = 0;
  for (const Query& q : queries) {
    const CodResult r = engine_->QueryCodL(q.node, q.attribute, 5, ws);
    if (!r.found) continue;
    ++found;
    const uint32_t rank =
        VerifiedRank(engine_->model(), r.members, q.node, 200, rng);
    verified += rank < 2 * 5;
  }
  if (found > 0) {
    EXPECT_GE(verified * 2, found);  // at least half verify loosely
  }
}

TEST_F(PipelineTest, BaselinesReturnAttributeCoherentCommunities) {
  Rng query_rng(5);
  const std::vector<Query> queries = GenerateQueries(*attrs_, 15, query_rng);
  for (const Query& q : queries) {
    const std::vector<NodeId> acq =
        AcqSearch(*graph_, *attrs_, q.node, q.attribute);
    for (NodeId v : acq) {
      EXPECT_TRUE(attrs_->Has(v, q.attribute));
    }
    const std::vector<NodeId> cac =
        CacSearch(*graph_, *attrs_, q.node, q.attribute);
    for (NodeId v : cac) {
      EXPECT_TRUE(attrs_->Has(v, q.attribute));
    }
    const std::vector<NodeId> atc =
        AtcSearch(*graph_, *attrs_, q.node, q.attribute);
    if (!atc.empty()) {
      EXPECT_TRUE(std::binary_search(atc.begin(), atc.end(), q.node));
    }
  }
}

TEST_F(PipelineTest, HierarchicalVariantsFindLargerCommunitiesThanCac) {
  // The headline effectiveness claim (Fig. 7 a-f): hierarchical COD methods
  // return larger characteristic communities than truss-based search.
  QueryWorkspace ws = engine_->MakeWorkspace(6);
  Rng query_rng(7);
  const std::vector<Query> queries = GenerateQueries(*attrs_, 15, query_rng);
  double codl_total = 0.0;
  double cac_total = 0.0;
  for (const Query& q : queries) {
    codl_total +=
        engine_->QueryCodL(q.node, q.attribute, 5, ws).members.size();
    cac_total += CacSearch(*graph_, *attrs_, q.node, q.attribute).size();
  }
  EXPECT_GT(codl_total, cac_total);
}

TEST(SmallDatasetPipelineTest, CoraSimEndToEnd) {
  Result<AttributedGraph> data = MakeDataset("cora-sim");
  ASSERT_TRUE(data.ok());
  CodEngine engine(data->graph, data->attributes, {});
  Rng rng(8);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  Rng query_rng(9);
  const std::vector<Query> queries =
      GenerateQueries(data->attributes, 5, query_rng);
  int found = 0;
  for (const Query& q : queries) {
    const CodResult r = engine.QueryCodL(q.node, q.attribute, 5, ws);
    found += r.found;
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace cod
