#include "baselines/ktruss.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(TrussNumbersTest, Clique) {
  // Every edge of K5 survives to the 5-truss.
  const Graph g = testing::MakeClique(5);
  for (uint32_t t : TrussNumbers(g)) EXPECT_EQ(t, 5u);
}

TEST(TrussNumbersTest, TriangleFreeGraphIsTwoTruss) {
  const Graph g = testing::MakePath(6);
  for (uint32_t t : TrussNumbers(g)) EXPECT_EQ(t, 2u);
}

TEST(TrussNumbersTest, TriangleWithPendant) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> truss = TrussNumbers(g);
  EXPECT_EQ(truss[g.FindEdge(0, 1)], 3u);
  EXPECT_EQ(truss[g.FindEdge(1, 2)], 3u);
  EXPECT_EQ(truss[g.FindEdge(0, 2)], 3u);
  EXPECT_EQ(truss[g.FindEdge(2, 3)], 2u);
}

TEST(TrussNumbersTest, TwoCliquesWithBridge) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const std::vector<uint32_t> truss = TrussNumbers(g);
  EXPECT_EQ(truss[g.FindEdge(0, 1)], 4u);   // inside K4
  EXPECT_EQ(truss[g.FindEdge(3, 4)], 2u);   // the bridge
}

TEST(TriangleConnectedTrussTest, StopsAtTriangleBoundaries) {
  // Two K4s sharing one node (7 nodes): 4-truss edges form two triangle-
  // connected classes; from node 0 only the first K4 is returned.
  GraphBuilder b(7);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  const NodeId map2[4] = {3, 4, 5, 6};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) b.AddEdge(map2[i], map2[j]);
  }
  const Graph g = std::move(b).Build();
  const std::vector<uint32_t> truss = TrussNumbers(g);
  const std::vector<NodeId> community =
      TriangleConnectedTruss(g, 0, 4, truss);
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2, 3}));
  // From the shared node 3, the largest class is returned (both have size
  // 4; either is acceptable but it must be one full K4).
  const std::vector<NodeId> shared =
      TriangleConnectedTruss(g, 3, 4, truss);
  EXPECT_EQ(shared.size(), 4u);
}

TEST(CacTest, ReturnsAttributeSharedTruss) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  AttributeTableBuilder ab;
  for (NodeId v = 0; v < 8; ++v) ab.Add(v, "X");
  const AttributeTable attrs = std::move(ab).Build(8);
  const std::vector<NodeId> community = CacSearch(g, attrs, 0, attrs.Find("X"));
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(CacTest, AttributeFilterShrinksCommunity) {
  // Remove the attribute from node 3: the filtered 0-side is a triangle.
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  AttributeTableBuilder ab;
  for (NodeId v = 0; v < 8; ++v) {
    if (v != 3) ab.Add(v, "X");
  }
  const AttributeTable attrs = std::move(ab).Build(8);
  const std::vector<NodeId> community = CacSearch(g, attrs, 0, attrs.Find("X"));
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2}));
}

TEST(CacTest, NoTriangleMeansNoCommunity) {
  const Graph g = testing::MakePath(4);
  AttributeTableBuilder ab;
  for (NodeId v = 0; v < 4; ++v) ab.Add(v, "X");
  const AttributeTable attrs = std::move(ab).Build(4);
  EXPECT_TRUE(CacSearch(g, attrs, 1, attrs.Find("X")).empty());
}

TEST(CacTest, QueryWithoutAttributeFails) {
  const Graph g = testing::MakeClique(4);
  AttributeTableBuilder ab;
  ab.Add(1, "X");
  const AttributeTable attrs = std::move(ab).Build(4);
  EXPECT_TRUE(CacSearch(g, attrs, 0, attrs.Find("X")).empty());
}

TEST(TrussNumbersTest, PropertyEveryKTrussEdgeClosesEnoughTriangles) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 25 + rng.UniformInt(40);
    GraphBuilder b(n);
    for (size_t i = 0; i < 5 * n; ++i) {
      b.AddEdge(static_cast<NodeId>(rng.UniformInt(n)),
                static_cast<NodeId>(rng.UniformInt(n)));
    }
    const Graph g = std::move(b).Build();
    const std::vector<uint32_t> truss = TrussNumbers(g);
    uint32_t max_truss = 2;
    for (uint32_t t : truss) max_truss = std::max(max_truss, t);
    for (uint32_t k = 3; k <= max_truss; ++k) {
      // Within {edges with truss >= k}, every surviving edge must close at
      // least k-2 surviving triangles (defining property of the k-truss).
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        if (truss[e] < k) continue;
        const auto [u, v] = g.Endpoints(e);
        uint32_t triangles = 0;
        for (const AdjEntry& a : g.Neighbors(u)) {
          if (a.to == v || truss[a.edge] < k) continue;
          const EdgeId other = g.FindEdge(a.to, v);
          if (other != kInvalidEdge && truss[other] >= k) ++triangles;
        }
        EXPECT_GE(triangles, k - 2) << "edge " << e << " k " << k;
      }
    }
  }
}

}  // namespace
}  // namespace cod
