#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/connectivity.h"

namespace cod {
namespace {

TEST(HppTest, ShapeAndConnectivity) {
  Rng rng(1);
  HppParams params;
  params.num_nodes = 1000;
  params.num_edges = 4000;
  params.levels = 3;
  params.fanout = 4;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  EXPECT_EQ(gen.graph.NumNodes(), 1000u);
  EXPECT_EQ(gen.num_blocks, 64u);
  // Dedup and connectivity patching change |E| slightly.
  EXPECT_NEAR(static_cast<double>(gen.graph.NumEdges()), 4000.0, 400.0);
  EXPECT_TRUE(IsConnected(gen.graph));
  EXPECT_EQ(gen.block.size(), 1000u);
  for (uint32_t blk : gen.block) EXPECT_LT(blk, gen.num_blocks);
}

TEST(HppTest, BlocksAreContiguousAndBalanced) {
  Rng rng(2);
  HppParams params;
  params.num_nodes = 640;
  params.num_edges = 2000;
  params.levels = 2;
  params.fanout = 4;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  EXPECT_EQ(gen.num_blocks, 16u);
  for (NodeId v = 1; v < 640; ++v) {
    EXPECT_GE(gen.block[v], gen.block[v - 1]);  // contiguous ranges
  }
  std::vector<int> sizes(gen.num_blocks, 0);
  for (uint32_t blk : gen.block) ++sizes[blk];
  for (int s : sizes) EXPECT_EQ(s, 40);
}

TEST(HppTest, LeafEdgesDominate) {
  Rng rng(3);
  HppParams params;
  params.num_nodes = 2000;
  params.num_edges = 8000;
  params.levels = 3;
  params.fanout = 4;
  params.leaf_fraction = 0.7;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  size_t intra = 0;
  for (EdgeId e = 0; e < gen.graph.NumEdges(); ++e) {
    const auto [u, v] = gen.graph.Endpoints(e);
    intra += gen.block[u] == gen.block[v];
  }
  // At least the leaf fraction (up to dedup noise) should land intra-block.
  EXPECT_GT(static_cast<double>(intra) / gen.graph.NumEdges(), 0.55);
}

TEST(BarabasiAlbertTest, SizeAndSkew) {
  Rng rng(4);
  const Graph g = BarabasiAlbert(2000, 2, rng);
  EXPECT_EQ(g.NumNodes(), 2000u);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  const double avg = 2.0 * g.NumEdges() / g.NumNodes();
  EXPECT_GT(max_degree, 10 * avg);  // hubs exist
  EXPECT_TRUE(IsConnected(g));
}

TEST(ErdosRenyiTest, EdgeCount) {
  Rng rng(5);
  const Graph g = ErdosRenyi(500, 1500, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 1500.0, 60.0);
}

TEST(HubbyTest, HubHeavyWithBlocks) {
  Rng rng(6);
  HubbyParams params;
  params.num_nodes = 3000;
  params.backbone_edges_per_node = 1;
  params.num_blocks = 30;
  params.extra_block_edges = 4000;
  const GeneratedGraph gen = HubbyCommunityGraph(params, rng);
  EXPECT_EQ(gen.graph.NumNodes(), 3000u);
  EXPECT_EQ(gen.num_blocks, 30u);
  EXPECT_TRUE(IsConnected(gen.graph));
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < gen.graph.NumNodes(); ++v) {
    max_degree = std::max(max_degree, gen.graph.Degree(v));
  }
  EXPECT_GT(max_degree, 50u);
}

TEST(LfrTest, DegreesAndCommunitiesArePowerLawish) {
  Rng rng(21);
  LfrParams params;
  params.num_nodes = 3000;
  params.mu = 0.2;
  const GeneratedGraph gen = LfrLikeGraph(params, rng);
  EXPECT_EQ(gen.graph.NumNodes(), 3000u);
  EXPECT_TRUE(IsConnected(gen.graph));

  // Heavy-tailed degrees: max well above the mean.
  uint32_t max_degree = 0;
  double total_degree = 0.0;
  for (NodeId v = 0; v < gen.graph.NumNodes(); ++v) {
    max_degree = std::max(max_degree, gen.graph.Degree(v));
    total_degree += gen.graph.Degree(v);
  }
  const double mean_degree = total_degree / gen.graph.NumNodes();
  EXPECT_GT(max_degree, 5 * mean_degree);

  // Heterogeneous community sizes within the configured bounds.
  std::vector<size_t> sizes(gen.num_blocks, 0);
  for (uint32_t b : gen.block) ++sizes[b];
  size_t smallest = params.num_nodes;
  size_t largest = 0;
  for (size_t s : sizes) {
    ASSERT_GT(s, 0u);
    smallest = std::min(smallest, s);
    largest = std::max(largest, s);
  }
  EXPECT_GE(smallest, params.min_community);
  EXPECT_LE(largest, params.max_community);
  EXPECT_GT(largest, 2 * smallest);  // heterogeneity
}

TEST(LfrTest, MixingParameterControlsInterEdges) {
  auto inter_fraction = [](double mu, uint64_t seed) {
    Rng rng(seed);
    LfrParams params;
    params.num_nodes = 4000;
    params.mu = mu;
    const GeneratedGraph gen = LfrLikeGraph(params, rng);
    size_t inter = 0;
    for (EdgeId e = 0; e < gen.graph.NumEdges(); ++e) {
      const auto [u, v] = gen.graph.Endpoints(e);
      inter += gen.block[u] != gen.block[v];
    }
    return static_cast<double>(inter) / gen.graph.NumEdges();
  };
  const double low = inter_fraction(0.1, 22);
  const double high = inter_fraction(0.5, 23);
  EXPECT_NEAR(low, 0.1, 0.08);
  EXPECT_NEAR(high, 0.5, 0.1);
  EXPECT_LT(low, high);
}

TEST(LfrTest, WorksAsCodSubstrate) {
  // Smoke: the generated structure supports the whole pipeline.
  Rng rng(24);
  LfrParams params;
  params.num_nodes = 500;
  params.min_community = 15;
  params.max_community = 80;
  const GeneratedGraph gen = LfrLikeGraph(params, rng);
  const AttributeTable attrs =
      AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  EXPECT_EQ(attrs.NumNodes(), 500u);
}

TEST(CorePeripheryTest, HubAccretionStructure) {
  Rng rng(12);
  CorePeripheryParams params;
  params.num_nodes = 4000;
  params.core_size = 40;
  params.core_edges = 300;
  params.second_edge_prob = 1.0;
  params.num_blocks = 20;
  params.intra_block_edges = 2000;
  const GeneratedGraph gen = CorePeripheryGraph(params, rng);
  EXPECT_EQ(gen.graph.NumNodes(), 4000u);
  EXPECT_TRUE(IsConnected(gen.graph));
  EXPECT_EQ(gen.num_blocks, 20u);
  // Mega-hubs: some core node should collect a large periphery.
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < 40; ++v) {
    max_degree = std::max(max_degree, gen.graph.Degree(v));
  }
  EXPECT_GT(max_degree, 200u);
  // Periphery inherits its hub's block, so every block is populated.
  std::vector<size_t> sizes(20, 0);
  for (uint32_t b : gen.block) {
    ASSERT_LT(b, 20u);
    ++sizes[b];
  }
  for (size_t s : sizes) EXPECT_GT(s, 0u);
}

TEST(EnsureConnectedTest, PatchesComponents) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(4, 5);
  Rng rng(7);
  const Graph g = EnsureConnected(std::move(b).Build(), rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.NumNodes(), 6u);
  EXPECT_EQ(g.NumEdges(), 5u);  // 3 original + 2 patches
}

TEST(EnsureConnectedTest, NoOpWhenConnected) {
  Rng rng(8);
  Graph g = EnsureConnected(ErdosRenyi(50, 400, rng), rng);
  const size_t edges = g.NumEdges();
  g = EnsureConnected(std::move(g), rng);
  EXPECT_EQ(g.NumEdges(), edges);
}

TEST(BlockAttributesTest, OneAttributePerBlock) {
  Rng rng(9);
  std::vector<uint32_t> block = {0, 0, 0, 1, 1, 2, 2, 2};
  const AttributeTable t = AssignBlockAttributes(block, 5, rng);
  EXPECT_EQ(t.NumNodes(), 8u);
  for (NodeId v = 0; v < 8; ++v) {
    ASSERT_EQ(t.AttributesOf(v).size(), 1u);
  }
  // All members of a block share the block's attribute.
  EXPECT_EQ(t.AttributesOf(0)[0], t.AttributesOf(1)[0]);
  EXPECT_EQ(t.AttributesOf(0)[0], t.AttributesOf(2)[0]);
  EXPECT_EQ(t.AttributesOf(3)[0], t.AttributesOf(4)[0]);
  EXPECT_EQ(t.AttributesOf(5)[0], t.AttributesOf(7)[0]);
}

TEST(CorrelatedAttributesTest, FidelityApproximatelyHolds) {
  Rng rng(10);
  // One big block: with fidelity 0.9, ~90% + 10%/vocab of nodes carry the
  // dominant attribute.
  std::vector<uint32_t> block(5000, 0);
  const AttributeTable t = AssignCorrelatedAttributes(block, 4, 0.9, 0.0, rng);
  std::vector<size_t> counts(4, 0);
  for (NodeId v = 0; v < 5000; ++v) {
    for (AttributeId a : t.AttributesOf(v)) ++counts[a];
  }
  const size_t dominant = *std::max_element(counts.begin(), counts.end());
  EXPECT_NEAR(static_cast<double>(dominant) / 5000.0, 0.925, 0.03);
}

TEST(CorrelatedAttributesTest, ExtraAttributeProbability) {
  Rng rng(11);
  std::vector<uint32_t> block(4000, 0);
  const AttributeTable t =
      AssignCorrelatedAttributes(block, 8, 1.0, 0.5, rng);
  size_t with_two = 0;
  for (NodeId v = 0; v < 4000; ++v) {
    if (t.AttributesOf(v).size() >= 2) ++with_two;
  }
  // Extra attr drawn with p=0.5 but collides with the dominant 1/8 of the
  // time: expect ~0.5 * 7/8 = 0.4375 of nodes with two attributes.
  EXPECT_NEAR(with_two / 4000.0, 0.4375, 0.04);
}

TEST(DeterminismTest, SameSeedSameGraph) {
  HppParams params;
  params.num_nodes = 300;
  params.num_edges = 900;
  params.levels = 2;
  params.fanout = 3;
  Rng rng1(42);
  Rng rng2(42);
  const GeneratedGraph a = HierarchicalPlantedPartition(params, rng1);
  const GeneratedGraph b = HierarchicalPlantedPartition(params, rng2);
  ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  for (EdgeId e = 0; e < a.graph.NumEdges(); ++e) {
    EXPECT_EQ(a.graph.Endpoints(e), b.graph.Endpoints(e));
  }
}

}  // namespace
}  // namespace cod
