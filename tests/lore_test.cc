#include "core/lore.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Direct Definition-4 computation (with the Algorithm-2 exclusion of edges
// whose lca is the deepest community): for each chain position i >= 1,
// r(C_i) = sum over query-attributed edges with lca = C_j(q), 1 <= j <= i,
// of dep(C_j), divided by |C_i|.
std::vector<double> DirectScores(const Graph& g, const AttributeTable& attrs,
                                 const Dendrogram& d, const LcaIndex& lca,
                                 NodeId q, AttributeId attr) {
  const std::vector<CommunityId> chain = d.PathToRoot(q);
  std::vector<double> scores(chain.size(), 0.0);
  for (size_t i = 1; i < chain.size(); ++i) {
    double numerator = 0.0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const auto [u, v] = g.Endpoints(e);
      if (!attrs.Has(u, attr) || !attrs.Has(v, attr)) continue;
      const CommunityId c = lca.LcaOfNodes(u, v);
      for (size_t j = 1; j <= i; ++j) {
        if (chain[j] == c) {
          numerator += d.Depth(c);
          break;
        }
      }
    }
    scores[i] = numerator / d.LeafCount(chain[i]);
  }
  return scores;
}

TEST(LoreTest, PaperExampleSix) {
  // Example 6: Delta(C3) = 1, Delta(C4) = 2, r(C3) = 3/6, r(C4) = 7/8, and
  // C4 is selected for reclustering.
  const auto ex = testing::MakePaperExample();
  const AttributeTable attrs = testing::MakePaperAttributes();
  const LcaIndex lca(ex.dendrogram);
  const AttributeId db = attrs.Find("DB");
  ASSERT_NE(db, kInvalidAttribute);

  const LoreScores scores = ComputeReclusteringScores(
      ex.graph, attrs, ex.dendrogram, lca, /*q=*/0, db);
  ASSERT_EQ(scores.chain.size(), 4u);
  EXPECT_EQ(scores.chain[0], ex.c0);
  EXPECT_EQ(scores.chain[1], ex.c3);
  EXPECT_EQ(scores.chain[2], ex.c4);
  EXPECT_EQ(scores.chain[3], ex.c6);
  EXPECT_DOUBLE_EQ(scores.score[0], 0.0);
  EXPECT_DOUBLE_EQ(scores.score[1], 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(scores.score[2], 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(scores.score[3], 7.0 / 10.0);
  EXPECT_EQ(scores.Selected(), ex.c4);
}

TEST(LoreTest, InC0EdgesAreExcluded) {
  // Give the DB attribute to v0 too: edges (v0,v2), (v0,v3), (v2,v3) become
  // query-attributed with lca C0 and must not change any score.
  const auto ex = testing::MakePaperExample();
  AttributeTableBuilder b;
  for (NodeId v : {0, 2, 3, 4, 5, 7}) b.Add(v, "DB");
  const AttributeTable attrs = std::move(b).Build(10);
  const LcaIndex lca(ex.dendrogram);
  const LoreScores scores = ComputeReclusteringScores(
      ex.graph, attrs, ex.dendrogram, lca, 0, attrs.Find("DB"));
  EXPECT_DOUBLE_EQ(scores.score[1], 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(scores.score[2], 7.0 / 8.0);
  EXPECT_EQ(scores.Selected(), ex.c4);
}

TEST(LoreTest, NoQueryAttributedEdgesFallsBack) {
  const auto ex = testing::MakePaperExample();
  AttributeTableBuilder b;
  b.Add(0, "rare");  // only the query node has it
  const AttributeTable attrs = std::move(b).Build(10);
  const LcaIndex lca(ex.dendrogram);
  const LoreScores scores = ComputeReclusteringScores(
      ex.graph, attrs, ex.dendrogram, lca, 0, attrs.Find("rare"));
  for (double s : scores.score) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_EQ(scores.selected, 1u);  // smallest non-trivial candidate
}

TEST(LoreTest, EdgesOffTheChainAreIgnored) {
  // DB edge (8,9) has lca C5, which does not contain v0.
  const auto ex = testing::MakePaperExample();
  AttributeTableBuilder b;
  b.Add(8, "DB");
  b.Add(9, "DB");
  const AttributeTable attrs = std::move(b).Build(10);
  const LcaIndex lca(ex.dendrogram);
  const LoreScores scores = ComputeReclusteringScores(
      ex.graph, attrs, ex.dendrogram, lca, 0, attrs.Find("DB"));
  for (double s : scores.score) EXPECT_DOUBLE_EQ(s, 0.0);
}

class LoreRecursionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoreRecursionTest, RecursionMatchesDirectDefinition) {
  Rng rng(GetParam());
  HppParams params;
  params.num_nodes = 150;
  params.num_edges = 500;
  params.levels = 2;
  params.fanout = 3;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  const AttributeTable attrs =
      AssignCorrelatedAttributes(gen.block, 4, 0.7, 0.2, rng);
  const Dendrogram d = AgglomerativeCluster(gen.graph);
  const LcaIndex lca(d);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId q = static_cast<NodeId>(rng.UniformInt(150));
    const auto node_attrs = attrs.AttributesOf(q);
    if (node_attrs.empty()) continue;
    const AttributeId attr = node_attrs[0];
    const LoreScores fast =
        ComputeReclusteringScores(gen.graph, attrs, d, lca, q, attr);
    const std::vector<double> direct =
        DirectScores(gen.graph, attrs, d, lca, q, attr);
    ASSERT_EQ(fast.score.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_NEAR(fast.score[i], direct[i], 1e-9) << "i=" << i << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoreRecursionTest,
                         ::testing::Values(7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace cod
