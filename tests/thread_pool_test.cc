// Coverage for the deprecated ThreadPool compatibility adapter (and the
// parallel HIMOR build, which predates the scheduler and keeps its tests
// here). The adapter must preserve the old Submit/WaitIdle contract on top
// of TaskScheduler until out-of-tree callers finish migrating; these tests
// are the only sanctioned users of the deprecated alias, so the warning is
// silenced file-wide.

#include "common/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/himor.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/lca.h"

#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace cod {
namespace {

TEST(ThreadPoolAdapterTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolAdapterTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPoolAdapterTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (wave + 1) * 100);
  }
}

TEST(ThreadPoolAdapterTest, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolAdapterTest, ConvertsToSchedulerForMigratedApis) {
  ThreadPool pool(2);
  TaskScheduler& sched = pool;
  EXPECT_EQ(&sched, &pool.scheduler());
  EXPECT_EQ(sched.num_threads(), 2u);

  // Work submitted directly on the underlying scheduler composes with the
  // adapter's own WaitIdle group.
  std::atomic<int> counter{0};
  TaskGroup group(sched);
  for (int i = 0; i < 20; ++i) {
    sched.Submit(TaskPriority::kInteractive, group,
                 [&counter] { counter.fetch_add(1); });
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 40);
}

class ParallelHimorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(5);
    graph_ = new Graph(EnsureConnected(ErdosRenyi(300, 900, rng), rng));
    dendrogram_ = new Dendrogram(AgglomerativeCluster(*graph_));
    lca_ = new LcaIndex(*dendrogram_);
    model_ = new DiffusionModel(DiffusionModel::WeightedCascadeIc(*graph_));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete lca_;
    delete dendrogram_;
    delete graph_;
    model_ = nullptr;
    lca_ = nullptr;
    dendrogram_ = nullptr;
    graph_ = nullptr;
  }
  static Graph* graph_;
  static Dendrogram* dendrogram_;
  static LcaIndex* lca_;
  static DiffusionModel* model_;
};

Graph* ParallelHimorTest::graph_ = nullptr;
Dendrogram* ParallelHimorTest::dendrogram_ = nullptr;
LcaIndex* ParallelHimorTest::lca_ = nullptr;
DiffusionModel* ParallelHimorTest::model_ = nullptr;

TEST_F(ParallelHimorTest, ThreadCountDoesNotChangeTheIndex) {
  const HimorIndex one = HimorIndex::BuildParallel(
      *model_, *dendrogram_, *lca_, 8, /*seed=*/42, 16, /*num_threads=*/1);
  const HimorIndex four = HimorIndex::BuildParallel(
      *model_, *dendrogram_, *lca_, 8, /*seed=*/42, 16, /*num_threads=*/4);
  ASSERT_EQ(one.NumEntries(), four.NumEntries());
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    const auto a = one.RanksOf(v);
    const auto b = four.RanksOf(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].community, b[i].community);
      EXPECT_EQ(a[i].rank, b[i].rank);
    }
  }
}

TEST_F(ParallelHimorTest, DifferentSeedsDiffer) {
  const HimorIndex a = HimorIndex::BuildParallel(*model_, *dendrogram_, *lca_,
                                                 8, /*seed=*/1, 16, 2);
  const HimorIndex b = HimorIndex::BuildParallel(*model_, *dendrogram_, *lca_,
                                                 8, /*seed=*/2, 16, 2);
  bool any_difference = a.NumEntries() != b.NumEntries();
  if (!any_difference) {
    for (NodeId v = 0; v < graph_->NumNodes() && !any_difference; ++v) {
      const auto ra = a.RanksOf(v);
      const auto rb = b.RanksOf(v);
      if (ra.size() != rb.size()) {
        any_difference = true;
        break;
      }
      for (size_t i = 0; i < ra.size(); ++i) {
        if (ra[i].rank != rb[i].rank) {
          any_difference = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(ParallelHimorTest, ParallelAgreesWithSerialInDeterministicWorld) {
  // p = 1 removes sampling noise entirely: serial and parallel builders must
  // produce the exact same ranks even though their RNG streams differ.
  const DiffusionModel sure = DiffusionModel::UniformIc(*graph_, 1.0);
  Rng rng(7);
  const HimorIndex serial =
      HimorIndex::Build(sure, *dendrogram_, *lca_, 2, rng, 16);
  const HimorIndex parallel = HimorIndex::BuildParallel(
      sure, *dendrogram_, *lca_, 2, /*seed=*/99, 16, 4);
  ASSERT_EQ(serial.NumEntries(), parallel.NumEntries());
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    const auto a = serial.RanksOf(v);
    const auto b = parallel.RanksOf(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rank, b[i].rank);
    }
  }
}

}  // namespace
}  // namespace cod
