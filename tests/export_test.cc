#include "graph/export.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(ExportCommunityDotTest, HighlightsCommunityAndQuery) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const std::vector<NodeId> community = {0, 1, 2};
  const std::string path = TempPath("community.dot");
  ASSERT_TRUE(ExportCommunityDot(g, community, /*query=*/0, path).ok());
  const std::string dot = Slurp(path);
  EXPECT_NE(dot.find("graph community {"), std::string::npos);
  EXPECT_EQ(CountOccurrences(dot, "fillcolor=gold"), 1u);        // query
  EXPECT_EQ(CountOccurrences(dot, "fillcolor=dodgerblue"), 2u);  // 1, 2
  // 7 edges: 3 + 3 clique edges + bridge.
  EXPECT_EQ(CountOccurrences(dot, " -- "), 7u);
  // Intra-community edges bolded.
  EXPECT_EQ(CountOccurrences(dot, "penwidth=2"), 3u);
}

TEST(ExportCommunityDotTest, NeighborhoodRestrictionOnLargeGraphs) {
  const Graph g = testing::MakePath(500);
  const std::vector<NodeId> community = {100, 101, 102};
  const std::string path = TempPath("restricted.dot");
  DotOptions options;
  options.neighborhood_only_above = 50;
  ASSERT_TRUE(ExportCommunityDot(g, community, 101, path, options).ok());
  const std::string dot = Slurp(path);
  // Only community + neighbors (99..103) appear.
  EXPECT_NE(dot.find("n99"), std::string::npos);
  EXPECT_NE(dot.find("n103"), std::string::npos);
  EXPECT_EQ(dot.find("n250"), std::string::npos);
}

TEST(ExportCommunityDotTest, BadPathIsIoError) {
  const Graph g = testing::MakeClique(3);
  EXPECT_EQ(ExportCommunityDot(g, std::vector<NodeId>{0}, 0,
                               "/no/such/dir/x.dot")
                .code(),
            StatusCode::kIoError);
}

TEST(ExportDendrogramDotTest, FiltersBySize) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::string path = TempPath("dendrogram.dot");
  ASSERT_TRUE(ExportDendrogramDot(d, /*min_size=*/4, path).ok());
  const std::string dot = Slurp(path);
  EXPECT_NE(dot.find("digraph hierarchy {"), std::string::npos);
  // Exactly three surviving vertices: root (8) and the two cliques (4, 4).
  EXPECT_EQ(CountOccurrences(dot, "|C|="), 3u);
  EXPECT_EQ(CountOccurrences(dot, " -> "), 2u);
  EXPECT_EQ(dot.find("label=\"node "), std::string::npos);  // no leaves
}

TEST(ExportDendrogramDotTest, MinSizeOneIncludesLeaves) {
  const Graph g = testing::MakeClique(3);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::string path = TempPath("full_dendrogram.dot");
  ASSERT_TRUE(ExportDendrogramDot(d, 1, path).ok());
  const std::string dot = Slurp(path);
  EXPECT_EQ(CountOccurrences(dot, "label=\"node "), 3u);
}

}  // namespace
}  // namespace cod
