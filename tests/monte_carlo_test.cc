#include "influence/monte_carlo.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(MonteCarloTest, DeterministicEdgesActivateEverything) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  MonteCarloSimulator sim(m);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(sim.EstimateInfluence(0, 10, rng), 6.0);
}

TEST(MonteCarloTest, ZeroProbabilityActivatesOnlySeed) {
  const Graph g = testing::MakeClique(5);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.0);
  MonteCarloSimulator sim(m);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(sim.EstimateInfluence(0, 10, rng), 1.0);
}

TEST(MonteCarloTest, PathGraphAnalytic) {
  // Path 0-1-2 with uniform p: seeding node 0 activates 1 w.p. p and then 2
  // w.p. p^2: E = 1 + p + p^2.
  const Graph g = testing::MakePath(3);
  const double p = 0.5;
  const DiffusionModel m = DiffusionModel::UniformIc(g, p);
  MonteCarloSimulator sim(m);
  Rng rng(3);
  const double expect = 1.0 + p + p * p;
  EXPECT_NEAR(sim.EstimateInfluence(0, 200000, rng), expect, 0.01);
}

TEST(MonteCarloTest, StarCenterAnalytic) {
  // Star: center 0 with 4 leaves, uniform p = 0.3: E = 1 + 4p.
  GraphBuilder b(5);
  for (NodeId v = 1; v < 5; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.3);
  MonteCarloSimulator sim(m);
  Rng rng(4);
  EXPECT_NEAR(sim.EstimateInfluence(0, 200000, rng), 2.2, 0.02);
}

TEST(MonteCarloTest, RestrictionConfinesProcess) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  MonteCarloSimulator sim(m);
  Rng rng(5);
  std::vector<char> allowed(6, 0);
  allowed[0] = allowed[1] = allowed[2] = 1;
  EXPECT_DOUBLE_EQ(sim.EstimateInfluence(0, 10, rng, &allowed), 3.0);
}

TEST(MonteCarloTest, LtDeterministicCircuit) {
  // LT weighted cascade on a path seeded at an end: node 1 has in-weights
  // 1/2 from each side; with only node 0 active it fires iff its threshold
  // is <= 1/2, so E[activations of 1] = 1/2; then node 2's single in-weight
  // is 1 but conditioned on 1 firing... E = 1 + 1/2 + 1/2*1 = 2.
  const Graph g = testing::MakePath(3);
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(g);
  MonteCarloSimulator sim(m);
  Rng rng(6);
  EXPECT_NEAR(sim.EstimateInfluence(0, 200000, rng), 2.0, 0.02);
}

TEST(MonteCarloTest, LtCliqueSeedAloneMatchesRrEstimate) {
  // Smoke check that the LT forward process is confined and nontrivial.
  const Graph g = testing::MakeClique(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(g);
  MonteCarloSimulator sim(m);
  Rng rng(7);
  const double influence = sim.EstimateInfluence(0, 50000, rng);
  EXPECT_GT(influence, 1.0);
  EXPECT_LT(influence, 4.0);
}

TEST(MonteCarloSetTest, DuplicateSeedsCountOnce) {
  const Graph g = testing::MakeClique(4);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.0);
  MonteCarloSimulator sim(m);
  Rng rng(8);
  const std::vector<NodeId> seeds = {1, 1, 1};
  EXPECT_DOUBLE_EQ(sim.EstimateInfluenceOfSet(seeds, 10, rng), 1.0);
}

TEST(MonteCarloSetTest, SupersetSeedsSpreadAtLeastAsMuch) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  MonteCarloSimulator sim(m);
  Rng rng(9);
  const std::vector<NodeId> small = {0};
  const std::vector<NodeId> large = {0, 8};
  const double s = sim.EstimateInfluenceOfSet(small, 30000, rng);
  const double l = sim.EstimateInfluenceOfSet(large, 30000, rng);
  EXPECT_GT(l, s + 0.5);  // node 8 adds at least itself
}

TEST(MonteCarloSetTest, FullSeedSetActivatesEverything) {
  const Graph g = testing::MakePath(6);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.0);
  MonteCarloSimulator sim(m);
  Rng rng(10);
  const std::vector<NodeId> all = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(sim.EstimateInfluenceOfSet(all, 5, rng), 6.0);
}

TEST(MonteCarloTest, LtRestrictedProcessStaysInside) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(g);
  MonteCarloSimulator sim(m);
  Rng rng(11);
  std::vector<char> allowed(6, 0);
  allowed[0] = allowed[1] = allowed[2] = 1;
  const double inside = sim.EstimateInfluence(0, 20000, rng, &allowed);
  EXPECT_GE(inside, 1.0);
  EXPECT_LE(inside, 3.0);
}

}  // namespace
}  // namespace cod
