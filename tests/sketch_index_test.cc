// Coverage-sketch index suite (influence/coverage_sketch.h): the bottom-k
// signature algebra, bit-identical serial/parallel/delta builds, the
// answer-preserving prune property (sketch_prune on vs off must be
// bit-identical on every exact query), the approximate sketch rung, the
// kSketch snapshot section, and the "influence/sketch_build" failpoint.
//
// CI shards override the fuzz stream via COD_FUZZ_SEED; the per-test
// offset keeps the instantiations distinct within a shard.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/task_scheduler.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "influence/coverage_sketch.h"
#include "serving/dynamic_service.h"
#include "storage/epoch_snapshot.h"
#include "tests/test_util.h"

namespace cod {
namespace {

namespace fs = std::filesystem;

uint64_t FuzzSeed(uint64_t offset) {
  const char* env = std::getenv("COD_FUZZ_SEED");
  const uint64_t base =
      (env == nullptr || *env == '\0') ? 0 : std::strtoull(env, nullptr, 10);
  return base + offset;
}

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed, size_t n = 200) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

Graph CopyGraph(const Graph& g) {
  GraphBuilder b(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    b.AddEdge(u, v, g.Weight(e));
  }
  return std::move(b).Build();
}

EngineOptions SketchOpts(uint32_t bits = 5) {
  EngineOptions o;
  o.theta = 16;
  o.sketch_bits = bits;
  return o;
}

std::string SketchBytes(const EngineCore& core) {
  BinaryBufferWriter w;
  EXPECT_NE(core.sketch(), nullptr);
  if (core.sketch() != nullptr) core.sketch()->SerializeTo(w);
  return std::move(w).TakeBytes();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sketch_index_test-" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Bottom-k signature algebra.
// ---------------------------------------------------------------------------

TEST(BottomKAlgebraTest, InsertKeepsSmallestDistinctValues) {
  std::vector<uint64_t> sig;
  for (uint64_t v : {50u, 10u, 30u, 10u, 70u, 20u, 40u, 50u}) {
    BottomKInsert(&sig, v, /*cap=*/4);
  }
  EXPECT_EQ(sig, (std::vector<uint64_t>{10, 20, 30, 40}));
  // A value above a full signature's max is a no-op.
  BottomKInsert(&sig, 99, 4);
  EXPECT_EQ(sig.back(), 40u);
  // A smaller value displaces the max.
  BottomKInsert(&sig, 5, 4);
  EXPECT_EQ(sig, (std::vector<uint64_t>{5, 10, 20, 30}));
}

TEST(BottomKAlgebraTest, MergeIsAssociativeCommutativeIdempotent) {
  // Small value universe on purpose: collisions across the inputs exercise
  // the distinct-value semantics that make the union an algebra at all.
  Rng rng(FuzzSeed(1) + 0x99);
  const size_t cap = 8;
  for (int trial = 0; trial < 64; ++trial) {
    const auto make = [&rng, cap] {
      std::vector<uint64_t> sig;
      const size_t len = rng.UniformInt(2 * cap);
      for (size_t i = 0; i < len; ++i) {
        BottomKInsert(&sig, rng.UniformInt(48), cap);
      }
      return sig;
    };
    const std::vector<uint64_t> a = make();
    const std::vector<uint64_t> b = make();
    const std::vector<uint64_t> c = make();
    std::vector<uint64_t> ab, ba, ab_c, bc, a_bc, aa;
    BottomKMerge(a, b, cap, &ab);
    BottomKMerge(b, a, cap, &ba);
    EXPECT_EQ(ab, ba) << "trial " << trial;
    BottomKMerge(ab, c, cap, &ab_c);
    BottomKMerge(b, c, cap, &bc);
    BottomKMerge(a, bc, cap, &a_bc);
    EXPECT_EQ(ab_c, a_bc) << "trial " << trial;
    BottomKMerge(a, a, cap, &aa);
    EXPECT_EQ(aa, a) << "trial " << trial;
  }
}

TEST(BottomKAlgebraTest, EstimateIsExactWhileUnderFull) {
  std::vector<uint64_t> sig;
  EXPECT_DOUBLE_EQ(BottomKEstimate(sig, 8), 0.0);
  for (uint64_t v : {1u, 5u, 9u}) BottomKInsert(&sig, v, 8);
  EXPECT_DOUBLE_EQ(BottomKEstimate(sig, 8), 3.0);
}

TEST(BottomKAlgebraTest, FullEstimatorTracksDistinctCardinality) {
  // 3000 uniform 64-bit ranks into a cap-64 signature: the (cap-1)/U_cap
  // estimator should land within ~3/sqrt(cap-1) relative error.
  const size_t cap = 64;
  std::vector<uint64_t> sig;
  for (NodeId v = 0; v < 3000; ++v) {
    BottomKInsert(&sig, SketchNodeRank(FuzzSeed(2) + 0xabc, v), cap);
  }
  ASSERT_EQ(sig.size(), cap);
  const double est = BottomKEstimate(sig, cap);
  EXPECT_GT(est, 3000.0 * 0.6);
  EXPECT_LT(est, 3000.0 * 1.4);
}

// ---------------------------------------------------------------------------
// Build identity and structural invariants.
// ---------------------------------------------------------------------------

TEST(SketchBuildTest, SerialAndParallelBuildsBitIdentical) {
  const World w = MakeWorld(FuzzSeed(3));
  const uint64_t rng_seed = 77;
  Rng seeder(rng_seed);
  const uint64_t schedule_seed = seeder.Next();  // the serial build's 1 draw

  EngineCore serial(w.graph, w.attrs, SketchOpts());
  Rng rng(rng_seed);
  serial.BuildHimor(rng);
  ASSERT_NE(serial.sketch(), nullptr);
  EXPECT_EQ(serial.sketch()->schedule_seed(), schedule_seed);
  EXPECT_EQ(serial.sketch()->theta(), SketchOpts().theta);
  EXPECT_EQ(serial.sketch()->NumNodes(), w.graph.NumNodes());

  EngineCore par1(w.graph, w.attrs, SketchOpts());
  par1.BuildHimorParallel(schedule_seed, 1);
  EngineCore par4(w.graph, w.attrs, SketchOpts());
  par4.BuildHimorParallel(schedule_seed, 4);
  const std::string bytes = SketchBytes(serial);
  EXPECT_EQ(bytes, SketchBytes(par1));
  EXPECT_EQ(bytes, SketchBytes(par4));
}

TEST(SketchBuildTest, ThresholdAndSignatureInvariants) {
  const World w = MakeWorld(FuzzSeed(4));
  EngineCore core(w.graph, w.attrs, SketchOpts());
  Rng rng(5);
  core.BuildHimor(rng);
  ASSERT_NE(core.sketch(), nullptr);
  const CoverageSketchIndex& sk = *core.sketch();
  size_t materialized = 0;
  for (size_t ci = 0; ci < sk.NumCommunities(); ++ci) {
    const CommunityId c = static_cast<CommunityId>(ci);
    const auto thr = sk.ThresholdsOf(c);
    const auto sig = sk.SignatureOf(c);
    EXPECT_LE(thr.size(), sk.rank_depth());
    EXPECT_LE(thr.size(), sk.SupportOf(c));
    for (size_t i = 1; i < thr.size(); ++i) EXPECT_LE(thr[i], thr[i - 1]);
    EXPECT_LE(sig.size(), sk.sketch_cap());
    for (size_t i = 1; i < sig.size(); ++i) EXPECT_LT(sig[i - 1], sig[i]);
    if (!thr.empty()) ++materialized;
    // The one-sided prune bound and the rung's rank estimate must agree:
    // ProvesNotTopK(c, k, t) iff at least k stored thresholds beat t.
    for (uint32_t k : {1u, 2u, 5u}) {
      for (uint32_t t : {0u, 1u, 3u, 100u}) {
        EXPECT_EQ(sk.ProvesNotTopK(c, k, t),
                  k <= thr.size() && sk.EstimatedRank(c, t) >= k)
            << "c=" << c << " k=" << k << " t=" << t;
      }
    }
  }
  EXPECT_GT(materialized, 0u);
  // Out-of-range communities (incl. kInvalidCommunity) never prove anything.
  EXPECT_FALSE(sk.ProvesNotTopK(kInvalidCommunity, 1, 0));
}

TEST(SketchBuildTest, SketchBuildFailpointDropsSketchKeepsIndex) {
  const World w = MakeWorld(FuzzSeed(5));
  EngineCore core(w.graph, w.attrs, SketchOpts());
  {
    ScopedFailpoint fp("influence/sketch_build", /*count=*/1);
    Rng rng(6);
    core.BuildHimor(rng);
  }
  EXPECT_NE(core.himor(), nullptr);
  EXPECT_EQ(core.sketch(), nullptr);
  // Sketch loss degrades latency only: exact queries still serve.
  QueryWorkspace ws(core, 1);
  EXPECT_EQ(core.QueryCodU(0, 3, ws).code, StatusCode::kOk);
  // Rebuilding without the failpoint restores the sketch.
  Rng rng2(6);
  core.BuildHimor(rng2);
  EXPECT_NE(core.sketch(), nullptr);
}

// ---------------------------------------------------------------------------
// The prune property: sketch_prune on vs off is bit-identical on every
// exact query (the sketch bound is one-sided, the pool schedule pinned).
// ---------------------------------------------------------------------------

class SketchPruneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SketchPruneTest, PruningNeverChangesExactAnswers) {
  const uint64_t seed = FuzzSeed(GetParam());
  const World w = MakeWorld(seed);
  EngineOptions off_opts = SketchOpts();
  off_opts.sketch_prune = false;
  EngineCore pruned(w.graph, w.attrs, SketchOpts());
  EngineCore plain(w.graph, w.attrs, off_opts);
  pruned.BuildHimorParallel(seed + 1, 2);
  plain.BuildHimorParallel(seed + 1, 2);
  ASSERT_NE(pruned.sketch(), nullptr);

  size_t levels_pruned = 0;
  QueryWorkspace ws_a(pruned, 0);
  QueryWorkspace ws_b(plain, 0);
  for (NodeId q = 0; q < w.graph.NumNodes(); ++q) {
    for (uint32_t k : {1u, 2u, 5u}) {
      ws_a.ReseedRng(900 + q);
      ws_b.ReseedRng(900 + q);
      const CodResult a = pruned.QueryCodU(q, k, ws_a);
      const CodResult b = plain.QueryCodU(q, k, ws_b);
      EXPECT_TRUE(testing::SameResult(a, b)) << "CODU q=" << q << " k=" << k;
      levels_pruned += a.stats.sketch_levels_pruned;
    }
    const auto attrs = w.attrs.AttributesOf(q);
    if (attrs.empty()) continue;
    ws_a.ReseedRng(7000 + q);
    ws_b.ReseedRng(7000 + q);
    const CodResult a = pruned.QueryCodLMinus(q, attrs[0], 4, ws_a);
    const CodResult b = plain.QueryCodLMinus(q, attrs[0], 4, ws_b);
    EXPECT_TRUE(testing::SameResult(a, b)) << "CODL- q=" << q;
    levels_pruned += a.stats.sketch_levels_pruned;
    ws_a.ReseedRng(8000 + q);
    ws_b.ReseedRng(8000 + q);
    const CodResult a2 = pruned.QueryCodL(q, attrs[0], 4, ws_a);
    const CodResult b2 = plain.QueryCodL(q, attrs[0], 4, ws_b);
    EXPECT_TRUE(testing::SameResult(a2, b2)) << "CODL q=" << q;
    levels_pruned += a2.stats.sketch_levels_pruned;
  }
  // The suite proves pruning is SAFE above; this proves it actually FIRES
  // (an inert guide would pass the equality checks trivially).
  EXPECT_GT(levels_pruned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SketchPruneTest, ::testing::Values(31, 32, 33));

// ---------------------------------------------------------------------------
// The sketch rung.
// ---------------------------------------------------------------------------

TEST(SketchRungTest, DirectSketchQueriesAlwaysDegraded) {
  const World w = MakeWorld(FuzzSeed(61));
  EngineCore core(w.graph, w.attrs, SketchOpts());
  Rng rng(13);
  core.BuildHimor(rng);
  QueryWorkspace ws(core, 1);
  size_t found = 0;
  for (NodeId q = 0; q < w.graph.NumNodes(); q += 3) {
    QuerySpec spec;
    spec.variant = CodVariant::kCodSketch;
    spec.node = q;
    spec.k = 3;
    const CodResult r = core.Query(spec, ws);
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_TRUE(r.degraded) << "q=" << q;
    EXPECT_EQ(r.variant_served, CodVariant::kCodSketch);
    if (r.found) {
      ++found;
      EXPECT_TRUE(r.answered_from_index);
      EXPECT_NE(std::find(r.members.begin(), r.members.end(), q),
                r.members.end())
          << "answer community must contain q";
    }
  }
  EXPECT_GT(found, 0u);
}

TEST(SketchRungTest, ShedBatchBottomsOutInSketchRung) {
  // Extreme admission shedding clamps every ladder to its cheapest rung;
  // with a sketch present that rung is CODSKETCH, and every shed answer
  // must equal a direct sketch query (the rung is deterministic — no rng).
  const World w = MakeWorld(FuzzSeed(62));
  EngineCore core(w.graph, w.attrs, SketchOpts());
  core.BuildHimorParallel(17, 2);
  ASSERT_NE(core.sketch(), nullptr);

  std::vector<QuerySpec> specs;
  for (NodeId q = 0; q < 30; ++q) {
    QuerySpec spec;
    spec.variant = q % 2 == 0 ? CodVariant::kCodU : CodVariant::kCodUIndexed;
    spec.node = q;
    spec.k = 3;
    specs.push_back(spec);
  }
  BatchOptions options;
  options.shed_rungs = 99;  // clamped to the last rung of every ladder
  TaskScheduler pool(2);
  BatchStats stats;
  const std::vector<CodResult> results =
      RunQueryBatch(core, specs, pool, /*batch_seed=*/5, options, &stats);

  QueryWorkspace ws(core, 0);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
    EXPECT_TRUE(results[i].degraded) << "spec " << i;
    EXPECT_EQ(results[i].variant_served, CodVariant::kCodSketch)
        << "spec " << i;
    QuerySpec direct = specs[i];
    direct.variant = CodVariant::kCodSketch;
    const CodResult want = core.Query(direct, ws);
    EXPECT_EQ(results[i].found, want.found) << "spec " << i;
    EXPECT_EQ(results[i].members, want.members) << "spec " << i;
    EXPECT_EQ(results[i].rank, want.rank) << "spec " << i;
  }
  EXPECT_EQ(stats.degraded, specs.size());
  EXPECT_EQ(stats.per_rung[0], 0u);
}

TEST(SketchRungTest, RungAbsentWhenDisabledOrSketchless) {
  // sketch_rung = false (or no sketch at all): the shed ladder bottoms out
  // in the exact index rung exactly as before this feature existed.
  const World w = MakeWorld(FuzzSeed(63));
  EngineOptions no_rung = SketchOpts();
  no_rung.sketch_rung = false;
  EngineCore core(w.graph, w.attrs, no_rung);
  core.BuildHimorParallel(19, 2);

  std::vector<QuerySpec> specs;
  for (NodeId q = 0; q < 12; ++q) {
    QuerySpec spec;
    spec.variant = CodVariant::kCodU;
    spec.node = q;
    spec.k = 3;
    specs.push_back(spec);
  }
  BatchOptions options;
  options.shed_rungs = 99;
  TaskScheduler pool(2);
  const std::vector<CodResult> results =
      RunQueryBatch(core, specs, pool, 5, options);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].variant_served, CodVariant::kCodUIndexed)
        << "spec " << i;
  }
}

// ---------------------------------------------------------------------------
// Snapshot persistence (kSketch section, container v3).
// ---------------------------------------------------------------------------

TEST(SketchSnapshotTest, EncodeDecodeRoundTripsSketchSection) {
  const World w = MakeWorld(FuzzSeed(41));
  EngineCore core(w.graph, w.attrs, SketchOpts());
  Rng rng(9);
  core.BuildHimor(rng);
  ASSERT_NE(core.sketch(), nullptr);
  EpochSnapshotMeta meta;
  meta.epoch = 3;
  const std::string bytes = EncodeEpochSnapshot(meta, core);
  const Result<DecodedEpochSnapshot> decoded =
      DecodeEpochSnapshot(bytes, "sketch-roundtrip");
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_TRUE(decoded.value().sketch.has_value());
  BinaryBufferWriter wtr;
  decoded.value().sketch->SerializeTo(wtr);
  EXPECT_EQ(wtr.bytes(), SketchBytes(core));

  // A sketchless core writes no kSketch section and decodes sketch-less.
  EngineCore bare(w.graph, w.attrs, EngineOptions{});
  Rng rng2(9);
  bare.BuildHimor(rng2);
  const Result<DecodedEpochSnapshot> decoded2 =
      DecodeEpochSnapshot(EncodeEpochSnapshot(meta, bare), "bare-roundtrip");
  ASSERT_TRUE(decoded2.ok()) << decoded2.status().message();
  EXPECT_FALSE(decoded2.value().sketch.has_value());
}

TEST(SketchSnapshotTest, WarmRestartRestoresSketchBitForBit) {
  const std::string dir = FreshDir("warm");
  World w = MakeWorld(FuzzSeed(42));
  const size_t n = w.graph.NumNodes();
  ServiceOptions options;
  options.seed = 11;
  options.snapshot_dir = dir;
  options.rebuild_threshold = 1e9;
  options.engine.theta = 16;
  options.engine.sketch_bits = 5;
  ASSERT_TRUE(options.Validate().ok());

  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);
  ASSERT_NE(service.Snapshot().core->sketch(), nullptr);
  const std::string want = SketchBytes(*service.Snapshot().core);

  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  const DynamicCodService::EpochSnapshot snap = recovered.value()->Snapshot();
  ASSERT_NE(snap.core->sketch(), nullptr);
  EXPECT_EQ(SketchBytes(*snap.core), want);

  // Restored sketch serves the rung identically to the writer.
  QueryWorkspace ws_a(*service.Snapshot().core, 1);
  QueryWorkspace ws_b(*snap.core, 1);
  for (NodeId q = 0; q < n; q += 9) {
    QuerySpec spec;
    spec.variant = CodVariant::kCodSketch;
    spec.node = q;
    spec.k = 3;
    const CodResult a = service.Snapshot().core->Query(spec, ws_a);
    const CodResult b = snap.core->Query(spec, ws_b);
    EXPECT_TRUE(testing::SameResult(a, b)) << "q=" << q;
  }
}

TEST(SketchSnapshotTest, FingerprintCoversSketchBitsNotLatencyKnobs) {
  const ServiceOptions a;
  ServiceOptions b = a;
  b.engine.sketch_bits = 6;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint())
      << "sketch_bits shapes persisted state; it must gate warm restore";
  ServiceOptions c = a;
  c.engine.sketch_prune = false;
  c.engine.sketch_rung = false;
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint())
      << "prune/rung are latency knobs; flipping them must not cost a "
         "warm restart";
}

TEST(SketchSnapshotTest, ValidateRejectsOversizedSketchBits) {
  ServiceOptions options;
  options.engine.sketch_bits = 17;
  EXPECT_FALSE(options.Validate().ok());
  options.engine.sketch_bits = 16;
  EXPECT_TRUE(options.Validate().ok());
}

// ---------------------------------------------------------------------------
// Delta rebuilds carry the sketch: a delta chain's sketch is bit-identical
// to a cold rebuild's on the same final edge set.
// ---------------------------------------------------------------------------

TEST(SketchDeltaTest, DeltaChainSketchMatchesColdRebuild) {
  const uint64_t seed = FuzzSeed(51);
  World w = MakeWorld(seed, 160);
  World w2 = MakeWorld(seed, 160);  // deterministic twin for the cold side
  const size_t n = w.graph.NumNodes();
  ServiceOptions options;
  options.seed = 7;
  options.delta_rebuild = true;
  options.rebuild_threshold = 1e9;  // rebuilds only via explicit Refresh()
  options.delta_max_dirty_fraction = 1.0;
  options.engine.theta = 16;
  options.engine.sketch_bits = 5;

  DynamicCodService delta(std::move(w.graph), std::move(w.attrs), options);
  Rng updates(seed ^ 0x5ca1ab1e);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 6; ++i) {
      const NodeId u = static_cast<NodeId>(updates.UniformInt(n));
      const NodeId v = static_cast<NodeId>(updates.UniformInt(n));
      if (u == v) continue;
      if (updates.UniformInt(3) == 0) {
        delta.RemoveEdge(u, v);
      } else {
        delta.AddEdge(u, v, 1.0 + 0.25 * updates.UniformInt(4));
      }
    }
    ASSERT_TRUE(delta.Refresh().ok());
  }

  const DynamicCodService::EpochSnapshot evolved = delta.Snapshot();
  ASSERT_NE(evolved.core->sketch(), nullptr);
  DynamicCodService cold(CopyGraph(evolved.core->graph()), std::move(w2.attrs),
                         options);
  ASSERT_NE(cold.Snapshot().core->sketch(), nullptr);
  EXPECT_EQ(SketchBytes(*evolved.core), SketchBytes(*cold.Snapshot().core));
}

}  // namespace
}  // namespace cod
