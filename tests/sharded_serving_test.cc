// Sharded serving tier (src/serving/): component-atomic partitioning, the
// deterministic scatter/gather router, shard-aware degradation, and the
// per-shard snapshot layout behind ShardedCodService::Recover.
//
// The flagship assertions are the ISSUE's acceptance criteria:
//   * merged QueryBatch answers are BIT-IDENTICAL across 1/2/4 shards and
//     across worker counts (on a synthetic multi-component world and on
//     cora-sim, the CI-pinned dataset);
//   * a failpoint-stalled rebuild on shard 0 never blocks shard 1's
//     queries;
//   * a shard-wide deadline miss ("serving/shard_deadline") degrades that
//     shard's slice deterministically instead of erroring the batch;
//   * Recover() cold-rebuilds a shard whose snapshots are missing or
//     corrupt while warm-restoring the others.
//
// CI runs this binary once per shard count (COD_SHARD_COUNT=1/2/4); when
// the variable is set the cross-layout suites compare that layout against
// the 1-shard baseline, otherwise they sweep all three in-process.

#include "serving/sharded_service.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "serving/partition.h"
#include "serving/service_interface.h"
#include "tests/test_util.h"

namespace cod {
namespace {

namespace fs = std::filesystem;

struct World {
  Graph graph;
  AttributeTable attrs;
};

// `parts` disjoint HPP blocks glued into one graph: every part is (at
// least) one connected component of its own, so a component-atomic
// partition has real spreading to do.
World MakeMultiWorld(uint64_t seed, size_t parts) {
  constexpr size_t kNodesPerPart = 60;
  constexpr size_t kEdgesPerPart = 220;
  Rng rng(seed);
  GraphBuilder gb(parts * kNodesPerPart);
  std::vector<uint32_t> block(parts * kNodesPerPart, 0);
  uint32_t next_block = 0;
  for (size_t p = 0; p < parts; ++p) {
    HppParams params;
    params.num_nodes = kNodesPerPart;
    params.num_edges = kEdgesPerPart;
    params.levels = 2;
    params.fanout = 3;
    GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
    const NodeId base = static_cast<NodeId>(p * kNodesPerPart);
    for (EdgeId e = 0; e < gen.graph.NumEdges(); ++e) {
      const auto [u, v] = gen.graph.Endpoints(e);
      gb.AddEdge(base + u, base + v, gen.graph.Weight(e));
    }
    for (size_t v = 0; v < kNodesPerPart; ++v) {
      block[base + v] = next_block + gen.block[v];
    }
    next_block += gen.num_blocks;
  }
  World w;
  w.graph = std::move(gb).Build();
  w.attrs = AssignCorrelatedAttributes(block, 5, 0.8, 0.1, rng);
  return w;
}

ServiceOptions BaseOptions(uint32_t num_shards) {
  ServiceOptions options;
  options.rebuild_threshold = 0.5;
  options.seed = 7;
  options.num_shards = num_shards;
  // The 1-shard baseline must answer from the same component-scoped world
  // the shard engines are forced into, or the comparison is meaningless.
  options.engine.component_scoped = true;
  return options;
}

// A mixed CODL/CODU workload over the attributed nodes.
std::vector<QuerySpec> MakeSpecs(const AttributeTable& attrs, size_t count,
                                 uint64_t seed) {
  Rng rng(seed);
  const std::vector<Query> queries = GenerateQueries(attrs, count, rng);
  std::vector<QuerySpec> specs;
  specs.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QuerySpec spec;
    spec.node = queries[i].node;
    if (i % 3 == 2) {
      spec.variant = CodVariant::kCodU;
    } else {
      spec.variant = CodVariant::kCodL;
      spec.attrs = {queries[i].attribute};
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectSameResults(const std::vector<CodResult>& a,
                       const std::vector<CodResult>& b,
                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(testing::SameResult(a[i], b[i]))
        << label << ": query " << i << " diverged";
  }
}

// Shard counts the cross-layout suites sweep. CI's matrix sets
// COD_SHARD_COUNT so each job pins one layout against the baseline.
std::vector<uint32_t> ShardCountsUnderTest() {
  if (const char* env = std::getenv("COD_SHARD_COUNT")) {
    const uint32_t n = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    if (n > 1) return {1, n};
    return {1};
  }
  return {1, 2, 4};
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sharded_serving-" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------------

TEST(PartitionTest, NeverSplitsAComponent) {
  World w = MakeMultiWorld(1, 4);
  const Components comps = ConnectedComponents(w.graph);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kConnectedComponents,
        PartitionStrategy::kAttributeLocality}) {
    const GraphPartition part =
        PartitionGraph(w.graph, w.attrs, 3, strategy);
    ASSERT_EQ(part.shard_of_node.size(), w.graph.NumNodes());
    ASSERT_EQ(part.num_shards, 3u);
    // Same component => same shard (checking labels covers every edge).
    std::vector<uint32_t> shard_of_comp(comps.count, kInvalidNode);
    for (NodeId v = 0; v < w.graph.NumNodes(); ++v) {
      uint32_t& expected = shard_of_comp[comps.label[v]];
      if (expected == kInvalidNode) expected = part.shard_of_node[v];
      EXPECT_EQ(part.shard_of_node[v], expected)
          << "component " << comps.label[v] << " split at node " << v;
    }
  }
}

TEST(PartitionTest, ShardGraphsTileTheEdgeSet) {
  World w = MakeMultiWorld(2, 3);
  const GraphPartition part = PartitionGraph(
      w.graph, w.attrs, 2, PartitionStrategy::kConnectedComponents);
  size_t total_edges = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    const Graph shard = BuildShardGraph(w.graph, part, s);
    EXPECT_EQ(shard.NumNodes(), w.graph.NumNodes());  // full node space
    for (EdgeId e = 0; e < shard.NumEdges(); ++e) {
      const auto [u, v] = shard.Endpoints(e);
      EXPECT_EQ(part.shard_of_node[u], s);
      EXPECT_EQ(part.shard_of_node[v], s);
    }
    total_edges += shard.NumEdges();
  }
  EXPECT_EQ(total_edges, w.graph.NumEdges());
  EXPECT_GT(BuildShardGraph(w.graph, part, 0).NumEdges(), 0u);
  EXPECT_GT(BuildShardGraph(w.graph, part, 1).NumEdges(), 0u);
}

TEST(PartitionTest, SingleComponentLeavesExtraShardsEmpty) {
  // One clique = one component: with 4 shards, three must be empty, and
  // the service must still serve every query.
  Graph g = testing::MakeClique(8);
  AttributeTableBuilder ab;
  for (NodeId v = 0; v < 8; ++v) ab.Add(v, "X");
  AttributeTable attrs = std::move(ab).Build(8);
  const GraphPartition part = PartitionGraph(
      g, attrs, 4, PartitionStrategy::kConnectedComponents);
  const uint32_t home = part.shard_of_node[0];
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(part.shard_of_node[v], home);

  ShardedCodService service(std::move(g), std::move(attrs), BaseOptions(4));
  EXPECT_EQ(service.num_shards(), 4u);
  Rng rng(3);
  EXPECT_TRUE(service.QueryCodL(0, 0, 3, rng).found);
}

// ---------------------------------------------------------------------------
// Determinism across layouts and worker counts (the flagship contract).
// ---------------------------------------------------------------------------

TEST(ShardedDeterminismTest, BatchBitIdenticalAcrossShardAndWorkerCounts) {
  World base = MakeMultiWorld(10, 4);
  const std::vector<QuerySpec> specs = MakeSpecs(base.attrs, 40, 99);
  constexpr uint64_t kBatchSeed = 1234;

  std::vector<CodResult> reference;
  for (const uint32_t num_shards : ShardCountsUnderTest()) {
    World w = MakeMultiWorld(10, 4);  // same seed => same world
    const std::unique_ptr<CodServiceInterface> service = MakeCodService(
        std::move(w.graph), std::move(w.attrs), BaseOptions(num_shards));
    for (const uint32_t workers : {1u, 4u}) {
      TaskScheduler scheduler(workers);
      BatchStats stats;
      const std::vector<CodResult> got = service->QueryBatch(
          specs, scheduler, kBatchSeed, BatchOptions{}, &stats);
      EXPECT_EQ(stats.Served(), specs.size());
      EXPECT_EQ(stats.shard_missed, 0u);
      if (reference.empty()) {
        reference = got;
        ASSERT_EQ(reference.size(), specs.size());
        continue;
      }
      ExpectSameResults(got, reference,
                        "shards=" + std::to_string(num_shards) +
                            " workers=" + std::to_string(workers));
    }
  }
  // The workload must actually find communities for the comparison to
  // mean anything.
  size_t found = 0;
  for (const CodResult& r : reference) found += r.found;
  EXPECT_GT(found, specs.size() / 2);
}

TEST(ShardedDeterminismTest, BatchBitIdenticalOnCoraSim) {
  const std::vector<QuerySpec>* specs_ptr = nullptr;
  std::vector<QuerySpec> specs;
  std::vector<CodResult> reference;
  for (const uint32_t num_shards : ShardCountsUnderTest()) {
    Result<AttributedGraph> data = MakeDataset("cora-sim");
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    if (specs_ptr == nullptr) {
      specs = MakeSpecs(data->attributes, 32, 5);
      specs_ptr = &specs;
    }
    const std::unique_ptr<CodServiceInterface> service =
        MakeCodService(std::move(data->graph), std::move(data->attributes),
                       BaseOptions(num_shards));
    TaskScheduler scheduler(4);
    const std::vector<CodResult> got =
        service->QueryBatch(*specs_ptr, scheduler, /*batch_seed=*/77);
    if (reference.empty()) {
      reference = got;
      continue;
    }
    ExpectSameResults(got, reference,
                      "cora-sim shards=" + std::to_string(num_shards));
  }
}

TEST(ShardedDeterminismTest, AttributeLocalityLayoutAnswersIdentically) {
  // The partitioner decides WHERE a query runs, never WHAT it answers:
  // both strategies must merge to the same vector.
  const std::vector<QuerySpec> specs =
      MakeSpecs(MakeMultiWorld(11, 3).attrs, 24, 42);
  std::vector<CodResult> reference;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kConnectedComponents,
        PartitionStrategy::kAttributeLocality}) {
    World w = MakeMultiWorld(11, 3);
    ServiceOptions options = BaseOptions(2);
    options.partitioner = strategy;
    const std::unique_ptr<CodServiceInterface> service =
        MakeCodService(std::move(w.graph), std::move(w.attrs), options);
    TaskScheduler scheduler(3);
    const std::vector<CodResult> got =
        service->QueryBatch(specs, scheduler, /*batch_seed=*/7);
    if (reference.empty()) {
      reference = got;
      continue;
    }
    ExpectSameResults(got, reference, "attribute-locality layout");
  }
}

// ---------------------------------------------------------------------------
// Shard isolation: one shard's rebuild trouble is not another's latency.
// ---------------------------------------------------------------------------

TEST(ShardIsolationTest, StalledRebuildOnOneShardNeverBlocksAnother) {
  World w = MakeMultiWorld(20, 2);
  ServiceOptions options = BaseOptions(2);
  options.rebuild_threshold = 0.01;
  options.async_rebuild = true;
  options.max_rebuild_retries = 3;
  options.rebuild_backoff_initial_ms = 20;
  options.rebuild_backoff_max_ms = 40;
  TaskScheduler scheduler(2);
  options.scheduler = &scheduler;
  ShardedCodService service(std::move(w.graph), std::move(w.attrs), options);

  // Pick one node per shard for targeted updates / probes.
  NodeId on_shard0 = kInvalidNode, on_shard1 = kInvalidNode;
  for (NodeId v = 0; v < service.partition().shard_of_node.size(); ++v) {
    if (service.ShardOf(v) == 0 && on_shard0 == kInvalidNode) on_shard0 = v;
    if (service.ShardOf(v) == 1 && on_shard1 == kInvalidNode) on_shard1 = v;
  }
  ASSERT_NE(on_shard0, kInvalidNode);
  ASSERT_NE(on_shard1, kInvalidNode);

  const World probe_world = MakeMultiWorld(20, 2);
  const std::vector<QuerySpec> all_specs = MakeSpecs(probe_world.attrs, 24, 8);
  std::vector<QuerySpec> shard1_specs;
  for (const QuerySpec& s : all_specs) {
    if (service.ShardOf(s.node) == 1) shard1_specs.push_back(s);
  }
  ASSERT_FALSE(shard1_specs.empty());

  {
    // Every rebuild attempt on ANY engine now fails; only shard 0 will
    // attempt one, and it stays stalled in its retry/backoff loop for the
    // whole scope.
    ScopedFailpoint stall("dynamic_service/rebuild", /*count=*/-1);
    // Drift shard 0 over its threshold and kick ITS engine only into the
    // (doomed) async rebuild; shard 1 has no drift and schedules nothing.
    for (int i = 0; i < 8; ++i) {
      service.AddEdge(on_shard0, static_cast<NodeId>(on_shard0 + 1 + i));
      service.RemoveEdge(on_shard0, static_cast<NodeId>(on_shard0 + 1 + i));
    }
    ASSERT_TRUE(service.shard(0).RefreshDue());
    ASSERT_TRUE(service.shard(0).RefreshAsync());

    // Shard 1 must answer at full service while shard 0 is down: same
    // epoch, no degradation, batch completes without waiting on shard 0's
    // retries (a stall would hang this call past the retry budget — the
    // real latency assertion is that this returns at all, which TSAN's
    // scheduling jitter cannot fake).
    BatchStats stats;
    const std::vector<CodResult> got = service.QueryBatch(
        shard1_specs, scheduler, /*batch_seed=*/3, BatchOptions{}, &stats);
    EXPECT_EQ(stats.Served(), shard1_specs.size());
    EXPECT_EQ(stats.shard_missed, 0u);
    EXPECT_EQ(stats.degraded, 0u);
    EXPECT_EQ(service.shard(1).epoch(), 1u);
    // Shard 1's only build is its initial epoch — it never joined the
    // doomed rebuild.
    EXPECT_EQ(service.shard(1).rebuild_stats().attempts, 1u);
    EXPECT_EQ(service.shard(0).epoch(), 1u);
    service.WaitForRebuild();  // drain the doomed retries before disarming
    EXPECT_GT(Failpoints::Instance().TriggerCount("dynamic_service/rebuild"),
              0u);
    EXPECT_GT(service.rebuild_stats().failures, 0u);
  }

  // Disarmed: the stalled shard recovers on the next refresh; shard 1's
  // epoch stream never moved.
  ASSERT_TRUE(service.shard(0).Refresh().ok());
  EXPECT_GE(service.shard(0).epoch(), 2u);
  EXPECT_EQ(service.shard(1).epoch(), 1u);
  EXPECT_EQ(service.epoch(), 1u);  // MIN over shards: the freshness floor
}

// ---------------------------------------------------------------------------
// Shard-aware degradation: a missed deadline is an answer, not an error.
// ---------------------------------------------------------------------------

TEST(ShardDegradationTest, DeadlineMissedShardDegradesDeterministically) {
  World w = MakeMultiWorld(30, 3);
  ShardedCodService service(std::move(w.graph), std::move(w.attrs),
                            BaseOptions(2));
  const World probe_world = MakeMultiWorld(30, 3);
  const std::vector<QuerySpec> specs = MakeSpecs(probe_world.attrs, 30, 17);
  size_t on_shard0 = 0;
  for (const QuerySpec& s : specs) on_shard0 += service.ShardOf(s.node) == 0;
  ASSERT_GT(on_shard0, 0u);
  ASSERT_LT(on_shard0, specs.size());
  TaskScheduler scheduler(3);

  const std::vector<CodResult> healthy =
      service.QueryBatch(specs, scheduler, /*batch_seed=*/55);

  auto run_degraded = [&](BatchStats* stats) {
    // Polled once per shard in ascending order before submission: count=1
    // deterministically fails exactly shard 0.
    ScopedFailpoint miss("serving/shard_deadline", /*count=*/1);
    return service.QueryBatch(specs, scheduler, /*batch_seed=*/55,
                              BatchOptions{}, stats);
  };
  BatchStats stats;
  const std::vector<CodResult> first = run_degraded(&stats);
  EXPECT_EQ(stats.shard_missed, on_shard0);
  // Outcomes partition: the missed shard's queries live ONLY in
  // shard_missed; the rest are real answers. Nothing errored.
  EXPECT_EQ(stats.Served(), specs.size() - on_shard0);
  EXPECT_EQ(stats.Served() + stats.shard_missed + stats.timeout +
                stats.cancelled,
            specs.size());
  EXPECT_EQ(stats.timeout, 0u);
  EXPECT_EQ(stats.cancelled, 0u);

  for (size_t i = 0; i < specs.size(); ++i) {
    if (service.ShardOf(specs[i].node) == 0) {
      // The missed shard's slice: degraded non-answers.
      EXPECT_EQ(first[i].code, StatusCode::kOk);
      EXPECT_FALSE(first[i].found);
      EXPECT_TRUE(first[i].degraded);
    } else {
      // The healthy shards' answers are untouched by the miss.
      EXPECT_TRUE(testing::SameResult(first[i], healthy[i]))
          << "healthy-shard query " << i << " changed under a shard miss";
    }
  }

  // Re-arming reproduces the exact same degraded batch.
  BatchStats stats2;
  const std::vector<CodResult> second = run_degraded(&stats2);
  EXPECT_EQ(stats2.shard_missed, stats.shard_missed);
  ExpectSameResults(second, first, "repeated shard-deadline miss");
}

// ---------------------------------------------------------------------------
// Cross-shard updates.
// ---------------------------------------------------------------------------

TEST(ShardedUpdateTest, CrossShardEdgeIsRejectedAndCounted) {
  World w = MakeMultiWorld(40, 2);
  ShardedCodService service(std::move(w.graph), std::move(w.attrs),
                            BaseOptions(2));
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId v = 0; v < service.partition().shard_of_node.size(); ++v) {
    if (service.ShardOf(v) == 0 && a == kInvalidNode) a = v;
    if (service.ShardOf(v) == 1 && b == kInvalidNode) b = v;
  }
  ASSERT_NE(a, kInvalidNode);
  ASSERT_NE(b, kInvalidNode);

  Counter* rejected = MetricsRegistry::Instance().GetCounter(
      "cod_shard_cross_edge_rejected_total");
  const uint64_t before = rejected->Value();
  EXPECT_FALSE(service.AddEdge(a, b));
  EXPECT_EQ(rejected->Value(), before + 1);
  EXPECT_FALSE(service.RemoveEdge(a, b));  // can never have been admitted
  EXPECT_EQ(service.pending_updates(), 0u);

  // Same-shard updates still flow to the owning engine.
  const NodeId a2 = [&] {
    for (NodeId v = a + 1; v < service.partition().shard_of_node.size(); ++v) {
      if (service.ShardOf(v) == 0) return v;
    }
    return kInvalidNode;
  }();
  ASSERT_NE(a2, kInvalidNode);
  EXPECT_TRUE(service.AddEdge(a, a2, 2.0) || service.RemoveEdge(a, a2));
  EXPECT_EQ(service.pending_updates(), 1u);
}

// ---------------------------------------------------------------------------
// Per-shard durability: Recover() under a partially damaged layout.
// ---------------------------------------------------------------------------

// Builds a 2-shard service over `dir`, runs one refresh on each shard's
// world, and returns a probe answered before shutdown for comparison.
struct CrashedService {
  ServiceOptions options;
  std::vector<QuerySpec> specs;
  std::vector<CodResult> pre_crash;
  uint64_t final_epoch = 0;
};

CrashedService BuildAndCrash(const std::string& dir) {
  CrashedService out;
  World w = MakeMultiWorld(50, 2);
  out.options = BaseOptions(2);
  out.options.snapshot_dir = dir;
  ShardedCodService service(std::move(w.graph), std::move(w.attrs),
                            out.options);
  const World probe_world = MakeMultiWorld(50, 2);
  out.specs = MakeSpecs(probe_world.attrs, 20, 23);
  TaskScheduler scheduler(2);
  out.pre_crash = service.QueryBatch(out.specs, scheduler, /*batch_seed=*/5);
  out.final_epoch = service.epoch();
  return out;  // service destroyed here: the "crash"
}

TEST(ShardedRecoveryTest, MissingShardSnapshotsColdRebuildThatShardOnly) {
  const std::string dir = FreshDir("missing-shard");
  const CrashedService crashed = BuildAndCrash(dir);
  ASSERT_TRUE(fs::exists(ShardedCodService::ShardSnapshotDir(dir, 0)));
  ASSERT_TRUE(fs::exists(ShardedCodService::ShardSnapshotDir(dir, 1)));
  // Shard 0 loses its entire snapshot directory.
  fs::remove_all(ShardedCodService::ShardSnapshotDir(dir, 0));

  World cold = MakeMultiWorld(50, 2);
  Result<std::unique_ptr<CodServiceInterface>> recovered = RecoverCodService(
      crashed.options, std::move(cold.graph), std::move(cold.attrs));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(), crashed.final_epoch);

  // Cold-rebuilt shard 0 and warm-restored shard 1 answer exactly what the
  // pre-crash service answered: component scoping + the shared seed make
  // the cold epoch bit-compatible with the snapshotted one.
  TaskScheduler scheduler(2);
  const std::vector<CodResult> post = (*recovered)->QueryBatch(
      crashed.specs, scheduler, /*batch_seed=*/5);
  ExpectSameResults(post, crashed.pre_crash, "after losing shard 0 snapshots");
}

TEST(ShardedRecoveryTest, CorruptShardSnapshotsQuarantineAndColdRebuild) {
  const std::string dir = FreshDir("corrupt-shard");
  const CrashedService crashed = BuildAndCrash(dir);
  // Flip a payload byte in EVERY snapshot of shard 0: quarantine exhausts
  // the store (kNotFound) and the shard cold-rebuilds.
  const std::string shard0 = ShardedCodService::ShardSnapshotDir(dir, 0);
  size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(shard0)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 4u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  World cold = MakeMultiWorld(50, 2);
  Result<std::unique_ptr<CodServiceInterface>> recovered = RecoverCodService(
      crashed.options, std::move(cold.graph), std::move(cold.attrs));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // The damaged files were quarantined in place, not deleted.
  size_t corrupt_files = 0;
  for (const auto& entry : fs::directory_iterator(shard0)) {
    corrupt_files += entry.path().string().ends_with(".corrupt");
  }
  EXPECT_EQ(corrupt_files, damaged);

  TaskScheduler scheduler(2);
  const std::vector<CodResult> post = (*recovered)->QueryBatch(
      crashed.specs, scheduler, /*batch_seed=*/5);
  ExpectSameResults(post, crashed.pre_crash, "after corrupting shard 0");
}

TEST(ShardedRecoveryTest, FingerprintMismatchRefusesRecovery) {
  const std::string dir = FreshDir("fingerprint");
  const CrashedService crashed = BuildAndCrash(dir);

  // Same directory, different engine parameters: these snapshots would
  // answer differently, so recovery must refuse outright.
  ServiceOptions tampered = crashed.options;
  tampered.engine.k += 1;
  World cold = MakeMultiWorld(50, 2);
  Result<std::unique_ptr<CodServiceInterface>> recovered = RecoverCodService(
      tampered, std::move(cold.graph), std::move(cold.attrs));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedRecoveryTest, MonoSnapshotsNeverRestoreIntoShards) {
  const std::string dir = FreshDir("mono-vs-sharded");
  ServiceOptions mono = BaseOptions(1);
  mono.snapshot_dir = ShardedCodService::ShardSnapshotDir(dir, 0);
  {
    World w = MakeMultiWorld(60, 2);
    const std::unique_ptr<CodServiceInterface> service =
        MakeCodService(std::move(w.graph), std::move(w.attrs), mono);
    ASSERT_GT(service->epoch(), 0u);
  }
  // A sharded recovery pointed at a layout containing mono snapshots must
  // refuse: num_shards is part of the fingerprint.
  ServiceOptions sharded = BaseOptions(2);
  sharded.snapshot_dir = dir;
  World cold = MakeMultiWorld(60, 2);
  Result<std::unique_ptr<CodServiceInterface>> recovered = RecoverCodService(
      sharded, std::move(cold.graph), std::move(cold.attrs));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// ServiceOptions: validation and the fingerprint.
// ---------------------------------------------------------------------------

TEST(ServiceOptionsTest, ValidateRejectsBrokenConfigurations) {
  EXPECT_TRUE(ServiceOptions{}.Validate().ok());
  {
    ServiceOptions o;
    o.num_shards = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    ServiceOptions o;
    o.async_rebuild = true;  // no scheduler
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    ServiceOptions o;
    o.snapshots_keep = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    ServiceOptions o;
    o.rebuild_backoff_initial_ms = 500;
    o.rebuild_backoff_max_ms = 100;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    ServiceOptions o;
    o.engine.theta = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    ServiceOptions o;
    o.rebuild_threshold = -0.1;
    EXPECT_FALSE(o.Validate().ok());
  }
}

TEST(ServiceOptionsTest, FingerprintTracksAnswerShapingFieldsOnly) {
  const ServiceOptions base;
  const uint64_t fp = base.Fingerprint();
  {
    // Answer-shaping fields move the fingerprint.
    ServiceOptions o;
    o.engine.k += 1;
    EXPECT_NE(o.Fingerprint(), fp);
    o = ServiceOptions{};
    o.seed += 1;
    EXPECT_NE(o.Fingerprint(), fp);
    o = ServiceOptions{};
    o.num_shards = 2;
    EXPECT_NE(o.Fingerprint(), fp);
    o = ServiceOptions{};
    o.engine.component_scoped = true;
    EXPECT_NE(o.Fingerprint(), fp);
  }
  {
    // Latency/durability knobs deliberately do not: tuning them must never
    // cost a warm restart.
    ServiceOptions o;
    o.rebuild_threshold = 0.2;
    o.snapshots_keep = 5;
    o.snapshot_dir = "/elsewhere";
    o.rebuild_budget_seconds = 1.0;
    o.max_rebuild_retries = 9;
    EXPECT_EQ(o.Fingerprint(), fp);
  }
  // Every shard of one layout shares the layout's fingerprint.
  const ServiceOptions sharded_base = BaseOptions(4);
  EXPECT_EQ(ShardedCodService::ShardOptions(sharded_base, 0).Fingerprint(),
            ShardedCodService::ShardOptions(sharded_base, 3).Fingerprint());
}

// ---------------------------------------------------------------------------
// Aggregate views over shards.
// ---------------------------------------------------------------------------

TEST(ShardedAggregateTest, EpochIsTheMinimumAndEdgesTheSum) {
  World w = MakeMultiWorld(70, 2);
  const size_t total_edges = w.graph.NumEdges();
  ShardedCodService service(std::move(w.graph), std::move(w.attrs),
                            BaseOptions(2));
  EXPECT_EQ(service.NumEdges(), total_edges);
  EXPECT_EQ(service.epoch(), 1u);

  // Refresh one shard directly: the aggregate epoch stays at the floor.
  ASSERT_TRUE(service.shard(0).Refresh().ok());
  EXPECT_EQ(service.shard(0).epoch(), 2u);
  EXPECT_EQ(service.shard(1).epoch(), 1u);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.rebuild_stats().published, 3u);  // 2 first + 1 refresh

  // Refresh() lifts every shard, and the floor with it.
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_GE(service.epoch(), 2u);
}

TEST(ShardedAggregateTest, EmptyShardsDoNotPinTheEpochFloor) {
  // One connected component spread across two shards: component-atomic
  // partitioning leaves shard 1 with zero nodes. No update can ever route
  // to it, so its epoch is pinned at 1 forever — the aggregate freshness
  // floor (and the aggregate rebuild stats) must ignore it, or the service
  // would report itself permanently stale no matter how often the real
  // shard republishes.
  constexpr size_t kN = 60;
  GraphBuilder gb(kN);
  std::vector<uint32_t> block(kN);
  Rng rng(77);
  for (NodeId v = 0; v < kN; ++v) {
    gb.AddEdge(v, (v + 1) % kN, 1.0);  // ring: connected by construction
    block[v] = v / 15;
  }
  World w;
  w.graph = std::move(gb).Build();
  w.attrs = AssignCorrelatedAttributes(block, 5, 0.8, 0.1, rng);
  ShardedCodService service(std::move(w.graph), std::move(w.attrs),
                            BaseOptions(2));
  ASSERT_EQ(service.partition().shard_nodes[0], kN);
  ASSERT_EQ(service.partition().shard_nodes[1], 0u);
  EXPECT_EQ(service.epoch(), 1u);

  // Refresh only the populated shard — exactly what threshold-driven
  // refreshes do, since the empty shard can never become due.
  ASSERT_TRUE(service.shard(0).Refresh().ok());
  EXPECT_EQ(service.shard(0).epoch(), 2u);
  EXPECT_EQ(service.shard(1).epoch(), 1u);
  EXPECT_EQ(service.epoch(), 2u);  // the empty shard does not cap the floor

  // Stats likewise: shard 0's first build + refresh only; the empty
  // shard's constant publish baseline is excluded.
  EXPECT_EQ(service.rebuild_stats().published, 2u);
}

}  // namespace
}  // namespace cod
