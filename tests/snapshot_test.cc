// Durable epoch snapshots: container integrity, crash-safe publication,
// corruption quarantine + fallback, and bit-identical warm restart.
//
// The corruption suite leans on the format's total CRC coverage: every byte
// of a snapshot file is covered by either the header CRC or exactly one
// section CRC, so ANY single-byte flip (and any truncation) must produce a
// clean decode error — never a crash, never a silently different engine.
// CI shards shift the fuzz offsets via COD_FUZZ_SEED; failing corruption
// cases copy the offending bytes to COD_SNAPSHOT_ARTIFACT_DIR when set.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "serving/dynamic_service.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "storage/epoch_snapshot.h"
#include "storage/snapshot_store.h"
#include "tests/test_util.h"

namespace cod {
namespace {

namespace fs = std::filesystem;

uint64_t FuzzSeed() {
  const char* env = std::getenv("COD_FUZZ_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

// Copies a snapshot that misbehaved (plus its quarantined twin, if any) to
// the CI artifact directory so the exact failing bytes ship with the run.
void SaveArtifact(const std::string& path) {
  const char* dir = std::getenv("COD_SNAPSHOT_ARTIFACT_DIR");
  if (dir == nullptr) return;
  std::error_code ec;
  fs::create_directories(dir, ec);
  for (const std::string& p : {path, path + ".corrupt"}) {
    if (fs::exists(p, ec)) {
      fs::copy_file(p, std::string(dir) + "/" + fs::path(p).filename().string(),
                    fs::copy_options::overwrite_existing, ec);
    }
  }
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/snapshot_test-" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 120;
  params.num_edges = 450;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

ServiceOptions SnapshotOptions(const std::string& dir) {
  ServiceOptions options;
  options.rebuild_threshold = 0.5;
  options.seed = 7;
  options.snapshot_dir = dir;
  options.snapshots_keep = 2;
  return options;
}

// The determinism probe: CODL + CODU answers for every attributed node,
// from a fresh workspace with a fixed seed. Two cores that answer this
// probe identically (same seed) are serving the same world.
struct ProbeAnswer {
  bool found;
  std::vector<NodeId> members;
  uint32_t rank;
  bool answered_from_index;
  bool degraded;

  bool operator==(const ProbeAnswer& o) const {
    return found == o.found && members == o.members && rank == o.rank &&
           answered_from_index == o.answered_from_index &&
           degraded == o.degraded;
  }
};

std::vector<ProbeAnswer> Probe(const EngineCore& core, uint64_t seed) {
  QueryWorkspace ws(core, seed);
  std::vector<ProbeAnswer> out;
  for (NodeId q = 0; q < core.graph().NumNodes(); q += 3) {
    const auto attrs = core.attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    for (const CodResult& r :
         {core.QueryCodL(q, attrs[0], 5, ws), core.QueryCodU(q, 5, ws)}) {
      out.push_back(ProbeAnswer{r.found, r.members, r.rank,
                                r.answered_from_index, r.degraded});
    }
  }
  return out;
}

uint64_t QuarantinedCount() {
  return MetricsRegistry::Instance()
      .GetCounter("cod_snapshot_corrupt_quarantined_total")
      ->Value();
}

// ---------------------------------------------------------------------------
// Container round trip and service integration.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, FirstEpochIsSnapshottedAndDecodes) {
  const std::string dir = FreshDir("first_epoch");
  World w = MakeWorld(1);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SnapshotOptions(dir));
  SnapshotStore store({dir, 2});
  const auto paths = store.ListSnapshots();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], store.PathForEpoch(1));

  Result<DecodedEpochSnapshot> snap = LoadEpochSnapshotFile(paths[0]);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->meta.epoch, 1u);
  EXPECT_EQ(snap->meta.build_index, 0u);
  EXPECT_EQ(snap->meta.seed, 7u);
  EXPECT_FALSE(snap->meta.degraded);
  const EngineCore& live = service.engine();
  EXPECT_EQ(snap->graph.NumNodes(), live.graph().NumNodes());
  EXPECT_EQ(snap->graph.NumEdges(), live.graph().NumEdges());
  EXPECT_EQ(snap->attributes.NumAttributes(),
            live.attributes().NumAttributes());
  EXPECT_EQ(snap->hierarchy->NumVertices(),
            live.base_hierarchy().NumVertices());
  ASSERT_TRUE(snap->himor.has_value());
  EXPECT_EQ(snap->himor->NumEntries(), live.himor()->NumEntries());
}

TEST(SnapshotTest, EveryPublishSnapshotsAndPrunesToKeep) {
  const std::string dir = FreshDir("prune");
  World w = MakeWorld(2);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SnapshotOptions(dir));
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(service.AddEdge(0, static_cast<NodeId>(60 + round)));
    ASSERT_TRUE(service.Refresh().ok());
  }
  EXPECT_EQ(service.epoch(), 4u);
  SnapshotStore store({dir, 2});
  const auto paths = store.ListSnapshots();
  ASSERT_EQ(paths.size(), 2u);  // keep=2: epochs 3 and 4 survive
  EXPECT_EQ(paths[0], store.PathForEpoch(3));
  EXPECT_EQ(paths[1], store.PathForEpoch(4));
}

// ---------------------------------------------------------------------------
// Warm restart.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, WarmRestartServesBitIdenticalAnswers) {
  const std::string dir = FreshDir("warm_restart");
  const ServiceOptions options = SnapshotOptions(dir);
  std::vector<ProbeAnswer> cold_answers;
  uint64_t cold_epoch = 0;
  {
    World w = MakeWorld(3);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
    ASSERT_TRUE(service.AddEdge(1, 100, 2.0));
    ASSERT_TRUE(service.RemoveEdge(1, 100));
    ASSERT_TRUE(service.AddEdge(2, 90));
    ASSERT_TRUE(service.Refresh().ok());
    cold_epoch = service.epoch();
    cold_answers = Probe(*service.Snapshot().core, /*seed=*/99);
  }  // service destroyed: only the disk remains

  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  DynamicCodService& service = **recovered;
  EXPECT_EQ(service.epoch(), cold_epoch);
  EXPECT_FALSE(service.epoch_degraded());
  const std::vector<ProbeAnswer> warm_answers =
      Probe(*service.Snapshot().core, /*seed=*/99);
  ASSERT_EQ(warm_answers.size(), cold_answers.size());
  for (size_t i = 0; i < cold_answers.size(); ++i) {
    EXPECT_TRUE(warm_answers[i] == cold_answers[i]) << "probe " << i;
  }
}

TEST(SnapshotTest, WarmRestartDoesNotRewriteTheRecoveredEpoch) {
  // A warm restart serves the epoch it loaded; re-snapshotting it would be
  // a byte-identical duplicate write (and, with snapshots_keep pruning,
  // could evict an older epoch for nothing). Recovery must initialize the
  // dedupe watermark to the recovered epoch so no write happens until a
  // NEW epoch publishes.
  const std::string dir = FreshDir("warm_restart_dedupe");
  const ServiceOptions options = SnapshotOptions(dir);
  {
    World w = MakeWorld(6);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
    ASSERT_TRUE(service.AddEdge(2, 90));
    ASSERT_TRUE(service.Refresh().ok());
  }  // crash: only the disk remains

  const auto list_files = [&dir] {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  const std::vector<std::string> files_before = list_files();
  Counter* writes =
      MetricsRegistry::Instance().GetCounter("cod_snapshot_writes_total");
  const uint64_t writes_before = writes->Value();

  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  DynamicCodService& service = **recovered;
  // Serving traffic must not trigger a write either.
  Probe(*service.Snapshot().core, /*seed=*/99);
  EXPECT_EQ(writes->Value(), writes_before);
  EXPECT_EQ(list_files(), files_before);

  // The next real publish resumes snapshotting as usual.
  ASSERT_TRUE(service.AddEdge(3, 80));
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(writes->Value(), writes_before + 1);
}

TEST(SnapshotTest, DeltaSnapshotsReuseUnchangedSections) {
  // Consecutive epochs of one service share the attribute table (and often
  // more) by pointer; the store's section cache must skip re-serializing
  // those sections while producing byte-identical files — reuse is an
  // encode-time shortcut, never a format change.
  const std::string dir = FreshDir("section_reuse");
  World w = MakeWorld(8);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SnapshotOptions(dir));
  Counter* reused = MetricsRegistry::Instance().GetCounter(
      "cod_snapshot_sections_reused_total");
  const uint64_t before = reused->Value();
  ASSERT_TRUE(service.AddEdge(2, 90));
  ASSERT_TRUE(service.Refresh().ok());
  // The attribute table is shared across epochs, so the second write
  // reuses at least that section's cached bytes.
  EXPECT_GT(reused->Value(), before);

  // Reuse is invisible in the bytes: the file decodes cleanly and carries
  // the same world the live core serves.
  SnapshotStore store({dir, 2});
  Result<DecodedEpochSnapshot> snap =
      LoadEpochSnapshotFile(store.PathForEpoch(2));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->meta.epoch, 2u);
  EXPECT_EQ(snap->graph.NumEdges(), service.engine().graph().NumEdges());
  EXPECT_EQ(snap->attributes.NumAttributes(),
            service.engine().attributes().NumAttributes());
}

TEST(SnapshotTest, RecoveredServiceKeepsRebuildDeterminism) {
  // Two histories: (a) one service applies updates U1 then U2 with a
  // rebuild after each; (b) a service applies U1, rebuilds, is destroyed,
  // recovers from its snapshot, then applies U2 and rebuilds. The final
  // epochs must answer identically — recovery restores the rebuild ticket,
  // so the second build draws the same seed stream either way.
  const auto u1 = [](DynamicCodService& s) {
    ASSERT_TRUE(s.AddEdge(3, 77));
    ASSERT_TRUE(s.AddEdge(5, 91));
  };
  const auto u2 = [](DynamicCodService& s) {
    ASSERT_TRUE(s.RemoveEdge(3, 77));
    ASSERT_TRUE(s.AddEdge(8, 64, 1.5));
  };

  const std::string dir_a = FreshDir("determinism_a");
  std::vector<ProbeAnswer> answers_a;
  {
    World w = MakeWorld(4);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              SnapshotOptions(dir_a));
    u1(service);
    ASSERT_TRUE(service.Refresh().ok());
    u2(service);
    ASSERT_TRUE(service.Refresh().ok());
    EXPECT_EQ(service.epoch(), 3u);
    answers_a = Probe(*service.Snapshot().core, 55);
  }

  const std::string dir_b = FreshDir("determinism_b");
  const ServiceOptions options_b = SnapshotOptions(dir_b);
  {
    World w = MakeWorld(4);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options_b);
    u1(service);
    ASSERT_TRUE(service.Refresh().ok());
  }
  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options_b);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  u2(**recovered);
  ASSERT_TRUE((*recovered)->Refresh().ok());
  EXPECT_EQ((*recovered)->epoch(), 3u);
  const std::vector<ProbeAnswer> answers_b =
      Probe(*(*recovered)->Snapshot().core, 55);
  ASSERT_EQ(answers_b.size(), answers_a.size());
  for (size_t i = 0; i < answers_a.size(); ++i) {
    EXPECT_TRUE(answers_b[i] == answers_a[i]) << "probe " << i;
  }
}

TEST(SnapshotTest, RecoverRejectsMismatchedOptions) {
  const std::string dir = FreshDir("mismatch");
  ServiceOptions options = SnapshotOptions(dir);
  {
    World w = MakeWorld(5);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
  }
  options.seed = 8;  // different sampling stream: answers would change
  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, RecoverFromEmptyDirectoryIsNotFound) {
  const std::string dir = FreshDir("empty");
  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(SnapshotOptions(dir));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, DegradedEpochRoundTripsIndexAbsent) {
  const std::string dir = FreshDir("degraded");
  ServiceOptions options = SnapshotOptions(dir);
  {
    World w = MakeWorld(6);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
    ASSERT_TRUE(service.AddEdge(0, 70));
    ScopedFailpoint fp("himor/build", 1);
    ASSERT_TRUE(service.Refresh().ok());  // publishes index-absent
    ASSERT_TRUE(service.epoch_degraded());
  }
  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->epoch_degraded());
  const EngineCore& core = *(*recovered)->Snapshot().core;
  EXPECT_FALSE(core.index_present());
  EXPECT_TRUE(core.index_absent_degraded());
  // Degraded epochs still answer CODL via the compressed fallback.
  Rng rng(9);
  int found = 0;
  for (NodeId q = 0; q < 30; ++q) {
    const auto attrs = core.attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult r = (*recovered)->QueryCodL(q, attrs[0], 5, rng);
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_TRUE(r.degraded);
    found += r.found;
  }
  EXPECT_GT(found, 0);
}

TEST(SnapshotTest, AsyncRebuildSnapshotsInBackground) {
  const std::string dir = FreshDir("async");
  {
    TaskScheduler scheduler(2);
    ServiceOptions options = SnapshotOptions(dir);
    options.async_rebuild = true;
    options.scheduler = &scheduler;
    World w = MakeWorld(7);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
    ASSERT_TRUE(service.AddEdge(4, 80));
    ASSERT_TRUE(service.RefreshAsync());
    service.WaitForRebuild();
    EXPECT_EQ(service.epoch(), 2u);
  }  // dtor joins the maintenance-priority snapshot tasks
  // Strict priority means the epoch-1 snapshot may still have been queued
  // when epoch 2 published; the write for a superseded epoch is skipped by
  // design. The invariant is: the NEWEST epoch is always on disk.
  SnapshotStore store({dir, 2});
  const auto paths = store.ListSnapshots();
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths.back(), store.PathForEpoch(2));
  Result<DecodedEpochSnapshot> snap = LoadEpochSnapshotFile(paths.back());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->meta.epoch, 2u);
}

// ---------------------------------------------------------------------------
// Crash safety.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, FailedWriteLeavesNoPartialSnapshot) {
  const std::string dir = FreshDir("failed_write");
  Counter* failures = MetricsRegistry::Instance().GetCounter(
      "cod_snapshot_write_failures_total");
  const uint64_t failures_before = failures->Value();
  World w = MakeWorld(8);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SnapshotOptions(dir));
  {
    // The fsync failpoint models a crash between write and durability: the
    // publish must still succeed, and the directory must show either the
    // old state or nothing — never a partial file.
    ScopedFailpoint fp("storage/snapshot_fsync", 1);
    ASSERT_TRUE(service.AddEdge(0, 88));
    ASSERT_TRUE(service.Refresh().ok());
  }
  EXPECT_EQ(service.epoch(), 2u);  // publication unaffected
  EXPECT_EQ(failures->Value(), failures_before + 1);
  SnapshotStore store({dir, 2});
  const auto paths = store.ListSnapshots();
  ASSERT_EQ(paths.size(), 1u);  // only epoch 1; epoch 2's write died
  EXPECT_EQ(paths[0], store.PathForEpoch(1));
  // No temp debris either: the failed write unlinked its temp file.
  size_t stray = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    stray += entry.path().extension() == ".tmp";
  }
  EXPECT_EQ(stray, 0u);
  // The next publish snapshots normally again.
  ASSERT_TRUE(service.AddEdge(1, 89));
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(store.ListSnapshots().size(), 2u);
}

TEST(SnapshotTest, InterruptedWriteDebrisIsInvisibleAndCleaned) {
  const std::string dir = FreshDir("debris");
  World w = MakeWorld(9);
  {
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              SnapshotOptions(dir));
  }
  // Simulate a crash mid-write: a half-written temp file next to the good
  // snapshot.
  WriteFile(dir + "/epoch-00000000000000000002.cods.tmp", "partial bytes");
  SnapshotStore store({dir, 2});  // construction sweeps ".tmp" leftovers
  EXPECT_FALSE(fs::exists(dir + "/epoch-00000000000000000002.cods.tmp"));
  const auto paths = store.ListSnapshots();
  ASSERT_EQ(paths.size(), 1u);  // the debris never counted as a snapshot
  EXPECT_TRUE(LoadEpochSnapshotFile(paths[0]).ok());
}

// ---------------------------------------------------------------------------
// Corruption: quarantine and fallback.
// ---------------------------------------------------------------------------

// A snapshot file for corruption experiments, written once per suite run.
std::string PristineSnapshot() {
  static const std::string bytes = [] {
    const std::string dir = FreshDir("pristine");
    World w = MakeWorld(10);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              SnapshotOptions(dir));
    return ReadFile(SnapshotStore({dir, 2}).PathForEpoch(1));
  }();
  return bytes;
}

// Expects `bytes` (a damaged snapshot) to fail decoding cleanly AND to be
// quarantined with fallback by a store that holds only this file.
void ExpectQuarantine(const std::string& bytes, const std::string& label) {
  const std::string dir = FreshDir("quarantine");
  SnapshotStore store({dir, 2});
  const std::string path = store.PathForEpoch(1);
  WriteFile(path, bytes);
  const uint64_t before = QuarantinedCount();
  Result<SnapshotStore::LoadedSnapshot> loaded = store.LoadNewest();
  if (loaded.ok()) {
    SaveArtifact(path);
    ADD_FAILURE() << label << ": corrupt snapshot decoded successfully";
    return;
  }
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound) << label;
  EXPECT_EQ(QuarantinedCount(), before + 1) << label;
  EXPECT_FALSE(fs::exists(path)) << label;
  EXPECT_TRUE(fs::exists(path + ".corrupt")) << label;
}

TEST(SnapshotCorruptionTest, EverySingleByteFlipFailsCleanly) {
  const std::string pristine = PristineSnapshot();
  ASSERT_FALSE(pristine.empty());
  // Decoding the pristine bytes works — the baseline for the flips below.
  ASSERT_TRUE(DecodeEpochSnapshot(pristine, "pristine").ok());
  // Exhaustive over the header region (magic, version, identity, section
  // table — every field gets hit), strided over the payloads, with the
  // stride phase shifted per CI shard so the fleet covers different bytes.
  const uint64_t fuzz = FuzzSeed();
  const size_t stride = 97;
  std::vector<size_t> offsets;
  for (size_t i = 0; i < std::min<size_t>(240, pristine.size()); ++i) {
    offsets.push_back(i);
  }
  for (size_t i = 240 + fuzz % stride; i < pristine.size(); i += stride) {
    offsets.push_back(i);
  }
  offsets.push_back(pristine.size() - 1);
  for (const size_t off : offsets) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ (1u << (off % 8)));
    const Result<DecodedEpochSnapshot> snap =
        DecodeEpochSnapshot(damaged, "flip");
    EXPECT_FALSE(snap.ok()) << "flip at offset " << off << " decoded";
    if (!snap.ok()) {
      EXPECT_EQ(snap.status().code(), StatusCode::kInvalidArgument)
          << "offset " << off << ": " << snap.status().ToString();
    }
  }
}

TEST(SnapshotCorruptionTest, FlippedSnapshotIsQuarantined) {
  const std::string pristine = PristineSnapshot();
  // One representative flip per region: magic, identity, section table,
  // each payload quarter.
  const uint64_t fuzz = FuzzSeed();
  const std::vector<size_t> offsets = {
      1,  // magic
      9,  // epoch
      60 + fuzz % 32,  // section table
      pristine.size() / 4,
      pristine.size() / 2,
      (3 * pristine.size()) / 4,
      pristine.size() - 2,
  };
  for (const size_t off : offsets) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x40);
    ExpectQuarantine(damaged, "flip@" + std::to_string(off));
  }
}

TEST(SnapshotCorruptionTest, EveryTruncationFailsCleanly) {
  const std::string pristine = PristineSnapshot();
  const uint64_t fuzz = FuzzSeed();
  std::vector<size_t> cuts = {0, 1, 3, 7, 19, 43,
                              pristine.size() / 3, pristine.size() / 2,
                              pristine.size() - 1};
  cuts.push_back(1 + fuzz % (pristine.size() - 1));
  for (const size_t cut : cuts) {
    const Result<DecodedEpochSnapshot> snap =
        DecodeEpochSnapshot(std::string_view(pristine).substr(0, cut),
                            "truncated");
    EXPECT_FALSE(snap.ok()) << "truncation to " << cut << " decoded";
  }
  ExpectQuarantine(pristine.substr(0, pristine.size() / 2), "truncated-half");
}

TEST(SnapshotCorruptionTest, CorruptNewestFallsBackToOlderSnapshot) {
  const std::string dir = FreshDir("fallback");
  {
    World w = MakeWorld(11);
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              SnapshotOptions(dir));
    ASSERT_TRUE(service.AddEdge(0, 66));
    ASSERT_TRUE(service.Refresh().ok());
  }
  SnapshotStore store({dir, 2});
  ASSERT_EQ(store.ListSnapshots().size(), 2u);
  // Damage the newest (epoch 2) snapshot's payload.
  const std::string newest = store.PathForEpoch(2);
  std::string bytes = ReadFile(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteFile(newest, bytes);

  const uint64_t before = QuarantinedCount();
  Result<SnapshotStore::LoadedSnapshot> loaded = store.LoadNewest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->snapshot.meta.epoch, 1u);  // fell back one epoch
  EXPECT_EQ(QuarantinedCount(), before + 1);
  EXPECT_TRUE(fs::exists(newest + ".corrupt"));
  EXPECT_FALSE(fs::exists(newest));

  // Recover() serves from the fallback epoch.
  Result<std::unique_ptr<DynamicCodService>> recovered =
      DynamicCodService::Recover(SnapshotOptions(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->epoch(), 1u);
}

TEST(SnapshotCorruptionTest, FuzzedDamageNeverCrashesRecovery) {
  // Chaos pass: random multi-byte damage (flips, truncations, garbage
  // splices) driven by the CI shard seed. The invariant is strictly "no
  // crash, clean Status" — the specific error text varies with the damage.
  const std::string pristine = PristineSnapshot();
  uint64_t state = 0x9E3779B97F4A7C15ull + FuzzSeed();
  const auto next = [&state] {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  for (int round = 0; round < 200; ++round) {
    std::string damaged = pristine;
    const int kind = static_cast<int>(next() % 3);
    if (kind == 0) {  // up to 8 random flips
      const size_t flips = 1 + next() % 8;
      for (size_t i = 0; i < flips; ++i) {
        const size_t off = next() % damaged.size();
        damaged[off] = static_cast<char>(damaged[off] ^ (next() % 255 + 1));
      }
    } else if (kind == 1) {  // truncate
      damaged.resize(next() % damaged.size());
    } else {  // splice garbage over a random window
      const size_t off = next() % damaged.size();
      const size_t len = std::min(damaged.size() - off, next() % 64 + 1);
      for (size_t i = 0; i < len; ++i) {
        damaged[off + i] = static_cast<char>(next());
      }
    }
    const Result<DecodedEpochSnapshot> snap =
        DecodeEpochSnapshot(damaged, "fuzz");
    EXPECT_FALSE(snap.ok()) << "fuzz round " << round << " decoded";
  }
}

}  // namespace
}  // namespace cod
