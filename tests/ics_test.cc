#include "baselines/ics.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(IcsTest, PicksHigherWeightClique) {
  // Two 3-cliques joined by a bridge; weights favor the right clique. The
  // top 2-influential community is the right triangle (the bridge endpoints
  // have core degree 1 across the bridge, so cliques are the 2-cores).
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const std::vector<double> weights = {1, 1, 1, 5, 5, 5};
  const auto communities = InfluentialCommunitySearch(g, weights, 2, 1);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_EQ(communities[0].members, (std::vector<NodeId>{3, 4, 5}));
  EXPECT_DOUBLE_EQ(communities[0].influence_value, 5.0);
}

TEST(IcsTest, TopRAreOrderedByValue) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const std::vector<double> weights = {1, 2, 3, 4, 5, 6};
  const auto communities = InfluentialCommunitySearch(g, weights, 2, 4);
  ASSERT_GE(communities.size(), 2u);
  for (size_t i = 1; i < communities.size(); ++i) {
    EXPECT_GE(communities[i - 1].influence_value,
              communities[i].influence_value);
  }
  // The strongest is a sub-triangle-or-smaller of the heavy clique...
  // with k=2 the final surviving structure is the heavy triangle {3,4,5}.
  EXPECT_DOUBLE_EQ(communities[0].influence_value, 4.0);
  EXPECT_EQ(communities[0].members, (std::vector<NodeId>{3, 4, 5}));
}

TEST(IcsTest, EmptyWhenNoKCore) {
  const Graph g = testing::MakePath(5);  // no 2-core
  const std::vector<double> weights(5, 1.0);
  EXPECT_TRUE(InfluentialCommunitySearch(g, weights, 2, 3).empty());
}

TEST(IcsTest, KOneIsComponentsByMinWeight) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  const Graph g = std::move(b).Build();
  const std::vector<double> weights = {1, 2, 9, 8, 7};
  const auto communities = InfluentialCommunitySearch(g, weights, 1, 2);
  ASSERT_EQ(communities.size(), 2u);
  // Strongest: {2,3} after 4's removal? Deleting by increasing weight:
  // weight-7 node 4 recorded with component {2,3,4}; then {2,3} with 8.
  EXPECT_DOUBLE_EQ(communities[0].influence_value, 8.0);
  EXPECT_EQ(communities[0].members, (std::vector<NodeId>{2, 3}));
}

TEST(IcsTest, InfluenceWeightedWrapperFindsDenseCore) {
  // Star of cliques: the clique members have higher influence floors than
  // scattered leaves, so the top community under estimated influence is
  // inside the clique.
  GraphBuilder b(12);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) b.AddEdge(u, v);
  }
  for (NodeId v = 5; v < 12; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(1);
  const auto communities = InfluentialCommunitySearch(m, 2, 1, 400, rng);
  ASSERT_EQ(communities.size(), 1u);
  for (NodeId v : communities[0].members) EXPECT_LT(v, 5u);
}

TEST(IcsTest, PropertyCommunitiesAreConnectedKCores) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t n = 40 + rng.UniformInt(60);
    GraphBuilder b(n);
    for (size_t i = 0; i < 4 * n; ++i) {
      b.AddEdge(static_cast<NodeId>(rng.UniformInt(n)),
                static_cast<NodeId>(rng.UniformInt(n)));
    }
    const Graph g = std::move(b).Build();
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.UniformDouble();
    const uint32_t k = 2 + static_cast<uint32_t>(rng.UniformInt(3));
    for (const IcsCommunity& community :
         InfluentialCommunitySearch(g, weights, k, 4)) {
      ASSERT_GE(community.members.size(), k + 1);
      std::vector<char> inside(n, 0);
      for (NodeId v : community.members) inside[v] = 1;
      // Min internal degree >= k.
      for (NodeId v : community.members) {
        uint32_t degree = 0;
        for (const AdjEntry& a : g.Neighbors(v)) degree += inside[a.to];
        EXPECT_GE(degree, k);
        // Influence value is the minimum member weight.
        EXPECT_GE(weights[v], community.influence_value - 1e-12);
      }
      // Connected: BFS from the first member covers all members.
      std::vector<char> seen(n, 0);
      std::vector<NodeId> frontier{community.members[0]};
      seen[community.members[0]] = 1;
      size_t covered = 1;
      for (size_t head = 0; head < frontier.size(); ++head) {
        for (const AdjEntry& a : g.Neighbors(frontier[head])) {
          if (inside[a.to] && !seen[a.to]) {
            seen[a.to] = 1;
            ++covered;
            frontier.push_back(a.to);
          }
        }
      }
      EXPECT_EQ(covered, community.members.size());
    }
  }
}

}  // namespace
}  // namespace cod
