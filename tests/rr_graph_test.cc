#include "influence/rr_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "influence/monte_carlo.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Reachability from the source inside `allowed` using only recorded live
// edges — the induced RR graph of Definition 3.
size_t InducedReach(const RrGraph& rr, const std::vector<char>& allowed,
                    std::vector<char>* hit_nodes = nullptr) {
  if (!allowed[rr.source]) return 0;
  std::vector<char> visited(rr.NumNodes(), 0);
  std::vector<uint32_t> stack{0};
  visited[0] = 1;
  size_t reached = 1;
  if (hit_nodes != nullptr) (*hit_nodes)[rr.source] = 1;
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    for (uint32_t u : rr.NeighborsOf(i)) {
      if (visited[u] || !allowed[rr.nodes[u]]) continue;
      visited[u] = 1;
      ++reached;
      if (hit_nodes != nullptr) (*hit_nodes)[rr.nodes[u]] = 1;
      stack.push_back(u);
    }
  }
  return reached;
}

TEST(RrGraphTest, SourceAlwaysFirst) {
  const Graph g = testing::MakeClique(5);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  RrSampler sampler(m);
  Rng rng(1);
  RrGraph rr;
  for (int i = 0; i < 50; ++i) {
    sampler.Sample(3, rng, &rr);
    ASSERT_GE(rr.NumNodes(), 1u);
    EXPECT_EQ(rr.nodes[0], 3u);
    EXPECT_EQ(rr.source, 3u);
  }
}

TEST(RrGraphTest, RecordedEdgesExistInGraph) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  RrSampler sampler(m);
  Rng rng(2);
  RrGraph rr;
  for (int i = 0; i < 200; ++i) {
    sampler.Sample(static_cast<NodeId>(i % 8), rng, &rr);
    for (uint32_t v = 0; v < rr.NumNodes(); ++v) {
      for (uint32_t u : rr.NeighborsOf(v)) {
        EXPECT_NE(g.FindEdge(rr.nodes[v], rr.nodes[u]), kInvalidEdge);
      }
    }
  }
}

TEST(RrGraphTest, DeterministicEdgesReachWholeComponent) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  RrSampler sampler(m);
  Rng rng(3);
  RrGraph rr;
  sampler.Sample(0, rng, &rr);
  EXPECT_EQ(rr.NumNodes(), 6u);
  // Every edge of the graph is live, in both directions.
  EXPECT_EQ(rr.NumEdges(), 2 * g.NumEdges());
}

TEST(RrGraphTest, RestrictedSamplingStaysInMask) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  RrSampler sampler(m);
  Rng rng(4);
  std::vector<char> allowed(8, 0);
  for (NodeId v = 0; v < 4; ++v) allowed[v] = 1;
  RrGraph rr;
  for (int i = 0; i < 20; ++i) {
    sampler.SampleRestricted(1, allowed, rng, &rr);
    EXPECT_EQ(rr.NumNodes(), 4u);
    for (NodeId v : rr.nodes) EXPECT_LT(v, 4u);
  }
}

TEST(RrGraphTest, SetVariantMatchesGraphVariantNodeCounts) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  // Same seed => same coin sequence: the node-set sampler must visit the
  // same nodes as the graph sampler.
  RrSampler s1(m);
  RrSampler s2(m);
  Rng rng1(5);
  Rng rng2(5);
  RrGraph rr;
  std::vector<NodeId> set;
  for (int i = 0; i < 100; ++i) {
    set.clear();
    s1.Sample(2, rng1, &rr);
    s2.SampleSetRestricted(2, nullptr, rng2, &set);
    EXPECT_EQ(rr.NumNodes(), set.size());
  }
}

// Theorem 1: counting RR-set membership estimates influence.
TEST(RrGraphTest, UnbiasedInfluenceEstimation) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  RrSampler sampler(m);
  MonteCarloSimulator sim(m);
  Rng rng(6);

  const size_t n = ex.graph.NumNodes();
  const uint32_t theta = 3000;
  std::vector<uint32_t> counts(n, 0);
  std::vector<NodeId> set;
  for (NodeId source = 0; source < n; ++source) {
    for (uint32_t t = 0; t < theta; ++t) {
      set.clear();
      sampler.SampleSetRestricted(source, nullptr, rng, &set);
      for (NodeId v : set) ++counts[v];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const double rr_estimate = static_cast<double>(counts[v]) / theta;
    const double mc_estimate = sim.EstimateInfluence(v, 60000, rng);
    EXPECT_NEAR(rr_estimate, mc_estimate, 0.12)
        << "node " << v;
  }
}

// Theorem 2: the induced RR graph estimates community influence — this is
// the property that forces recording ALL live edges, not just tree edges.
TEST(RrGraphTest, InducedRrGraphMatchesRestrictedProcess) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  RrSampler sampler(m);
  MonteCarloSimulator sim(m);
  Rng rng(7);

  // Community C4 = {0..7} of the paper example.
  std::vector<char> allowed(10, 0);
  for (NodeId v = 0; v < 8; ++v) allowed[v] = 1;

  const uint32_t theta = 4000;
  std::vector<uint32_t> counts(10, 0);
  RrGraph rr;
  std::vector<char> hits(10, 0);
  for (NodeId source = 0; source < 8; ++source) {
    for (uint32_t t = 0; t < theta; ++t) {
      // Sample UNRESTRICTED, then restrict by induced reachability.
      sampler.Sample(source, rng, &rr);
      std::fill(hits.begin(), hits.end(), 0);
      InducedReach(rr, allowed, &hits);
      for (NodeId v = 0; v < 10; ++v) counts[v] += hits[v];
    }
  }
  for (NodeId v = 0; v < 8; ++v) {
    const double induced_estimate = static_cast<double>(counts[v]) / theta;
    const double mc_estimate = sim.EstimateInfluence(v, 60000, rng, &allowed);
    EXPECT_NEAR(induced_estimate, mc_estimate, 0.1) << "node " << v;
  }
  EXPECT_EQ(counts[8], 0u);
  EXPECT_EQ(counts[9], 0u);
}

TEST(RrGraphTest, LtSamplesAtMostOneInEdgePerNode) {
  const Graph g = testing::MakeClique(6);
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(g);
  RrSampler sampler(m);
  Rng rng(8);
  RrGraph rr;
  for (int i = 0; i < 200; ++i) {
    sampler.Sample(static_cast<NodeId>(i % 6), rng, &rr);
    for (uint32_t v = 0; v < rr.NumNodes(); ++v) {
      EXPECT_LE(rr.NeighborsOf(v).size(), 1u);
    }
  }
}

TEST(RrGraphTest, LtUnbiasedAgainstForwardSimulation) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(ex.graph);
  RrSampler sampler(m);
  MonteCarloSimulator sim(m);
  Rng rng(9);
  const size_t n = ex.graph.NumNodes();
  const uint32_t theta = 3000;
  std::vector<uint32_t> counts(n, 0);
  std::vector<NodeId> set;
  for (NodeId source = 0; source < n; ++source) {
    for (uint32_t t = 0; t < theta; ++t) {
      set.clear();
      sampler.SampleSetRestricted(source, nullptr, rng, &set);
      for (NodeId v : set) ++counts[v];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const double rr_estimate = static_cast<double>(counts[v]) / theta;
    const double mc_estimate = sim.EstimateInfluence(v, 60000, rng);
    EXPECT_NEAR(rr_estimate, mc_estimate, 0.12) << "node " << v;
  }
}

// Parameterized unbiasedness sweep over every supported diffusion model
// family: RR counting must agree with forward Monte-Carlo on each.
enum class ModelKind { kWeightedCascade, kUniform, kTrivalency, kLt };

class ModelSweepTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  static DiffusionModel MakeModel(const Graph& g, ModelKind kind) {
    Rng model_rng(99);
    switch (kind) {
      case ModelKind::kWeightedCascade:
        return DiffusionModel::WeightedCascadeIc(g);
      case ModelKind::kUniform:
        return DiffusionModel::UniformIc(g, 0.3);
      case ModelKind::kTrivalency:
        return DiffusionModel::TrivalencyIc(g, model_rng);
      case ModelKind::kLt:
        return DiffusionModel::WeightedCascadeLt(g);
    }
    COD_CHECK(false);
    return DiffusionModel::WeightedCascadeIc(g);
  }
};

TEST_P(ModelSweepTest, RrCountingUnbiasedUnderModel) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = MakeModel(ex.graph, GetParam());
  RrSampler sampler(m);
  MonteCarloSimulator sim(m);
  Rng rng(12);
  const size_t n = ex.graph.NumNodes();
  const uint32_t theta = 3000;
  std::vector<uint32_t> counts(n, 0);
  std::vector<NodeId> set;
  for (NodeId source = 0; source < n; ++source) {
    for (uint32_t t = 0; t < theta; ++t) {
      set.clear();
      sampler.SampleSetRestricted(source, nullptr, rng, &set);
      for (NodeId v : set) ++counts[v];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const double rr_estimate = static_cast<double>(counts[v]) / theta;
    const double mc_estimate = sim.EstimateInfluence(v, 60000, rng);
    EXPECT_NEAR(rr_estimate, mc_estimate, 0.12) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweepTest,
                         ::testing::Values(ModelKind::kWeightedCascade,
                                           ModelKind::kUniform,
                                           ModelKind::kTrivalency,
                                           ModelKind::kLt));

// Rebind across epoch swaps must reuse scratch allocations: swapping to a
// same-sized or smaller graph keeps the stamp arrays' capacity, so a
// long-lived per-thread sampler never reallocates on steady-state swaps.
TEST(RrGraphTest, RebindReusesScratchCapacityAcrossEpochSwaps) {
  const Graph big = testing::MakeClique(12);
  const Graph small = testing::MakeClique(6);
  const DiffusionModel big_model = DiffusionModel::WeightedCascadeIc(big);
  const DiffusionModel small_model = DiffusionModel::WeightedCascadeIc(small);

  RrSampler sampler(big_model);
  const size_t warmed = sampler.ScratchCapacity();
  ASSERT_GE(warmed, big.NumNodes());

  // Shrinking swap: capacity is kept, not released.
  sampler.Rebind(small_model);
  EXPECT_EQ(sampler.ScratchCapacity(), warmed);
  // Same-size swap back: still no growth.
  sampler.Rebind(big_model);
  EXPECT_EQ(sampler.ScratchCapacity(), warmed);

  // And the rebound sampler behaves exactly like a fresh one.
  RrSampler fresh(big_model);
  Rng rng1(21);
  Rng rng2(21);
  RrGraph a;
  RrGraph b;
  for (int i = 0; i < 20; ++i) {
    sampler.Sample(static_cast<NodeId>(i % 12), rng1, &a);
    fresh.Sample(static_cast<NodeId>(i % 12), rng2, &b);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.neighbors, b.neighbors);
  }
}

// Property pinned by the header contract: given equal RNG state,
// SampleSetRestricted reaches exactly the node set of SampleRestricted —
// across models, masks, and sources. (The evaluator relies on this when it
// swaps the cheap set sampler in for counting-only paths.)
TEST(RrGraphTest, SetRestrictedMatchesGraphRestrictedReachedSet) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel models[] = {
      DiffusionModel::WeightedCascadeIc(ex.graph),
      DiffusionModel::WeightedCascadeLt(ex.graph)};
  const size_t n = ex.graph.NumNodes();
  for (const DiffusionModel& m : models) {
    RrSampler graph_sampler(m);
    RrSampler set_sampler(m);
    RrGraph rr;
    std::vector<NodeId> set;
    for (uint64_t seed = 40; seed < 44; ++seed) {
      // Mask sizes sweep from a small community up to almost everything.
      for (size_t mask_size = 2; mask_size <= n; mask_size += 3) {
        std::vector<char> allowed(n, 0);
        for (NodeId v = 0; v < mask_size; ++v) allowed[v] = 1;
        for (NodeId source = 0; source < mask_size; ++source) {
          Rng rng1(seed * 1000 + source);
          Rng rng2(seed * 1000 + source);
          graph_sampler.SampleRestricted(source, allowed, rng1, &rr);
          set.clear();
          set_sampler.SampleSetRestricted(source, &allowed, rng2, &set);

          std::vector<NodeId> from_graph(rr.nodes);
          std::vector<NodeId> from_set(set);
          std::sort(from_graph.begin(), from_graph.end());
          std::sort(from_set.begin(), from_set.end());
          ASSERT_EQ(from_graph, from_set)
              << "mask=" << mask_size << " source=" << source
              << " seed=" << seed;
        }
      }
    }
  }
}

TEST(RrGraphTest, DeterministicWithSameSeed) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  RrSampler s1(m);
  RrSampler s2(m);
  Rng rng1(10);
  Rng rng2(10);
  RrGraph a;
  RrGraph b;
  for (int i = 0; i < 50; ++i) {
    s1.Sample(0, rng1, &a);
    s2.Sample(0, rng2, &b);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.neighbors, b.neighbors);
  }
}

}  // namespace
}  // namespace cod
