// Determinism and allocation contracts of intra-query parallel RR sampling
// (influence/rr_pool.h): results are bit-identical across parallel_sampling
// off / 1-worker scheduler / 8-worker scheduler, batches stay thread-count
// independent with a sampling scheduler attached, and the slab pool stops
// allocating once warmed.

#include <vector>

#include <gtest/gtest.h>

#include "common/task_scheduler.h"
#include "core/engine_core.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "influence/rr_pool.h"
#include "tests/test_util.h"

namespace cod {
namespace {

using ::cod::testing::SameResult;

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed, size_t n = 160) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

std::vector<QuerySpec> MakeVariantSpecs(const World& w, size_t count) {
  const CodVariant variants[] = {CodVariant::kCodU, CodVariant::kCodR,
                                 CodVariant::kCodLMinus, CodVariant::kCodL,
                                 CodVariant::kCodUIndexed};
  std::vector<QuerySpec> specs;
  for (size_t i = 0; specs.size() < count; ++i) {
    const NodeId q = static_cast<NodeId>(i % w.graph.NumNodes());
    const auto attrs = w.attrs.AttributesOf(q);
    QuerySpec spec;
    spec.variant = variants[i % std::size(variants)];
    spec.node = q;
    spec.k = 5;
    if (spec.variant != CodVariant::kCodU &&
        spec.variant != CodVariant::kCodUIndexed) {
      if (attrs.empty()) continue;
      spec.attrs.assign(1, attrs[0]);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ParallelSamplingTest, QueryBitIdenticalAcrossSamplingModes) {
  const World w = MakeWorld(1);
  EngineOptions options;
  options.theta = 8;
  EngineCore core(w.graph, w.attrs, options);
  core.BuildHimorParallel(/*seed=*/7, /*num_threads=*/2);

  TaskScheduler sched1(1);
  TaskScheduler sched8(8);
  QueryWorkspace ws_off(core, 0);
  QueryWorkspace ws_one(core, 0);
  ws_one.SetSamplingPool(&sched1);
  QueryWorkspace ws_eight(core, 0);
  ws_eight.SetSamplingPool(&sched8);

  const std::vector<QuerySpec> specs = MakeVariantSpecs(w, 20);
  for (size_t i = 0; i < specs.size(); ++i) {
    QuerySpec spec = specs[i];
    const uint64_t seed = 1000 + i;

    spec.parallel_sampling = false;
    ws_off.ReseedRng(seed);
    const CodResult off = core.Query(spec, ws_off);

    spec.parallel_sampling = true;
    ws_one.ReseedRng(seed);
    const CodResult one = core.Query(spec, ws_one);
    ws_eight.ReseedRng(seed);
    const CodResult eight = core.Query(spec, ws_eight);

    EXPECT_TRUE(SameResult(off, one)) << "spec " << i;
    EXPECT_TRUE(SameResult(off, eight)) << "spec " << i;
    EXPECT_EQ(off.stats.rr_samples, one.stats.rr_samples) << "spec " << i;
    EXPECT_EQ(off.stats.rr_samples, eight.stats.rr_samples) << "spec " << i;
    EXPECT_EQ(off.stats.explored_nodes, eight.stats.explored_nodes)
        << "spec " << i;
    EXPECT_EQ(off.stats.parallel_chunks, 0u);
    if (spec.variant == CodVariant::kCodU) {
      // A sampled variant with a multi-worker scheduler actually went
      // parallel.
      EXPECT_GT(eight.stats.parallel_chunks, 1u) << "spec " << i;
    }
  }
}

TEST(ParallelSamplingTest, EvaluateConsumesExactlyOneDrawPerCall) {
  const World w = MakeWorld(2);
  EngineOptions options;
  options.theta = 4;
  const EngineCore core(w.graph, w.attrs, options);
  const CodChain chain = core.BuildCoduChain(/*q=*/3);

  CompressedEvaluator eval(core.model(), options.theta);
  Rng used(5);
  eval.Evaluate(chain, /*q=*/3, /*k=*/5, used);
  Rng skipped(5);
  skipped.Next();
  // The evaluator drew the pool seed and nothing else, so both streams now
  // continue identically.
  EXPECT_EQ(used.Next(), skipped.Next());
}

TEST(ParallelSamplingTest, BatchBitIdenticalAcrossThreadCountsWithScheduler) {
  const World w = MakeWorld(3);
  EngineOptions options;
  options.theta = 6;
  EngineCore core(w.graph, w.attrs, options);
  core.BuildHimorParallel(/*seed=*/9, /*num_threads=*/2);
  const std::vector<QuerySpec> specs = MakeVariantSpecs(w, 16);
  const uint64_t batch_seed = 42;

  TaskScheduler reference_sched(1);
  const std::vector<CodResult> reference =
      RunQueryBatch(core, specs, reference_sched, batch_seed);

  TaskScheduler sampling_sched(2);
  for (const size_t batch_threads : {1u, 3u}) {
    TaskScheduler sched(batch_threads);
    BatchOptions bo;
    bo.sampling_pool = &sampling_sched;
    const std::vector<CodResult> got =
        RunQueryBatch(core, specs, sched, batch_seed, bo);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(SameResult(reference[i], got[i]))
          << "threads=" << batch_threads << " i=" << i;
      EXPECT_EQ(reference[i].stats.rr_samples, got[i].stats.rr_samples);
    }
  }

  // Handing the batch scheduler itself as the sampling scheduler is the
  // normal sharing pattern: sampling chunks are interactive tasks whose
  // group wait helps inline, so nothing deadlocks and results stay
  // bit-identical.
  TaskScheduler shared(2);
  BatchOptions self;
  self.sampling_pool = &shared;
  const std::vector<CodResult> shared_results =
      RunQueryBatch(core, specs, shared, batch_seed, self);
  for (size_t i = 0; i < shared_results.size(); ++i) {
    EXPECT_TRUE(SameResult(reference[i], shared_results[i])) << "i=" << i;
  }
}

TEST(ParallelSamplingTest, EvaluateOnWorkerThreadMatchesSerial) {
  // Evaluating from inside a scheduler worker, handing that same scheduler
  // as the sampling scheduler, must produce bit-identical results to a
  // plain serial evaluation. The old flat pool handled this case by
  // detecting the worker thread and silently sampling inline; the
  // scheduler instead runs the chunks for real (the group wait helps
  // inline), so the parallel path is exercised, not skipped.
  const World w = MakeWorld(4);
  EngineOptions options;
  options.theta = 6;
  const EngineCore core(w.graph, w.attrs, options);
  const CodChain chain = core.BuildCoduChain(/*q=*/1);

  CompressedEvaluator serial_eval(core.model(), options.theta);
  Rng serial_rng(11);
  const ChainEvalOutcome serial =
      serial_eval.Evaluate(chain, /*q=*/1, /*k=*/5, serial_rng);

  for (const size_t workers : {1u, 2u}) {
    TaskScheduler sched(workers);
    CompressedEvaluator worker_eval(core.model(), options.theta);
    ChainEvalOutcome on_worker;
    TaskGroup group(sched);
    sched.Submit(TaskPriority::kInteractive, group, [&] {
      Rng rng(11);
      on_worker =
          worker_eval.Evaluate(chain, /*q=*/1, /*k=*/5, rng, Budget{}, &sched);
    });
    group.Wait();

    if (workers > 1) {
      EXPECT_GT(worker_eval.last_parallel_chunks(), 0u);
    } else {
      EXPECT_EQ(worker_eval.last_parallel_chunks(), 0u);
    }
    EXPECT_EQ(serial.rank_per_level, on_worker.rank_per_level)
        << "workers=" << workers;
    EXPECT_EQ(serial.best_level, on_worker.best_level)
        << "workers=" << workers;
  }
}

TEST(ParallelSamplingTest, SlabPoolStopsGrowingAfterWarmup) {
  const World w = MakeWorld(5);
  EngineOptions options;
  options.theta = 6;
  const EngineCore core(w.graph, w.attrs, options);
  TaskScheduler sched(2);
  QueryWorkspace ws(core, 0);
  ws.SetSamplingPool(&sched);

  QuerySpec spec;
  spec.variant = CodVariant::kCodU;
  spec.node = 2;
  spec.k = 5;

  const uint64_t seeds[] = {100, 101, 102, 103, 104};
  // Warm-up pass: slabs and samplers grow to the workload's high-water mark.
  for (const uint64_t seed : seeds) {
    ws.ReseedRng(seed);
    core.Query(spec, ws);
  }
  const uint64_t warmed = ws.evaluator().slab_growth_events();
  EXPECT_GT(warmed, 0u);

  // The same query stream again (several times over) must not allocate.
  for (int round = 0; round < 4; ++round) {
    for (const uint64_t seed : seeds) {
      ws.ReseedRng(seed);
      core.Query(spec, ws);
    }
  }
  EXPECT_EQ(ws.evaluator().slab_growth_events(), warmed);

  // An epoch swap to an equivalent core keeps slab capacity: Rebind, then
  // the same stream still performs zero slab growth.
  const EngineCore twin(w.graph, w.attrs, options);
  ws.Rebind(twin);
  for (const uint64_t seed : seeds) {
    ws.ReseedRng(seed);
    twin.Query(spec, ws);
  }
  EXPECT_EQ(ws.evaluator().slab_growth_events(), warmed);
}

TEST(ParallelSamplingTest, ExpiredBudgetMidPoolLeavesWorkspaceReusable) {
  const World w = MakeWorld(6);
  EngineOptions options;
  options.theta = 6;
  const EngineCore core(w.graph, w.attrs, options);
  TaskScheduler sched(2);

  QuerySpec spec;
  spec.variant = CodVariant::kCodU;
  spec.node = 4;
  spec.k = 5;

  QueryWorkspace ws(core, 0);
  ws.SetSamplingPool(&sched);
  // Sub-nanosecond budget: deterministically expires at the first poll in
  // every sampling chunk.
  ws.SetBudget(Budget{Deadline::After(1e-12)});
  ws.ReseedRng(77);
  const CodResult timed_out = core.Query(spec, ws);
  EXPECT_EQ(timed_out.code, StatusCode::kTimeout);
  EXPECT_FALSE(timed_out.found);

  // The same workspace answers normally afterwards, matching a fresh one.
  ws.ClearBudget();
  ws.ReseedRng(78);
  const CodResult reused = core.Query(spec, ws);
  QueryWorkspace fresh(core, 0);
  fresh.ReseedRng(78);
  const CodResult expected = core.Query(spec, fresh);
  EXPECT_TRUE(SameResult(reused, expected));
  EXPECT_EQ(reused.code, StatusCode::kOk);
}

}  // namespace
}  // namespace cod
