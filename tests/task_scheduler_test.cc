// Unit tests for the task scheduler (common/task_scheduler.h): priority
// ordering under saturation, work stealing, TaskGroup inline help, the
// lost-wakeup-free sleep protocol, the timer facility, admission control
// (bound- and failpoint-driven), drain-on-destruction, and the scheduler
// metrics.

#include "common/task_scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace cod {
namespace {

// Parks one worker until Release(); the test waits for arrival first so it
// KNOWS the worker is occupied before it starts queueing behind it.
class Blocker {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mu_);
    arrived_ = true;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }
  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return arrived_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool arrived_ = false;
  bool released_ = false;
};

TEST(TaskSchedulerTest, RunsEveryTaskAcrossGroups) {
  TaskScheduler sched(4);
  std::atomic<int> counter{0};
  TaskGroup group(sched);
  for (int i = 0; i < 1000; ++i) {
    sched.Submit(TaskPriority::kInteractive, group,
                 [&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 1000);
  EXPECT_TRUE(group.Done());
}

TEST(TaskSchedulerTest, SaturatedSchedulerStartsInteractiveBeforeRebuilds) {
  // One worker, parked: everything below queues up. On release the worker
  // must drain strictly priority-major — queued interactive tasks start
  // before queued rebuilds submitted EARLIER, and rebuilds before
  // maintenance — with FIFO order inside each class.
  TaskScheduler sched(1);
  Blocker blocker;
  TaskGroup group(sched);
  sched.Submit(TaskPriority::kRebuild, group, [&] { blocker.Block(); });
  blocker.AwaitArrival();

  std::mutex mu;
  std::vector<std::string> order;
  const auto record = [&](std::string tag) {
    return [&, tag = std::move(tag)] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  // Deliberately submitted lowest-priority first.
  sched.Submit(TaskPriority::kMaintenance, group, record("m0"));
  sched.Submit(TaskPriority::kRebuild, group, record("r0"));
  sched.Submit(TaskPriority::kInteractive, group, record("i0"));
  sched.Submit(TaskPriority::kMaintenance, group, record("m1"));
  sched.Submit(TaskPriority::kRebuild, group, record("r1"));
  sched.Submit(TaskPriority::kInteractive, group, record("i1"));

  blocker.Release();
  group.Wait();
  const std::vector<std::string> want = {"i0", "i1", "r0", "r1", "m0", "m1"};
  EXPECT_EQ(order, want);
}

TEST(TaskSchedulerTest, IdleWorkerStealsFromPinnedSibling) {
  // Two workers; the blocker pins one. Every queued task must still finish
  // WHILE the blocker is held — external submissions spread round-robin, so
  // roughly half land in the pinned worker's deques and can only run if the
  // free worker steals them. The external Wait() below completes only in
  // that case.
  TaskScheduler sched(2);
  Blocker blocker;
  TaskGroup pin(sched);
  sched.Submit(TaskPriority::kRebuild, pin, [&] { blocker.Block(); });
  blocker.AwaitArrival();

  std::atomic<int> counter{0};
  TaskGroup group(sched);
  for (int i = 0; i < 64; ++i) {
    sched.Submit(TaskPriority::kInteractive, group,
                 [&counter] { counter.fetch_add(1); });
  }
  group.Wait();  // blocker still held: only stealing can drain this
  EXPECT_EQ(counter.load(), 64);

  blocker.Release();
  pin.Wait();
}

TEST(TaskSchedulerTest, WaitFromWorkerHelpsInlineOnSingleWorker) {
  // A task on the ONLY worker fans out a nested group on the same scheduler
  // and waits on it. The old pool deadlocked here (the waiter held the one
  // slot its subtasks needed) and hid behind an IsWorkerThread fallback;
  // the scheduler's group wait runs the queued subtasks inline instead.
  TaskScheduler sched(1);
  std::atomic<int> inner_runs{0};
  std::atomic<bool> outer_done{false};
  TaskGroup outer(sched);
  sched.Submit(TaskPriority::kRebuild, outer, [&] {
    TaskGroup inner(sched);
    for (int i = 0; i < 8; ++i) {
      sched.Submit(TaskPriority::kInteractive, inner,
                   [&inner_runs] { inner_runs.fetch_add(1); });
    }
    inner.Wait();
    outer_done.store(inner_runs.load() == 8);
  });
  outer.Wait();
  EXPECT_TRUE(outer_done.load());
  EXPECT_EQ(inner_runs.load(), 8);
}

TEST(TaskSchedulerTest, LostWakeupRegressionManyWavesOfSmallTasks) {
  // Regression for the flat pool's lost-wakeup window (notify_one firing
  // between a worker's empty scan and its wait). Thousands of tiny
  // submit/wait cycles across 4 workers maximize the racy interleaving; a
  // lost wakeup shows up as a hung Wait() (test timeout).
  TaskScheduler sched(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 400; ++wave) {
    TaskGroup group(sched);
    for (int i = 0; i < 8; ++i) {
      sched.Submit(TaskPriority::kInteractive, group,
                   [&counter] { counter.fetch_add(1); });
    }
    group.Wait();
  }
  EXPECT_EQ(counter.load(), 400 * 8);
}

TEST(TaskSchedulerTest, TimerFiresOnWorkerAndResolvesGroup) {
  TaskScheduler sched(2);
  std::atomic<bool> ran_on_worker{false};
  TaskGroup group(sched);
  const uint64_t id = sched.ScheduleAt(
      TaskScheduler::Clock::now() + std::chrono::milliseconds(5),
      TaskPriority::kMaintenance, group,
      [&] { ran_on_worker.store(sched.IsWorkerThread()); });
  EXPECT_NE(id, 0u);
  group.Wait();  // covers the timer: resolves only once the task ran
  EXPECT_TRUE(ran_on_worker.load());
  // Fired timers are gone; cancelling one is a no-op.
  EXPECT_FALSE(sched.CancelTimer(id));
}

TEST(TaskSchedulerTest, CancelledTimerNeverRunsAndUnblocksItsGroup) {
  TaskScheduler sched(1);
  std::atomic<bool> ran{false};
  TaskGroup group(sched);
  const uint64_t id = sched.ScheduleAt(
      TaskScheduler::Clock::now() + std::chrono::seconds(60),
      TaskPriority::kMaintenance, group, [&] { ran.store(true); });
  EXPECT_TRUE(sched.CancelTimer(id));
  EXPECT_FALSE(sched.CancelTimer(id));  // already gone
  // The cancelled task counts as finished: Wait() must not sit out the 60 s.
  group.Wait();
  EXPECT_FALSE(ran.load());
}

TEST(TaskSchedulerTest, PendingTimersAreCancelledByDestructor) {
  std::atomic<bool> ran{false};
  auto sched = std::make_unique<TaskScheduler>(1);
  TaskGroup group(*sched);
  sched->ScheduleAt(TaskScheduler::Clock::now() + std::chrono::seconds(60),
                    TaskPriority::kMaintenance, group,
                    [&] { ran.store(true); });
  // Destroy with the timer pending: the dtor cancels it (never runs the task)
  // but finishes the group, so the group may safely outlive the scheduler.
  sched.reset();
  EXPECT_FALSE(ran.load());
  group.Wait();  // resolved: returns without touching the dead scheduler
}

TEST(TaskSchedulerTest, QueueDepthTracksQueuedNotRunningTasks) {
  TaskScheduler sched(1);
  Blocker blocker;
  TaskGroup pin(sched);
  sched.Submit(TaskPriority::kRebuild, pin, [&] { blocker.Block(); });
  blocker.AwaitArrival();
  // The blocker is RUNNING, not queued.
  EXPECT_EQ(sched.QueueDepth(TaskPriority::kRebuild), 0u);

  TaskGroup group(sched);
  for (int i = 0; i < 3; ++i) {
    sched.Submit(TaskPriority::kInteractive, group, [] {});
  }
  sched.Submit(TaskPriority::kMaintenance, group, [] {});
  EXPECT_EQ(sched.QueueDepth(TaskPriority::kInteractive), 3u);
  EXPECT_EQ(sched.QueueDepth(TaskPriority::kMaintenance), 1u);

  blocker.Release();
  group.Wait();
  pin.Wait();
  EXPECT_EQ(sched.QueueDepth(TaskPriority::kInteractive), 0u);
  EXPECT_EQ(sched.QueueDepth(TaskPriority::kMaintenance), 0u);
}

TEST(TaskSchedulerTest, ShouldShedTripsOnConfiguredQueueBound) {
  TaskScheduler::Options options;
  options.num_threads = 1;
  options.max_queue_depth[static_cast<size_t>(TaskPriority::kInteractive)] = 2;
  TaskScheduler sched(options);

  Blocker blocker;
  TaskGroup pin(sched);
  sched.Submit(TaskPriority::kRebuild, pin, [&] { blocker.Block(); });
  blocker.AwaitArrival();

  // Depth 0: room for 2 incoming, not for 3.
  EXPECT_FALSE(sched.ShouldShed(TaskPriority::kInteractive, 2));
  EXPECT_TRUE(sched.ShouldShed(TaskPriority::kInteractive, 3));

  TaskGroup group(sched);
  sched.Submit(TaskPriority::kInteractive, group, [] {});
  sched.Submit(TaskPriority::kInteractive, group, [] {});
  // Depth 2 == bound: even one more must shed.
  EXPECT_TRUE(sched.ShouldShed(TaskPriority::kInteractive, 1));
  // Unbounded classes never shed on depth.
  EXPECT_FALSE(sched.ShouldShed(TaskPriority::kRebuild, 1000));

  blocker.Release();
  group.Wait();
  pin.Wait();
  EXPECT_FALSE(sched.ShouldShed(TaskPriority::kInteractive, 1));
}

TEST(TaskSchedulerTest, ShouldShedTripsOnAdmissionFailpoint) {
  TaskScheduler sched(2);  // no depth bounds configured
  Counter* shed_total =
      MetricsRegistry::Instance().GetCounter("cod_sched_shed_total");
  const uint64_t before = shed_total->Value();
  EXPECT_FALSE(sched.ShouldShed(TaskPriority::kInteractive));
  {
    ScopedFailpoint fp("scheduler/admission", /*count=*/2);
    EXPECT_TRUE(sched.ShouldShed(TaskPriority::kInteractive));
    EXPECT_TRUE(sched.ShouldShed(TaskPriority::kRebuild, 100));
    EXPECT_FALSE(sched.ShouldShed(TaskPriority::kInteractive));  // exhausted
  }
  EXPECT_EQ(shed_total->Value(), before + 2);
}

TEST(TaskSchedulerTest, DestructorDrainsQueuedTasks) {
  // The old pool's contract: everything submitted runs, even if the
  // scheduler dies before anyone waits.
  std::atomic<int> counter{0};
  {
    TaskScheduler sched(2);
    for (int i = 0; i < 100; ++i) {
      sched.Submit(TaskPriority::kRebuild, [&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskSchedulerTest, MetricsCountSubmissionsStealsAndInlineRuns) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* submitted = reg.GetCounter(
      "cod_sched_submitted_total{priority=\"interactive\"}");
  Counter* inline_runs = reg.GetCounter("cod_sched_inline_runs_total");
  const uint64_t submitted_before = submitted->Value();
  const uint64_t inline_before = inline_runs->Value();

  TaskScheduler sched(1);
  TaskGroup outer(sched);
  sched.Submit(TaskPriority::kRebuild, outer, [&] {
    TaskGroup inner(sched);
    for (int i = 0; i < 4; ++i) {
      sched.Submit(TaskPriority::kInteractive, inner, [] {});
    }
    inner.Wait();  // single worker: all 4 must run inline in this wait
  });
  outer.Wait();

  EXPECT_EQ(submitted->Value(), submitted_before + 4);
  EXPECT_GE(inline_runs->Value(), inline_before + 4);
  // The queue-delay histogram and depth gauges are exposed for scrapes.
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("cod_sched_queue_delay_seconds"), std::string::npos);
  EXPECT_NE(text.find("cod_sched_queue_depth{priority=\"interactive\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace cod
