#include "core/dynamic_service.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

DynamicCodService::Options SmallOptions(double threshold) {
  DynamicCodService::Options options;
  options.rebuild_threshold = threshold;
  options.seed = 7;
  return options;
}

TEST(DynamicServiceTest, InitialEpochServesQueries) {
  World w = MakeWorld(1);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.05));
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.pending_updates(), 0u);
  Rng rng(2);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    found += service.QueryCodL(q, attrs[0], 5, rng).found;
  }
  EXPECT_GT(found, 0);
}

TEST(DynamicServiceTest, UpdatesAccumulateWithoutRebuild) {
  World w = MakeWorld(2);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));  // high threshold
  const size_t edges_before = service.NumEdges();
  EXPECT_TRUE(service.AddEdge(0, 100));
  EXPECT_TRUE(service.AddEdge(1, 101));
  EXPECT_TRUE(service.RemoveEdge(0, 100));
  EXPECT_FALSE(service.RemoveEdge(0, 100));  // already gone
  EXPECT_FALSE(service.AddEdge(5, 5));       // self-loop rejected
  EXPECT_EQ(service.pending_updates(), 3u);
  EXPECT_EQ(service.epoch(), 1u);  // no rebuild yet
  EXPECT_EQ(service.NumEdges(), edges_before + 1);
}

TEST(DynamicServiceTest, RefreshAppliesUpdatesToEngine) {
  World w = MakeWorld(3);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));
  ASSERT_TRUE(service.AddEdge(0, 150, 2.5));
  service.Refresh();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  const Graph& g = service.engine().graph();
  const EdgeId e = g.FindEdge(0, 150);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_DOUBLE_EQ(g.Weight(e), 2.5);
}

TEST(DynamicServiceTest, ThresholdTriggersAutoRebuild) {
  World w = MakeWorld(4);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.01));  // ~8 updates suffice
  Rng rng(5);
  for (NodeId v = 0; v < 12; ++v) {
    service.AddEdge(v, static_cast<NodeId>(180 - v));
  }
  EXPECT_EQ(service.epoch(), 1u);
  service.QueryCodU(0, 5, rng);  // crossing query triggers the rebuild
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

TEST(DynamicServiceTest, RemovalChangesServedGraph) {
  World w = MakeWorld(5);
  // Find an existing edge to delete.
  const auto [u, v] = w.graph.Endpoints(0);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_TRUE(service.RemoveEdge(u, v));
  service.Refresh();
  EXPECT_EQ(service.engine().graph().FindEdge(u, v), kInvalidEdge);
}

TEST(DynamicServiceTest, DeterministicAcrossInstances) {
  World w1 = MakeWorld(6);
  World w2 = MakeWorld(6);
  DynamicCodService s1(std::move(w1.graph), std::move(w1.attrs),
                       SmallOptions(0.5));
  DynamicCodService s2(std::move(w2.graph), std::move(w2.attrs),
                       SmallOptions(0.5));
  s1.AddEdge(3, 77);
  s2.AddEdge(3, 77);
  s1.Refresh();
  s2.Refresh();
  Rng rng1(9);
  Rng rng2(9);
  for (NodeId q = 0; q < 8; ++q) {
    const auto attrs = s1.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = s1.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = s2.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

TEST(DynamicServiceTest, SnapshotSurvivesRefresh) {
  World w = MakeWorld(7);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  const DynamicCodService::EpochSnapshot old_snap = service.Snapshot();
  EXPECT_EQ(old_snap.epoch, 1u);
  const size_t old_edges = old_snap.core->graph().NumEdges();

  ASSERT_TRUE(service.AddEdge(0, 150));
  service.Refresh();
  EXPECT_EQ(service.Snapshot().epoch, 2u);

  // The retired epoch stays alive and queryable through its shared_ptr.
  EXPECT_EQ(old_snap.core->graph().NumEdges(), old_edges);
  EXPECT_EQ(old_snap.core->graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_NE(service.Snapshot().core->graph().FindEdge(0, 150), kInvalidEdge);
  QueryWorkspace ws(*old_snap.core, 3);
  EXPECT_NO_FATAL_FAILURE(old_snap.core->QueryCodU(0, 5, ws));
}

TEST(DynamicServiceTest, AsyncRefreshServesStaleThenSwaps) {
  World w = MakeWorld(8);
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.rebuild_pool = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(0, 150));
  ASSERT_TRUE(service.RefreshAsync());
  // A query issued right away is answered from SOME published epoch without
  // blocking on the rebuild — at this point either epoch 1 (stale) or 2.
  Rng rng(4);
  service.QueryCodU(0, 5, rng);
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_NE(service.engine().graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_EQ(service.pending_updates(), 0u);

  // Dedupe: a second RefreshAsync while one is in flight is a no-op.
  ASSERT_TRUE(service.AddEdge(1, 151));
  const bool first = service.RefreshAsync();
  const bool second = service.RefreshAsync();
  service.WaitForRebuild();
  EXPECT_TRUE(first);
  if (second) {
    EXPECT_EQ(service.epoch(), 4u);  // both rebuilds ran back to back
  } else {
    EXPECT_EQ(service.epoch(), 3u);  // deduped against the in-flight one
  }
}

TEST(DynamicServiceTest, AsyncAndSyncRebuildsPublishIdenticalEpochs) {
  World w1 = MakeWorld(9);
  World w2 = MakeWorld(9);
  DynamicCodService sync_service(std::move(w1.graph), std::move(w1.attrs),
                                 SmallOptions(10.0));
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options async_options = SmallOptions(10.0);
  async_options.async_rebuild = true;
  async_options.rebuild_pool = &rebuild_pool;
  DynamicCodService async_service(std::move(w2.graph), std::move(w2.attrs),
                                  async_options);

  const std::pair<NodeId, NodeId> updates[] = {{2, 90}, {5, 120}, {9, 44}};
  for (const auto& [u, v] : updates) {
    sync_service.AddEdge(u, v);
    async_service.AddEdge(u, v);
  }
  sync_service.Refresh();
  ASSERT_TRUE(async_service.RefreshAsync());
  async_service.WaitForRebuild();
  ASSERT_EQ(sync_service.epoch(), async_service.epoch());

  // Same build ticket + same edge set => bit-identical epoch cores.
  Rng rng1(11);
  Rng rng2(11);
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = sync_service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = sync_service.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = async_service.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_TRUE(cod::testing::SameResult(a, b)) << "q=" << q;
  }
}

TEST(DynamicServiceTest, ServiceQueryBatchMatchesSnapshotBatch) {
  World w = MakeWorld(10);
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; q < 10; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    QuerySpec spec;
    spec.node = q;
    spec.k = 5;
    if (own.empty()) {
      spec.variant = CodVariant::kCodU;
    } else {
      spec.variant = CodVariant::kCodL;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    }
    specs.push_back(std::move(spec));
  }
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ThreadPool pool(3);
  const auto via_service = service.QueryBatch(specs, pool, 21);
  const auto via_snapshot =
      RunQueryBatch(*service.Snapshot().core, specs, pool, 21);
  ASSERT_EQ(via_service.size(), via_snapshot.size());
  for (size_t i = 0; i < via_service.size(); ++i) {
    EXPECT_TRUE(cod::testing::SameResult(via_service[i], via_snapshot[i]))
        << "spec " << i;
  }
}

// ---------------------------------------------------------------------------
// Rebuild failure containment (failpoints; see common/failpoint.h). Arm
// sites only AFTER construction — the first epoch's build is CHECK-fatal.
// ---------------------------------------------------------------------------

TEST(DynamicServiceTest, RebuildFailureKeepsServingOldEpoch) {
  World w = MakeWorld(11);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_EQ(service.epoch(), 1u);

  // Reference answers from epoch 1.
  std::vector<CodResult> before;
  Rng rng_before(5);
  for (NodeId q = 0; q < 6; ++q) {
    before.push_back(service.QueryCodU(q, 5, rng_before));
  }

  ASSERT_TRUE(service.AddEdge(0, 150));
  Status failed;
  {
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/1);
    failed = service.Refresh();
  }
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The failed build never touched the published epoch...
  EXPECT_EQ(service.epoch(), 1u);
  // ...the absorbed pending count was restored for a later retry...
  EXPECT_EQ(service.pending_updates(), 1u);
  // ...and the error is inspectable.
  const DynamicCodService::RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kIoError);
  EXPECT_EQ(stats.published, 1u);  // only the construction epoch

  // The old epoch still answers, bit-identically.
  Rng rng_after(5);
  for (NodeId q = 0; q < 6; ++q) {
    EXPECT_TRUE(cod::testing::SameResult(service.QueryCodU(q, 5, rng_after),
                                         before[q]))
        << "q=" << q;
  }

  // With the failpoint gone, the retry publishes the update.
  EXPECT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  EXPECT_NE(service.engine().graph().FindEdge(0, 150), kInvalidEdge);
}

TEST(DynamicServiceTest, HimorFailpointFailsRebuildButKeepsServing) {
  World w = MakeWorld(12);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_TRUE(service.AddEdge(1, 140));
  Status failed;
  {
    ScopedFailpoint fp("himor/build", /*count=*/1);
    failed = service.Refresh();
  }
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(service.epoch(), 1u);
  // Serving continues from the old epoch's (intact) index.
  Rng rng(3);
  EXPECT_NO_FATAL_FAILURE(service.QueryCodU(0, 5, rng));
  EXPECT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 2u);
}

TEST(DynamicServiceTest, AsyncRebuildRetriesWithBackoffUntilSuccess) {
  World w = MakeWorld(13);
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.rebuild_pool = &rebuild_pool;
  options.max_rebuild_retries = 3;
  options.rebuild_backoff_initial_ms = 1;
  options.rebuild_backoff_max_ms = 2;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(2, 130));
  // The first two attempts fail; the third succeeds within the retry cap.
  ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/2);
  ASSERT_TRUE(service.RefreshAsync());
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_NE(service.engine().graph().FindEdge(2, 130), kInvalidEdge);
  const DynamicCodService::RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.attempts, 4u);  // construction + 2 failures + success
}

TEST(DynamicServiceTest, AsyncRebuildGivesUpAfterRetryCap) {
  World w = MakeWorld(14);
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.rebuild_pool = &rebuild_pool;
  options.max_rebuild_retries = 1;
  options.rebuild_backoff_initial_ms = 1;
  options.rebuild_backoff_max_ms = 1;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(3, 120));
  {
    // More armed failures than 1 + max_rebuild_retries attempts can clear.
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/100);
    ASSERT_TRUE(service.RefreshAsync());
    service.WaitForRebuild();
    EXPECT_EQ(service.epoch(), 1u);  // old epoch still published
    EXPECT_EQ(service.pending_updates(), 1u);  // restored for a retry
    const DynamicCodService::RebuildStats stats = service.rebuild_stats();
    EXPECT_EQ(stats.failures, 2u);  // initial attempt + 1 retry
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_FALSE(stats.last_error.ok());
  }
  // Once the injected fault clears, a fresh ticket succeeds and the service
  // shuts down cleanly (destructor waits out nothing).
  ASSERT_TRUE(service.RefreshAsync());
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

}  // namespace
}  // namespace cod
