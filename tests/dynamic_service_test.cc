#include "serving/dynamic_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/task_scheduler.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

ServiceOptions SmallOptions(double threshold) {
  ServiceOptions options;
  options.rebuild_threshold = threshold;
  options.seed = 7;
  return options;
}

TEST(DynamicServiceTest, InitialEpochServesQueries) {
  World w = MakeWorld(1);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.05));
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.pending_updates(), 0u);
  Rng rng(2);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    found += service.QueryCodL(q, attrs[0], 5, rng).found;
  }
  EXPECT_GT(found, 0);
}

TEST(DynamicServiceTest, UpdatesAccumulateWithoutRebuild) {
  World w = MakeWorld(2);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));  // high threshold
  const size_t edges_before = service.NumEdges();
  EXPECT_TRUE(service.AddEdge(0, 100));
  EXPECT_TRUE(service.AddEdge(1, 101));
  EXPECT_TRUE(service.RemoveEdge(0, 100));
  EXPECT_FALSE(service.RemoveEdge(0, 100));  // already gone
  EXPECT_FALSE(service.AddEdge(5, 5));       // self-loop rejected
  EXPECT_EQ(service.pending_updates(), 3u);
  EXPECT_EQ(service.epoch(), 1u);  // no rebuild yet
  EXPECT_EQ(service.NumEdges(), edges_before + 1);
}

TEST(DynamicServiceTest, RefreshAppliesUpdatesToEngine) {
  World w = MakeWorld(3);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));
  ASSERT_TRUE(service.AddEdge(0, 150, 2.5));
  service.Refresh();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  const Graph& g = service.engine().graph();
  const EdgeId e = g.FindEdge(0, 150);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_DOUBLE_EQ(g.Weight(e), 2.5);
}

// Satellite regression (non-blocking rebuild pipeline): sync-mode queries
// used to run a FULL epoch rebuild — graph build, clustering, HIMOR —
// inline when their MaybeRefresh crossed the drift threshold, so one
// unlucky QueryCodL stalled for seconds. Queries now only
// snapshot-and-serve; the owner polls RefreshDue() and calls Refresh().
TEST(DynamicServiceTest, SyncQueriesNeverRebuildInline) {
  World w = MakeWorld(4);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.01));  // ~8 updates suffice
  Rng rng(5);
  for (NodeId v = 0; v < 12; ++v) {
    service.AddEdge(v, static_cast<NodeId>(180 - v));
  }
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_TRUE(service.RefreshDue());
  const uint64_t attempts_before = service.rebuild_stats().attempts;

  // The crossing query serves the stale epoch: no build ran on its path
  // (epoch, pending drift, and the attempt counter are all untouched), so
  // its latency is that of a plain query, pending rebuild or not.
  service.QueryCodU(0, 5, rng);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.pending_updates(), 12u);
  EXPECT_EQ(service.rebuild_stats().attempts, attempts_before);
  EXPECT_TRUE(service.RefreshDue());

  // The OWNER rebuilds when it sees fit.
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  EXPECT_FALSE(service.RefreshDue());
}

TEST(DynamicServiceTest, AsyncThresholdCrossingQuerySchedulesRebuild) {
  World w = MakeWorld(4);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(0.01);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);
  Rng rng(5);
  for (NodeId v = 0; v < 12; ++v) {
    service.AddEdge(v, static_cast<NodeId>(180 - v));
  }
  EXPECT_EQ(service.epoch(), 1u);
  service.QueryCodU(0, 5, rng);  // schedules on the pool, serves epoch 1
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

TEST(DynamicServiceTest, RemovalChangesServedGraph) {
  World w = MakeWorld(5);
  // Find an existing edge to delete.
  const auto [u, v] = w.graph.Endpoints(0);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_TRUE(service.RemoveEdge(u, v));
  service.Refresh();
  EXPECT_EQ(service.engine().graph().FindEdge(u, v), kInvalidEdge);
}

TEST(DynamicServiceTest, DeterministicAcrossInstances) {
  World w1 = MakeWorld(6);
  World w2 = MakeWorld(6);
  DynamicCodService s1(std::move(w1.graph), std::move(w1.attrs),
                       SmallOptions(0.5));
  DynamicCodService s2(std::move(w2.graph), std::move(w2.attrs),
                       SmallOptions(0.5));
  s1.AddEdge(3, 77);
  s2.AddEdge(3, 77);
  s1.Refresh();
  s2.Refresh();
  Rng rng1(9);
  Rng rng2(9);
  for (NodeId q = 0; q < 8; ++q) {
    const auto attrs = s1.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = s1.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = s2.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

TEST(DynamicServiceTest, SnapshotSurvivesRefresh) {
  World w = MakeWorld(7);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  const DynamicCodService::EpochSnapshot old_snap = service.Snapshot();
  EXPECT_EQ(old_snap.epoch, 1u);
  const size_t old_edges = old_snap.core->graph().NumEdges();

  ASSERT_TRUE(service.AddEdge(0, 150));
  service.Refresh();
  EXPECT_EQ(service.Snapshot().epoch, 2u);

  // The retired epoch stays alive and queryable through its shared_ptr.
  EXPECT_EQ(old_snap.core->graph().NumEdges(), old_edges);
  EXPECT_EQ(old_snap.core->graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_NE(service.Snapshot().core->graph().FindEdge(0, 150), kInvalidEdge);
  QueryWorkspace ws(*old_snap.core, 3);
  EXPECT_NO_FATAL_FAILURE(old_snap.core->QueryCodU(0, 5, ws));
}

TEST(DynamicServiceTest, AsyncRefreshServesStaleThenSwaps) {
  World w = MakeWorld(8);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(0, 150));
  ASSERT_TRUE(service.RefreshAsync());
  // A query issued right away is answered from SOME published epoch without
  // blocking on the rebuild — at this point either epoch 1 (stale) or 2.
  Rng rng(4);
  service.QueryCodU(0, 5, rng);
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_NE(service.engine().graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_EQ(service.pending_updates(), 0u);

  // Dedupe: a second RefreshAsync while one is in flight is a no-op.
  ASSERT_TRUE(service.AddEdge(1, 151));
  const bool first = service.RefreshAsync();
  const bool second = service.RefreshAsync();
  service.WaitForRebuild();
  EXPECT_TRUE(first);
  if (second) {
    EXPECT_EQ(service.epoch(), 4u);  // both rebuilds ran back to back
  } else {
    EXPECT_EQ(service.epoch(), 3u);  // deduped against the in-flight one
  }
}

TEST(DynamicServiceTest, AsyncAndSyncRebuildsPublishIdenticalEpochs) {
  World w1 = MakeWorld(9);
  World w2 = MakeWorld(9);
  DynamicCodService sync_service(std::move(w1.graph), std::move(w1.attrs),
                                 SmallOptions(10.0));
  TaskScheduler rebuild_pool(1);
  ServiceOptions async_options = SmallOptions(10.0);
  async_options.async_rebuild = true;
  async_options.scheduler = &rebuild_pool;
  DynamicCodService async_service(std::move(w2.graph), std::move(w2.attrs),
                                  async_options);

  const std::pair<NodeId, NodeId> updates[] = {{2, 90}, {5, 120}, {9, 44}};
  for (const auto& [u, v] : updates) {
    sync_service.AddEdge(u, v);
    async_service.AddEdge(u, v);
  }
  sync_service.Refresh();
  ASSERT_TRUE(async_service.RefreshAsync());
  async_service.WaitForRebuild();
  ASSERT_EQ(sync_service.epoch(), async_service.epoch());

  // Same build ticket + same edge set => bit-identical epoch cores.
  Rng rng1(11);
  Rng rng2(11);
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = sync_service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = sync_service.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = async_service.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_TRUE(cod::testing::SameResult(a, b)) << "q=" << q;
  }
}

TEST(DynamicServiceTest, ServiceQueryBatchMatchesSnapshotBatch) {
  World w = MakeWorld(10);
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; q < 10; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    QuerySpec spec;
    spec.node = q;
    spec.k = 5;
    if (own.empty()) {
      spec.variant = CodVariant::kCodU;
    } else {
      spec.variant = CodVariant::kCodL;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    }
    specs.push_back(std::move(spec));
  }
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  TaskScheduler pool(3);
  const auto via_service = service.QueryBatch(specs, pool, 21);
  const auto via_snapshot =
      RunQueryBatch(*service.Snapshot().core, specs, pool, 21);
  ASSERT_EQ(via_service.size(), via_snapshot.size());
  for (size_t i = 0; i < via_service.size(); ++i) {
    EXPECT_TRUE(cod::testing::SameResult(via_service[i], via_snapshot[i]))
        << "spec " << i;
  }
}

// ---------------------------------------------------------------------------
// Rebuild failure containment (failpoints; see common/failpoint.h). Arm
// sites only AFTER construction — the first epoch's build is CHECK-fatal.
// ---------------------------------------------------------------------------

TEST(DynamicServiceTest, RebuildFailureKeepsServingOldEpoch) {
  World w = MakeWorld(11);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_EQ(service.epoch(), 1u);

  // Reference answers from epoch 1.
  std::vector<CodResult> before;
  Rng rng_before(5);
  for (NodeId q = 0; q < 6; ++q) {
    before.push_back(service.QueryCodU(q, 5, rng_before));
  }

  ASSERT_TRUE(service.AddEdge(0, 150));
  Status failed;
  {
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/1);
    failed = service.Refresh();
  }
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The failed build never touched the published epoch...
  EXPECT_EQ(service.epoch(), 1u);
  // ...the absorbed pending count was restored for a later retry...
  EXPECT_EQ(service.pending_updates(), 1u);
  // ...and the error is inspectable.
  const RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kIoError);
  EXPECT_EQ(stats.published, 1u);  // only the construction epoch

  // The old epoch still answers, bit-identically.
  Rng rng_after(5);
  for (NodeId q = 0; q < 6; ++q) {
    EXPECT_TRUE(cod::testing::SameResult(service.QueryCodU(q, 5, rng_after),
                                         before[q]))
        << "q=" << q;
  }

  // With the failpoint gone, the retry publishes the update.
  EXPECT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  EXPECT_NE(service.engine().graph().FindEdge(0, 150), kInvalidEdge);
}

TEST(DynamicServiceTest, HimorFailureFailsRebuildWhenStrict) {
  World w = MakeWorld(12);
  ServiceOptions options = SmallOptions(10.0);
  options.publish_without_index = false;  // strict pre-degradation behavior
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);
  ASSERT_TRUE(service.AddEdge(1, 140));
  Status failed;
  {
    ScopedFailpoint fp("himor/build", /*count=*/1);
    failed = service.Refresh();
  }
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_FALSE(service.epoch_degraded());
  // Serving continues from the old epoch's (intact) index.
  Rng rng(3);
  EXPECT_NO_FATAL_FAILURE(service.QueryCodU(0, 5, rng));
  EXPECT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 2u);
}

// ---------------------------------------------------------------------------
// Degraded "publish-without-index" epochs: an index-only failure publishes
// the fresh epoch anyway (default publish_without_index), marked degraded;
// CODL serves the compressed-evaluation (CODL-) fallback.
// ---------------------------------------------------------------------------

TEST(DynamicServiceTest, HimorFailurePublishesDegradedEpochByDefault) {
  Counter* degraded_total =
      MetricsRegistry::Instance().GetCounter("cod_epochs_degraded_total");
  const uint64_t degraded_before = degraded_total->Value();

  World w = MakeWorld(12);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  EXPECT_FALSE(service.epoch_degraded());
  ASSERT_TRUE(service.AddEdge(1, 140));
  {
    ScopedFailpoint fp("himor/build", /*count=*/1);
    EXPECT_TRUE(service.Refresh().ok());  // index failure != rebuild failure
  }
  // The fresh epoch published without its index...
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_TRUE(service.epoch_degraded());
  EXPECT_TRUE(service.Snapshot().degraded);
  EXPECT_FALSE(service.Snapshot().core->index_present());
  EXPECT_NE(service.engine().graph().FindEdge(1, 140), kInvalidEdge);
  // ...its updates were absorbed (not restored like a failure)...
  EXPECT_EQ(service.pending_updates(), 0u);
  const RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.published_degraded, 1u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(degraded_total->Value(), degraded_before + 1);

  // The degraded epoch serves CODL (via the fallback) and CODU.
  Rng rng(3);
  for (NodeId q = 0; q < 8; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult r = service.QueryCodL(q, attrs[0], 5, rng);
    EXPECT_EQ(r.code, StatusCode::kOk);
    EXPECT_TRUE(r.degraded);
    EXPECT_EQ(r.variant_served, CodVariant::kCodLMinus);
  }
  EXPECT_NO_FATAL_FAILURE(service.QueryCodU(0, 5, rng));

  // The next (unimpeded) rebuild restores the index.
  EXPECT_TRUE(service.Refresh().ok());
  EXPECT_EQ(service.epoch(), 3u);
  EXPECT_FALSE(service.epoch_degraded());
  EXPECT_TRUE(service.Snapshot().core->index_present());
}

TEST(DynamicServiceTest, PermanentIndexFailureKeepsPublishingDegradedEpochs) {
  // Acceptance scenario: "himor/build" armed ALWAYS-ON plus a tiny rebuild
  // budget — every index build fails, yet the service keeps publishing
  // fresh (degraded) epochs instead of freezing on a stale one. The
  // sub-nanosecond budget is deterministically expired at its first check.
  ScopedFailpoint fp("himor/build", /*count=*/-1);
  ServiceOptions options = SmallOptions(10.0);
  options.rebuild_budget_seconds = 1e-12;
  World w = MakeWorld(16);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  // Even the construction epoch published degraded (no index to fall back
  // to, and none needed).
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_TRUE(service.epoch_degraded());
  for (uint64_t round = 1; round <= 3; ++round) {
    ASSERT_TRUE(service.AddEdge(static_cast<NodeId>(round),
                                static_cast<NodeId>(150 + round)));
    ASSERT_TRUE(service.Refresh().ok());
    EXPECT_EQ(service.epoch(), 1u + round);
    EXPECT_TRUE(service.epoch_degraded());
    EXPECT_EQ(service.pending_updates(), 0u);
  }
  const RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.published, 4u);
  EXPECT_EQ(stats.published_degraded, 4u);
  EXPECT_EQ(stats.failures, 0u);

  // Every epoch served queries the whole time.
  Rng rng(4);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    found += service.QueryCodL(q, attrs[0], 5, rng).found;
  }
  EXPECT_GT(found, 0);
}

TEST(DynamicServiceTest, DegradedCodlMatchesIndexlessBaseline) {
  // Two services over the same world and seed walk the same ticket
  // sequence, so their epoch graphs are identical; only the index differs.
  World w1 = MakeWorld(15);
  World w2 = MakeWorld(15);
  DynamicCodService degraded_svc(std::move(w1.graph), std::move(w1.attrs),
                                 SmallOptions(10.0));
  DynamicCodService baseline(std::move(w2.graph), std::move(w2.attrs),
                             SmallOptions(10.0));
  ASSERT_TRUE(degraded_svc.AddEdge(2, 120));
  ASSERT_TRUE(baseline.AddEdge(2, 120));
  {
    ScopedFailpoint fp("himor/build", /*count=*/-1);
    ASSERT_TRUE(degraded_svc.Refresh().ok());
  }
  ASSERT_TRUE(baseline.Refresh().ok());
  ASSERT_TRUE(degraded_svc.epoch_degraded());
  ASSERT_FALSE(baseline.epoch_degraded());

  // Degraded CODL must be bit-identical to CODL- on the index-present
  // baseline under the same RNG stream — the fallback IS that computation
  // (LORE pick, local recluster, spliced ancestors, compressed eval), which
  // finds the same characteristic communities CODL accelerates.
  QueryWorkspace ws_b(*baseline.Snapshot().core, 0);
  Rng rng_d(9);
  Rng rng_b(9);
  int compared = 0;
  for (NodeId q = 0; q < 16; ++q) {
    const auto attrs = baseline.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = degraded_svc.QueryCodL(q, attrs[0], 5, rng_d);
    ws_b.rng() = rng_b;
    const CodResult b =
        baseline.Snapshot().core->QueryCodLMinus(q, attrs[0], 5, ws_b);
    rng_b = ws_b.rng();
    EXPECT_TRUE(a.degraded);
    EXPECT_FALSE(b.degraded);
    EXPECT_EQ(a.found, b.found) << "q=" << q;
    EXPECT_EQ(a.members, b.members) << "q=" << q;
    EXPECT_EQ(a.rank, b.rank) << "q=" << q;
    ++compared;
  }
  EXPECT_GE(compared, 4);
}

TEST(DynamicServiceTest, AsyncRebuildRetriesWithBackoffUntilSuccess) {
  World w = MakeWorld(13);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  options.max_rebuild_retries = 3;
  options.rebuild_backoff_initial_ms = 1;
  options.rebuild_backoff_max_ms = 2;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(2, 130));
  // The first two attempts fail; the third succeeds within the retry cap.
  ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/2);
  ASSERT_TRUE(service.RefreshAsync());
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_NE(service.engine().graph().FindEdge(2, 130), kInvalidEdge);
  const RebuildStats stats = service.rebuild_stats();
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.attempts, 4u);  // construction + 2 failures + success
}

TEST(DynamicServiceTest, AsyncRebuildGivesUpAfterRetryCap) {
  World w = MakeWorld(14);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  options.max_rebuild_retries = 1;
  options.rebuild_backoff_initial_ms = 1;
  options.rebuild_backoff_max_ms = 1;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(3, 120));
  {
    // More armed failures than 1 + max_rebuild_retries attempts can clear.
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/100);
    ASSERT_TRUE(service.RefreshAsync());
    service.WaitForRebuild();
    EXPECT_EQ(service.epoch(), 1u);  // old epoch still published
    EXPECT_EQ(service.pending_updates(), 1u);  // restored for a retry
    const RebuildStats stats = service.rebuild_stats();
    EXPECT_EQ(stats.failures, 2u);  // initial attempt + 1 retry
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_FALSE(stats.last_error.ok());
  }
  // Once the injected fault clears, a fresh ticket succeeds and the service
  // shuts down cleanly (destructor waits out nothing).
  ASSERT_TRUE(service.RefreshAsync());
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

// Tentpole regression: the async retry loop used to park a pool worker in
// std::this_thread::sleep_for for the whole backoff window. Retries are now
// a scheduled retry_after deadline — between attempts the worker is back in
// the pool, provably free to run other work.
TEST(DynamicServiceTest, RetryBackoffHoldsNoPoolWorker) {
  World w = MakeWorld(17);
  TaskScheduler rebuild_pool(1);  // ONE worker makes occupancy observable
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  options.max_rebuild_retries = 2;
  options.rebuild_backoff_initial_ms = 500;  // a wide, observable window
  options.rebuild_backoff_max_ms = 500;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(4, 110));
  ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/1);
  ASSERT_TRUE(service.RefreshAsync());
  // Wait until the failed attempt has scheduled its retry (bounded spin).
  const auto spin_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!service.RetryScheduled()) {
    ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline)
        << "retry never scheduled";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The retry is waiting out its 500 ms backoff. The pool's only worker
  // must be idle: a canary task runs and completes WHILE the retry is still
  // scheduled — impossible if the worker were asleep in the backoff.
  std::atomic<bool> canary_ran{false};
  rebuild_pool.Submit(TaskPriority::kInteractive,
                      [&] { canary_ran.store(true); });
  while (!canary_ran.load() && service.RetryScheduled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(canary_ran.load());
  EXPECT_TRUE(service.RetryScheduled())
      << "canary only ran after the retry fired: worker was held in backoff";

  // The in-flight ticket still dedupes while waiting on its deadline...
  EXPECT_FALSE(service.RefreshAsync());
  // ...and resolves on its own (timer-driven) into a published epoch.
  service.WaitForRebuild();
  EXPECT_FALSE(service.RetryScheduled());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.rebuild_stats().retries, 1u);
}

// An explicit Refresh() absorbs a scheduled retry instead of waiting out
// its backoff: the synchronous build supersedes the ticket.
TEST(DynamicServiceTest, RefreshAbsorbsScheduledRetry) {
  World w = MakeWorld(18);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  options.max_rebuild_retries = 3;
  // A backoff far longer than the test: if Refresh waited it out, the test
  // would time out instead of passing.
  options.rebuild_backoff_initial_ms = 60000;
  options.rebuild_backoff_max_ms = 60000;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(5, 100));
  {
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/1);
    ASSERT_TRUE(service.RefreshAsync());
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!service.RetryScheduled()) {
      ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_FALSE(service.RetryScheduled());
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  EXPECT_NE(service.engine().graph().FindEdge(5, 100), kInvalidEdge);
}

// The destructor gives up a scheduled retry instead of waiting out its
// backoff (here: a full minute).
TEST(DynamicServiceTest, DestructorCancelsScheduledRetry) {
  World w = MakeWorld(19);
  TaskScheduler rebuild_pool(1);
  ServiceOptions options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.scheduler = &rebuild_pool;
  options.max_rebuild_retries = 3;
  options.rebuild_backoff_initial_ms = 60000;
  options.rebuild_backoff_max_ms = 60000;
  const auto start = std::chrono::steady_clock::now();
  {
    DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                              options);
    ASSERT_TRUE(service.AddEdge(6, 90));
    ScopedFailpoint fp("dynamic_service/rebuild", /*count=*/1);
    ASSERT_TRUE(service.RefreshAsync());
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!service.RetryScheduled()) {
      ASSERT_LT(std::chrono::steady_clock::now(), spin_deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor: cancel retry, join timer — must NOT take ~60 s
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(30));
}

}  // namespace
}  // namespace cod
