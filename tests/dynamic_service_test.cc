#include "core/dynamic_service.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

DynamicCodService::Options SmallOptions(double threshold) {
  DynamicCodService::Options options;
  options.rebuild_threshold = threshold;
  options.seed = 7;
  return options;
}

TEST(DynamicServiceTest, InitialEpochServesQueries) {
  World w = MakeWorld(1);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.05));
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.pending_updates(), 0u);
  Rng rng(2);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    found += service.QueryCodL(q, attrs[0], 5, rng).found;
  }
  EXPECT_GT(found, 0);
}

TEST(DynamicServiceTest, UpdatesAccumulateWithoutRebuild) {
  World w = MakeWorld(2);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));  // high threshold
  const size_t edges_before = service.NumEdges();
  EXPECT_TRUE(service.AddEdge(0, 100));
  EXPECT_TRUE(service.AddEdge(1, 101));
  EXPECT_TRUE(service.RemoveEdge(0, 100));
  EXPECT_FALSE(service.RemoveEdge(0, 100));  // already gone
  EXPECT_FALSE(service.AddEdge(5, 5));       // self-loop rejected
  EXPECT_EQ(service.pending_updates(), 3u);
  EXPECT_EQ(service.epoch(), 1u);  // no rebuild yet
  EXPECT_EQ(service.NumEdges(), edges_before + 1);
}

TEST(DynamicServiceTest, RefreshAppliesUpdatesToEngine) {
  World w = MakeWorld(3);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));
  ASSERT_TRUE(service.AddEdge(0, 150, 2.5));
  service.Refresh();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  const Graph& g = service.engine().graph();
  const EdgeId e = g.FindEdge(0, 150);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_DOUBLE_EQ(g.Weight(e), 2.5);
}

TEST(DynamicServiceTest, ThresholdTriggersAutoRebuild) {
  World w = MakeWorld(4);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.01));  // ~8 updates suffice
  Rng rng(5);
  for (NodeId v = 0; v < 12; ++v) {
    service.AddEdge(v, static_cast<NodeId>(180 - v));
  }
  EXPECT_EQ(service.epoch(), 1u);
  service.QueryCodU(0, 5, rng);  // crossing query triggers the rebuild
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

TEST(DynamicServiceTest, RemovalChangesServedGraph) {
  World w = MakeWorld(5);
  // Find an existing edge to delete.
  const auto [u, v] = w.graph.Endpoints(0);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_TRUE(service.RemoveEdge(u, v));
  service.Refresh();
  EXPECT_EQ(service.engine().graph().FindEdge(u, v), kInvalidEdge);
}

TEST(DynamicServiceTest, DeterministicAcrossInstances) {
  World w1 = MakeWorld(6);
  World w2 = MakeWorld(6);
  DynamicCodService s1(std::move(w1.graph), std::move(w1.attrs),
                       SmallOptions(0.5));
  DynamicCodService s2(std::move(w2.graph), std::move(w2.attrs),
                       SmallOptions(0.5));
  s1.AddEdge(3, 77);
  s2.AddEdge(3, 77);
  s1.Refresh();
  s2.Refresh();
  Rng rng1(9);
  Rng rng2(9);
  for (NodeId q = 0; q < 8; ++q) {
    const auto attrs = s1.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = s1.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = s2.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

TEST(DynamicServiceTest, SnapshotSurvivesRefresh) {
  World w = MakeWorld(7);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  const DynamicCodService::EpochSnapshot old_snap = service.Snapshot();
  EXPECT_EQ(old_snap.epoch, 1u);
  const size_t old_edges = old_snap.core->graph().NumEdges();

  ASSERT_TRUE(service.AddEdge(0, 150));
  service.Refresh();
  EXPECT_EQ(service.Snapshot().epoch, 2u);

  // The retired epoch stays alive and queryable through its shared_ptr.
  EXPECT_EQ(old_snap.core->graph().NumEdges(), old_edges);
  EXPECT_EQ(old_snap.core->graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_NE(service.Snapshot().core->graph().FindEdge(0, 150), kInvalidEdge);
  QueryWorkspace ws(*old_snap.core, 3);
  EXPECT_NO_FATAL_FAILURE(old_snap.core->QueryCodU(0, 5, ws));
}

TEST(DynamicServiceTest, AsyncRefreshServesStaleThenSwaps) {
  World w = MakeWorld(8);
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options options = SmallOptions(10.0);
  options.async_rebuild = true;
  options.rebuild_pool = &rebuild_pool;
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  ASSERT_TRUE(service.AddEdge(0, 150));
  ASSERT_TRUE(service.RefreshAsync());
  // A query issued right away is answered from SOME published epoch without
  // blocking on the rebuild — at this point either epoch 1 (stale) or 2.
  Rng rng(4);
  service.QueryCodU(0, 5, rng);
  service.WaitForRebuild();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_NE(service.engine().graph().FindEdge(0, 150), kInvalidEdge);
  EXPECT_EQ(service.pending_updates(), 0u);

  // Dedupe: a second RefreshAsync while one is in flight is a no-op.
  ASSERT_TRUE(service.AddEdge(1, 151));
  const bool first = service.RefreshAsync();
  const bool second = service.RefreshAsync();
  service.WaitForRebuild();
  EXPECT_TRUE(first);
  if (second) {
    EXPECT_EQ(service.epoch(), 4u);  // both rebuilds ran back to back
  } else {
    EXPECT_EQ(service.epoch(), 3u);  // deduped against the in-flight one
  }
}

TEST(DynamicServiceTest, AsyncAndSyncRebuildsPublishIdenticalEpochs) {
  World w1 = MakeWorld(9);
  World w2 = MakeWorld(9);
  DynamicCodService sync_service(std::move(w1.graph), std::move(w1.attrs),
                                 SmallOptions(10.0));
  ThreadPool rebuild_pool(1);
  DynamicCodService::Options async_options = SmallOptions(10.0);
  async_options.async_rebuild = true;
  async_options.rebuild_pool = &rebuild_pool;
  DynamicCodService async_service(std::move(w2.graph), std::move(w2.attrs),
                                  async_options);

  const std::pair<NodeId, NodeId> updates[] = {{2, 90}, {5, 120}, {9, 44}};
  for (const auto& [u, v] : updates) {
    sync_service.AddEdge(u, v);
    async_service.AddEdge(u, v);
  }
  sync_service.Refresh();
  ASSERT_TRUE(async_service.RefreshAsync());
  async_service.WaitForRebuild();
  ASSERT_EQ(sync_service.epoch(), async_service.epoch());

  // Same build ticket + same edge set => bit-identical epoch cores.
  Rng rng1(11);
  Rng rng2(11);
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = sync_service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = sync_service.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = async_service.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_TRUE(cod::testing::SameResult(a, b)) << "q=" << q;
  }
}

TEST(DynamicServiceTest, ServiceQueryBatchMatchesSnapshotBatch) {
  World w = MakeWorld(10);
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; q < 10; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    QuerySpec spec;
    spec.node = q;
    spec.k = 5;
    if (own.empty()) {
      spec.variant = CodVariant::kCodU;
    } else {
      spec.variant = CodVariant::kCodL;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    }
    specs.push_back(std::move(spec));
  }
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ThreadPool pool(3);
  const auto via_service = service.QueryBatch(specs, pool, 21);
  const auto via_snapshot =
      RunQueryBatch(*service.Snapshot().core, specs, pool, 21);
  ASSERT_EQ(via_service.size(), via_snapshot.size());
  for (size_t i = 0; i < via_service.size(); ++i) {
    EXPECT_TRUE(cod::testing::SameResult(via_service[i], via_snapshot[i]))
        << "spec " << i;
  }
}

}  // namespace
}  // namespace cod
