#include "core/dynamic_service.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 800;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

DynamicCodService::Options SmallOptions(double threshold) {
  DynamicCodService::Options options;
  options.rebuild_threshold = threshold;
  options.seed = 7;
  return options;
}

TEST(DynamicServiceTest, InitialEpochServesQueries) {
  World w = MakeWorld(1);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.05));
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.pending_updates(), 0u);
  Rng rng(2);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    const auto attrs = service.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    found += service.QueryCodL(q, attrs[0], 5, rng).found;
  }
  EXPECT_GT(found, 0);
}

TEST(DynamicServiceTest, UpdatesAccumulateWithoutRebuild) {
  World w = MakeWorld(2);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));  // high threshold
  const size_t edges_before = service.NumEdges();
  EXPECT_TRUE(service.AddEdge(0, 100));
  EXPECT_TRUE(service.AddEdge(1, 101));
  EXPECT_TRUE(service.RemoveEdge(0, 100));
  EXPECT_FALSE(service.RemoveEdge(0, 100));  // already gone
  EXPECT_FALSE(service.AddEdge(5, 5));       // self-loop rejected
  EXPECT_EQ(service.pending_updates(), 3u);
  EXPECT_EQ(service.epoch(), 1u);  // no rebuild yet
  EXPECT_EQ(service.NumEdges(), edges_before + 1);
}

TEST(DynamicServiceTest, RefreshAppliesUpdatesToEngine) {
  World w = MakeWorld(3);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.5));
  ASSERT_TRUE(service.AddEdge(0, 150, 2.5));
  service.Refresh();
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
  const Graph& g = service.engine().graph();
  const EdgeId e = g.FindEdge(0, 150);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_DOUBLE_EQ(g.Weight(e), 2.5);
}

TEST(DynamicServiceTest, ThresholdTriggersAutoRebuild) {
  World w = MakeWorld(4);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(0.01));  // ~8 updates suffice
  Rng rng(5);
  for (NodeId v = 0; v < 12; ++v) {
    service.AddEdge(v, static_cast<NodeId>(180 - v));
  }
  EXPECT_EQ(service.epoch(), 1u);
  service.QueryCodU(0, 5, rng);  // crossing query triggers the rebuild
  EXPECT_EQ(service.epoch(), 2u);
  EXPECT_EQ(service.pending_updates(), 0u);
}

TEST(DynamicServiceTest, RemovalChangesServedGraph) {
  World w = MakeWorld(5);
  // Find an existing edge to delete.
  const auto [u, v] = w.graph.Endpoints(0);
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            SmallOptions(10.0));
  ASSERT_TRUE(service.RemoveEdge(u, v));
  service.Refresh();
  EXPECT_EQ(service.engine().graph().FindEdge(u, v), kInvalidEdge);
}

TEST(DynamicServiceTest, DeterministicAcrossInstances) {
  World w1 = MakeWorld(6);
  World w2 = MakeWorld(6);
  DynamicCodService s1(std::move(w1.graph), std::move(w1.attrs),
                       SmallOptions(0.5));
  DynamicCodService s2(std::move(w2.graph), std::move(w2.attrs),
                       SmallOptions(0.5));
  s1.AddEdge(3, 77);
  s2.AddEdge(3, 77);
  s1.Refresh();
  s2.Refresh();
  Rng rng1(9);
  Rng rng2(9);
  for (NodeId q = 0; q < 8; ++q) {
    const auto attrs = s1.engine().attributes().AttributesOf(q);
    if (attrs.empty()) continue;
    const CodResult a = s1.QueryCodL(q, attrs[0], 5, rng1);
    const CodResult b = s2.QueryCodL(q, attrs[0], 5, rng2);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

}  // namespace
}  // namespace cod
