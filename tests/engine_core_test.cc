#include "core/engine_core.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/cod_engine.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

using ::cod::testing::SameResult;

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed, size_t n = 250) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

AttributeId AnyAttributeOf(const AttributeTable& attrs, NodeId q) {
  const auto a = attrs.AttributesOf(q);
  return a.empty() ? kInvalidAttribute : a[0];
}

TEST(EngineCoreTest, OwningConstructorKeepsInputsAlive) {
  std::shared_ptr<const EngineCore> core;
  {
    World w = MakeWorld(3);
    auto graph = std::make_shared<const Graph>(std::move(w.graph));
    auto attrs = std::make_shared<const AttributeTable>(std::move(w.attrs));
    core = std::make_shared<const EngineCore>(graph, attrs, EngineOptions{});
    // graph/attrs shared_ptrs go out of scope here; the core keeps them.
  }
  QueryWorkspace ws(*core, 4);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    found += core->QueryCodU(q, 5, ws).found;
  }
  EXPECT_GT(found, 0);
}

TEST(EngineCoreTest, WorkspaceReuseDoesNotChangeAnswers) {
  const World w = MakeWorld(5);
  const EngineCore core(w.graph, w.attrs, {});
  // One long-lived workspace against fresh per-query workspaces.
  QueryWorkspace reused(core, 0);
  for (NodeId q = 0; q < 10; ++q) {
    const AttributeId attr = AnyAttributeOf(w.attrs, q);
    if (attr == kInvalidAttribute) continue;
    reused.ReseedRng(100 + q);
    const CodResult a = core.QueryCodLMinus(q, attr, 5, reused);
    QueryWorkspace fresh(core, 100 + q);
    const CodResult b = core.QueryCodLMinus(q, attr, 5, fresh);
    EXPECT_TRUE(SameResult(a, b)) << "q=" << q;
  }
}

TEST(EngineCoreTest, WorkspaceRebindFollowsEpochSwap) {
  const World w1 = MakeWorld(6);
  const World w2 = MakeWorld(7, 180);
  const EngineCore core1(w1.graph, w1.attrs, {});
  const EngineCore core2(w2.graph, w2.attrs, {});

  QueryWorkspace ws(core1, 8);
  EXPECT_EQ(ws.bound_core(), &core1);
  const CodResult before = core1.QueryCodU(3, 5, ws);
  (void)before;

  ws.Rebind(core2);  // epoch swap: same workspace, new immutable core
  EXPECT_EQ(ws.bound_core(), &core2);
  ws.ReseedRng(9);
  const CodResult rebound = core2.QueryCodU(3, 5, ws);
  QueryWorkspace fresh(core2, 9);
  const CodResult reference = core2.QueryCodU(3, 5, fresh);
  EXPECT_TRUE(SameResult(rebound, reference));
}

// Satellite regression: the CODR hierarchy cache used to be a plain
// unordered_map mutated inside the query path. Hammer it from several
// threads and require every answer to match the uncached reference.
TEST(EngineCoreTest, ConcurrentCodrCachingGivesIdenticalResults) {
  const World w = MakeWorld(10);
  EngineOptions cached_opts;
  cached_opts.cache_codr_hierarchies = true;
  const EngineCore cached(w.graph, w.attrs, cached_opts);
  const EngineCore uncached(w.graph, w.attrs, {});

  // Reference answers, single-threaded and cache-free.
  struct Case {
    NodeId q;
    AttributeId attr;
    CodResult want;
  };
  std::vector<Case> cases;
  {
    QueryWorkspace ws(uncached, 0);
    for (NodeId q = 0; q < 8; ++q) {
      const AttributeId attr = AnyAttributeOf(w.attrs, q);
      if (attr == kInvalidAttribute) continue;
      ws.ReseedRng(1000 + q);
      cases.push_back(Case{q, attr, uncached.QueryCodR(q, attr, 5, ws)});
    }
  }
  ASSERT_GE(cases.size(), 4u);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;  // later rounds hit the warm cache
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkspace ws(cached, 0);
      for (int round = 0; round < kRounds; ++round) {
        for (const Case& c : cases) {
          ws.ReseedRng(1000 + c.q);
          const CodResult got = cached.QueryCodR(c.q, c.attr, 5, ws);
          if (!SameResult(got, c.want)) ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

// Satellite: the CODR cache is bounded. A sweep over more attributes than
// `codr_cache_capacity` must stay under the cap by LRU-evicting cold
// hierarchies (and say so in cod_codr_cache_evictions_total) — answers stay
// identical to an uncached core throughout.
TEST(EngineCoreTest, CodrCacheEvictsLruPastCapacity) {
  const World w = MakeWorld(20);
  EngineOptions cached_opts;
  cached_opts.cache_codr_hierarchies = true;
  cached_opts.codr_cache_capacity = 3;
  const EngineCore cached(w.graph, w.attrs, cached_opts);
  const EngineCore uncached(w.graph, w.attrs, {});

  Counter* builds =
      MetricsRegistry::Instance().GetCounter("cod_codr_cache_builds_total");
  Counter* evictions =
      MetricsRegistry::Instance().GetCounter("cod_codr_cache_evictions_total");
  const uint64_t builds_before = builds->Value();
  const uint64_t evictions_before = evictions->Value();

  // High-cardinality sweep: every attribute in the world (5 > capacity 3),
  // twice, so the second pass re-faults the evicted ones.
  QueryWorkspace ws(cached, 0);
  QueryWorkspace ref_ws(uncached, 0);
  const AttributeId num_attrs = 5;
  for (int round = 0; round < 2; ++round) {
    for (AttributeId attr = 0; attr < num_attrs; ++attr) {
      const NodeId q = 3;
      ws.ReseedRng(2000 + attr);
      const CodResult got = cached.QueryCodR(q, attr, 5, ws);
      ref_ws.ReseedRng(2000 + attr);
      const CodResult want = uncached.QueryCodR(q, attr, 5, ref_ws);
      EXPECT_TRUE(SameResult(got, want)) << "attr=" << attr;
      EXPECT_LE(cached.CodrCacheSize(), 3u);
    }
  }
  EXPECT_LE(cached.CodrCacheSize(), 3u);
  // Round 1 builds all 5 and evicts 2; round 2 re-faults at least the two
  // evicted attributes (exact counts depend on LRU order, bounds suffice).
  EXPECT_GE(builds->Value() - builds_before, 7u);
  EXPECT_GE(evictions->Value() - evictions_before, 4u);
}

// Satellite: cache misses are single-flight. N threads first-touching the
// SAME attribute must run exactly one GlobalRecluster between them — the
// rest wait on the in-flight latch and serve the shared result. Run under
// TSAN in CI; the assertion here is the build counter delta.
TEST(EngineCoreTest, CodrCacheMissesAreSingleFlight) {
  const World w = MakeWorld(21);
  EngineOptions opts;
  opts.cache_codr_hierarchies = true;
  const EngineCore core(w.graph, w.attrs, opts);

  Counter* builds =
      MetricsRegistry::Instance().GetCounter("cod_codr_cache_builds_total");
  const uint64_t builds_before = builds->Value();

  constexpr int kThreads = 8;
  const AttributeId attr = 2;
  std::vector<CodResult> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkspace ws(core, 0);
      ws.ReseedRng(3000);  // identical streams -> identical answers
      results[t] = core.QueryCodR(5, attr, 5, ws);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds->Value() - builds_before, 1u)
      << "first-touch stampede: redundant GlobalRecluster builds ran";
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(SameResult(results[t], results[0])) << "thread " << t;
  }
  EXPECT_EQ(core.CodrCacheSize(), 1u);
}

// Tentpole part 3: when the budgeted first-touch hierarchy build fails (the
// "engine_core/codr_cache" failpoint stands in for a budget blowout), CODR
// serves a degraded answer over the BASE hierarchy instead of kTimeout. The
// degraded answer is bit-identical to CODU under the same RNG stream.
TEST(EngineCoreTest, CodrCacheBuildFailureFallsBackToBaseHierarchy) {
  const World w = MakeWorld(22);
  EngineOptions opts;
  opts.cache_codr_hierarchies = true;
  const EngineCore core(w.graph, w.attrs, opts);

  Counter* fallbacks =
      MetricsRegistry::Instance().GetCounter("cod_codr_fallbacks_total");
  const uint64_t fallbacks_before = fallbacks->Value();
  const NodeId q = 4;
  const AttributeId attr = 1;

  QueryWorkspace ws(core, 0);
  CodResult degraded;
  {
    ScopedFailpoint fp("engine_core/codr_cache", /*count=*/1);
    ws.ReseedRng(4000);
    degraded = core.QueryCodR(q, attr, 5, ws);
  }
  EXPECT_EQ(degraded.code, StatusCode::kOk);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.variant_served, CodVariant::kCodU);
  EXPECT_EQ(fallbacks->Value() - fallbacks_before, 1u);

  ws.ReseedRng(4000);
  const CodResult codu = core.QueryCodU(q, 5, ws);
  EXPECT_EQ(degraded.found, codu.found);
  EXPECT_EQ(degraded.members, codu.members);
  EXPECT_EQ(degraded.rank, codu.rank);

  // The failed build left no cache entry; with the failpoint gone the next
  // query builds the real hierarchy and serves undegraded CODR.
  ws.ReseedRng(4001);
  const CodResult healthy = core.QueryCodR(q, attr, 5, ws);
  EXPECT_EQ(healthy.code, StatusCode::kOk);
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(healthy.variant_served, CodVariant::kCodR);
  EXPECT_EQ(fallbacks->Value() - fallbacks_before, 1u);
}

TEST(EngineCoreTest, ConcurrentMixedQueriesMatchSequentialRerun) {
  const World w = MakeWorld(11);
  EngineCore core(w.graph, w.attrs, {});
  Rng build_rng(12);
  core.BuildHimor(build_rng);
  const EngineCore& shared = core;

  constexpr int kThreads = 4;
  constexpr NodeId kQueriesPerThread = 6;
  std::vector<std::vector<CodResult>> concurrent(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkspace ws(shared, 0);
      for (NodeId q = 0; q < kQueriesPerThread; ++q) {
        const AttributeId attr = AnyAttributeOf(w.attrs, q);
        ws.ReseedRng(t * 1000 + q);
        concurrent[t].push_back(
            attr == kInvalidAttribute ? shared.QueryCodU(q, 5, ws)
                                      : shared.QueryCodL(q, attr, 5, ws));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  QueryWorkspace ws(shared, 0);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(concurrent[t].size(), kQueriesPerThread);
    for (NodeId q = 0; q < kQueriesPerThread; ++q) {
      const AttributeId attr = AnyAttributeOf(w.attrs, q);
      ws.ReseedRng(t * 1000 + q);
      const CodResult want = attr == kInvalidAttribute
                                 ? shared.QueryCodU(q, 5, ws)
                                 : shared.QueryCodL(q, attr, 5, ws);
      EXPECT_TRUE(SameResult(concurrent[t][q], want))
          << "thread " << t << " q " << q;
    }
  }
}

}  // namespace
}  // namespace cod
