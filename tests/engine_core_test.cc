#include "core/engine_core.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cod_engine.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

using ::cod::testing::SameResult;

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed, size_t n = 250) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

AttributeId AnyAttributeOf(const AttributeTable& attrs, NodeId q) {
  const auto a = attrs.AttributesOf(q);
  return a.empty() ? kInvalidAttribute : a[0];
}

// Pins the Rng-stream compatibility contract of the DEPRECATED Rng-form
// queries (see cod_engine.h): the legacy form must keep consuming the exact
// stream a workspace seeded alike would. This is the one in-repo caller that
// stays on the old API until the forwarders are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(EngineCoreTest, ConstQueriesMatchLegacyEngine) {
  const World w = MakeWorld(1);
  CodEngine engine(w.graph, w.attrs, {});
  Rng build_rng(2);
  engine.BuildHimor(build_rng);

  const std::shared_ptr<const EngineCore> core = engine.core();
  QueryWorkspace ws(*core, /*seed=*/0);
  for (NodeId q = 0; q < 12; ++q) {
    const AttributeId attr = AnyAttributeOf(w.attrs, q);
    if (attr == kInvalidAttribute) continue;
    // Legacy Rng form and const workspace form consume identical streams.
    Rng legacy_rng(500 + q);
    const CodResult legacy = engine.QueryCodL(q, attr, 5, legacy_rng);
    ws.ReseedRng(500 + q);
    const CodResult modern = core->QueryCodL(q, attr, 5, ws);
    EXPECT_TRUE(SameResult(legacy, modern)) << "q=" << q;

    Rng legacy_u(900 + q);
    const CodResult legacy_codu = engine.QueryCodU(q, 5, legacy_u);
    ws.ReseedRng(900 + q);
    const CodResult modern_codu = core->QueryCodU(q, 5, ws);
    EXPECT_TRUE(SameResult(legacy_codu, modern_codu)) << "q=" << q;
  }
}
#pragma GCC diagnostic pop

TEST(EngineCoreTest, OwningConstructorKeepsInputsAlive) {
  std::shared_ptr<const EngineCore> core;
  {
    World w = MakeWorld(3);
    auto graph = std::make_shared<const Graph>(std::move(w.graph));
    auto attrs = std::make_shared<const AttributeTable>(std::move(w.attrs));
    core = std::make_shared<const EngineCore>(graph, attrs, EngineOptions{});
    // graph/attrs shared_ptrs go out of scope here; the core keeps them.
  }
  QueryWorkspace ws(*core, 4);
  int found = 0;
  for (NodeId q = 0; q < 10; ++q) {
    found += core->QueryCodU(q, 5, ws).found;
  }
  EXPECT_GT(found, 0);
}

TEST(EngineCoreTest, WorkspaceReuseDoesNotChangeAnswers) {
  const World w = MakeWorld(5);
  const EngineCore core(w.graph, w.attrs, {});
  // One long-lived workspace against fresh per-query workspaces.
  QueryWorkspace reused(core, 0);
  for (NodeId q = 0; q < 10; ++q) {
    const AttributeId attr = AnyAttributeOf(w.attrs, q);
    if (attr == kInvalidAttribute) continue;
    reused.ReseedRng(100 + q);
    const CodResult a = core.QueryCodLMinus(q, attr, 5, reused);
    QueryWorkspace fresh(core, 100 + q);
    const CodResult b = core.QueryCodLMinus(q, attr, 5, fresh);
    EXPECT_TRUE(SameResult(a, b)) << "q=" << q;
  }
}

TEST(EngineCoreTest, WorkspaceRebindFollowsEpochSwap) {
  const World w1 = MakeWorld(6);
  const World w2 = MakeWorld(7, 180);
  const EngineCore core1(w1.graph, w1.attrs, {});
  const EngineCore core2(w2.graph, w2.attrs, {});

  QueryWorkspace ws(core1, 8);
  EXPECT_EQ(ws.bound_core(), &core1);
  const CodResult before = core1.QueryCodU(3, 5, ws);
  (void)before;

  ws.Rebind(core2);  // epoch swap: same workspace, new immutable core
  EXPECT_EQ(ws.bound_core(), &core2);
  ws.ReseedRng(9);
  const CodResult rebound = core2.QueryCodU(3, 5, ws);
  QueryWorkspace fresh(core2, 9);
  const CodResult reference = core2.QueryCodU(3, 5, fresh);
  EXPECT_TRUE(SameResult(rebound, reference));
}

// Satellite regression: the CODR hierarchy cache used to be a plain
// unordered_map mutated inside the query path. Hammer it from several
// threads and require every answer to match the uncached reference.
TEST(EngineCoreTest, ConcurrentCodrCachingGivesIdenticalResults) {
  const World w = MakeWorld(10);
  EngineOptions cached_opts;
  cached_opts.cache_codr_hierarchies = true;
  const EngineCore cached(w.graph, w.attrs, cached_opts);
  const EngineCore uncached(w.graph, w.attrs, {});

  // Reference answers, single-threaded and cache-free.
  struct Case {
    NodeId q;
    AttributeId attr;
    CodResult want;
  };
  std::vector<Case> cases;
  {
    QueryWorkspace ws(uncached, 0);
    for (NodeId q = 0; q < 8; ++q) {
      const AttributeId attr = AnyAttributeOf(w.attrs, q);
      if (attr == kInvalidAttribute) continue;
      ws.ReseedRng(1000 + q);
      cases.push_back(Case{q, attr, uncached.QueryCodR(q, attr, 5, ws)});
    }
  }
  ASSERT_GE(cases.size(), 4u);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;  // later rounds hit the warm cache
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkspace ws(cached, 0);
      for (int round = 0; round < kRounds; ++round) {
        for (const Case& c : cases) {
          ws.ReseedRng(1000 + c.q);
          const CodResult got = cached.QueryCodR(c.q, c.attr, 5, ws);
          if (!SameResult(got, c.want)) ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(EngineCoreTest, ConcurrentMixedQueriesMatchSequentialRerun) {
  const World w = MakeWorld(11);
  EngineCore core(w.graph, w.attrs, {});
  Rng build_rng(12);
  core.BuildHimor(build_rng);
  const EngineCore& shared = core;

  constexpr int kThreads = 4;
  constexpr NodeId kQueriesPerThread = 6;
  std::vector<std::vector<CodResult>> concurrent(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryWorkspace ws(shared, 0);
      for (NodeId q = 0; q < kQueriesPerThread; ++q) {
        const AttributeId attr = AnyAttributeOf(w.attrs, q);
        ws.ReseedRng(t * 1000 + q);
        concurrent[t].push_back(
            attr == kInvalidAttribute ? shared.QueryCodU(q, 5, ws)
                                      : shared.QueryCodL(q, attr, 5, ws));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  QueryWorkspace ws(shared, 0);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(concurrent[t].size(), kQueriesPerThread);
    for (NodeId q = 0; q < kQueriesPerThread; ++q) {
      const AttributeId attr = AnyAttributeOf(w.attrs, q);
      ws.ReseedRng(t * 1000 + q);
      const CodResult want = attr == kInvalidAttribute
                                 ? shared.QueryCodU(q, 5, ws)
                                 : shared.QueryCodL(q, attr, 5, ws);
      EXPECT_TRUE(SameResult(concurrent[t][q], want))
          << "thread " << t << " q " << q;
    }
  }
}

}  // namespace
}  // namespace cod
