#include "influence/im.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "influence/monte_carlo.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Two stars joined by a weak path: the two hubs are the optimal 2-seed set.
Graph TwoStars() {
  GraphBuilder b(12);
  for (NodeId v = 1; v <= 4; ++v) b.AddEdge(0, v);
  for (NodeId v = 7; v <= 10; ++v) b.AddEdge(6, v);
  b.AddEdge(4, 11);
  b.AddEdge(11, 7);
  return std::move(b).Build();
}

TEST(ImRisTest, PicksBothHubs) {
  const Graph g = TwoStars();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(1);
  const ImResult result = MaximizeInfluenceRis(m, 2, 20000, rng);
  ASSERT_EQ(result.seeds.size(), 2u);
  const std::set<NodeId> seeds(result.seeds.begin(), result.seeds.end());
  EXPECT_TRUE(seeds.contains(0));
  EXPECT_TRUE(seeds.contains(6));
}

TEST(ImRisTest, SeedsAreDistinct) {
  const Graph g = testing::MakeClique(6);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(2);
  const ImResult result = MaximizeInfluenceRis(m, 4, 5000, rng);
  std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), result.seeds.size());
}

TEST(ImRisTest, EstimateTracksMonteCarloSpread) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  Rng rng(3);
  const ImResult result = MaximizeInfluenceRis(m, 2, 30000, rng);
  MonteCarloSimulator simulator(m);
  const double mc =
      simulator.EstimateInfluenceOfSet(result.seeds, 60000, rng);
  EXPECT_NEAR(result.estimated_influence, mc, 0.25);
}

TEST(ImRisTest, RestrictionConfinesSeeds) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(4);
  std::vector<char> allowed(8, 0);
  for (NodeId v = 4; v < 8; ++v) allowed[v] = 1;
  const ImResult result = MaximizeInfluenceRis(m, 2, 4000, rng, &allowed);
  for (NodeId seed : result.seeds) EXPECT_GE(seed, 4u);
}

TEST(ImGreedyMcTest, PicksBothHubs) {
  const Graph g = TwoStars();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(5);
  const ImResult result = MaximizeInfluenceGreedyMc(m, 2, 3000, rng);
  ASSERT_EQ(result.seeds.size(), 2u);
  const std::set<NodeId> seeds(result.seeds.begin(), result.seeds.end());
  EXPECT_TRUE(seeds.contains(0));
  EXPECT_TRUE(seeds.contains(6));
}

TEST(ImAgreementTest, RisAndGreedyAgreeOnSpread) {
  Rng gen_rng(6);
  const Graph g = EnsureConnected(ErdosRenyi(40, 120, gen_rng), gen_rng);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(7);
  const ImResult ris = MaximizeInfluenceRis(m, 3, 30000, rng);
  const ImResult greedy = MaximizeInfluenceGreedyMc(m, 3, 2000, rng);
  // Seed sets may differ; expected spreads should be within noise + the
  // approximation slack of each other.
  MonteCarloSimulator simulator(m);
  const double ris_spread =
      simulator.EstimateInfluenceOfSet(ris.seeds, 30000, rng);
  const double greedy_spread =
      simulator.EstimateInfluenceOfSet(greedy.seeds, 30000, rng);
  EXPECT_NEAR(ris_spread, greedy_spread, 0.6);
}

TEST(ImTest, SingleSeedIsMaxInfluenceNode) {
  // On a star the hub must be the single best seed for both algorithms.
  GraphBuilder b(8);
  for (NodeId v = 1; v < 8; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng rng(8);
  EXPECT_EQ(MaximizeInfluenceRis(m, 1, 10000, rng).seeds[0], 0u);
  EXPECT_EQ(MaximizeInfluenceGreedyMc(m, 1, 2000, rng).seeds[0], 0u);
}

}  // namespace
}  // namespace cod
