#include "hierarchy/dendrogram.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(DendrogramTest, SingleLeaf) {
  const Dendrogram d = DendrogramBuilder(1).Build();
  EXPECT_EQ(d.NumLeaves(), 1u);
  EXPECT_EQ(d.NumVertices(), 1u);
  EXPECT_EQ(d.Root(), 0u);
  EXPECT_TRUE(d.IsLeaf(0));
  EXPECT_EQ(d.LeafCount(0), 1u);
}

TEST(DendrogramTest, BinaryMergeShape) {
  DendrogramBuilder b(4);
  const CommunityId m01 = b.Merge(0, 1);
  const CommunityId m23 = b.Merge(2, 3);
  const CommunityId root = b.Merge(m01, m23);
  const Dendrogram d = std::move(b).Build();

  EXPECT_EQ(d.NumVertices(), 7u);
  EXPECT_EQ(d.Root(), root);
  EXPECT_EQ(d.Parent(root), kInvalidCommunity);
  EXPECT_EQ(d.Parent(m01), root);
  EXPECT_EQ(d.Parent(0), m01);
  EXPECT_EQ(d.Depth(root), 1u);
  EXPECT_EQ(d.Depth(m01), 2u);
  EXPECT_EQ(d.Depth(0), 3u);
  EXPECT_EQ(d.LeafCount(root), 4u);
  EXPECT_EQ(d.LeafCount(m01), 2u);
  EXPECT_EQ(d.Children(root).size(), 2u);
}

TEST(DendrogramTest, MembersContiguousAndComplete) {
  const auto ex = testing::MakePaperExample();
  const auto members = ex.dendrogram.Members(ex.c3);
  std::vector<NodeId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 6, 7}));
  EXPECT_EQ(ex.dendrogram.LeafCount(ex.c3), 6u);
}

TEST(DendrogramTest, ContainsMatchesMembers) {
  const auto ex = testing::MakePaperExample();
  for (CommunityId c : {ex.c0, ex.c1, ex.c2, ex.c3, ex.c4, ex.c5, ex.c6}) {
    std::vector<char> expected(10, 0);
    for (NodeId v : ex.dendrogram.Members(c)) expected[v] = 1;
    for (NodeId v = 0; v < 10; ++v) {
      EXPECT_EQ(ex.dendrogram.Contains(c, v), static_cast<bool>(expected[v]))
          << "community " << c << " node " << v;
    }
  }
}

TEST(DendrogramTest, PaperExampleDepths) {
  // Example 2: dep(C3) = 3, H(v0) = {C0, C3, C4, C6}.
  const auto ex = testing::MakePaperExample();
  EXPECT_EQ(ex.dendrogram.Depth(ex.c6), 1u);
  EXPECT_EQ(ex.dendrogram.Depth(ex.c4), 2u);
  EXPECT_EQ(ex.dendrogram.Depth(ex.c3), 3u);
  EXPECT_EQ(ex.dendrogram.Depth(ex.c0), 4u);
  const auto path = ex.dendrogram.PathToRoot(0);
  EXPECT_EQ(path,
            (std::vector<CommunityId>{ex.c0, ex.c3, ex.c4, ex.c6}));
}

TEST(DendrogramTest, PathDepthsAreConsecutive) {
  const auto ex = testing::MakePaperExample();
  for (NodeId q = 0; q < 10; ++q) {
    const auto path = ex.dendrogram.PathToRoot(q);
    for (size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(ex.dendrogram.Depth(path[i]), path.size() - i);
    }
  }
}

TEST(DendrogramTest, IsAncestorOrSelf) {
  const auto ex = testing::MakePaperExample();
  EXPECT_TRUE(ex.dendrogram.IsAncestorOrSelf(ex.c6, ex.c0));
  EXPECT_TRUE(ex.dendrogram.IsAncestorOrSelf(ex.c3, ex.c0));
  EXPECT_TRUE(ex.dendrogram.IsAncestorOrSelf(ex.c3, ex.c3));
  EXPECT_FALSE(ex.dendrogram.IsAncestorOrSelf(ex.c0, ex.c3));
  EXPECT_FALSE(ex.dendrogram.IsAncestorOrSelf(ex.c1, ex.c2));
}

TEST(DendrogramTest, MultiWayMerge) {
  DendrogramBuilder b(5);
  const CommunityId all[5] = {0, 1, 2, 3, 4};
  const CommunityId root = b.Merge(all);
  const Dendrogram d = std::move(b).Build();
  EXPECT_EQ(d.Children(root).size(), 5u);
  EXPECT_EQ(d.LeafCount(root), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d.Depth(v), 2u);
}

TEST(DendrogramTest, LeafCountsSumAcrossChildren) {
  const auto ex = testing::MakePaperExample();
  for (CommunityId c = 0; c < ex.dendrogram.NumVertices(); ++c) {
    if (ex.dendrogram.IsLeaf(c)) continue;
    uint32_t total = 0;
    for (CommunityId child : ex.dendrogram.Children(c)) {
      total += ex.dendrogram.LeafCount(child);
    }
    EXPECT_EQ(total, ex.dendrogram.LeafCount(c));
  }
}

// Structural property sweep on random hierarchies.
class DendrogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DendrogramPropertyTest, NestedIntervalsAndDepthInvariants) {
  Rng rng(GetParam());
  const size_t n = 20 + rng.UniformInt(100);
  // Random binary merge tree over n leaves.
  DendrogramBuilder b(n);
  std::vector<CommunityId> roots(n);
  for (NodeId v = 0; v < n; ++v) roots[v] = v;
  while (roots.size() > 1) {
    const size_t i = rng.UniformInt(roots.size());
    std::swap(roots[i], roots.back());
    const CommunityId a = roots.back();
    roots.pop_back();
    const size_t j = rng.UniformInt(roots.size());
    const CommunityId merged = b.Merge(a, roots[j]);
    roots[j] = merged;
  }
  const Dendrogram d = std::move(b).Build();

  for (CommunityId c = 0; c < d.NumVertices(); ++c) {
    const CommunityId parent = d.Parent(c);
    if (parent == kInvalidCommunity) {
      EXPECT_EQ(c, d.Root());
      EXPECT_EQ(d.Depth(c), 1u);
      continue;
    }
    // Child members are a sub-span of the parent's members.
    const auto mine = d.Members(c);
    const auto theirs = d.Members(parent);
    EXPECT_GE(mine.data(), theirs.data());
    EXPECT_LE(mine.data() + mine.size(), theirs.data() + theirs.size());
    EXPECT_EQ(d.Depth(c), d.Depth(parent) + 1);
    EXPECT_TRUE(d.IsAncestorOrSelf(parent, c));
    EXPECT_FALSE(d.IsAncestorOrSelf(c, parent));
  }
  // Every node's membership agrees with Members().
  for (int trial = 0; trial < 50; ++trial) {
    const CommunityId c =
        static_cast<CommunityId>(rng.UniformInt(d.NumVertices()));
    const auto members = d.Members(c);
    std::vector<char> inside(n, 0);
    for (NodeId v : members) inside[v] = 1;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(d.Contains(c, v), static_cast<bool>(inside[v]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DendrogramPropertyTest,
                         ::testing::Values(51, 52, 53, 54, 55));

}  // namespace
}  // namespace cod
