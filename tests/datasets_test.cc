#include "eval/datasets.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"

namespace cod {
namespace {

struct Expected {
  const char* name;
  size_t nodes;
  size_t min_edges;
  size_t max_attributes;
};

class DatasetShapeTest : public ::testing::TestWithParam<Expected> {};

TEST_P(DatasetShapeTest, MatchesTableOne) {
  const Expected& e = GetParam();
  Result<AttributedGraph> data = MakeDataset(e.name);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->graph.NumNodes(), e.nodes);
  EXPECT_GE(data->graph.NumEdges(), e.min_edges);
  EXPECT_TRUE(IsConnected(data->graph));
  EXPECT_LE(data->attributes.NumAttributes(), e.max_attributes);
  EXPECT_EQ(data->attributes.NumNodes(), e.nodes);
  // Every node has at least one attribute in all registered datasets.
  size_t with_attr = 0;
  for (NodeId v = 0; v < data->graph.NumNodes(); ++v) {
    with_attr += !data->attributes.AttributesOf(v).empty();
  }
  EXPECT_EQ(with_attr, e.nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DatasetShapeTest,
    ::testing::Values(Expected{"cora-sim", 2485, 4800, 7},
                      Expected{"citeseer-sim", 2110, 3500, 6},
                      Expected{"pubmed-sim", 19717, 42000, 3},
                      Expected{"retweet-sim", 18470, 45000, 2}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DatasetTest, UnknownNameIsNotFound) {
  Result<AttributedGraph> r = MakeDataset("no-such-dataset");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, NamesListedAndBuildable) {
  const auto names = DatasetNames();
  EXPECT_EQ(names.size(), 7u);
  const auto small = SmallDatasetNames();
  EXPECT_EQ(small.size(), 4u);
  for (const auto& name : small) {
    EXPECT_TRUE(MakeDataset(name).ok()) << name;
  }
}

TEST(DatasetTest, SeedOverrideChangesGraph) {
  Result<AttributedGraph> a = MakeDataset("cora-sim");
  Result<AttributedGraph> b = MakeDataset("cora-sim", /*seed_override=*/99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.NumNodes(), b->graph.NumNodes());
  bool any_difference = a->graph.NumEdges() != b->graph.NumEdges();
  if (!any_difference) {
    for (EdgeId e = 0; e < a->graph.NumEdges(); ++e) {
      if (a->graph.Endpoints(e) != b->graph.Endpoints(e)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DatasetTest, DeterministicDefaultSeed) {
  Result<AttributedGraph> a = MakeDataset("citeseer-sim");
  Result<AttributedGraph> b = MakeDataset("citeseer-sim");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->graph.NumEdges(), b->graph.NumEdges());
  for (EdgeId e = 0; e < a->graph.NumEdges(); ++e) {
    ASSERT_EQ(a->graph.Endpoints(e), b->graph.Endpoints(e));
  }
}

TEST(DatasetTest, AmazonSimUsesBlockAttributeScheme) {
  Result<AttributedGraph> data = MakeDataset("amazon-sim");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->graph.NumNodes(), 33486u);
  // Paper scheme: exactly one attribute per node.
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_EQ(data->attributes.AttributesOf(v).size(), 1u);
  }
}

}  // namespace
}  // namespace cod
