#include "core/query_batch.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "core/cod_engine.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

using ::cod::testing::SameResult;

struct World {
  Graph graph;
  AttributeTable attrs;
};

World MakeWorld(uint64_t seed, size_t n = 220) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

// A workload covering every variant, topic sets, and the k=0 default.
std::vector<QuerySpec> MakeSpecs(const AttributeTable& attrs, size_t count) {
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; specs.size() < count; ++q) {
    const auto own = attrs.AttributesOf(q % attrs.NumNodes());
    QuerySpec spec;
    spec.node = q % static_cast<NodeId>(attrs.NumNodes());
    switch (specs.size() % 5) {
      case 0:
        spec.variant = CodVariant::kCodU;
        break;
      case 1:
        spec.variant = CodVariant::kCodUIndexed;
        break;
      case 2:
        if (own.empty()) continue;
        spec.variant = CodVariant::kCodR;
        spec.attrs.assign(own.begin(), own.begin() + 1);
        break;
      case 3:
        if (own.empty()) continue;
        spec.variant = CodVariant::kCodLMinus;
        spec.attrs.assign(own.begin(), own.end());  // topic set
        spec.k = 3;
        break;
      default:
        if (own.empty()) continue;
        spec.variant = CodVariant::kCodL;
        spec.attrs.assign(own.begin(), own.begin() + 1);
        break;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

class QueryBatchTest : public ::testing::Test {
 protected:
  QueryBatchTest() : world_(MakeWorld(1)) {
    engine_ = std::make_unique<CodEngine>(world_.graph, world_.attrs,
                                          EngineOptions{});
    Rng rng(2);
    engine_->BuildHimor(rng);
    specs_ = MakeSpecs(world_.attrs, 20);
  }

  World world_;
  std::unique_ptr<CodEngine> engine_;
  std::vector<QuerySpec> specs_;
};

TEST_F(QueryBatchTest, MatchesSequentialRerunPerQuery) {
  TaskScheduler pool(3);
  const std::vector<CodResult> batch =
      engine_->QueryBatch(specs_, pool, /*batch_seed=*/77);
  ASSERT_EQ(batch.size(), specs_.size());

  // Every batch answer is reproducible in isolation from its derived seed.
  const std::shared_ptr<const EngineCore> core = engine_->core();
  QueryWorkspace ws(*core, 0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    ws.ReseedRng(BatchQuerySeed(77, i));
    const CodResult want = RunQuerySpec(*core, specs_[i], ws);
    EXPECT_TRUE(SameResult(batch[i], want)) << "spec " << i;
  }
}

TEST_F(QueryBatchTest, BitIdenticalAcrossThreadCounts) {
  std::vector<std::vector<CodResult>> runs;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    TaskScheduler pool(threads);
    runs.push_back(engine_->QueryBatch(specs_, pool, /*batch_seed=*/5));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_TRUE(SameResult(runs[r][i], runs[0][i]))
          << "worker variant " << r << " spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, DifferentBatchSeedsChangeSampling) {
  TaskScheduler pool(2);
  const auto a = engine_->QueryBatch(specs_, pool, 1);
  const auto b = engine_->QueryBatch(specs_, pool, 2);
  // Sampled variants may legitimately flip some answers between seeds; the
  // index-only ones must not.
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].variant == CodVariant::kCodUIndexed) {
      EXPECT_TRUE(SameResult(a[i], b[i])) << "spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, DefaultKUsesEngineOptions) {
  TaskScheduler pool(2);
  std::vector<QuerySpec> defaulted{{CodVariant::kCodU, 3, 0, {}}};
  std::vector<QuerySpec> explicit_k{
      {CodVariant::kCodU, 3, engine_->options().k, {}}};
  const auto a = engine_->QueryBatch(defaulted, pool, 9);
  const auto b = engine_->QueryBatch(explicit_k, pool, 9);
  EXPECT_TRUE(SameResult(a[0], b[0]));
}

TEST_F(QueryBatchTest, EmptyBatchReturnsEmpty) {
  TaskScheduler pool(2);
  EXPECT_TRUE(engine_->QueryBatch({}, pool, 1).empty());
}

TEST_F(QueryBatchTest, DefaultOptionsMatchOptionFreeOverload) {
  TaskScheduler pool(3);
  const auto plain = engine_->QueryBatch(specs_, pool, 42);
  const auto with_options = engine_->QueryBatch(specs_, pool, 42,
                                                BatchOptions{});
  ASSERT_EQ(plain.size(), with_options.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(SameResult(plain[i], with_options[i])) << "spec " << i;
    EXPECT_EQ(plain[i].code, StatusCode::kOk) << "spec " << i;
    EXPECT_FALSE(plain[i].degraded) << "spec " << i;
  }
}

TEST_F(QueryBatchTest, AggressiveBudgetMixesFullAndDegradedDeterministically) {
  // A sub-nanosecond budget deterministically expires at the FIRST poll, so
  // the whole budget-outcome sequence — and hence the result vector — is a
  // pure function of (specs, seed), bit-identical for every pool size.
  BatchOptions options;
  options.default_budget_seconds = 1e-12;
  std::vector<std::vector<CodResult>> runs;
  for (const size_t threads : {1u, 2u, 4u}) {
    TaskScheduler pool(threads);
    runs.push_back(engine_->QueryBatch(specs_, pool, /*batch_seed=*/7,
                                       options));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_TRUE(SameResult(runs[r][i], runs[0][i]))
          << "worker variant " << r << " spec " << i;
    }
  }
  size_t full = 0;
  size_t degraded = 0;
  for (size_t i = 0; i < runs[0].size(); ++i) {
    const CodResult& r = runs[0][i];
    ASSERT_EQ(r.code, StatusCode::kOk) << "spec " << i;
    if (specs_[i].variant == CodVariant::kCodUIndexed) {
      // Index-only entries do no budgeted work: full answers, undegraded.
      EXPECT_FALSE(r.degraded) << "spec " << i;
      ++full;
    } else {
      // Every sampled variant collapses down its ladder to the index rung.
      EXPECT_TRUE(r.degraded) << "spec " << i;
      EXPECT_EQ(r.variant_served, CodVariant::kCodUIndexed) << "spec " << i;
      ++degraded;
    }
  }
  EXPECT_GT(full, 0u);
  EXPECT_GT(degraded, 0u);
}

TEST_F(QueryBatchTest, DegradedAnswerMatchesDirectIndexedQuery) {
  // Find a CODL spec; under an exhausted budget its ladder ends at the
  // index rung, whose answer must be EXACTLY what a direct index-only query
  // returns (same node, same resolved k).
  size_t codl = specs_.size();
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].variant == CodVariant::kCodL) {
      codl = i;
      break;
    }
  }
  ASSERT_LT(codl, specs_.size());
  BatchOptions options;
  options.default_budget_seconds = 1e-12;
  TaskScheduler pool(2);
  const auto results = engine_->QueryBatch(specs_, pool, 13, options);
  const CodResult& got = results[codl];
  ASSERT_EQ(got.code, StatusCode::kOk);
  ASSERT_TRUE(got.degraded);
  ASSERT_EQ(got.variant_served, CodVariant::kCodUIndexed);
  const uint32_t k =
      specs_[codl].k == 0 ? engine_->options().k : specs_[codl].k;
  const CodResult want = engine_->QueryCodUIndexed(specs_[codl].node, k);
  EXPECT_EQ(got.found, want.found);
  EXPECT_EQ(got.members, want.members);
  EXPECT_EQ(got.rank, want.rank);
}

TEST_F(QueryBatchTest, NoDegradationReturnsTimeout) {
  BatchOptions options;
  options.default_budget_seconds = 1e-12;
  options.allow_degradation = false;
  TaskScheduler pool(2);
  const auto results = engine_->QueryBatch(specs_, pool, 21, options);
  for (size_t i = 0; i < results.size(); ++i) {
    if (specs_[i].variant == CodVariant::kCodUIndexed) {
      EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
    } else {
      EXPECT_EQ(results[i].code, StatusCode::kTimeout) << "spec " << i;
      EXPECT_FALSE(results[i].degraded) << "spec " << i;
      EXPECT_EQ(results[i].variant_served, specs_[i].variant)
          << "spec " << i;
      EXPECT_FALSE(results[i].found) << "spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, PerSpecBudgetOverridesDefault) {
  // Unlimited batch default; one spec carries its own hostile budget.
  std::vector<QuerySpec> specs = specs_;
  size_t victim = specs.size();
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].variant == CodVariant::kCodU) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, specs.size());
  specs[victim].budget_seconds = 1e-12;
  TaskScheduler pool(2);
  const auto results =
      engine_->QueryBatch(specs, pool, 31, BatchOptions{});
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == victim) {
      EXPECT_TRUE(results[i].degraded) << "victim spec";
      EXPECT_EQ(results[i].variant_served, CodVariant::kCodUIndexed);
    } else {
      EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
      EXPECT_FALSE(results[i].degraded) << "spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, BatchDeadlineCapsEveryQuery) {
  // An already-expired batch deadline beats unlimited per-query budgets.
  BatchOptions options;
  options.batch_deadline = Deadline::After(0.0);
  TaskScheduler pool(3);
  const auto results = engine_->QueryBatch(specs_, pool, 17, options);
  for (size_t i = 0; i < results.size(); ++i) {
    if (specs_[i].variant == CodVariant::kCodUIndexed) {
      EXPECT_FALSE(results[i].degraded) << "spec " << i;
    } else {
      EXPECT_TRUE(results[i].degraded) << "spec " << i;
    }
    EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
  }
}

TEST_F(QueryBatchTest, WorkerFailpointMarksSlotsCancelled) {
  // A "dying" worker marks its slots cancelled instead of crashing or
  // hanging the batch. One worker thread makes the hit order deterministic.
  ScopedFailpoint fp("query_batch/worker", /*count=*/2);
  TaskScheduler pool(1);
  const auto results = engine_->QueryBatch(specs_, pool, 19);
  ASSERT_EQ(results.size(), specs_.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i < 2) {
      EXPECT_EQ(results[i].code, StatusCode::kCancelled) << "spec " << i;
      EXPECT_EQ(results[i].variant_served, specs_[i].variant)
          << "spec " << i;
      EXPECT_FALSE(results[i].found) << "spec " << i;
    } else {
      EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, BatchStatsMatchPerResultTallies) {
  // The per-batch aggregate must agree exactly with a recount over the
  // returned results — same outcomes, same per-rung degradation histogram.
  BatchOptions options;
  options.default_budget_seconds = 1e-12;  // every sampled variant degrades
  TaskScheduler pool(3);
  BatchStats stats;
  const std::vector<CodResult> results = RunQueryBatch(
      *engine_->core(), specs_, pool, /*batch_seed=*/7, options, &stats);
  ASSERT_EQ(results.size(), specs_.size());

  BatchStats want;
  for (const CodResult& r : results) {
    switch (r.code) {
      case StatusCode::kOk:
        if (r.degraded) {
          ++want.degraded;
          ASSERT_LT(r.ladder_rung, BatchStats::kMaxRungs);
          ASSERT_GT(r.ladder_rung, 0);  // degraded implies a deeper rung
          ++want.per_rung[r.ladder_rung];
        } else {
          ++want.served_ok;
          EXPECT_EQ(r.ladder_rung, 0);
          ++want.per_rung[0];
        }
        break;
      case StatusCode::kCancelled:
        ++want.cancelled;
        break;
      default:
        ++want.timeout;
    }
  }
  EXPECT_EQ(stats.served_ok, want.served_ok);
  EXPECT_EQ(stats.degraded, want.degraded);
  EXPECT_EQ(stats.timeout, want.timeout);
  EXPECT_EQ(stats.cancelled, want.cancelled);
  for (size_t r = 0; r < BatchStats::kMaxRungs; ++r) {
    EXPECT_EQ(stats.per_rung[r], want.per_rung[r]) << "rung " << r;
  }
  EXPECT_EQ(stats.Served(), results.size());
  EXPECT_GT(stats.degraded, 0u);  // the hostile budget actually bit

  // The registry's batch counters moved by the same amounts.
  const uint64_t ok_before =
      MetricsRegistry::Instance()
          .GetCounter("cod_batch_queries_total{outcome=\"ok\"}")
          ->Value();
  const uint64_t degraded_before =
      MetricsRegistry::Instance()
          .GetCounter("cod_batch_queries_total{outcome=\"degraded\"}")
          ->Value();
  BatchStats again;
  RunQueryBatch(*engine_->core(), specs_, pool, /*batch_seed=*/7, options,
                &again);
  EXPECT_EQ(MetricsRegistry::Instance()
                .GetCounter("cod_batch_queries_total{outcome=\"ok\"}")
                ->Value(),
            ok_before + again.served_ok);
  EXPECT_EQ(MetricsRegistry::Instance()
                .GetCounter("cod_batch_queries_total{outcome=\"degraded\"}")
                ->Value(),
            degraded_before + again.degraded);
}

TEST_F(QueryBatchTest, UnconstrainedBatchStatsAreAllServedOk) {
  TaskScheduler pool(2);
  BatchStats stats;
  const std::vector<CodResult> results = RunQueryBatch(
      *engine_->core(), specs_, pool, /*batch_seed=*/3, BatchOptions{},
      &stats);
  EXPECT_EQ(stats.served_ok, results.size());
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.timeout, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  for (size_t r = 1; r < BatchStats::kMaxRungs; ++r) {
    EXPECT_EQ(stats.per_rung[r], 0u) << "rung " << r;
  }
}

TEST_F(QueryBatchTest, BatchFromWorkerThreadMatchesSolo) {
  // Running a whole batch from INSIDE a scheduler task must work (the group
  // wait helps inline instead of parking the only worker) and produce the
  // same results as a batch driven from outside. One worker makes this the
  // hardest case: the waiting task and all its chunks share a single thread.
  for (const size_t workers : {1u, 3u}) {
    TaskScheduler pool(workers);
    const auto solo = engine_->QueryBatch(specs_, pool, 33);
    std::vector<CodResult> nested;
    TaskGroup group(pool);
    pool.Submit(TaskPriority::kRebuild, group,
                [&] { nested = engine_->QueryBatch(specs_, pool, 33); });
    group.Wait();
    ASSERT_EQ(nested.size(), solo.size()) << "workers=" << workers;
    for (size_t i = 0; i < solo.size(); ++i) {
      EXPECT_TRUE(SameResult(nested[i], solo[i]))
          << "workers=" << workers << " spec " << i;
    }
  }
}

TEST_F(QueryBatchTest, AdmissionShedViaFailpointIsDeterministic) {
  // An overloaded scheduler sheds the batch one ladder rung. The failpoint
  // forces the shed verdict deterministically; the shed batch must be
  // bit-identical to an unshed batch started at shed_rungs = 1, and every
  // shed answer must reproduce from RunQuerySpecWithBudget with the same
  // effective options.
  TaskScheduler pool(2);
  BatchOptions start_degraded;
  start_degraded.shed_rungs = 1;
  const auto expected =
      engine_->QueryBatch(specs_, pool, /*batch_seed=*/55, start_degraded);

  ScopedFailpoint fp("scheduler/admission", /*count=*/1);
  BatchStats stats;
  const auto shed = RunQueryBatch(*engine_->core(), specs_, pool,
                                  /*batch_seed=*/55, BatchOptions{}, &stats);
  EXPECT_TRUE(stats.shed);
  ASSERT_EQ(shed.size(), expected.size());

  const std::shared_ptr<const EngineCore> core = engine_->core();
  QueryWorkspace ws(*core, 0);
  for (size_t i = 0; i < shed.size(); ++i) {
    EXPECT_TRUE(SameResult(shed[i], expected[i])) << "spec " << i;
    EXPECT_EQ(shed[i].code, StatusCode::kOk) << "spec " << i;
    // Shed answers from a deeper rung are tagged degraded; index-only specs
    // have a single-rung ladder and stay undegraded.
    if (specs_[i].variant == CodVariant::kCodUIndexed) {
      EXPECT_FALSE(shed[i].degraded) << "spec " << i;
    } else {
      EXPECT_TRUE(shed[i].degraded) << "spec " << i;
    }
    BatchOptions effective;
    effective.shed_rungs = 1;
    const CodResult want = RunQuerySpecWithBudget(
        *core, specs_[i], ws, effective, BatchQuerySeed(55, i));
    EXPECT_TRUE(SameResult(shed[i], want)) << "spec " << i;
  }

  // The failpoint was consumed: the next batch is served at full fidelity.
  BatchStats clean;
  const auto after = RunQueryBatch(*engine_->core(), specs_, pool,
                                   /*batch_seed=*/55, BatchOptions{}, &clean);
  EXPECT_FALSE(clean.shed);
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_FALSE(after[i].degraded) << "spec " << i;
  }
}

TEST_F(QueryBatchTest, ConcurrentBatchesShareOnePool) {
  TaskScheduler pool(4);
  const auto solo_a = engine_->QueryBatch(specs_, pool, 11);
  const auto solo_b = engine_->QueryBatch(specs_, pool, 22);

  std::vector<CodResult> concurrent_a;
  std::vector<CodResult> concurrent_b;
  // Two caller threads block on their own TaskGroups against the same
  // scheduler.
  std::thread ta(
      [&] { concurrent_a = engine_->QueryBatch(specs_, pool, 11); });
  std::thread tb(
      [&] { concurrent_b = engine_->QueryBatch(specs_, pool, 22); });
  ta.join();
  tb.join();

  ASSERT_EQ(concurrent_a.size(), solo_a.size());
  ASSERT_EQ(concurrent_b.size(), solo_b.size());
  for (size_t i = 0; i < solo_a.size(); ++i) {
    EXPECT_TRUE(SameResult(concurrent_a[i], solo_a[i])) << "a spec " << i;
    EXPECT_TRUE(SameResult(concurrent_b[i], solo_b[i])) << "b spec " << i;
  }
}

}  // namespace
}  // namespace cod
