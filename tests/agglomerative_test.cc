#include "hierarchy/agglomerative.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Checks the structural invariants every clustering must satisfy.
void ExpectValidDendrogram(const Dendrogram& d, size_t n) {
  EXPECT_EQ(d.NumLeaves(), n);
  EXPECT_EQ(d.LeafCount(d.Root()), n);
  for (CommunityId c = 0; c < d.NumVertices(); ++c) {
    if (c == d.Root()) {
      EXPECT_EQ(d.Parent(c), kInvalidCommunity);
    } else {
      const CommunityId p = d.Parent(c);
      ASSERT_NE(p, kInvalidCommunity);
      EXPECT_TRUE(d.IsAncestorOrSelf(p, c));
      EXPECT_EQ(d.Depth(c), d.Depth(p) + 1);
    }
  }
}

TEST(AgglomerativeTest, SingleNode) {
  GraphBuilder b(1);
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  EXPECT_EQ(d.NumLeaves(), 1u);
}

TEST(AgglomerativeTest, TwoNodes) {
  const Graph g = testing::MakePath(2);
  const Dendrogram d = AgglomerativeCluster(g);
  ExpectValidDendrogram(d, 2);
  EXPECT_EQ(d.NumVertices(), 3u);
}

TEST(AgglomerativeTest, CliquesMergeBeforeBridge) {
  // Average linkage merges the dense cliques fully before crossing the
  // bridge: the top split must separate {0..3} from {4..7}.
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const Dendrogram d = AgglomerativeCluster(g);
  ExpectValidDendrogram(d, 8);
  const auto kids = d.Children(d.Root());
  ASSERT_EQ(kids.size(), 2u);
  std::vector<NodeId> side_a(d.Members(kids[0]).begin(),
                             d.Members(kids[0]).end());
  std::sort(side_a.begin(), side_a.end());
  const std::vector<NodeId> left{0, 1, 2, 3};
  const std::vector<NodeId> right{4, 5, 6, 7};
  EXPECT_TRUE(side_a == left || side_a == right);
}

TEST(AgglomerativeTest, BinaryForConnectedGraph) {
  const Graph g = testing::MakeClique(6);
  const Dendrogram d = AgglomerativeCluster(g);
  EXPECT_EQ(d.NumVertices(), 11u);  // 2n-1 for a binary tree
  for (CommunityId c = 0; c < d.NumVertices(); ++c) {
    if (!d.IsLeaf(c)) {
      EXPECT_EQ(d.Children(c).size(), 2u);
    }
  }
}

TEST(AgglomerativeTest, DisconnectedComponentsJoinedAtRoot) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  ExpectValidDendrogram(d, 6);
  // Root joins the two component roots.
  EXPECT_EQ(d.Children(d.Root()).size(), 2u);
}

TEST(AgglomerativeTest, WeightsSteerMerges) {
  // Triangle-free path 0-1-2 with a heavy (1,2) edge: first merge is {1,2}.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 10.0);
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  const CommunityId first = 3;  // first internal vertex created
  std::vector<NodeId> members(d.Members(first).begin(),
                              d.Members(first).end());
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2}));
}

TEST(AgglomerativeTest, SingleLinkageFollowsHeaviestEdges) {
  // Path 0-1-2-3 with weights 5, 1, 5: single linkage merges (0,1) and
  // (2,3) first regardless of cluster sizes.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 5.0);
  const Graph g = std::move(b).Build();
  AgglomerativeOptions options;
  options.linkage = Linkage::kSingle;
  const Dendrogram d = AgglomerativeCluster(g, options);
  ExpectValidDendrogram(d, 4);
  const auto kids = d.Children(d.Root());
  ASSERT_EQ(kids.size(), 2u);
  std::vector<NodeId> side(d.Members(kids[0]).begin(),
                           d.Members(kids[0]).end());
  std::sort(side.begin(), side.end());
  EXPECT_TRUE(side == (std::vector<NodeId>{0, 1}) ||
              side == (std::vector<NodeId>{2, 3}));
}

TEST(AgglomerativeTest, SingleLinkageChainsThroughDensity) {
  // Single linkage is famous for chaining: on a uniform-weight path it can
  // produce any order, but it must still yield a valid hierarchy.
  const Graph g = testing::MakePath(16);
  AgglomerativeOptions options;
  options.linkage = Linkage::kSingle;
  ExpectValidDendrogram(AgglomerativeCluster(g, options), 16);
}

TEST(AgglomerativeTest, WeightedAverageValidAndSeparatesCliques) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  AgglomerativeOptions options;
  options.linkage = Linkage::kWeightedAverage;
  const Dendrogram d = AgglomerativeCluster(g, options);
  ExpectValidDendrogram(d, 8);
  const auto kids = d.Children(d.Root());
  ASSERT_EQ(kids.size(), 2u);
  std::vector<NodeId> side(d.Members(kids[0]).begin(),
                           d.Members(kids[0]).end());
  std::sort(side.begin(), side.end());
  EXPECT_TRUE(side == (std::vector<NodeId>{0, 1, 2, 3}) ||
              side == (std::vector<NodeId>{4, 5, 6, 7}));
}

TEST(AgglomerativeTest, LinkagesProduceDifferentTreesWhenTheyShould) {
  // Star with one heavy satellite pair: UPGMA's size normalization and
  // single linkage disagree about when the pair joins the hub cluster.
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(0, 3, 1.0);
  b.AddEdge(3, 4, 0.9);
  b.AddEdge(4, 5, 0.8);
  const Graph g = std::move(b).Build();
  AgglomerativeOptions upgma;
  AgglomerativeOptions single;
  single.linkage = Linkage::kSingle;
  const Dendrogram a = AgglomerativeCluster(g, upgma);
  const Dendrogram c = AgglomerativeCluster(g, single);
  ExpectValidDendrogram(a, 6);
  ExpectValidDendrogram(c, 6);
}

TEST(AgglomerativeTest, DeterministicAcrossRuns) {
  Rng rng(3);
  const Graph g = ErdosRenyi(120, 400, rng);
  const Dendrogram a = AgglomerativeCluster(g);
  const Dendrogram b = AgglomerativeCluster(g);
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  for (CommunityId c = 0; c < a.NumVertices(); ++c) {
    EXPECT_EQ(a.Parent(c), b.Parent(c));
  }
}

class AgglomerativeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgglomerativeRandomTest, ValidOnRandomGraphs) {
  Rng rng(GetParam());
  const size_t n = 50 + rng.UniformInt(150);
  const Graph g = EnsureConnected(ErdosRenyi(n, 3 * n, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  ExpectValidDendrogram(d, n);
  // Every node's path reaches the root.
  for (NodeId v = 0; v < n; ++v) {
    const auto path = d.PathToRoot(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), d.Root());
  }
}

TEST_P(AgglomerativeRandomTest, ValidOnPlantedPartitions) {
  Rng rng(GetParam() + 1000);
  HppParams params;
  params.num_nodes = 200;
  params.num_edges = 700;
  params.levels = 2;
  params.fanout = 3;
  const GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  const Dendrogram d = AgglomerativeCluster(gen.graph);
  ExpectValidDendrogram(d, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgglomerativeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cod
