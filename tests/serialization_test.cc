#include <fstream>

#include <gtest/gtest.h>

#include "core/cod_engine.h"
#include "core/himor.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/dendrogram_io.h"
#include "hierarchy/lca.h"
#include "tests/test_util.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DendrogramIoTest, RoundTripPreservesStructure) {
  Rng rng(1);
  const Graph g = EnsureConnected(ErdosRenyi(150, 400, rng), rng);
  const Dendrogram original = AgglomerativeCluster(g);
  const std::string path = TempPath("dendrogram.bin");
  ASSERT_TRUE(SaveDendrogram(original, path).ok());
  Result<Dendrogram> loaded = LoadDendrogram(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumVertices(), original.NumVertices());
  ASSERT_EQ(loaded->NumLeaves(), original.NumLeaves());
  EXPECT_EQ(loaded->Root(), original.Root());
  for (CommunityId c = 0; c < original.NumVertices(); ++c) {
    EXPECT_EQ(loaded->Parent(c), original.Parent(c));
    EXPECT_EQ(loaded->Depth(c), original.Depth(c));
    EXPECT_EQ(loaded->LeafCount(c), original.LeafCount(c));
  }
  for (NodeId v = 0; v < original.NumLeaves(); ++v) {
    EXPECT_EQ(loaded->PathToRoot(v), original.PathToRoot(v));
  }
}

TEST(DendrogramIoTest, MultiWayVerticesSurvive) {
  const auto ex = testing::MakePaperExample();  // C0 has 4 children
  const std::string path = TempPath("paper_dendrogram.bin");
  ASSERT_TRUE(SaveDendrogram(ex.dendrogram, path).ok());
  Result<Dendrogram> loaded = LoadDendrogram(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Children(ex.c0).size(), 4u);
}

TEST(DendrogramIoTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.bin");
  std::ofstream(path, std::ios::binary) << "this is not a dendrogram";
  Result<Dendrogram> r = LoadDendrogram(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DendrogramIoTest, RejectsMissingFile) {
  Result<Dendrogram> r = LoadDendrogram("/no/such/file.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(DendrogramIoTest, RejectsTruncatedFile) {
  Rng rng(2);
  const Graph g = EnsureConnected(ErdosRenyi(40, 120, rng), rng);
  const Dendrogram original = AgglomerativeCluster(g);
  const std::string path = TempPath("full.bin");
  ASSERT_TRUE(SaveDendrogram(original, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = TempPath("truncated.bin");
  std::ofstream(cut, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  Result<Dendrogram> r = LoadDendrogram(cut);
  ASSERT_FALSE(r.ok());
}

TEST(HimorIoTest, RoundTripAnswersIdentically) {
  Rng rng(3);
  const Graph g = EnsureConnected(ErdosRenyi(100, 300, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const HimorIndex original = HimorIndex::Build(m, d, lca, 10, rng);
  const std::string path = TempPath("himor.bin");
  ASSERT_TRUE(original.Save(path).ok());
  Result<HimorIndex> loaded = HimorIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->max_rank(), original.max_rank());
  EXPECT_EQ(loaded->NumEntries(), original.NumEntries());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  for (NodeId v = 0; v < 100; ++v) {
    const auto a = original.RanksOf(v);
    const auto b = loaded->RanksOf(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].community, b[i].community);
      EXPECT_EQ(a[i].rank, b[i].rank);
    }
  }
}

TEST(HimorIoTest, RejectsGarbage) {
  const std::string path = TempPath("bad_himor.bin");
  std::ofstream(path, std::ios::binary) << "nope";
  Result<HimorIndex> r = HimorIndex::Load(path);
  ASSERT_FALSE(r.ok());
}

TEST(EngineHimorIoTest, SaveLoadServesQueries) {
  Rng gen_rng(4);
  HppParams params;
  params.num_nodes = 300;
  params.num_edges = 1200;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, gen_rng);
  const AttributeTable attrs =
      AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, gen_rng);

  CodEngine writer_engine(gen.graph, attrs, {});
  Rng rng(5);
  writer_engine.BuildHimor(rng);
  const std::string path = TempPath("engine_himor.bin");
  ASSERT_TRUE(writer_engine.SaveHimor(path).ok());

  CodEngine reader_engine(gen.graph, attrs, {});
  ASSERT_TRUE(reader_engine.LoadHimor(path).ok());
  // Same graph + same seed: the loaded-index engine must answer exactly as
  // the builder engine.
  QueryWorkspace ws_a = writer_engine.MakeWorkspace(6);
  QueryWorkspace ws_b = reader_engine.MakeWorkspace(6);
  for (NodeId q = 0; q < 20; ++q) {
    const auto node_attrs = attrs.AttributesOf(q);
    if (node_attrs.empty()) continue;
    const CodResult a = writer_engine.QueryCodL(q, node_attrs[0], 5, ws_a);
    const CodResult b = reader_engine.QueryCodL(q, node_attrs[0], 5, ws_b);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

TEST(EngineHimorIoTest, SaveWithoutBuildFails) {
  const auto ex = testing::MakePaperExample();
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  const AttributeTable attrs = std::move(ab).Build(10);
  CodEngine engine(ex.graph, attrs, {});
  EXPECT_EQ(engine.SaveHimor(TempPath("never.bin")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineHimorIoTest, LoadRejectsWrongGraph) {
  Rng rng(7);
  const Graph g1 = EnsureConnected(ErdosRenyi(50, 150, rng), rng);
  const Graph g2 = EnsureConnected(ErdosRenyi(60, 180, rng), rng);
  AttributeTableBuilder a1;
  a1.Add(0, "X");
  const AttributeTable attrs1 = std::move(a1).Build(50);
  AttributeTableBuilder a2;
  a2.Add(0, "X");
  const AttributeTable attrs2 = std::move(a2).Build(60);
  CodEngine e1(g1, attrs1, {});
  CodEngine e2(g2, attrs2, {});
  Rng build_rng(8);
  e1.BuildHimor(build_rng);
  const std::string path = TempPath("mismatch.bin");
  ASSERT_TRUE(e1.SaveHimor(path).ok());
  EXPECT_EQ(e2.LoadHimor(path).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Corruption properties. The checksummed file envelope (magic | version |
// size | payload | CRC32C) covers every byte, so ANY single-byte flip and
// ANY truncation must fail with a clean InvalidArgument — never a crash,
// never a silently different structure. CI runs this suite under
// ASan/UBSan, which turns "never a crash" into a memory-safety proof.
// ---------------------------------------------------------------------------

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary).write(
      bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(DendrogramIoTest, EverySingleByteFlipFailsCleanly) {
  Rng rng(11);
  const Graph g = EnsureConnected(ErdosRenyi(60, 180, rng), rng);
  const Dendrogram original = AgglomerativeCluster(g);
  const std::string path = TempPath("flip_base.bin");
  ASSERT_TRUE(SaveDendrogram(original, path).ok());
  const std::string pristine = ReadBytes(path);
  ASSERT_FALSE(pristine.empty());
  const std::string damaged_path = TempPath("flip_damaged.bin");
  // Exhaustive over the envelope header, strided over the payload.
  for (size_t off = 0; off < pristine.size();
       off += (off < 32 ? 1 : 13)) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ (1u << (off % 8)));
    WriteBytes(damaged_path, damaged);
    Result<Dendrogram> r = LoadDendrogram(damaged_path);
    ASSERT_FALSE(r.ok()) << "flip at offset " << off << " loaded";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "offset " << off << ": " << r.status().ToString();
  }
}

TEST(DendrogramIoTest, EveryTruncationFailsCleanly) {
  Rng rng(12);
  const Graph g = EnsureConnected(ErdosRenyi(50, 140, rng), rng);
  const Dendrogram original = AgglomerativeCluster(g);
  const std::string path = TempPath("cut_base.bin");
  ASSERT_TRUE(SaveDendrogram(original, path).ok());
  const std::string pristine = ReadBytes(path);
  const std::string cut_path = TempPath("cut_damaged.bin");
  for (size_t len = 0; len < pristine.size();
       len += (len < 32 ? 1 : 17)) {
    WriteBytes(cut_path, pristine.substr(0, len));
    Result<Dendrogram> r = LoadDendrogram(cut_path);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " loaded";
  }
}

TEST(HimorIoTest, FlipsAndTruncationsFailCleanly) {
  Rng rng(13);
  const Graph g = EnsureConnected(ErdosRenyi(60, 180, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const HimorIndex original = HimorIndex::Build(m, d, lca, 6, rng);
  const std::string path = TempPath("himor_base.bin");
  ASSERT_TRUE(original.Save(path).ok());
  const std::string pristine = ReadBytes(path);
  const std::string damaged_path = TempPath("himor_damaged.bin");
  for (size_t off = 0; off < pristine.size();
       off += (off < 32 ? 1 : 29)) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x80);
    WriteBytes(damaged_path, damaged);
    Result<HimorIndex> r = HimorIndex::Load(damaged_path);
    ASSERT_FALSE(r.ok()) << "flip at offset " << off << " loaded";
  }
  for (size_t len = 0; len < pristine.size();
       len += (len < 32 ? 1 : 31)) {
    WriteBytes(damaged_path, pristine.substr(0, len));
    Result<HimorIndex> r = HimorIndex::Load(damaged_path);
    ASSERT_FALSE(r.ok()) << "truncation to " << len << " loaded";
  }
}

}  // namespace
}  // namespace cod
