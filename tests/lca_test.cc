#include "hierarchy/lca.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// Reference implementation: walk parents upward.
CommunityId NaiveLca(const Dendrogram& d, CommunityId a, CommunityId b) {
  std::vector<char> on_path(d.NumVertices(), 0);
  for (CommunityId c = a; c != kInvalidCommunity; c = d.Parent(c)) {
    on_path[c] = 1;
  }
  for (CommunityId c = b; c != kInvalidCommunity; c = d.Parent(c)) {
    if (on_path[c]) return c;
  }
  return kInvalidCommunity;
}

TEST(LcaTest, PaperExample) {
  // Example 2: lca(v0, v6) = C3.
  const auto ex = testing::MakePaperExample();
  const LcaIndex lca(ex.dendrogram);
  EXPECT_EQ(lca.LcaOfNodes(0, 6), ex.c3);
  EXPECT_EQ(lca.LcaOfNodes(0, 1), ex.c0);
  EXPECT_EQ(lca.LcaOfNodes(0, 4), ex.c4);
  EXPECT_EQ(lca.LcaOfNodes(0, 9), ex.c6);
  EXPECT_EQ(lca.LcaOfNodes(8, 9), ex.c5);
}

TEST(LcaTest, SelfLcaIsSelf) {
  const auto ex = testing::MakePaperExample();
  const LcaIndex lca(ex.dendrogram);
  for (CommunityId c = 0; c < ex.dendrogram.NumVertices(); ++c) {
    EXPECT_EQ(lca.Lca(c, c), c);
  }
}

TEST(LcaTest, NodeCommunityLca) {
  const auto ex = testing::MakePaperExample();
  const LcaIndex lca(ex.dendrogram);
  EXPECT_EQ(lca.LcaNodeCommunity(4, ex.c3), ex.c4);
  EXPECT_EQ(lca.LcaNodeCommunity(0, ex.c0), ex.c0);
  EXPECT_EQ(lca.LcaNodeCommunity(8, ex.c4), ex.c6);
}

TEST(LcaTest, AncestorLcaIsAncestor) {
  const auto ex = testing::MakePaperExample();
  const LcaIndex lca(ex.dendrogram);
  EXPECT_EQ(lca.Lca(ex.c0, ex.c3), ex.c3);
  EXPECT_EQ(lca.Lca(ex.c3, ex.c6), ex.c6);
}

class LcaRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcaRandomTest, MatchesNaiveOnRandomDendrograms) {
  Rng rng(GetParam());
  const size_t n = 30 + rng.UniformInt(170);
  const Graph g = EnsureConnected(ErdosRenyi(n, 3 * n, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  for (int trial = 0; trial < 500; ++trial) {
    const CommunityId a =
        static_cast<CommunityId>(rng.UniformInt(d.NumVertices()));
    const CommunityId b =
        static_cast<CommunityId>(rng.UniformInt(d.NumVertices()));
    EXPECT_EQ(lca.Lca(a, b), NaiveLca(d, a, b)) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace cod
