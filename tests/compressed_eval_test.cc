#include "core/compressed_eval.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "hierarchy/agglomerative.h"
#include "influence/influence_oracle.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// With p = 1 every coin lands live, so counts are deterministic:
// count_C(v) = theta * |component of v inside C| and the rank of v in C is
// determined by induced-component sizes — an exact oracle for the whole
// compressed pipeline (sampling, HFS, bucket accumulation, incremental
// top-k).
std::vector<uint32_t> DeterministicRanks(const Graph& g, const CodChain& chain,
                                         NodeId q, uint32_t k) {
  std::vector<uint32_t> ranks;
  for (uint32_t h = 0; h < chain.NumLevels(); ++h) {
    const std::vector<NodeId> members = chain.MembersOfLevel(h);
    std::vector<char> allowed(g.NumNodes(), 0);
    for (NodeId v : members) allowed[v] = 1;
    // Component sizes within the level.
    std::vector<uint32_t> comp_size(g.NumNodes(), 0);
    std::vector<char> visited(g.NumNodes(), 0);
    for (NodeId start : members) {
      if (visited[start]) continue;
      std::vector<NodeId> comp{start};
      visited[start] = 1;
      for (size_t head = 0; head < comp.size(); ++head) {
        for (const AdjEntry& a : g.Neighbors(comp[head])) {
          if (allowed[a.to] && !visited[a.to]) {
            visited[a.to] = 1;
            comp.push_back(a.to);
          }
        }
      }
      for (NodeId v : comp) {
        comp_size[v] = static_cast<uint32_t>(comp.size());
      }
    }
    uint32_t rank = 0;
    for (NodeId v : members) {
      if (comp_size[v] > comp_size[q]) ++rank;
    }
    ranks.push_back(std::min(rank, k));
  }
  return ranks;
}

TEST(CompressedEvalTest, DeterministicWorldMatchesComponentOracle) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  CompressedEvaluator eval(m, /*theta=*/2);
  Rng rng(1);
  for (NodeId q = 0; q < 10; ++q) {
    const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, q);
    const uint32_t k = 3;
    const ChainEvalOutcome outcome = eval.Evaluate(chain, q, k, rng);
    const std::vector<uint32_t> expected =
        DeterministicRanks(ex.graph, chain, q, k);
    EXPECT_EQ(outcome.rank_per_level, expected) << "query " << q;
  }
}

class CompressedDeterministicRandomTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressedDeterministicRandomTest, MatchesOracleOnRandomGraphs) {
  Rng rng(GetParam());
  const size_t n = 40 + rng.UniformInt(80);
  const Graph g = EnsureConnected(ErdosRenyi(n, 2 * n, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  CompressedEvaluator eval(m, /*theta=*/1);
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId q = static_cast<NodeId>(rng.UniformInt(n));
    const uint32_t k = 1 + static_cast<uint32_t>(rng.UniformInt(5));
    const CodChain chain = BuildChainFromDendrogram(d, q);
    const ChainEvalOutcome outcome = eval.Evaluate(chain, q, k, rng);
    EXPECT_EQ(outcome.rank_per_level, DeterministicRanks(g, chain, q, k))
        << "n=" << n << " q=" << q << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedDeterministicRandomTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108, 109, 110));

TEST(CompressedEvalTest, ZeroProbabilityMakesEveryoneTopOne) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 0.0);
  CompressedEvaluator eval(m, /*theta=*/2);
  Rng rng(2);
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  const ChainEvalOutcome outcome = eval.Evaluate(chain, 0, 1, rng);
  // Everyone has influence exactly 1 -> ties everywhere -> rank 0 at every
  // level; the characteristic community is the whole graph.
  EXPECT_EQ(outcome.best_level, static_cast<int>(chain.NumLevels()) - 1);
  for (uint32_t r : outcome.rank_per_level) EXPECT_EQ(r, 0u);
}

TEST(CompressedEvalTest, StatisticalAgreementWithIndependentOracle) {
  // Under weighted cascade with enough samples, the compressed evaluator's
  // per-level rank decision must agree with a direct per-community oracle
  // whenever the influence gap is clear. Star-of-cliques: node 0 is a hub
  // inside its community.
  GraphBuilder b(12);
  // Community A: hub 0 with spokes 1..5 (star).
  for (NodeId v = 1; v <= 5; ++v) b.AddEdge(0, v);
  // Community B: clique 6..11.
  for (NodeId u = 6; u <= 11; ++u) {
    for (NodeId v = u + 1; v <= 11; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(5, 6);  // bridge
  const Graph g = std::move(b).Build();
  const Dendrogram d = AgglomerativeCluster(g);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  CompressedEvaluator eval(m, /*theta=*/800);
  Rng rng(3);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  const ChainEvalOutcome outcome = eval.Evaluate(chain, 0, 1, rng);
  // Node 0 reaches its degree-1 spokes with probability 1 while spokes
  // reach anything only through a 1/5 edge, so the hub is top-1 at least in
  // its deepest community.
  ASSERT_GE(outcome.best_level, 0);
  EXPECT_EQ(outcome.rank_per_level[0], 0u);
}

TEST(CompressedEvalTest, Lemma1RanksAreNonMonotone) {
  // Paper Lemma 1: rank_C(q) is non-monotone in depth. Deterministic
  // construction (p = 1, ranks = component sizes): the deepest community
  // holds q isolated next to a triangle (rank 3); one level up, q connects
  // into a 5-node component that dwarfs the triangle (rank 0).
  GraphBuilder b(8);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(1, 3);  // triangle {1,2,3}
  b.AddEdge(0, 4);  // q = 0 connects only to the outer nodes
  b.AddEdge(0, 5);
  b.AddEdge(4, 6);
  b.AddEdge(5, 7);
  const Graph g = std::move(b).Build();

  DendrogramBuilder db(8);
  const CommunityId tri_a = db.Merge(1, 2);
  const CommunityId tri = db.Merge(tri_a, 3);
  const CommunityId c0 = db.Merge(0, tri);  // deepest community of q
  const CommunityId out_a = db.Merge(4, 5);
  const CommunityId out_b = db.Merge(out_a, 6);
  const CommunityId out = db.Merge(out_b, 7);
  db.Merge(c0, out);  // root
  const Dendrogram d = std::move(db).Build();

  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  CompressedEvaluator eval(m, /*theta=*/1);
  Rng rng(9);
  const CodChain chain = BuildChainFromDendrogram(d, 0);
  const ChainEvalOutcome outcome = eval.Evaluate(chain, 0, 5, rng);
  // Levels on q's path: {0,tri...} wait chain is {c0's subtree path}:
  // level 0 = c0 (q isolated vs triangle) -> rank 3;
  // level 1 = root (q in the 5-node component {0,4,5,6,7}) -> rank 0.
  ASSERT_EQ(outcome.rank_per_level.size(), 2u);
  EXPECT_EQ(outcome.rank_per_level[0], 3u);
  EXPECT_EQ(outcome.rank_per_level[1], 0u);
  EXPECT_GT(outcome.rank_per_level[0], outcome.rank_per_level[1]);
}

TEST(CompressedEvalTest, ExploredNodesReported) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  CompressedEvaluator eval(m, /*theta=*/10);
  Rng rng(4);
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  eval.Evaluate(chain, 0, 2, rng);
  // At least one node (the source) per RR graph.
  EXPECT_GE(eval.last_explored_nodes(), 10u * 10u);
}

TEST(CompressedEvalTest, RestrictedUniverseChain) {
  // Chain truncated at C4: nodes 8, 9 must never be sampled or ranked.
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::UniformIc(ex.graph, 1.0);
  CompressedEvaluator eval(m, /*theta=*/2);
  Rng rng(5);
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0, ex.c4);
  const uint32_t k = 2;
  const ChainEvalOutcome outcome = eval.Evaluate(chain, 0, k, rng);
  EXPECT_EQ(outcome.rank_per_level,
            DeterministicRanks(ex.graph, chain, 0, k));
}

}  // namespace
}  // namespace cod
