#include "core/cod_chain.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(CodChainTest, PaperExampleChainForV0) {
  const auto ex = testing::MakePaperExample();
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  // H(v0) = {C0, C3, C4, C6} with sizes 4, 6, 8, 10.
  ASSERT_EQ(chain.NumLevels(), 4u);
  EXPECT_EQ(chain.community_size,
            (std::vector<uint32_t>{4, 6, 8, 10}));
  EXPECT_EQ(chain.universe.size(), 10u);
  EXPECT_EQ(chain.level[0], 0u);
  EXPECT_EQ(chain.level[3], 0u);
  EXPECT_EQ(chain.level[6], 1u);
  EXPECT_EQ(chain.level[7], 1u);
  EXPECT_EQ(chain.level[4], 2u);
  EXPECT_EQ(chain.level[5], 2u);
  EXPECT_EQ(chain.level[8], 3u);
  EXPECT_EQ(chain.level[9], 3u);
}

TEST(CodChainTest, MembersOfLevelMatchesDendrogram) {
  const auto ex = testing::MakePaperExample();
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0);
  for (uint32_t h = 0; h < chain.NumLevels(); ++h) {
    std::vector<NodeId> members = chain.MembersOfLevel(h);
    std::sort(members.begin(), members.end());
    const auto path = ex.dendrogram.PathToRoot(0);
    std::vector<NodeId> expected(ex.dendrogram.Members(path[h]).begin(),
                                 ex.dendrogram.Members(path[h]).end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(members, expected) << "level " << h;
  }
}

TEST(CodChainTest, TruncationAtTop) {
  const auto ex = testing::MakePaperExample();
  const CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0, ex.c4);
  ASSERT_EQ(chain.NumLevels(), 3u);
  EXPECT_EQ(chain.community_size.back(), 8u);
  EXPECT_FALSE(chain.in_universe[8]);
  EXPECT_FALSE(chain.in_universe[9]);
  EXPECT_TRUE(chain.in_universe[5]);
}

TEST(CodChainTest, NodeMapTranslation) {
  // Local dendrogram over a 3-node subgraph mapped into a 10-node parent.
  DendrogramBuilder b(3);
  const CommunityId m01 = b.Merge(0, 1);
  b.Merge(m01, 2);
  const Dendrogram local = std::move(b).Build();
  const std::vector<NodeId> map = {7, 2, 9};
  const CodChain chain =
      BuildChainFromDendrogram(local, 1, kInvalidCommunity, &map, 10);
  ASSERT_EQ(chain.NumLevels(), 2u);
  EXPECT_EQ(chain.level.size(), 10u);
  EXPECT_TRUE(chain.in_universe[7]);
  EXPECT_TRUE(chain.in_universe[2]);
  EXPECT_TRUE(chain.in_universe[9]);
  EXPECT_FALSE(chain.in_universe[0]);
  EXPECT_EQ(chain.level[2], 0u);  // local leaf 1 -> parent node 2, level 0
  EXPECT_EQ(chain.level[7], 0u);
  EXPECT_EQ(chain.level[9], 1u);
}

TEST(CodChainTest, AppendLevelAddsFreshNodesOnly) {
  const auto ex = testing::MakePaperExample();
  CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0, ex.c4);
  const std::vector<NodeId> everyone = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  AppendLevel(&chain, everyone);
  ASSERT_EQ(chain.NumLevels(), 4u);
  EXPECT_EQ(chain.community_size.back(), 10u);
  EXPECT_EQ(chain.level[8], 3u);
  EXPECT_EQ(chain.level[9], 3u);
  EXPECT_EQ(chain.level[0], 0u);  // unchanged
}

TEST(CodChainTest, AppendLevelWithNewMembers) {
  const auto ex = testing::MakePaperExample();
  CodChain chain = BuildChainFromDendrogram(ex.dendrogram, 0, ex.c4);
  const std::vector<NodeId> fresh = {8, 9};
  AppendLevelWithNewMembers(&chain, fresh, 10);
  ASSERT_EQ(chain.NumLevels(), 4u);
  EXPECT_EQ(chain.universe.size(), 10u);
  EXPECT_EQ(chain.level[8], 3u);
}

}  // namespace
}  // namespace cod
