#include "baselines/atc.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

AttributeTable UniformAttr(size_t n, const char* name) {
  AttributeTableBuilder b;
  for (NodeId v = 0; v < n; ++v) b.Add(v, name);
  return std::move(b).Build(n);
}

TEST(AtcTest, FindsTrussAroundQuery) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const AttributeTable attrs = UniformAttr(8, "X");
  const std::vector<NodeId> community = AtcSearch(g, attrs, 0, attrs.Find("X"));
  // Query's clique is the 4-truss within distance 2.
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(AtcTest, CommunityContainsQuery) {
  const auto ex = testing::MakePaperExample();
  const AttributeTable attrs = testing::MakePaperAttributes();
  for (NodeId q = 0; q < 10; ++q) {
    const auto node_attrs = attrs.AttributesOf(q);
    if (node_attrs.empty()) continue;
    const std::vector<NodeId> community =
        AtcSearch(ex.graph, attrs, q, node_attrs[0]);
    if (community.empty()) continue;  // q may close no triangle
    EXPECT_TRUE(std::binary_search(community.begin(), community.end(), q));
  }
}

TEST(AtcTest, NoTriangleMeansEmpty) {
  const Graph g = testing::MakePath(5);
  const AttributeTable attrs = UniformAttr(5, "X");
  EXPECT_TRUE(AtcSearch(g, attrs, 2, attrs.Find("X")).empty());
}

TEST(AtcTest, PeelingPrefersAttributeHolders) {
  // Clique of 6 where {0,1,2} carry "X": peeling should discard some
  // non-holders and never drop the query, improving the attribute score.
  const Graph g = testing::MakeClique(6);
  AttributeTableBuilder ab;
  ab.Add(0, "X");
  ab.Add(1, "X");
  ab.Add(2, "X");
  ab.Add(3, "Y");
  ab.Add(4, "Y");
  ab.Add(5, "Y");
  const AttributeTable attrs = std::move(ab).Build(6);
  AtcOptions options;
  options.k = 3;  // keep the truss constraint satisfiable after peeling
  const std::vector<NodeId> community =
      AtcSearch(g, attrs, 0, attrs.Find("X"), options);
  ASSERT_FALSE(community.empty());
  EXPECT_TRUE(std::binary_search(community.begin(), community.end(), 0u));
  // The attribute score of the result is at least the full clique's 9/6.
  size_t holders = 0;
  for (NodeId v : community) holders += v <= 2;
  const double score = static_cast<double>(holders) * holders /
                       static_cast<double>(community.size());
  EXPECT_GE(score, 1.5);
}

TEST(AtcTest, DistanceBoundRestricts) {
  // Query triangle chained far from another clique: with d=1 only the
  // immediate triangle is reachable.
  GraphBuilder b(8);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  for (NodeId u = 4; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) b.AddEdge(u, v);
  }
  const Graph g = std::move(b).Build();
  const AttributeTable attrs = UniformAttr(8, "X");
  AtcOptions options;
  options.d = 1;
  const std::vector<NodeId> community =
      AtcSearch(g, attrs, 0, attrs.Find("X"), options);
  EXPECT_EQ(community, (std::vector<NodeId>{0, 1, 2}));
}

TEST(AtcTest, ExplicitKRespected) {
  const Graph g = testing::MakeClique(5);
  const AttributeTable attrs = UniformAttr(5, "X");
  AtcOptions options;
  options.k = 5;
  const std::vector<NodeId> community =
      AtcSearch(g, attrs, 0, attrs.Find("X"), options);
  EXPECT_EQ(community.size(), 5u);
}

}  // namespace
}  // namespace cod
