// Delta-vs-cold equivalence suite for incremental epoch rebuilds
// (ServiceOptions::delta_rebuild).
//
// The contract under test: an epoch produced by a chain of DELTA rebuilds
// (each reusing the previous epoch's RR samples, dendrogram merges, and
// HIMOR tags wherever the dirty-vertex bitmap allows) is BIT-IDENTICAL to
// a cold rebuild on the same final edge set — same dendrogram bytes, same
// HIMOR bytes, same query answers. The fallback knobs (dirty-fraction
// threshold, "core/delta_rebuild" failpoint, degraded publication) are
// latency/availability levers and must never change answers.
//
// CI shards override the fuzz stream via COD_FUZZ_SEED; the per-test
// offset keeps the instantiations distinct within a shard.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "graph/generators.h"
#include "hierarchy/dendrogram_io.h"
#include "serving/dynamic_service.h"
#include "tests/test_util.h"

namespace cod {
namespace {

uint64_t FuzzSeed(uint64_t offset) {
  const char* env = std::getenv("COD_FUZZ_SEED");
  const uint64_t base =
      (env == nullptr || *env == '\0') ? 0 : std::strtoull(env, nullptr, 10);
  return base + offset;
}

struct World {
  Graph graph;
  AttributeTable attrs;
};

// Small enough that a chain of rebuilds stays fast under TSAN/ASan, large
// enough that clean components and clean RR samples actually survive a
// sparse update batch (the delta tiers all get exercised).
World MakeWorld(uint64_t seed, size_t n = 160) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  return w;
}

Graph CopyGraph(const Graph& g) {
  GraphBuilder b(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    b.AddEdge(u, v, g.Weight(e));
  }
  return std::move(b).Build();
}

ServiceOptions DeltaOptions(uint64_t seed = 7) {
  ServiceOptions options;
  options.seed = seed;
  options.delta_rebuild = true;
  options.rebuild_threshold = 1e9;  // rebuilds only via explicit Refresh()
  options.engine.theta = 16;
  // These worlds are tiny, so even small batches invalidate an estimated
  // sample fraction past any production threshold; disable the latency
  // fallback so the tests exercise the reuse machinery itself.
  options.delta_max_dirty_fraction = 1.0;
  return options;
}

std::string HierarchyBytes(const EngineCore& core) {
  BinaryBufferWriter w;
  SerializeDendrogram(core.base_hierarchy(), w);
  return std::move(w).TakeBytes();
}

std::string HimorBytes(const EngineCore& core) {
  BinaryBufferWriter w;
  EXPECT_NE(core.himor(), nullptr);
  if (core.himor() != nullptr) core.himor()->SerializeTo(w);
  return std::move(w).TakeBytes();
}

// Applies `count` random mutations (random adds between random endpoints,
// removals of random existing edges) and returns how many were applied.
size_t ApplyRandomBatch(DynamicCodService& service, size_t num_nodes,
                        size_t count, Rng& rng) {
  size_t applied = 0;
  for (size_t i = 0; i < count; ++i) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (u == v) continue;
    if (rng.UniformInt(3) == 0) {
      applied += service.RemoveEdge(u, v);
    } else {
      applied += service.AddEdge(u, v, 1.0 + 0.25 * rng.UniformInt(4));
    }
  }
  return applied;
}

// Full bit-level and answer-level comparison of two published epochs.
void ExpectSameEpoch(const EngineCore& a, const EngineCore& b,
                     const char* what) {
  ASSERT_EQ(a.graph().NumEdges(), b.graph().NumEdges()) << what;
  EXPECT_EQ(HierarchyBytes(a), HierarchyBytes(b))
      << what << ": dendrogram bytes diverged";
  EXPECT_EQ(HimorBytes(a), HimorBytes(b)) << what << ": HIMOR bytes diverged";
}

void ExpectSameAnswers(DynamicCodService& a, DynamicCodService& b,
                       size_t num_nodes, const char* what) {
  const AttributeTable& attrs = a.Snapshot().core->attributes();
  for (NodeId q = 0; q < num_nodes; q += 7) {
    Rng rng_a(1000 + q);
    Rng rng_b(1000 + q);
    const auto node_attrs = attrs.AttributesOf(q);
    if (!node_attrs.empty()) {
      const CodResult ra = a.QueryCodL(q, node_attrs[0], 5, rng_a);
      const CodResult rb = b.QueryCodL(q, node_attrs[0], 5, rng_b);
      EXPECT_TRUE(testing::SameResult(ra, rb))
          << what << ": CODL answer diverged at node " << q;
    }
    const CodResult ua = a.QueryCodU(q, 3, rng_a);
    const CodResult ub = b.QueryCodU(q, 3, rng_b);
    EXPECT_TRUE(testing::SameResult(ua, ub))
        << what << ": CODU answer diverged at node " << q;
  }
}

Counter* DeltaCounter(const char* name) {
  return MetricsRegistry::Instance().GetCounter(name);
}

// ---------------------------------------------------------------------------
// The core property: delta chains answer bit-identically to cold rebuilds.
// ---------------------------------------------------------------------------

class DeltaEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaEquivalenceTest, DeltaChainMatchesColdRebuild) {
  const uint64_t seed = FuzzSeed(GetParam());
  World w = MakeWorld(seed);
  World w2 = MakeWorld(seed);  // deterministic twin for the cold service
  const size_t n = w.graph.NumNodes();
  DynamicCodService delta_service(std::move(w.graph), std::move(w.attrs),
                                  DeltaOptions());

  // A chain of small randomized batches, each followed by a delta rebuild.
  Rng updates(seed ^ 0xabcdef);
  for (int batch = 0; batch < 4; ++batch) {
    ApplyRandomBatch(delta_service, n, 6, updates);
    ASSERT_TRUE(delta_service.Refresh().ok());
  }

  // A cold delta-mode service constructed directly on the FINAL edge set.
  const DynamicCodService::EpochSnapshot evolved = delta_service.Snapshot();
  DynamicCodService cold_service(CopyGraph(evolved.core->graph()),
                                 std::move(w2.attrs), DeltaOptions());

  ExpectSameEpoch(*evolved.core, *cold_service.Snapshot().core,
                  "delta chain vs cold");
  ExpectSameAnswers(delta_service, cold_service, n, "delta chain vs cold");
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DeltaEquivalenceTest,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// Reuse accounting.
// ---------------------------------------------------------------------------

TEST(DeltaRebuildTest, EmptyBatchReusesEverySample) {
  World w = MakeWorld(FuzzSeed(21));
  const size_t n = w.graph.NumNodes();
  const ServiceOptions options = DeltaOptions();
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  Counter* reused = DeltaCounter("cod_rebuild_delta_samples_reused_total");
  Counter* resampled =
      DeltaCounter("cod_rebuild_delta_samples_resampled_total");
  const uint64_t reused_before = reused->Value();
  const uint64_t resampled_before = resampled->Value();
  const std::string hierarchy_before =
      HierarchyBytes(*service.Snapshot().core);
  const std::string himor_before = HimorBytes(*service.Snapshot().core);

  // No pending updates: the rebuilt epoch has zero dirty vertices, so every
  // sample is served from the cache and nothing is resampled.
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(reused->Value() - reused_before,
            static_cast<uint64_t>(n) * options.engine.theta);
  EXPECT_EQ(resampled->Value() - resampled_before, 0u);
  EXPECT_EQ(HierarchyBytes(*service.Snapshot().core), hierarchy_before);
  EXPECT_EQ(HimorBytes(*service.Snapshot().core), himor_before);
}

TEST(DeltaRebuildTest, SparseBatchReusesMostSamples) {
  World w = MakeWorld(FuzzSeed(22));
  const size_t n = w.graph.NumNodes();
  const ServiceOptions options = DeltaOptions();
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  Counter* reused = DeltaCounter("cod_rebuild_delta_samples_reused_total");
  Counter* replayed =
      DeltaCounter("cod_rebuild_delta_samples_replayed_total");
  Counter* resampled =
      DeltaCounter("cod_rebuild_delta_samples_resampled_total");
  const uint64_t reused_before = reused->Value();
  const uint64_t replayed_before = replayed->Value();
  const uint64_t resampled_before = resampled->Value();

  // One edge touches two vertices; the vast majority of RR samples avoid
  // them and must be reused or replayed, not resampled.
  ASSERT_TRUE(service.AddEdge(1, 2, 2.0));
  ASSERT_TRUE(service.Refresh().ok());
  const uint64_t total = static_cast<uint64_t>(n) * options.engine.theta;
  const uint64_t new_resampled = resampled->Value() - resampled_before;
  const uint64_t new_reused = reused->Value() - reused_before;
  const uint64_t new_replayed = replayed->Value() - replayed_before;
  EXPECT_EQ(new_reused + new_replayed + new_resampled, total);
  EXPECT_LT(new_resampled, total / 2);
  EXPECT_GT(new_reused, 0u);
}

// ---------------------------------------------------------------------------
// Fallback paths: always answer-identical, only slower.
// ---------------------------------------------------------------------------

TEST(DeltaRebuildTest, DirtyFractionThresholdFallsBackToFullRebuild) {
  World w = MakeWorld(FuzzSeed(23));
  World w2 = MakeWorld(FuzzSeed(23));
  const size_t n = w.graph.NumNodes();
  ServiceOptions options = DeltaOptions();
  options.delta_max_dirty_fraction = 0.0;  // any dirty vertex forces cold
  DynamicCodService service(std::move(w.graph), std::move(w.attrs), options);

  Counter* fallbacks = DeltaCounter("cod_rebuild_delta_fallbacks_total");
  const uint64_t fallbacks_before = fallbacks->Value();
  ASSERT_TRUE(service.AddEdge(3, 4, 1.5));
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(fallbacks->Value() - fallbacks_before, 1u);

  // The threshold is latency-only: the cold-rebuilt epoch still matches a
  // fresh delta-mode service on the same edges.
  const DynamicCodService::EpochSnapshot snap = service.Snapshot();
  DynamicCodService fresh(CopyGraph(snap.core->graph()),
                          std::move(w2.attrs), DeltaOptions());
  ExpectSameEpoch(*snap.core, *fresh.Snapshot().core, "threshold fallback");
  ExpectSameAnswers(service, fresh, n, "threshold fallback");
}

TEST(DeltaRebuildTest, DeltaFailpointFallsBackToFullRebuild) {
  World w = MakeWorld(FuzzSeed(24));
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            DeltaOptions());
  Counter* attempts = DeltaCounter("cod_rebuild_delta_attempts_total");
  Counter* fallbacks = DeltaCounter("cod_rebuild_delta_fallbacks_total");
  const uint64_t attempts_before = attempts->Value();
  const uint64_t fallbacks_before = fallbacks->Value();

  ASSERT_TRUE(service.AddEdge(5, 6, 1.0));
  {
    ScopedFailpoint fail("core/delta_rebuild", /*count=*/1);
    ASSERT_TRUE(service.Refresh().ok());
  }
  EXPECT_EQ(attempts->Value() - attempts_before, 1u);
  EXPECT_EQ(fallbacks->Value() - fallbacks_before, 1u);
  EXPECT_FALSE(service.epoch_degraded());

  // The fallback rebuilt cold, which re-primes the caches: the next
  // no-update refresh reuses everything again.
  Counter* resampled =
      DeltaCounter("cod_rebuild_delta_samples_resampled_total");
  const uint64_t resampled_before = resampled->Value();
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_EQ(resampled->Value() - resampled_before, 0u);
}

TEST(DeltaRebuildTest, DegradedEpochDoesNotAdvanceCachesAndRecovers) {
  World w = MakeWorld(FuzzSeed(25));
  World w2 = MakeWorld(FuzzSeed(25));
  const size_t n = w.graph.NumNodes();
  DynamicCodService service(std::move(w.graph), std::move(w.attrs),
                            DeltaOptions());

  // Fail the HIMOR build once: the epoch publishes index-absent degraded
  // and the reuse caches stay pinned at the last fully indexed epoch.
  ASSERT_TRUE(service.AddEdge(7, 8, 1.0));
  {
    ScopedFailpoint fail("himor/build", /*count=*/2);
    // Two arms: the delta attempt fails, falls back to a full retry, which
    // fails too -> degraded publication (publish_without_index default).
    ASSERT_TRUE(service.Refresh().ok());
  }
  EXPECT_TRUE(service.epoch_degraded());

  // The next clean rebuild restores the index, and the recovered epoch is
  // bit-identical to a cold build on the same final edges.
  ASSERT_TRUE(service.Refresh().ok());
  EXPECT_FALSE(service.epoch_degraded());
  const DynamicCodService::EpochSnapshot snap = service.Snapshot();
  DynamicCodService fresh(CopyGraph(snap.core->graph()),
                          std::move(w2.attrs), DeltaOptions());
  ExpectSameEpoch(*snap.core, *fresh.Snapshot().core,
                  "recovery after degraded");
  ExpectSameAnswers(service, fresh, n, "recovery after degraded");
}

// ---------------------------------------------------------------------------
// Compatibility gates.
// ---------------------------------------------------------------------------

TEST(DeltaRebuildTest, DeltaModeJoinsTheOptionsFingerprint) {
  ServiceOptions a = DeltaOptions();
  ServiceOptions b = a;
  b.delta_rebuild = false;
  // Delta mode changes the sampling schedule, so its snapshots must never
  // warm-restore into a non-delta service (or vice versa)...
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  // ...while the dirty threshold is latency-only and must not gate.
  ServiceOptions c = a;
  c.delta_max_dirty_fraction = 0.9;
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
}

TEST(DeltaRebuildTest, ValidateRejectsBadDirtyFraction) {
  ServiceOptions options = DeltaOptions();
  options.delta_max_dirty_fraction = -0.1;
  EXPECT_FALSE(options.Validate().ok());
  options.delta_max_dirty_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.delta_max_dirty_fraction = 1.0;
  EXPECT_TRUE(options.Validate().ok());
}

}  // namespace
}  // namespace cod
