#include "influence/cascade_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(CascadeModelTest, WeightedCascadeProbabilities) {
  // Path 0-1-2: p(u,v) = 1/deg(v).
  const Graph g = testing::MakePath(3);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  EXPECT_EQ(m.kind(), DiffusionKind::kIndependentCascade);
  const EdgeId e01 = g.FindEdge(0, 1);
  const EdgeId e12 = g.FindEdge(1, 2);
  EXPECT_DOUBLE_EQ(m.ProbToward(e01, 1), 0.5);   // deg(1) = 2
  EXPECT_DOUBLE_EQ(m.ProbToward(e01, 0), 1.0);   // deg(0) = 1
  EXPECT_DOUBLE_EQ(m.ProbToward(e12, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.ProbToward(e12, 1), 0.5);
}

TEST(CascadeModelTest, UniformIc) {
  const Graph g = testing::MakeClique(4);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.25);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    EXPECT_DOUBLE_EQ(m.ProbToward(e, lo), 0.25);
    EXPECT_DOUBLE_EQ(m.ProbToward(e, hi), 0.25);
  }
}

TEST(CascadeModelTest, LtInWeightsSumToOne) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(g);
  EXPECT_EQ(m.kind(), DiffusionKind::kLinearThreshold);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    double total = 0.0;
    for (const AdjEntry& a : g.Neighbors(v)) {
      total += m.ProbToward(a.edge, v);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(CascadeModelTest, EdgeWeightedCascadeNormalizesByWeight) {
  // Path 0-1-2 with weights 3 and 1 at node 1: p(0->1) = 3/4, p(2->1) = 1/4.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 3.0);
  b.AddEdge(1, 2, 1.0);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::EdgeWeightedCascadeIc(g);
  EXPECT_DOUBLE_EQ(m.ProbToward(g.FindEdge(0, 1), 1), 0.75);
  EXPECT_DOUBLE_EQ(m.ProbToward(g.FindEdge(1, 2), 1), 0.25);
  EXPECT_DOUBLE_EQ(m.ProbToward(g.FindEdge(0, 1), 0), 1.0);
  EXPECT_DOUBLE_EQ(m.ProbToward(g.FindEdge(1, 2), 2), 1.0);
}

TEST(CascadeModelTest, EdgeWeightedCascadeEqualsDegreeOnUnweighted) {
  const Graph g = testing::MakeTwoCliquesWithBridge(4);
  const DiffusionModel by_degree = DiffusionModel::WeightedCascadeIc(g);
  const DiffusionModel by_weight = DiffusionModel::EdgeWeightedCascadeIc(g);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    EXPECT_DOUBLE_EQ(by_degree.ProbToward(e, lo), by_weight.ProbToward(e, lo));
    EXPECT_DOUBLE_EQ(by_degree.ProbToward(e, hi), by_weight.ProbToward(e, hi));
  }
}

TEST(CascadeModelTest, TrivalencyDrawsFromThreeLevels) {
  const Graph g = testing::MakeClique(8);
  Rng rng(1);
  const DiffusionModel m = DiffusionModel::TrivalencyIc(g, rng);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    for (NodeId to : {lo, hi}) {
      const double p = m.ProbToward(e, to);
      EXPECT_TRUE(p == 0.1 || p == 0.01 || p == 0.001) << p;
    }
  }
}

TEST(CascadeModelTest, TrivalencyDeterministicPerSeed) {
  const Graph g = testing::MakeClique(6);
  Rng rng1(2);
  Rng rng2(2);
  const DiffusionModel a = DiffusionModel::TrivalencyIc(g, rng1);
  const DiffusionModel b = DiffusionModel::TrivalencyIc(g, rng2);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    EXPECT_EQ(a.ProbToward(e, lo), b.ProbToward(e, lo));
    EXPECT_EQ(a.ProbToward(e, hi), b.ProbToward(e, hi));
  }
}

TEST(CascadeModelTest, GraphAccessor) {
  const Graph g = testing::MakePath(2);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  EXPECT_EQ(&m.graph(), &g);
}

}  // namespace
}  // namespace cod
