#include "influence/sketch_oracle.h"

#include <gtest/gtest.h>

#include "influence/influence_oracle.h"
#include "influence/monte_carlo.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(SketchOracleTest, DeterministicWorldExactWhenSketchCoversGraph) {
  // p = 1, connected, n < k: every sketch stays below capacity, so the
  // counts are exact: sigma(v) = n for all v.
  const Graph g = testing::MakeTwoCliquesWithBridge(3);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  SketchOptions options;
  options.num_worlds = 4;
  options.sketch_size = 16;
  Rng rng(1);
  const std::vector<double> sigma = SketchInfluence(m, options, rng);
  for (double s : sigma) EXPECT_DOUBLE_EQ(s, 6.0);
}

TEST(SketchOracleTest, ZeroProbabilityGivesOne) {
  const Graph g = testing::MakeClique(5);
  const DiffusionModel m = DiffusionModel::UniformIc(g, 0.0);
  SketchOptions options;
  options.num_worlds = 3;
  Rng rng(2);
  for (double s : SketchInfluence(m, options, rng)) {
    EXPECT_DOUBLE_EQ(s, 1.0);
  }
}

TEST(SketchOracleTest, MatchesMonteCarloOnPaperExample) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  SketchOptions options;
  options.num_worlds = 4000;
  options.sketch_size = 16;  // > n: exact per world
  Rng rng(3);
  const std::vector<double> sigma = SketchInfluence(m, options, rng);
  MonteCarloSimulator sim(m);
  for (NodeId v = 0; v < ex.graph.NumNodes(); ++v) {
    EXPECT_NEAR(sigma[v], sim.EstimateInfluence(v, 60000, rng), 0.12)
        << "node " << v;
  }
}

TEST(SketchOracleTest, BottomKEstimatorTracksLargeReachableSets) {
  // Star with 60 leaves and p = 1: everyone reaches everyone (undirected
  // live edges both ways with p=1), true sigma = 61 everywhere; with
  // k = 16 << n the bottom-k estimator kicks in.
  GraphBuilder b(61);
  for (NodeId v = 1; v <= 60; ++v) b.AddEdge(0, v);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::UniformIc(g, 1.0);
  SketchOptions options;
  options.num_worlds = 400;
  options.sketch_size = 16;
  Rng rng(4);
  const std::vector<double> sigma = SketchInfluence(m, options, rng);
  for (double s : sigma) EXPECT_NEAR(s, 61.0, 8.0);
}

TEST(SketchOracleTest, LtModelSupported) {
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeLt(ex.graph);
  SketchOptions options;
  options.num_worlds = 4000;
  options.sketch_size = 16;
  Rng rng(5);
  const std::vector<double> sigma = SketchInfluence(m, options, rng);
  MonteCarloSimulator sim(m);
  for (NodeId v = 0; v < ex.graph.NumNodes(); ++v) {
    EXPECT_NEAR(sigma[v], sim.EstimateInfluence(v, 60000, rng), 0.12)
        << "node " << v;
  }
}

TEST(SketchOracleTest, ConsumesExactlyOneDrawAndWorldsAreCounterSeeded) {
  // The counter-seeded schedule anchors every world on ONE draw from the
  // caller's stream; the estimate is a pure function of that draw.
  const auto ex = testing::MakePaperExample();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(ex.graph);
  SketchOptions options;
  options.num_worlds = 8;
  options.sketch_size = 4;
  Rng used(42);
  const std::vector<double> sigma = SketchInfluence(m, options, used);
  Rng mirror(42);
  mirror.Next();  // the single anchor draw
  EXPECT_EQ(used.Next(), mirror.Next()) << "consumed more than one draw";

  // Bitwise reproducibility from the anchor alone: a fresh equal-seeded Rng
  // yields the identical vector, and extending the world count preserves the
  // world-sum prefix exactly (worlds are keyed by index, so worlds 0..7 of a
  // 9-world run ARE the 8-world run — running averages decompose with the
  // 9th world's contribution landing in [1, n] per node).
  Rng again(42);
  EXPECT_EQ(SketchInfluence(m, options, again), sigma);
  SketchOptions nine = options;
  nine.num_worlds = 9;
  Rng rng9(42);
  const std::vector<double> sigma9 = SketchInfluence(m, nine, rng9);
  const double n = static_cast<double>(ex.graph.NumNodes());
  for (NodeId v = 0; v < ex.graph.NumNodes(); ++v) {
    const double world8 = sigma9[v] * 9.0 - sigma[v] * 8.0;
    EXPECT_GE(world8, 1.0 - 1e-9) << "node " << v;
    EXPECT_LE(world8, n + 1e-9) << "node " << v;
  }
}

TEST(SketchOracleTest, AgreesWithRrCountingOnRanking) {
  // Hub-vs-leaf ordering must agree between the two estimator families.
  GraphBuilder b(10);
  for (NodeId v = 1; v <= 6; ++v) b.AddEdge(0, v);
  b.AddEdge(7, 8);
  b.AddEdge(8, 9);
  const Graph g = std::move(b).Build();
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  SketchOptions options;
  options.num_worlds = 3000;
  options.sketch_size = 16;
  Rng rng(6);
  const std::vector<double> sketch_sigma = SketchInfluence(m, options, rng);
  InfluenceOracle oracle(m);
  std::vector<NodeId> everyone;
  for (NodeId v = 0; v < 10; ++v) everyone.push_back(v);
  const std::vector<uint32_t> counts =
      oracle.CountsWithin(everyone, 3000, rng);
  // The hub must dominate both rankings.
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_GT(sketch_sigma[0], sketch_sigma[v]);
    EXPECT_GT(counts[0], counts[v]);
  }
}

}  // namespace
}  // namespace cod
