#include "graph/graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  const Graph g = GraphBuilder(0).Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, BuildsSimpleGraph) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphBuilderTest, GrowsNodeCountFromEdges) {
  GraphBuilder b;
  b.AddEdge(5, 9);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.Degree(9), 1u);
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 2);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, MergesParallelEdgesSummingWeights) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 0, 2.5);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasWeights());
  EXPECT_DOUBLE_EQ(g.Weight(0), 3.5);
}

TEST(GraphBuilderTest, UnitWeightsStayImplicit) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = std::move(b).Build();
  EXPECT_FALSE(g.HasWeights());
  EXPECT_DOUBLE_EQ(g.Weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 2.0);
}

TEST(GraphTest, EndpointsAreCanonical) {
  GraphBuilder b(3);
  b.AddEdge(2, 0);
  const Graph g = std::move(b).Build();
  const auto [lo, hi] = g.Endpoints(0);
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);
}

TEST(GraphTest, NeighborsSortedAndShareEdgeIds) {
  const Graph g = testing::MakeClique(4);
  for (NodeId v = 0; v < 4; ++v) {
    const auto ns = g.Neighbors(v);
    ASSERT_EQ(ns.size(), 3u);
    for (size_t i = 1; i < ns.size(); ++i) EXPECT_LT(ns[i - 1].to, ns[i].to);
    for (const AdjEntry& a : ns) {
      const auto [lo, hi] = g.Endpoints(a.edge);
      EXPECT_TRUE((lo == v && hi == a.to) || (lo == a.to && hi == v));
    }
  }
}

TEST(GraphTest, FindEdge) {
  const Graph g = testing::MakePath(5);
  EXPECT_NE(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_NE(g.FindEdge(1, 0), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  const Graph g = testing::MakeTwoCliquesWithBridge(3);  // nodes 0..5
  const std::vector<NodeId> nodes = {0, 1, 2, 3};
  const InducedSubgraph sub = BuildInducedSubgraph(g, nodes);
  EXPECT_EQ(sub.graph.NumNodes(), 4u);
  // Clique {0,1,2} has 3 edges; bridge (2,3) included; clique edges of
  // {3,4,5} excluded.
  EXPECT_EQ(sub.graph.NumEdges(), 4u);
  EXPECT_EQ(sub.to_parent.size(), 4u);
}

TEST(InducedSubgraphTest, PreservesWeights) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(1, 2, 3.0);
  const Graph g = std::move(b).Build();
  const std::vector<NodeId> nodes = {1, 2};
  const InducedSubgraph sub = BuildInducedSubgraph(g, nodes);
  ASSERT_EQ(sub.graph.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(sub.graph.Weight(0), 3.0);
}

TEST(InducedSubgraphTest, IsolatedNodesKept) {
  const Graph g = testing::MakePath(5);
  const std::vector<NodeId> nodes = {0, 4};
  const InducedSubgraph sub = BuildInducedSubgraph(g, nodes);
  EXPECT_EQ(sub.graph.NumNodes(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 0u);
}

TEST(InducedSubgraphTest, LocalIdsFollowInputOrder) {
  const Graph g = testing::MakePath(4);
  const std::vector<NodeId> nodes = {3, 1, 2};
  const InducedSubgraph sub = BuildInducedSubgraph(g, nodes);
  EXPECT_EQ(sub.to_parent[0], 3u);
  EXPECT_EQ(sub.to_parent[1], 1u);
  EXPECT_EQ(sub.to_parent[2], 2u);
  // Edges (1,2) and (2,3) survive as local (1,2) and (0,2).
  EXPECT_EQ(sub.graph.NumEdges(), 2u);
  EXPECT_NE(sub.graph.FindEdge(1, 2), kInvalidEdge);
  EXPECT_NE(sub.graph.FindEdge(0, 2), kInvalidEdge);
}

}  // namespace
}  // namespace cod
