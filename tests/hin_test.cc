#include "graph/hin.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cod_engine.h"
#include "influence/cascade_model.h"

namespace cod {
namespace {

// Toy bibliographic HIN: 3 authors, 3 papers, 2 venues.
//   a0 writes p0, p1;  a1 writes p0, p2;  a2 writes p1, p2.
//   p0, p1 at venue v0;  p2 at venue v1.
struct Biblio {
  HinGraph hin;
  NodeId a0, a1, a2, p0, p1, p2, v0, v1;
  NodeTypeId author, paper, venue;
};

Biblio MakeBiblio() {
  Biblio b;
  HinGraphBuilder builder;
  b.author = builder.InternType("author");
  b.paper = builder.InternType("paper");
  b.venue = builder.InternType("venue");
  b.a0 = builder.AddNode(b.author);
  b.a1 = builder.AddNode(b.author);
  b.a2 = builder.AddNode(b.author);
  b.p0 = builder.AddNode(b.paper);
  b.p1 = builder.AddNode(b.paper);
  b.p2 = builder.AddNode(b.paper);
  b.v0 = builder.AddNode(b.venue);
  b.v1 = builder.AddNode(b.venue);
  builder.AddEdge(b.a0, b.p0);
  builder.AddEdge(b.a0, b.p1);
  builder.AddEdge(b.a1, b.p0);
  builder.AddEdge(b.a1, b.p2);
  builder.AddEdge(b.a2, b.p1);
  builder.AddEdge(b.a2, b.p2);
  builder.AddEdge(b.p0, b.v0);
  builder.AddEdge(b.p1, b.v0);
  builder.AddEdge(b.p2, b.v1);
  b.hin = std::move(builder).Build();
  return b;
}

TEST(HinGraphTest, TypesAndLookup) {
  const Biblio b = MakeBiblio();
  EXPECT_EQ(b.hin.NumNodes(), 8u);
  EXPECT_EQ(b.hin.NumTypes(), 3u);
  EXPECT_EQ(b.hin.TypeOf(b.a0), b.author);
  EXPECT_EQ(b.hin.TypeOf(b.p2), b.paper);
  EXPECT_EQ(b.hin.TypeName(b.venue), "venue");
  EXPECT_EQ(b.hin.FindType("paper"), b.paper);
  EXPECT_EQ(b.hin.FindType("nope"), b.hin.NumTypes());
  EXPECT_EQ(b.hin.NodesOfType(b.author),
            (std::vector<NodeId>{b.a0, b.a1, b.a2}));
}

TEST(MetaPathTest, ApaCoAuthorship) {
  const Biblio b = MakeBiblio();
  const NodeTypeId apa[] = {b.author, b.paper, b.author};
  Result<MetaPathProjection> r = ProjectMetaPath(b.hin, apa);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every author pair shares exactly one paper -> triangle of weight 1.
  EXPECT_EQ(r->graph.NumNodes(), 3u);
  EXPECT_EQ(r->graph.NumEdges(), 3u);
  for (EdgeId e = 0; e < r->graph.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(r->graph.Weight(e), 1.0);
  }
  EXPECT_EQ(r->to_hin, (std::vector<NodeId>{b.a0, b.a1, b.a2}));
  EXPECT_EQ(r->truncated_sources, 0u);
}

TEST(MetaPathTest, ApvpaVenueCoAuthorship) {
  const Biblio b = MakeBiblio();
  // Author-Paper-Venue-Paper-Author: connected via shared venues.
  const NodeTypeId apvpa[] = {b.author, b.paper, b.venue, b.paper, b.author};
  Result<MetaPathProjection> r = ProjectMetaPath(b.hin, apvpa);
  ASSERT_TRUE(r.ok());
  // a0 and a1 both publish at v0 (a0 via p0/p1, a1 via p0): walk count
  // a0 -> {p0,p1} -> v0 (count 2) -> {p0,p1} -> a1 via p0 only: 2.
  const EdgeId e01 = r->graph.FindEdge(0, 1);
  ASSERT_NE(e01, kInvalidEdge);
  EXPECT_DOUBLE_EQ(r->graph.Weight(e01), 2.0);
  // a1-a2 share venue v1 via p2 on both sides and v0 via p0/p1: a1 -> {p0,p2}
  // -> v0 (1), v1 (1) -> papers -> a2: via v0: p1 (1) -> a2; via v1: p2 (1)
  // -> a2: total 2.
  const EdgeId e12 = r->graph.FindEdge(1, 2);
  ASSERT_NE(e12, kInvalidEdge);
  EXPECT_DOUBLE_EQ(r->graph.Weight(e12), 2.0);
}

TEST(MetaPathTest, SelfPathsAreExcludedFromEdges) {
  const Biblio b = MakeBiblio();
  const NodeTypeId apa[] = {b.author, b.paper, b.author};
  Result<MetaPathProjection> r = ProjectMetaPath(b.hin, apa);
  ASSERT_TRUE(r.ok());
  for (EdgeId e = 0; e < r->graph.NumEdges(); ++e) {
    const auto [u, v] = r->graph.Endpoints(e);
    EXPECT_NE(u, v);
  }
}

TEST(MetaPathTest, RejectsMalformedPaths) {
  const Biblio b = MakeBiblio();
  {
    const NodeTypeId too_short[] = {b.author, b.paper};
    EXPECT_FALSE(ProjectMetaPath(b.hin, too_short).ok());
  }
  {
    const NodeTypeId asymmetric[] = {b.author, b.paper, b.venue};
    EXPECT_FALSE(ProjectMetaPath(b.hin, asymmetric).ok());
  }
  {
    const NodeTypeId unknown[] = {b.author, 99, b.author};
    EXPECT_FALSE(ProjectMetaPath(b.hin, unknown).ok());
  }
}

TEST(MetaPathTest, TruncationCapDropsHubSources) {
  // Star of one paper with many authors: each author's APA expansion has
  // fan-out ~ |authors|; a tiny cap truncates every source.
  HinGraphBuilder builder;
  const NodeTypeId author = builder.InternType("author");
  const NodeTypeId paper = builder.InternType("paper");
  const NodeId p = builder.AddNode(paper);
  std::vector<NodeId> authors;
  for (int i = 0; i < 50; ++i) {
    const NodeId a = builder.AddNode(author);
    builder.AddEdge(a, p);
    authors.push_back(a);
  }
  const HinGraph hin = std::move(builder).Build();
  const NodeTypeId apa[] = {author, paper, author};
  MetaPathOptions options;
  options.max_paths_per_node = 10;
  Result<MetaPathProjection> r = ProjectMetaPath(hin, apa, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->truncated_sources, 50u);
  EXPECT_EQ(r->graph.NumEdges(), 0u);
  // Unlimited: a 50-clique.
  options.max_paths_per_node = 0;
  Result<MetaPathProjection> full = ProjectMetaPath(hin, apa, options);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->graph.NumEdges(), 50u * 49u / 2);
}

TEST(MetaPathTest, MultiplicityCountsParallelPaths) {
  // Two authors sharing TWO papers: APA weight 2.
  HinGraphBuilder builder;
  const NodeTypeId author = builder.InternType("author");
  const NodeTypeId paper = builder.InternType("paper");
  const NodeId a0 = builder.AddNode(author);
  const NodeId a1 = builder.AddNode(author);
  const NodeId p0 = builder.AddNode(paper);
  const NodeId p1 = builder.AddNode(paper);
  builder.AddEdge(a0, p0);
  builder.AddEdge(a0, p1);
  builder.AddEdge(a1, p0);
  builder.AddEdge(a1, p1);
  const HinGraph hin = std::move(builder).Build();
  const NodeTypeId apa[] = {author, paper, author};
  Result<MetaPathProjection> r = ProjectMetaPath(hin, apa);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->graph.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(r->graph.Weight(0), 2.0);
}

TEST(HinIntegrationTest, ProjectionFeedsWeightedCodPipeline) {
  // A larger bibliographic HIN: 3 fields of 20 authors; each field's papers
  // draw 2 coauthors from the field. The APA projection plus the
  // edge-weighted cascade model must support the full engine pipeline.
  HinGraphBuilder builder;
  const NodeTypeId author = builder.InternType("author");
  const NodeTypeId paper = builder.InternType("paper");
  std::vector<NodeId> authors;
  for (int i = 0; i < 60; ++i) authors.push_back(builder.AddNode(author));
  Rng rng(1);
  for (int p = 0; p < 180; ++p) {
    const NodeId paper_node = builder.AddNode(paper);
    const size_t field = rng.UniformInt(3);
    for (int i = 0; i < 2; ++i) {
      builder.AddEdge(authors[field * 20 + rng.UniformInt(20)], paper_node);
    }
  }
  const HinGraph hin = std::move(builder).Build();
  const NodeTypeId apa[] = {author, paper, author};
  Result<MetaPathProjection> projection = ProjectMetaPath(hin, apa);
  ASSERT_TRUE(projection.ok());
  ASSERT_GT(projection->graph.NumEdges(), 0u);

  // Field labels as attributes on the projected graph.
  AttributeTableBuilder ab;
  for (size_t i = 0; i < projection->to_hin.size(); ++i) {
    ab.Add(static_cast<NodeId>(i), "field" + std::to_string(i / 20));
  }
  const AttributeTable attrs =
      std::move(ab).Build(projection->graph.NumNodes());

  // Weighted-cascade-by-weight respects co-authorship multiplicity.
  const DiffusionModel model =
      DiffusionModel::EdgeWeightedCascadeIc(projection->graph);
  for (NodeId v = 0; v < projection->graph.NumNodes(); ++v) {
    double total = 0.0;
    for (const AdjEntry& a : projection->graph.Neighbors(v)) {
      total += model.ProbToward(a.edge, v);
    }
    if (projection->graph.Degree(v) > 0) {
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }

  CodEngine engine(projection->graph, attrs, {});
  Rng query_rng(2);
  engine.BuildHimor(query_rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = query_rng;
  int found = 0;
  for (NodeId q = 0; q < 20; ++q) {
    const auto own = attrs.AttributesOf(q);
    if (own.empty()) continue;
    found += engine.QueryCodL(q, own[0], 5, ws).found;
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace cod
