// Failure-injection / fuzz-lite robustness tests: every loader must reject
// malformed input with a Status — never crash, never OOM, never return a
// structurally invalid object (Arrow-style "corrupt files are data, not
// bugs" discipline). The budget suites below extend the same discipline to
// deadlines and cancellation: any budget, however hostile, yields
// kOk/kTimeout/kCancelled — never a crash, hang, or corrupted answer.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/task_scheduler.h"
#include "core/cod_engine.h"
#include "core/himor.h"
#include "core/independent_eval.h"
#include "core/lore.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/dendrogram_io.h"
#include "hierarchy/lca.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// CI's failpoint-fuzz job points COD_METRICS_DUMP at a file and archives it
// when a shard fails — the counter state (trips, degraded epochs, fallbacks)
// is the first thing to read when reproducing a fuzz failure.
class MetricsDumpEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* path = std::getenv("COD_METRICS_DUMP");
    if (path == nullptr || *path == '\0') return;
    std::ofstream out(path);
    out << MetricsRegistry::Instance().JsonDump() << "\n";
  }
};
const ::testing::Environment* const kMetricsDumpEnv =
    ::testing::AddGlobalTestEnvironment(new MetricsDumpEnvironment);

// CI shards override the fuzz stream via COD_FUZZ_SEED; the per-test offset
// keeps parameterized instantiations distinct within a shard.
uint64_t FuzzSeed(uint64_t offset) {
  const char* env = std::getenv("COD_FUZZ_SEED");
  const uint64_t base =
      (env == nullptr || *env == '\0') ? 0 : std::strtoull(env, nullptr, 10);
  return base + offset;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

std::string RandomBytes(Rng& rng, size_t count) {
  std::string bytes(count, '\0');
  for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
  return bytes;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashLoaders) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t size = rng.UniformInt(512);
    const std::string path = TempPath("fuzz.bin");
    WriteBytes(path, RandomBytes(rng, size));
    // Binary loaders: must return a Status (usually InvalidArgument).
    { Result<Dendrogram> r = LoadDendrogram(path); (void)r.ok(); }
    { Result<HimorIndex> r = HimorIndex::Load(path); (void)r.ok(); }
    // Text loaders: random bytes are usually malformed lines.
    { Result<Graph> r = LoadEdgeList(path); (void)r.ok(); }
    { Result<AttributeTable> r = LoadAttributes(path, 16); (void)r.ok(); }
  }
}

TEST_P(FuzzSeedTest, BitFlippedDendrogramsNeverCrash) {
  Rng rng(GetParam() + 100);
  const Graph g = EnsureConnected(ErdosRenyi(30, 90, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::string path = TempPath("valid_dendrogram.bin");
  ASSERT_TRUE(SaveDendrogram(d, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = bytes;
    // Flip a few random bytes (past the magic so some headers survive).
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] ^=
          static_cast<char>(1 + rng.UniformInt(255));
    }
    const std::string mpath = TempPath("mutated_dendrogram.bin");
    WriteBytes(mpath, mutated);
    Result<Dendrogram> r = LoadDendrogram(mpath);
    if (r.ok()) {
      // If it loaded, it must be structurally sound.
      EXPECT_EQ(r->LeafCount(r->Root()), r->NumLeaves());
    }
  }
}

TEST_P(FuzzSeedTest, BitFlippedHimorNeverCrashes) {
  Rng rng(GetParam() + 200);
  const Graph g = EnsureConnected(ErdosRenyi(30, 90, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const HimorIndex index = HimorIndex::Build(m, d, lca, 5, rng);
  const std::string path = TempPath("valid_himor.bin");
  ASSERT_TRUE(index.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = bytes;
    mutated[rng.UniformInt(mutated.size())] ^=
        static_cast<char>(1 + rng.UniformInt(255));
    // Also try random truncation.
    if (rng.Bernoulli(0.5)) {
      mutated.resize(rng.UniformInt(mutated.size() + 1));
    }
    const std::string mpath = TempPath("mutated_himor.bin");
    WriteBytes(mpath, mutated);
    Result<HimorIndex> r = HimorIndex::Load(mpath);
    if (r.ok()) {
      EXPECT_GE(r->max_rank(), 1u);
    }
  }
}

TEST_P(FuzzSeedTest, GarbledTextEdgesNeverCrash) {
  Rng rng(GetParam() + 300);
  const char* fragments[] = {"0 1",    "abc",     "1 2 3.5", "-5 2",
                             "# x",    "",        "7",       "1 999999999",
                             "2 3 xx", "\t  \t", "0 0",     "18446744073709551615 1"};
  for (int trial = 0; trial < 30; ++trial) {
    std::string content;
    const int lines = static_cast<int>(rng.UniformInt(12));
    for (int l = 0; l < lines; ++l) {
      content += fragments[rng.UniformInt(std::size(fragments))];
      content += "\n";
    }
    const std::string path = TempPath("garbled.edges");
    WriteBytes(path, content);
    Result<Graph> r = LoadEdgeList(path);
    if (r.ok()) {
      // Loaded graphs must be self-consistent.
      for (EdgeId e = 0; e < r->NumEdges(); ++e) {
        const auto [u, v] = r->Endpoints(e);
        EXPECT_LT(u, r->NumNodes());
        EXPECT_LT(v, r->NumNodes());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Budget / cancellation robustness: hostile deadlines over every variant.
// ---------------------------------------------------------------------------

struct BudgetWorld {
  Graph graph;
  AttributeTable attrs;
  std::unique_ptr<CodEngine> engine;
};

BudgetWorld MakeBudgetWorld(uint64_t seed) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = 120;
  params.num_edges = 480;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  BudgetWorld w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  w.graph = std::move(gen.graph);
  w.engine =
      std::make_unique<CodEngine>(w.graph, w.attrs, EngineOptions{});
  Rng himor_rng(seed + 1);
  w.engine->BuildHimor(himor_rng);
  return w;
}

// A workload cycling all five variants over nodes that carry attributes.
std::vector<QuerySpec> MakeVariantSpecs(const AttributeTable& attrs,
                                        size_t count) {
  constexpr CodVariant kVariants[] = {
      CodVariant::kCodU, CodVariant::kCodUIndexed, CodVariant::kCodR,
      CodVariant::kCodLMinus, CodVariant::kCodL};
  std::vector<QuerySpec> specs;
  for (NodeId q = 0; specs.size() < count; ++q) {
    QuerySpec spec;
    spec.node = q % static_cast<NodeId>(attrs.NumNodes());
    spec.variant = kVariants[specs.size() % std::size(kVariants)];
    if (spec.variant != CodVariant::kCodU &&
        spec.variant != CodVariant::kCodUIndexed) {
      const auto own = attrs.AttributesOf(spec.node);
      if (own.empty()) continue;
      spec.attrs.assign(own.begin(), own.begin() + 1);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

class BudgetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BudgetFuzzTest, HostileBudgetsNeverCrashOrCorrupt) {
  Rng rng(GetParam());
  BudgetWorld w = MakeBudgetWorld(GetParam() + 40);
  const std::vector<QuerySpec> base = MakeVariantSpecs(w.attrs, 15);
  TaskScheduler pool(4);
  const double budgets[] = {0.0, 1e-12, 1e-7, 1e-5, 1e-3};

  for (int round = 0; round < 4; ++round) {
    std::vector<QuerySpec> specs = base;
    for (QuerySpec& spec : specs) {
      spec.budget_seconds = budgets[rng.UniformInt(std::size(budgets))];
    }
    BatchOptions options;
    options.default_budget_seconds =
        budgets[rng.UniformInt(std::size(budgets))];
    options.allow_degradation = rng.Bernoulli(0.5);
    const std::vector<CodResult> results =
        w.engine->QueryBatch(specs, pool, /*batch_seed=*/round, options);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
      const CodResult& r = results[i];
      // The complete failure taxonomy: nothing else may come back.
      EXPECT_TRUE(r.code == StatusCode::kOk ||
                  r.code == StatusCode::kTimeout ||
                  r.code == StatusCode::kCancelled)
          << "spec " << i;
      if (r.code != StatusCode::kOk) {
        EXPECT_FALSE(r.found) << "spec " << i;
        EXPECT_TRUE(r.members.empty()) << "spec " << i;
        EXPECT_FALSE(r.degraded) << "spec " << i;
      }
      if (r.found) {
        EXPECT_EQ(r.code, StatusCode::kOk) << "spec " << i;
        EXPECT_FALSE(r.members.empty()) << "spec " << i;
        for (const NodeId v : r.members) {
          EXPECT_LT(v, w.graph.NumNodes()) << "spec " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetFuzzTest, ::testing::Values(11, 12, 13));

// Fuzz mode (Failpoints::ArmRandom): every injectable site trips with a
// small independent probability while a mixed-variant workload runs with
// hostile budgets on top. The taxonomy must hold for every answer, and the
// engine must answer a clean workload perfectly once the fuzz scope ends.
class RandomFailpointFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFailpointFuzzTest, QueriesRespectTaxonomyUnderRandomFaults) {
  Rng rng(GetParam());
  BudgetWorld w = MakeBudgetWorld(GetParam() + 90);
  const std::vector<QuerySpec> base = MakeVariantSpecs(w.attrs, 15);
  TaskScheduler pool(4);
  // A separate sampling pool puts the "influence/parallel_pool" site (the
  // parallel chunk loops) inside the fuzz blast radius too.
  TaskScheduler sampling_pool(2);

  {
    ScopedRandomFailpoints fuzz(FuzzSeed(GetParam()),
                                /*trip_probability=*/0.03);
    for (int round = 0; round < 4; ++round) {
      std::vector<QuerySpec> specs = base;
      for (QuerySpec& spec : specs) {
        // Mostly unlimited budgets: fuzz trips, not deadlines, are the
        // failure source under test; a few hostile ones compose both.
        spec.budget_seconds = rng.Bernoulli(0.25) ? 1e-5 : 0.0;
      }
      BatchOptions options;
      options.allow_degradation = rng.Bernoulli(0.5);
      options.sampling_pool = &sampling_pool;
      const std::vector<CodResult> results =
          w.engine->QueryBatch(specs, pool, /*batch_seed=*/round, options);
      ASSERT_EQ(results.size(), specs.size());
      for (size_t i = 0; i < results.size(); ++i) {
        const CodResult& r = results[i];
        EXPECT_TRUE(r.code == StatusCode::kOk ||
                    r.code == StatusCode::kTimeout ||
                    r.code == StatusCode::kCancelled)
            << "spec " << i;
        if (r.code != StatusCode::kOk) {
          EXPECT_FALSE(r.found) << "spec " << i;
          EXPECT_TRUE(r.members.empty()) << "spec " << i;
        }
        if (r.found) {
          EXPECT_EQ(r.code, StatusCode::kOk) << "spec " << i;
          EXPECT_FALSE(r.members.empty()) << "spec " << i;
          for (const NodeId v : r.members) {
            EXPECT_LT(v, w.graph.NumNodes()) << "spec " << i;
          }
        }
      }
    }

    // Loaders under fuzz: their failpoints surface as Status, never crash.
    const std::string path = TempPath("fuzz_clean.edges");
    WriteBytes(path, "0 1\n1 2\n2 0\n");
    for (int trial = 0; trial < 10; ++trial) {
      Result<Graph> r = LoadEdgeList(path);
      if (r.ok()) {
        EXPECT_EQ(r->NumEdges(), 3u);
      }
    }
  }  // fuzz disarmed

  // Recovery: the same workload with clean sites and no budgets answers
  // every query completely.
  const std::vector<CodResult> clean =
      w.engine->QueryBatch(base, pool, /*batch_seed=*/77);
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].code, StatusCode::kOk) << "spec " << i;
    EXPECT_FALSE(clean[i].degraded) << "spec " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFailpointFuzzTest,
                         ::testing::Values(301, 302, 303));

TEST(CancellationTest, MidPoolFailpointCancelsAndLeavesWorkspaceReusable) {
  // Arm the parallel-sampling chunk site: the pool aborts mid-construction
  // with kCancelled, and the workspace (slab pool included) stays reusable.
  BudgetWorld w = MakeBudgetWorld(52);
  TaskScheduler sampling_pool(2);
  QueryWorkspace ws = w.engine->MakeWorkspace(/*seed=*/0);
  ws.SetSamplingPool(&sampling_pool);

  QuerySpec spec;
  spec.variant = CodVariant::kCodU;
  spec.node = 3;
  spec.k = 5;

  {
    ScopedFailpoint fp("influence/parallel_pool", /*count=*/1);
    ws.ReseedRng(5);
    const CodResult cancelled = w.engine->Query(spec, ws);
    EXPECT_EQ(cancelled.code, StatusCode::kCancelled);
    EXPECT_FALSE(cancelled.found);
    EXPECT_TRUE(cancelled.members.empty());
  }

  // Disarmed: the same workspace answers exactly like a fresh one.
  ws.ReseedRng(6);
  const CodResult reused = w.engine->Query(spec, ws);
  QueryWorkspace fresh = w.engine->MakeWorkspace(/*seed=*/0);
  fresh.SetSamplingPool(&sampling_pool);
  fresh.ReseedRng(6);
  const CodResult expected = w.engine->Query(spec, fresh);
  EXPECT_EQ(reused.code, StatusCode::kOk);
  EXPECT_EQ(reused.found, expected.found);
  EXPECT_EQ(reused.members, expected.members);
  EXPECT_EQ(reused.rank, expected.rank);
}

TEST(CancellationTest, PreCancelledBatchSkipsAllSampledWork) {
  BudgetWorld w = MakeBudgetWorld(50);
  const std::vector<QuerySpec> specs = MakeVariantSpecs(w.attrs, 10);
  TaskScheduler pool(3);
  CancelToken token;
  token.Cancel();  // before the batch even starts
  BatchOptions options;
  options.cancel = &token;
  const std::vector<CodResult> results =
      w.engine->QueryBatch(specs, pool, /*batch_seed=*/1, options);
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (specs[i].variant == CodVariant::kCodUIndexed) {
      // Index-only lookups do no budgeted work, so they still answer.
      EXPECT_EQ(results[i].code, StatusCode::kOk) << "spec " << i;
    } else {
      // Cancellation is reported as such (never as a timeout) and skips the
      // degradation ladder.
      EXPECT_EQ(results[i].code, StatusCode::kCancelled) << "spec " << i;
      EXPECT_FALSE(results[i].degraded) << "spec " << i;
      EXPECT_EQ(results[i].variant_served, specs[i].variant) << "spec " << i;
    }
  }
}

TEST(CancellationTest, MidBatchCancelReturnsPromptly) {
  BudgetWorld w = MakeBudgetWorld(51);
  // A batch big enough to still be running when the cancel lands.
  const std::vector<QuerySpec> specs = MakeVariantSpecs(w.attrs, 200);
  TaskScheduler pool(2);
  CancelToken token;
  BatchOptions options;
  options.cancel = &token;
  options.allow_degradation = false;
  std::vector<CodResult> results;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  results = w.engine->QueryBatch(specs, pool, /*batch_seed=*/3, options);
  canceller.join();
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].code == StatusCode::kOk ||
                results[i].code == StatusCode::kCancelled)
        << "spec " << i;
  }
}

// ---------------------------------------------------------------------------
// Direct evaluator / LORE / HIMOR budget semantics.
// ---------------------------------------------------------------------------

TEST(EvaluatorBudgetTest, CompressedTimesOutOnExpiredBudget) {
  BudgetWorld w = MakeBudgetWorld(60);
  const CodChain chain = w.engine->BuildCoduChain(7);
  CompressedEvaluator eval(w.engine->model(), w.engine->options().theta);
  Rng rng(1);
  const ChainEvalOutcome out =
      eval.Evaluate(chain, 7, 5, rng, Budget{Deadline::After(0.0)});
  EXPECT_EQ(out.code, StatusCode::kTimeout);
  // Compressed evaluation has no usable partial answer.
  EXPECT_EQ(out.best_level, -1);
  EXPECT_TRUE(out.rank_per_level.empty());
}

TEST(EvaluatorBudgetTest, UnlimitedBudgetMatchesLegacyEvaluate) {
  BudgetWorld w = MakeBudgetWorld(61);
  const CodChain chain = w.engine->BuildCoduChain(3);
  CompressedEvaluator a(w.engine->model(), w.engine->options().theta);
  CompressedEvaluator b(w.engine->model(), w.engine->options().theta);
  Rng rng_a(9);
  Rng rng_b(9);
  const ChainEvalOutcome legacy = a.Evaluate(chain, 3, 5, rng_a);
  const ChainEvalOutcome budgeted = b.Evaluate(chain, 3, 5, rng_b, Budget{});
  EXPECT_EQ(budgeted.code, StatusCode::kOk);
  EXPECT_EQ(legacy.best_level, budgeted.best_level);
  EXPECT_EQ(legacy.rank_per_level, budgeted.rank_per_level);
}

TEST(EvaluatorBudgetTest, ScratchStaysCleanAfterTimeout) {
  // Regression guard for the check-interval placement: a timed-out
  // evaluation must leave the reusable scratch in a state where the NEXT
  // query answers exactly as a fresh evaluator would.
  BudgetWorld w = MakeBudgetWorld(62);
  const CodChain chain = w.engine->BuildCoduChain(11);
  CompressedEvaluator reused(w.engine->model(), w.engine->options().theta);
  Rng rng_timeout(1);
  const ChainEvalOutcome timed_out = reused.Evaluate(
      chain, 11, 5, rng_timeout, Budget{Deadline::After(0.0)});
  ASSERT_EQ(timed_out.code, StatusCode::kTimeout);

  CompressedEvaluator fresh(w.engine->model(), w.engine->options().theta);
  Rng rng_reused(4);
  Rng rng_fresh(4);
  const ChainEvalOutcome after = reused.Evaluate(chain, 11, 5, rng_reused);
  const ChainEvalOutcome want = fresh.Evaluate(chain, 11, 5, rng_fresh);
  EXPECT_EQ(after.code, StatusCode::kOk);
  EXPECT_EQ(after.best_level, want.best_level);
  EXPECT_EQ(after.rank_per_level, want.rank_per_level);
}

TEST(EvaluatorBudgetTest, CancelBeatsTimeoutInOutcome) {
  BudgetWorld w = MakeBudgetWorld(63);
  const CodChain chain = w.engine->BuildCoduChain(2);
  CompressedEvaluator eval(w.engine->model(), w.engine->options().theta);
  CancelToken token;
  token.Cancel();
  Rng rng(1);
  const ChainEvalOutcome out = eval.Evaluate(
      chain, 2, 5, rng, Budget{Deadline::After(0.0), &token});
  EXPECT_EQ(out.code, StatusCode::kCancelled);
}

TEST(EvaluatorBudgetTest, IndependentHonorsDeadlineSecondsShim) {
  BudgetWorld w = MakeBudgetWorld(64);
  const CodChain chain = w.engine->BuildCoduChain(5);
  IndependentEvaluator eval(w.engine->model(), w.engine->options().theta);
  Rng rng(1);
  // The legacy double overload routes through the Budget form; a
  // sub-nanosecond deadline deterministically aborts before level 0.
  const ChainEvalOutcome out =
      eval.Evaluate(chain, 5, 5, rng, /*deadline_seconds=*/1e-12);
  EXPECT_EQ(out.code, StatusCode::kTimeout);
  EXPECT_TRUE(eval.last_timed_out());
  EXPECT_EQ(out.best_level, -1);
}

TEST(LoreBudgetTest, ExpiredBudgetReturnsPartialScoresWithTimeout) {
  BudgetWorld w = MakeBudgetWorld(65);
  NodeId q = 0;
  AttributeId attr = 0;
  for (NodeId v = 0; v < w.attrs.NumNodes(); ++v) {
    const auto own = w.attrs.AttributesOf(v);
    if (!own.empty()) {
      q = v;
      attr = own[0];
      break;
    }
  }
  const LoreScores scores = ComputeReclusteringScores(
      w.graph, w.attrs, w.engine->base_hierarchy(), w.engine->base_lca(), q,
      std::span<const AttributeId>(&attr, 1), Budget{Deadline::After(0.0)});
  EXPECT_EQ(scores.code, StatusCode::kTimeout);
  // Structurally valid even when aborted: chain populated, scores sized.
  EXPECT_FALSE(scores.chain.empty());
  EXPECT_EQ(scores.score.size(), scores.chain.size());
}

TEST(HimorBudgetTest, ExpiredBudgetFailsBothBuilders) {
  Rng rng(70);
  const Graph g = EnsureConnected(ErdosRenyi(40, 120, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng build_rng(1);
  const Result<HimorIndex> serial =
      HimorIndex::Build(m, d, lca, 5, build_rng, 16,
                        Budget{Deadline::After(0.0)});
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kTimeout);
  const Result<HimorIndex> parallel = HimorIndex::BuildParallel(
      m, d, lca, 5, /*seed=*/2, 16, /*num_threads=*/4,
      Budget{Deadline::After(0.0)});
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kTimeout);
}

TEST(HimorBudgetTest, BuildFailpointFailsTheBuild) {
  Rng rng(71);
  const Graph g = EnsureConnected(ErdosRenyi(40, 120, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  Rng build_rng(1);
  ScopedFailpoint fp("himor/build", /*count=*/1);
  const Result<HimorIndex> built =
      HimorIndex::Build(m, d, lca, 5, build_rng, 16, Budget{});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kIoError);
  // The site is disarmed after one hit: the retry succeeds.
  Rng retry_rng(1);
  const Result<HimorIndex> retry =
      HimorIndex::Build(m, d, lca, 5, retry_rng, 16, Budget{});
  EXPECT_TRUE(retry.ok());
}

}  // namespace
}  // namespace cod
