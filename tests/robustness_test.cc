// Failure-injection / fuzz-lite robustness tests: every loader must reject
// malformed input with a Status — never crash, never OOM, never return a
// structurally invalid object (Arrow-style "corrupt files are data, not
// bugs" discipline).

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/himor.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/dendrogram_io.h"
#include "hierarchy/lca.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

std::string RandomBytes(Rng& rng, size_t count) {
  std::string bytes(count, '\0');
  for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
  return bytes;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashLoaders) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t size = rng.UniformInt(512);
    const std::string path = TempPath("fuzz.bin");
    WriteBytes(path, RandomBytes(rng, size));
    // Binary loaders: must return a Status (usually InvalidArgument).
    { Result<Dendrogram> r = LoadDendrogram(path); (void)r.ok(); }
    { Result<HimorIndex> r = HimorIndex::Load(path); (void)r.ok(); }
    // Text loaders: random bytes are usually malformed lines.
    { Result<Graph> r = LoadEdgeList(path); (void)r.ok(); }
    { Result<AttributeTable> r = LoadAttributes(path, 16); (void)r.ok(); }
  }
}

TEST_P(FuzzSeedTest, BitFlippedDendrogramsNeverCrash) {
  Rng rng(GetParam() + 100);
  const Graph g = EnsureConnected(ErdosRenyi(30, 90, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const std::string path = TempPath("valid_dendrogram.bin");
  ASSERT_TRUE(SaveDendrogram(d, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = bytes;
    // Flip a few random bytes (past the magic so some headers survive).
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] ^=
          static_cast<char>(1 + rng.UniformInt(255));
    }
    const std::string mpath = TempPath("mutated_dendrogram.bin");
    WriteBytes(mpath, mutated);
    Result<Dendrogram> r = LoadDendrogram(mpath);
    if (r.ok()) {
      // If it loaded, it must be structurally sound.
      EXPECT_EQ(r->LeafCount(r->Root()), r->NumLeaves());
    }
  }
}

TEST_P(FuzzSeedTest, BitFlippedHimorNeverCrashes) {
  Rng rng(GetParam() + 200);
  const Graph g = EnsureConnected(ErdosRenyi(30, 90, rng), rng);
  const Dendrogram d = AgglomerativeCluster(g);
  const LcaIndex lca(d);
  const DiffusionModel m = DiffusionModel::WeightedCascadeIc(g);
  const HimorIndex index = HimorIndex::Build(m, d, lca, 5, rng);
  const std::string path = TempPath("valid_himor.bin");
  ASSERT_TRUE(index.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (int trial = 0; trial < 30; ++trial) {
    std::string mutated = bytes;
    mutated[rng.UniformInt(mutated.size())] ^=
        static_cast<char>(1 + rng.UniformInt(255));
    // Also try random truncation.
    if (rng.Bernoulli(0.5)) {
      mutated.resize(rng.UniformInt(mutated.size() + 1));
    }
    const std::string mpath = TempPath("mutated_himor.bin");
    WriteBytes(mpath, mutated);
    Result<HimorIndex> r = HimorIndex::Load(mpath);
    if (r.ok()) {
      EXPECT_GE(r->max_rank(), 1u);
    }
  }
}

TEST_P(FuzzSeedTest, GarbledTextEdgesNeverCrash) {
  Rng rng(GetParam() + 300);
  const char* fragments[] = {"0 1",    "abc",     "1 2 3.5", "-5 2",
                             "# x",    "",        "7",       "1 999999999",
                             "2 3 xx", "\t  \t", "0 0",     "18446744073709551615 1"};
  for (int trial = 0; trial < 30; ++trial) {
    std::string content;
    const int lines = static_cast<int>(rng.UniformInt(12));
    for (int l = 0; l < lines; ++l) {
      content += fragments[rng.UniformInt(std::size(fragments))];
      content += "\n";
    }
    const std::string path = TempPath("garbled.edges");
    WriteBytes(path, content);
    Result<Graph> r = LoadEdgeList(path);
    if (r.ok()) {
      // Loaded graphs must be self-consistent.
      for (EdgeId e = 0; e < r->NumEdges(); ++e) {
        const auto [u, v] = r->Endpoints(e);
        EXPECT_LT(u, r->NumNodes());
        EXPECT_LT(v, r->NumNodes());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cod
