// Unit tests for the deadline/cancellation primitives (common/deadline.h)
// and the failpoint registry (common/failpoint.h).

#include "common/deadline.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/task_scheduler.h"

namespace cod {
namespace {

TEST(DeadlineTest, DefaultAndInfiniteNeverExpire) {
  EXPECT_TRUE(Deadline().infinite());
  EXPECT_FALSE(Deadline().Expired());
  EXPECT_TRUE(Deadline::Infinite().infinite());
  EXPECT_FALSE(Deadline::Infinite().Expired());
  EXPECT_EQ(Deadline::Infinite().RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  // Huge budgets are treated as infinite (no clock arithmetic overflow).
  EXPECT_TRUE(Deadline::After(1e12).infinite());
}

TEST(DeadlineTest, NonPositiveAndSubNanosecondBudgetsExpireImmediately) {
  // The determinism workhorse: these are expired at the very FIRST check,
  // independent of timing, load, or thread count.
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-1.0).Expired());
  EXPECT_TRUE(Deadline::After(1e-12).Expired());  // truncates to "now"
}

TEST(DeadlineTest, GenerousBudgetIsNotExpiredYet) {
  const Deadline d = Deadline::After(3600.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 3000.0);
  EXPECT_LE(d.RemainingSeconds(), 3600.0);
}

TEST(DeadlineTest, EarliestPicksTheSoonerDeadline) {
  const Deadline never = Deadline::Infinite();
  const Deadline now = Deadline::After(0.0);
  EXPECT_TRUE(Deadline::Earliest(never, now).Expired());
  EXPECT_TRUE(Deadline::Earliest(now, never).Expired());
  EXPECT_FALSE(Deadline::Earliest(never, never).Expired());
  const Deadline soon = Deadline::After(10.0);
  const Deadline late = Deadline::After(1000.0);
  EXPECT_LT(Deadline::Earliest(soon, late).RemainingSeconds(), 100.0);
}

TEST(CancelTokenTest, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  token.Reset();
  EXPECT_FALSE(token.Cancelled());
}

TEST(BudgetTest, DefaultBudgetIsUnlimited) {
  const Budget budget;
  EXPECT_FALSE(budget.Exhausted());
  EXPECT_EQ(budget.ExhaustedCode(), StatusCode::kOk);
  EXPECT_TRUE(budget.Check("work").ok());
}

TEST(BudgetTest, ExpiredDeadlineReportsTimeout) {
  const Budget budget{Deadline::After(0.0)};
  EXPECT_EQ(budget.ExhaustedCode(), StatusCode::kTimeout);
  const Status status = budget.Check("HIMOR build");
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_NE(status.message().find("HIMOR build"), std::string::npos);
}

TEST(BudgetTest, CancellationBeatsTimeout) {
  CancelToken token;
  token.Cancel();
  // Both the deadline and the token have tripped; the explicit cancel wins.
  const Budget budget{Deadline::After(0.0), &token};
  EXPECT_EQ(budget.ExhaustedCode(), StatusCode::kCancelled);
  EXPECT_EQ(budget.Check("query").code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_EQ(budget.ExhaustedCode(), StatusCode::kTimeout);
}

TEST(FailpointTest, CountedArmFiresExactlyThatManyTimes) {
  Failpoints::Instance().Arm("test/counted", 2);
  EXPECT_TRUE(COD_FAILPOINT("test/counted"));
  EXPECT_TRUE(COD_FAILPOINT("test/counted"));
  EXPECT_FALSE(COD_FAILPOINT("test/counted"));  // exhausted
  EXPECT_EQ(Failpoints::Instance().TriggerCount("test/counted"), 2u);
  Failpoints::Instance().Disarm("test/counted");
}

TEST(FailpointTest, NegativeCountFiresUntilDisarmed) {
  Failpoints::Instance().Arm("test/always", -1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(COD_FAILPOINT("test/always"));
  Failpoints::Instance().Disarm("test/always");
  EXPECT_FALSE(COD_FAILPOINT("test/always"));
  // TriggerCount survives Disarm (diagnostic), resets with DisarmAll.
  EXPECT_EQ(Failpoints::Instance().TriggerCount("test/always"), 5u);
  Failpoints::Instance().DisarmAll();
  EXPECT_EQ(Failpoints::Instance().TriggerCount("test/always"), 0u);
}

TEST(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(COD_FAILPOINT("test/never-armed"));
  EXPECT_EQ(Failpoints::Instance().TriggerCount("test/never-armed"), 0u);
}

TEST(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    ScopedFailpoint fp("test/scoped", /*count=*/-1);
    EXPECT_TRUE(COD_FAILPOINT("test/scoped"));
  }
  EXPECT_FALSE(COD_FAILPOINT("test/scoped"));
  Failpoints::Instance().DisarmAll();
}

TEST(FailpointTest, RearmReplacesRemainingCount) {
  Failpoints::Instance().Arm("test/rearm", 100);
  Failpoints::Instance().Arm("test/rearm", 1);
  EXPECT_TRUE(COD_FAILPOINT("test/rearm"));
  EXPECT_FALSE(COD_FAILPOINT("test/rearm"));
  Failpoints::Instance().DisarmAll();
}

TEST(FailpointTest, ConcurrentHammeringConsumesExactlyTheArmedCount) {
  constexpr int kArmed = 64;
  constexpr int kThreads = 8;
  constexpr int kPassesPerThread = 1000;
  Failpoints::Instance().Arm("test/concurrent", kArmed);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < kPassesPerThread; ++i) {
        if (COD_FAILPOINT("test/concurrent")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), kArmed);
  EXPECT_EQ(Failpoints::Instance().TriggerCount("test/concurrent"),
            static_cast<uint64_t>(kArmed));
  Failpoints::Instance().DisarmAll();
}

TEST(TaskSchedulerMembershipTest, IsWorkerThreadDistinguishesSchedulers) {
  TaskScheduler sched(2);
  TaskScheduler other(1);
  EXPECT_FALSE(sched.IsWorkerThread());  // the main thread is nobody's worker
  bool seen_in_sched = false;
  bool seen_in_other = false;
  TaskGroup group(sched);
  sched.Submit(TaskPriority::kInteractive, group, [&] {
    seen_in_sched = sched.IsWorkerThread();
    seen_in_other = other.IsWorkerThread();
  });
  group.Wait();
  EXPECT_TRUE(seen_in_sched);
  EXPECT_FALSE(seen_in_other);
}

}  // namespace
}  // namespace cod
