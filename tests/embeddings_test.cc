#include "graph/embeddings.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/cod_engine.h"
#include "core/global_recluster.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

TEST(EmbeddingTableTest, ShapeAndAccess) {
  const EmbeddingTable t(3, 2, {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, 1.0f});
  EXPECT_EQ(t.NumNodes(), 3u);
  EXPECT_EQ(t.Dimension(), 2u);
  EXPECT_FLOAT_EQ(t.Of(2)[0], 1.0f);
  EXPECT_FLOAT_EQ(t.Of(1)[1], 1.0f);
}

TEST(EmbeddingTableTest, CosineHandComputed) {
  const EmbeddingTable t(4, 2,
                         {1.0f, 0.0f,    // e0
                          0.0f, 1.0f,    // e1: orthogonal to e0
                          2.0f, 0.0f,    // e2: parallel to e0
                          0.0f, 0.0f});  // e3: zero vector
  EXPECT_DOUBLE_EQ(t.Cosine(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.Cosine(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(t.Cosine(0, 3), 0.0);  // zero vector convention
  EXPECT_NEAR(t.Cosine(1, 2), 0.0, 1e-12);
}

TEST(EmbeddingTableTest, CosineNegativeForOpposedVectors) {
  const EmbeddingTable t(2, 2, {1.0f, 0.5f, -1.0f, -0.5f});
  EXPECT_NEAR(t.Cosine(0, 1), -1.0, 1e-6);
}

TEST(BlockEmbeddingsTest, SameBlockMoreSimilarThanCrossBlock) {
  Rng rng(1);
  std::vector<uint32_t> block(400);
  for (NodeId v = 0; v < 400; ++v) block[v] = v / 100;
  const EmbeddingTable t = MakeBlockEmbeddings(block, 16, 0.3, rng);
  EXPECT_EQ(t.NumNodes(), 400u);
  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(400));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(400));
    if (u == v) continue;
    if (block[u] == block[v]) {
      same += t.Cosine(u, v);
      ++same_n;
    } else {
      cross += t.Cosine(u, v);
      ++cross_n;
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n + 0.3);
}

TEST(BlockEmbeddingsTest, ZeroNoiseGivesIdenticalRows) {
  Rng rng(2);
  std::vector<uint32_t> block = {0, 0, 1, 1};
  const EmbeddingTable t = MakeBlockEmbeddings(block, 8, 0.0, rng);
  EXPECT_NEAR(t.Cosine(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(t.Cosine(2, 3), 1.0, 1e-6);
  EXPECT_LT(t.Cosine(0, 2), 0.999);
}

TEST(EmbeddingTransformTest, BoostsSimilarEndpoints) {
  // Path 0-1-2 with embeddings: 0 and 1 aligned, 2 orthogonal.
  const Graph g = testing::MakePath(3);
  const EmbeddingTable t(3, 2, {1.0f, 0.0f, 1.0f, 0.0f, 0.0f, 1.0f});
  AttributeTableBuilder ab;
  const AttributeTable attrs = std::move(ab).Build(3);
  TransformOptions options;
  options.transform = AttributeTransform::kEmbeddingCosine;
  options.beta = 3.0;
  options.embeddings = &t;
  const Graph w =
      BuildAttributeWeightedGraph(g, attrs, kInvalidAttribute, options);
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(0, 1)), 4.0);  // cos = 1
  EXPECT_DOUBLE_EQ(w.Weight(w.FindEdge(1, 2)), 1.0);  // cos = 0
}

TEST(EmbeddingTransformTest, NegativeCosineNeverPenalizesBelowBase) {
  GraphBuilder gb(2);
  gb.AddEdge(0, 1);
  const Graph g = std::move(gb).Build();
  const EmbeddingTable t(2, 2, {1.0f, 0.0f, -1.0f, 0.0f});
  AttributeTableBuilder ab;
  const AttributeTable attrs = std::move(ab).Build(2);
  TransformOptions options;
  options.transform = AttributeTransform::kEmbeddingCosine;
  options.beta = 5.0;
  options.embeddings = &t;
  const Graph w =
      BuildAttributeWeightedGraph(g, attrs, kInvalidAttribute, options);
  EXPECT_DOUBLE_EQ(w.Weight(0), 1.0);  // clamped at base
}

TEST(EmbeddingTransformTest, EngineEndToEnd) {
  Rng rng(3);
  HppParams params;
  params.num_nodes = 300;
  params.num_edges = 1200;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  const AttributeTable attrs =
      AssignCorrelatedAttributes(gen.block, 4, 0.8, 0.1, rng);
  const EmbeddingTable embeddings =
      MakeBlockEmbeddings(gen.block, 16, 0.3, rng);

  EngineOptions options;
  options.transform.transform = AttributeTransform::kEmbeddingCosine;
  options.transform.embeddings = &embeddings;
  CodEngine engine(gen.graph, attrs, options);
  Rng query_rng(4);
  engine.BuildHimor(query_rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = query_rng;
  int found = 0;
  for (NodeId q = 0; q < 15; ++q) {
    const auto own = attrs.AttributesOf(q);
    if (own.empty()) continue;
    const CodResult r = engine.QueryCodL(q, own[0], 5, ws);
    found += r.found;
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace cod
