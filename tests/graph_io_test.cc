#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  const Graph g = cod::testing::MakeTwoCliquesWithBridge(4);
  const std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    EXPECT_NE(loaded->FindEdge(u, v), kInvalidEdge);
  }
}

TEST(GraphIoTest, WeightedRoundTrip) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(1, 2, 1.5);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("weighted.edges");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Weight(loaded->FindEdge(0, 1)), 2.5);
}

TEST(GraphIoTest, IgnoresCommentsAndBlankLines) {
  const std::string path = TempPath("comments.edges");
  WriteFile(path, "# header\n\n0 1\n  \n1 2\n# trailing\n");
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), 2u);
}

TEST(GraphIoTest, MissingFileIsIoError) {
  Result<Graph> r = LoadEdgeList("/nonexistent/really/not/here.edges");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.edges");
  WriteFile(path, "0 1\nnot numbers\n");
  Result<Graph> r = LoadEdgeList(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, AttributesRoundTrip) {
  AttributeTableBuilder b;
  b.Add(0, "DB");
  b.Add(0, "IR");
  b.Add(3, "ML");
  const AttributeTable table = std::move(b).Build(4);
  const std::string path = TempPath("attrs.txt");
  ASSERT_TRUE(SaveAttributes(table, path).ok());
  Result<AttributeTable> loaded = LoadAttributes(path, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumAttributes(), 3u);
  EXPECT_TRUE(loaded->Has(0, loaded->Find("DB")));
  EXPECT_TRUE(loaded->Has(0, loaded->Find("IR")));
  EXPECT_TRUE(loaded->Has(3, loaded->Find("ML")));
  EXPECT_TRUE(loaded->AttributesOf(1).empty());
}

TEST(GraphIoTest, AttributeNodeOutOfRangeRejected) {
  const std::string path = TempPath("attrs_oob.txt");
  WriteFile(path, "9 DB\n");
  Result<AttributeTable> r = LoadAttributes(path, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cod
