#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  const Graph g = cod::testing::MakeTwoCliquesWithBridge(4);
  const std::string path = TempPath("roundtrip.edges");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    EXPECT_NE(loaded->FindEdge(u, v), kInvalidEdge);
  }
}

TEST(GraphIoTest, WeightedRoundTrip) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(1, 2, 1.5);
  const Graph g = std::move(b).Build();
  const std::string path = TempPath("weighted.edges");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Weight(loaded->FindEdge(0, 1)), 2.5);
}

TEST(GraphIoTest, IgnoresCommentsAndBlankLines) {
  const std::string path = TempPath("comments.edges");
  WriteFile(path, "# header\n\n0 1\n  \n1 2\n# trailing\n");
  Result<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), 2u);
}

TEST(GraphIoTest, MissingFileIsIoError) {
  Result<Graph> r = LoadEdgeList("/nonexistent/really/not/here.edges");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.edges");
  WriteFile(path, "0 1\nnot numbers\n");
  Result<Graph> r = LoadEdgeList(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, AttributesRoundTrip) {
  AttributeTableBuilder b;
  b.Add(0, "DB");
  b.Add(0, "IR");
  b.Add(3, "ML");
  const AttributeTable table = std::move(b).Build(4);
  const std::string path = TempPath("attrs.txt");
  ASSERT_TRUE(SaveAttributes(table, path).ok());
  Result<AttributeTable> loaded = LoadAttributes(path, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumAttributes(), 3u);
  EXPECT_TRUE(loaded->Has(0, loaded->Find("DB")));
  EXPECT_TRUE(loaded->Has(0, loaded->Find("IR")));
  EXPECT_TRUE(loaded->Has(3, loaded->Find("ML")));
  EXPECT_TRUE(loaded->AttributesOf(1).empty());
}

TEST(GraphIoTest, AttributeNodeOutOfRangeRejected) {
  const std::string path = TempPath("attrs_oob.txt");
  WriteFile(path, "9 DB\n");
  Result<AttributeTable> r = LoadAttributes(path, 4);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Binary serialization (the snapshot section format). These buffer-level
// codecs carry no CRC — the snapshot container checksums each section — so
// a damaged buffer may legally decode IF the damage happens to preserve
// every structural invariant (canonical edge order, sorted attributes,
// in-range ids). The property tested here is the decoder's hostile-input
// contract: clean Status or valid object, never a crash or overflow. CI
// runs this under ASan/UBSan.
// ---------------------------------------------------------------------------

TEST(GraphIoTest, BinaryGraphRoundTrip) {
  const Graph g = cod::testing::MakeTwoCliquesWithBridge(5);
  BinaryBufferWriter out;
  SerializeGraph(g, out);
  BinarySpanReader in(out.bytes(), "graph");
  Result<Graph> loaded = DeserializeGraph(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(in.exhausted());
  ASSERT_EQ(loaded->NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded->NumEdges(), g.NumEdges());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(loaded->Endpoints(e), g.Endpoints(e));
    EXPECT_EQ(loaded->Weight(e), g.Weight(e));
  }
  // A second serialization of the decoded graph is bit-identical — the
  // canonical edge order survives the round trip (the warm-restart
  // determinism guarantee rests on this).
  BinaryBufferWriter again;
  SerializeGraph(*loaded, again);
  EXPECT_EQ(again.bytes(), out.bytes());
}

TEST(GraphIoTest, BinaryAttributesRoundTrip) {
  AttributeTableBuilder b;
  b.Add(0, "DB");
  b.Add(0, "IR");
  b.Add(3, "ML");
  const AttributeTable table = std::move(b).Build(4);
  BinaryBufferWriter out;
  SerializeAttributes(table, out);
  BinarySpanReader in(out.bytes(), "attrs");
  Result<AttributeTable> loaded = DeserializeAttributes(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(loaded->NumAttributes(), table.NumAttributes());
  // Attribute ids are stable across the round trip, not just names.
  EXPECT_EQ(loaded->Find("DB"), table.Find("DB"));
  EXPECT_EQ(loaded->Find("ML"), table.Find("ML"));
  EXPECT_TRUE(loaded->Has(0, loaded->Find("IR")));
  EXPECT_TRUE(loaded->AttributesOf(2).empty());
  BinaryBufferWriter again;
  SerializeAttributes(*loaded, again);
  EXPECT_EQ(again.bytes(), out.bytes());
}

TEST(GraphIoTest, BinaryGraphSurvivesHostileBytes) {
  Graph g = cod::testing::MakeTwoCliquesWithBridge(6);
  BinaryBufferWriter out;
  SerializeGraph(g, out);
  const std::string pristine = out.bytes();
  // Single-byte flips at every offset: decode must either fail cleanly or
  // produce a structurally valid graph (ASan/UBSan guard the "no crash").
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x20);
    BinarySpanReader in(damaged, "flip");
    Result<Graph> r = DeserializeGraph(in);
    if (r.ok()) {
      EXPECT_LE(r->NumEdges(), g.NumEdges() + 1) << "offset " << off;
    } else {
      EXPECT_FALSE(r.status().message().empty()) << "offset " << off;
    }
  }
  // Truncations must always fail: every vector is length-prefixed, so a
  // short buffer can never satisfy the decode.
  for (size_t len = 0; len < pristine.size(); ++len) {
    BinarySpanReader in(std::string_view(pristine).substr(0, len), "cut");
    EXPECT_FALSE(DeserializeGraph(in).ok()) << "truncation to " << len;
  }
}

TEST(GraphIoTest, BinaryAttributesSurviveHostileBytes) {
  AttributeTableBuilder b;
  for (NodeId v = 0; v < 8; ++v) {
    b.Add(v, "attr_" + std::to_string(v % 3));
  }
  const AttributeTable table = std::move(b).Build(8);
  BinaryBufferWriter out;
  SerializeAttributes(table, out);
  const std::string pristine = out.bytes();
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string damaged = pristine;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x11);
    BinarySpanReader in(damaged, "flip");
    Result<AttributeTable> r = DeserializeAttributes(in);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty()) << "offset " << off;
    }
  }
  for (size_t len = 0; len < pristine.size(); ++len) {
    BinarySpanReader in(std::string_view(pristine).substr(0, len), "cut");
    EXPECT_FALSE(DeserializeAttributes(in).ok()) << "truncation to " << len;
  }
}

}  // namespace
}  // namespace cod
