// MetricsRegistry unit tests: handle stability, sharded-cell merging under
// concurrent writers, Prometheus exposition format, JSON dump shape, and the
// runtime off switch.
//
// The registry is process-global, so every test uses metric names under a
// test-only prefix and asserts on substrings of the exposition rather than
// whole-document golden text (other test binaries' suites would not
// interfere, but tests within this binary share the registry).

#include "common/metrics.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cod {
namespace {

TEST(MetricsRegistryTest, CounterHandlesAreStableAndShared) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* a = reg.GetCounter("t_handle_total");
  Counter* b = reg.GetCounter("t_handle_total");
  EXPECT_EQ(a, b);  // find-or-create returns the same object
  EXPECT_EQ(a->name(), "t_handle_total");

  reg.ResetForTest();
  a->Increment();
  a->Increment(41);
  EXPECT_EQ(b->Value(), 42u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsMergeExactly) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("t_concurrent_total");
  Histogram* h = reg.GetHistogram("t_concurrent_seconds");
  reg.ResetForTest();

  // More threads than shards, so shard rows are provably shared and merged.
  constexpr int kThreads = 24;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(0.001);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_NEAR(h->Sum(), kThreads * kPerThread * 0.001, 1e-6);
}

TEST(MetricsRegistryTest, HistogramBucketsFollowUpperBoundSemantics) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  const double bounds[] = {0.1, 1.0, 10.0};
  Histogram* h = reg.GetHistogram("t_buckets_seconds", bounds);
  reg.ResetForTest();

  h->Observe(0.05);  // <= 0.1
  h->Observe(0.1);   // le is inclusive: still the 0.1 bucket
  h->Observe(0.5);   // <= 1
  h->Observe(50.0);  // +Inf
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricsRegistryTest, HistogramOptionsSetBucketsAtFirstRegistration) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  HistogramOptions options;
  options.bounds = {0.5, 5.0};
  Histogram* h = reg.GetHistogram("t_options_seconds", options);
  reg.ResetForTest();

  h->Observe(0.4);
  h->Observe(2.0);
  h->Observe(50.0);
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);  // two bounds + +Inf
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);

  // First registration wins: a later caller with different options gets the
  // same histogram back, buckets unchanged.
  HistogramOptions other;
  other.bounds = {1e-9};
  EXPECT_EQ(reg.GetHistogram("t_options_seconds", other), h);
  EXPECT_EQ(h->BucketCounts().size(), 3u);
}

TEST(MetricsRegistryTest, ExponentialHistogramOptionsAreGeometric) {
  const HistogramOptions options =
      HistogramOptions::Exponential(/*start=*/1e-3, /*factor=*/10.0,
                                    /*count=*/4);
  ASSERT_EQ(options.bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(options.bounds[0], 1e-3);
  EXPECT_DOUBLE_EQ(options.bounds[1], 1e-2);
  EXPECT_DOUBLE_EQ(options.bounds[2], 1e-1);
  EXPECT_DOUBLE_EQ(options.bounds[3], 1.0);
  // Bounds must be usable as histogram bounds directly (strictly
  // increasing), including for non-integer factors.
  const HistogramOptions fine = HistogramOptions::Exponential(1e-5, 3.16, 16);
  ASSERT_EQ(fine.bounds.size(), 16u);
  for (size_t i = 1; i < fine.bounds.size(); ++i) {
    EXPECT_GT(fine.bounds[i], fine.bounds[i - 1]);
  }
}

TEST(MetricsRegistryTest, ExpositionTextIsPrometheusShaped) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("t_expo_total{variant=\"codl\"}");
  Gauge* g = reg.GetGauge("t_expo_epoch");
  const double bounds[] = {0.25, 2.5};
  Histogram* h = reg.GetHistogram("t_expo_seconds{variant=\"codl\"}", bounds);
  reg.ResetForTest();

  c->Increment(3);
  g->Set(7);
  h->Observe(0.1);
  h->Observe(0.1);
  h->Observe(1.0);
  h->Observe(100.0);

  const std::string text = reg.ExpositionText();
  // TYPE lines carry the base name (labels stripped), once per family.
  EXPECT_NE(text.find("# TYPE t_expo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_epoch gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_seconds histogram\n"),
            std::string::npos);
  // Samples keep the caller's labels.
  EXPECT_NE(text.find("t_expo_total{variant=\"codl\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_expo_epoch 7\n"), std::string::npos);
  // Histogram buckets are cumulative, with "le" spliced into the labels and
  // an explicit +Inf bucket; _sum/_count close the family.
  EXPECT_NE(
      text.find("t_expo_seconds_bucket{variant=\"codl\",le=\"0.25\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("t_expo_seconds_bucket{variant=\"codl\",le=\"2.5\"} 3\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("t_expo_seconds_bucket{variant=\"codl\",le=\"+Inf\"} 4\n"),
      std::string::npos);
  EXPECT_NE(text.find("t_expo_seconds_sum{variant=\"codl\"} 101.2\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_expo_seconds_count{variant=\"codl\"} 4\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonDumpHoldsAllThreeFamilies) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("t_json_total");
  Gauge* g = reg.GetGauge("t_json_gauge");
  const double bounds[] = {1.0};
  Histogram* h = reg.GetHistogram("t_json_seconds", bounds);
  reg.ResetForTest();
  c->Increment(5);
  g->Set(2.5);
  h->Observe(0.5);

  const std::string json = reg.JsonDump();
  EXPECT_NE(json.find("\"t_json_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"t_json_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find(
                "\"t_json_seconds\":{\"count\":1,\"sum\":0.5,\"bounds\":[1],"
                "\"counts\":[1,0]}"),
            std::string::npos);
}

TEST(MetricsRegistryTest, CallbackGaugeEvaluatesAtScrapeAndUnregisters) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  std::atomic<double> depth{3.0};
  {
    ScopedCallbackGauge gauge("t_callback_depth",
                              [&] { return depth.load(); });
    EXPECT_NE(reg.ExpositionText().find("t_callback_depth 3\n"),
              std::string::npos);
    depth.store(9.0);  // re-evaluated at every scrape, not at registration
    EXPECT_NE(reg.ExpositionText().find("t_callback_depth 9\n"),
              std::string::npos);
  }
  // RAII unregistration: the sample is gone after the owner dies.
  EXPECT_EQ(reg.ExpositionText().find("t_callback_depth"), std::string::npos);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsEventsButScrapesFine) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("t_disabled_total");
  Gauge* g = reg.GetGauge("t_disabled_gauge");
  Histogram* h = reg.GetHistogram("t_disabled_seconds");
  reg.ResetForTest();

  c->Increment(2);
  reg.SetEnabled(false);
  c->Increment(100);
  g->Set(100);
  h->Observe(1.0);
  // Scrapes keep working while disabled; values are frozen.
  EXPECT_EQ(c->Value(), 2u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_NE(reg.ExpositionText().find("t_disabled_total 2\n"),
            std::string::npos);

  reg.SetEnabled(true);
  c->Increment();
  EXPECT_EQ(c->Value(), 3u);
}

TEST(MetricsRegistryTest, ScopedTimerObservesOnDestruction) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Histogram* h = reg.GetHistogram("t_timer_seconds");
  reg.ResetForTest();
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->Count(), 1u);
  {
    ScopedTimer no_sink(nullptr);  // null histogram records nothing
  }
  EXPECT_EQ(h->Count(), 1u);
}

}  // namespace
}  // namespace cod
