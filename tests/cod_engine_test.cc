#include "core/cod_engine.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace cod {
namespace {

// A small planted-partition world shared by the engine tests.
struct World {
  Graph graph;
  AttributeTable attrs;
  std::vector<uint32_t> block;
};

World MakeWorld(uint64_t seed, size_t n = 300) {
  Rng rng(seed);
  HppParams params;
  params.num_nodes = n;
  params.num_edges = 4 * n;
  params.levels = 2;
  params.fanout = 3;
  GeneratedGraph gen = HierarchicalPlantedPartition(params, rng);
  World w;
  w.attrs = AssignCorrelatedAttributes(gen.block, 5, 0.8, 0.1, rng);
  w.block = std::move(gen.block);
  w.graph = std::move(gen.graph);
  return w;
}

AttributeId AnyAttributeOf(const AttributeTable& attrs, NodeId q) {
  const auto a = attrs.AttributesOf(q);
  return a.empty() ? kInvalidAttribute : a[0];
}

TEST(CodEngineTest, CoduFindsCommunityContainingQuery) {
  const World w = MakeWorld(1);
  CodEngine engine(w.graph, w.attrs, {});
  QueryWorkspace ws = engine.MakeWorkspace(2);
  int found = 0;
  for (NodeId q = 0; q < 20; ++q) {
    const CodResult r = engine.QueryCodU(q, 5, ws);
    if (!r.found) continue;
    ++found;
    EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q) !=
                r.members.end());
    EXPECT_LT(r.rank, 5u);
    EXPECT_GE(r.num_levels, 1u);
  }
  EXPECT_GT(found, 0);
}

TEST(CodEngineTest, ResultSizeGrowsWithK) {
  const World w = MakeWorld(3);
  CodEngine engine(w.graph, w.attrs, {});
  // Average over queries: |C*| with k=5 >= |C*| with k=1 (monotonicity the
  // paper reports in Fig. 7); per-query sampling noise is averaged out by
  // using the same rng stream lengths.
  double size_k1 = 0.0;
  double size_k5 = 0.0;
  QueryWorkspace ws = engine.MakeWorkspace(0);
  for (NodeId q = 0; q < 30; ++q) {
    ws.ReseedRng(100 + q);
    size_k1 += engine.QueryCodU(q, 1, ws).members.size();
    ws.ReseedRng(100 + q);
    size_k5 += engine.QueryCodU(q, 5, ws).members.size();
  }
  EXPECT_GE(size_k5, size_k1);
}

TEST(CodEngineTest, CodrUsesAttributeAwareHierarchy) {
  const World w = MakeWorld(4);
  CodEngine engine(w.graph, w.attrs, {});
  QueryWorkspace ws = engine.MakeWorkspace(5);
  const NodeId q = 7;
  const AttributeId attr = AnyAttributeOf(w.attrs, q);
  ASSERT_NE(attr, kInvalidAttribute);
  const CodResult r = engine.QueryCodR(q, attr, 5, ws);
  if (r.found) {
    EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q) !=
                r.members.end());
  }
}

TEST(CodEngineTest, CodrCacheGivesSameResult) {
  const World w = MakeWorld(6);
  EngineOptions cached_opts;
  cached_opts.cache_codr_hierarchies = true;
  CodEngine cached(w.graph, w.attrs, cached_opts);
  CodEngine uncached(w.graph, w.attrs, {});
  const NodeId q = 11;
  const AttributeId attr = AnyAttributeOf(w.attrs, q);
  QueryWorkspace ws_cached = cached.MakeWorkspace(7);
  QueryWorkspace ws_uncached = uncached.MakeWorkspace(7);
  const CodResult a = cached.QueryCodR(q, attr, 5, ws_cached);
  const CodResult b = uncached.QueryCodR(q, attr, 5, ws_uncached);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.members, b.members);
  // Second cached query hits the cache and must be identical again.
  ws_cached.ReseedRng(7);
  const CodResult c = cached.QueryCodR(q, attr, 5, ws_cached);
  EXPECT_TRUE(c.stats.codr_cache_hit);
  EXPECT_EQ(a.members, c.members);
}

TEST(CodEngineTest, CodlChainSplicesLocalAndGlobal) {
  const World w = MakeWorld(8);
  CodEngine engine(w.graph, w.attrs, {});
  const NodeId q = 13;
  const AttributeId attr = AnyAttributeOf(w.attrs, q);
  const LoreChain lc = engine.BuildCodlChain(q, attr);
  ASSERT_GE(lc.chain.NumLevels(), 1u);
  // The top level is the whole graph.
  EXPECT_EQ(lc.chain.community_size.back(), w.graph.NumNodes());
  // Community sizes are non-decreasing.
  for (size_t h = 1; h < lc.chain.community_size.size(); ++h) {
    EXPECT_GE(lc.chain.community_size[h], lc.chain.community_size[h - 1]);
  }
  // The c_ell boundary level has exactly |C_ell| members.
  EXPECT_EQ(lc.chain.community_size[lc.local_levels - 1],
            engine.base_hierarchy().LeafCount(lc.c_ell));
  // q sits at level 0.
  EXPECT_EQ(lc.chain.level[q], 0u);
}

TEST(CodEngineTest, CodlMinusRuns) {
  const World w = MakeWorld(9);
  CodEngine engine(w.graph, w.attrs, {});
  QueryWorkspace ws = engine.MakeWorkspace(10);
  int found = 0;
  for (NodeId q = 0; q < 15; ++q) {
    const AttributeId attr = AnyAttributeOf(w.attrs, q);
    const CodResult r = engine.QueryCodLMinus(q, attr, 5, ws);
    if (r.found) {
      ++found;
      EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q) !=
                  r.members.end());
    }
  }
  EXPECT_GT(found, 0);
}

TEST(CodEngineTest, CodlRequiresAndUsesHimor) {
  const World w = MakeWorld(11);
  CodEngine engine(w.graph, w.attrs, {});
  Rng rng(12);
  engine.BuildHimor(rng);
  ASSERT_NE(engine.himor(), nullptr);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;  // continue the stream BuildHimor consumed from
  int found = 0;
  int from_index = 0;
  for (NodeId q = 0; q < 25; ++q) {
    const AttributeId attr = AnyAttributeOf(w.attrs, q);
    const CodResult r = engine.QueryCodL(q, attr, 5, ws);
    if (r.found) {
      ++found;
      from_index += r.answered_from_index;
      EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q) !=
                  r.members.end());
    }
  }
  EXPECT_GT(found, 0);
  // Most queries on a well-mixed graph resolve from the index.
  EXPECT_GT(from_index, 0);
}

TEST(CodEngineTest, LtModelEndToEnd) {
  const World w = MakeWorld(13, 200);
  EngineOptions options;
  options.diffusion = DiffusionKind::kLinearThreshold;
  CodEngine engine(w.graph, w.attrs, options);
  Rng rng(14);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  const NodeId q = 3;
  const AttributeId attr = AnyAttributeOf(w.attrs, q);
  const CodResult u = engine.QueryCodU(q, 5, ws);
  const CodResult l = engine.QueryCodL(q, attr, 5, ws);
  // Smoke assertions: queries complete and communities contain q when found.
  if (u.found) {
    EXPECT_TRUE(std::find(u.members.begin(), u.members.end(), q) !=
                u.members.end());
  }
  if (l.found) {
    EXPECT_TRUE(std::find(l.members.begin(), l.members.end(), q) !=
                l.members.end());
  }
}

TEST(CodEngineTest, TopicSetQueriesRun) {
  const World w = MakeWorld(20);
  CodEngine engine(w.graph, w.attrs, {});
  Rng rng(21);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  int found = 0;
  for (NodeId q = 0; q < 15; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    if (own.empty()) continue;
    // Topic set: the node's own attribute plus one other.
    std::vector<AttributeId> topics(own.begin(), own.end());
    topics.push_back((own[0] + 1) % static_cast<AttributeId>(
                                        w.attrs.NumAttributes()));
    const CodResult r = engine.QueryCodL(
        q, std::span<const AttributeId>(topics), 5, ws);
    if (r.found) {
      ++found;
      EXPECT_TRUE(std::find(r.members.begin(), r.members.end(), q) !=
                  r.members.end());
    }
    // Variants accept topic sets too.
    engine.QueryCodLMinus(q, std::span<const AttributeId>(topics), 5, ws);
    engine.QueryCodR(q, std::span<const AttributeId>(topics), 5, ws);
  }
  EXPECT_GT(found, 0);
}

TEST(CodEngineTest, SingletonTopicSetMatchesSingleAttribute) {
  const World w = MakeWorld(22);
  CodEngine engine(w.graph, w.attrs, {});
  Rng rng(23);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  for (NodeId q = 0; q < 10; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    if (own.empty()) continue;
    const AttributeId attr = own[0];
    ws.ReseedRng(100 + q);
    const CodResult a = engine.QueryCodL(q, attr, 5, ws);
    ws.ReseedRng(100 + q);
    const CodResult b = engine.QueryCodL(
        q, std::span<const AttributeId>(&attr, 1), 5, ws);
    EXPECT_EQ(a.found, b.found);
    EXPECT_EQ(a.members, b.members);
  }
}

TEST(CodEngineTest, IndexedCoduIsTopKConsistentWithSampledCodu) {
  const World w = MakeWorld(40);
  EngineOptions options;
  options.theta = 40;  // extra samples tighten agreement
  CodEngine engine(w.graph, w.attrs, options);
  Rng rng(41);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  size_t agree = 0;
  size_t total = 0;
  for (NodeId q = 0; q < 25; ++q) {
    const CodResult indexed = engine.QueryCodUIndexed(q, 5);
    ws.ReseedRng(300 + q);
    const CodResult sampled = engine.QueryCodU(q, 5, ws);
    ++total;
    // Different sample pools: exact equality is not guaranteed, but both
    // must agree on "found" for a clear majority and the indexed community
    // must contain q.
    agree += indexed.found == sampled.found;
    if (indexed.found) {
      EXPECT_TRUE(std::find(indexed.members.begin(), indexed.members.end(),
                            q) != indexed.members.end());
      EXPECT_LT(indexed.rank, 5u);
    }
  }
  EXPECT_GE(agree * 3, total * 2);  // >= 2/3 agreement
}

TEST(CodEngineTest, ExplainCodLMatchesQueryAndNarrates) {
  const World w = MakeWorld(30);
  CodEngine engine(w.graph, w.attrs, {});
  Rng rng(31);
  engine.BuildHimor(rng);
  QueryWorkspace ws = engine.MakeWorkspace(0);
  int explained = 0;
  for (NodeId q = 0; q < 12; ++q) {
    const auto own = w.attrs.AttributesOf(q);
    if (own.empty()) continue;
    ws.ReseedRng(200 + q);
    const CodResult direct = engine.QueryCodL(q, own[0], 5, ws);
    ws.ReseedRng(200 + q);
    const auto explanation = engine.ExplainCodL(q, own[0], 5, ws);
    EXPECT_EQ(explanation.result.found, direct.found);
    EXPECT_EQ(explanation.result.members, direct.members);
    EXPECT_EQ(explanation.c_ell_size,
              engine.base_hierarchy().LeafCount(explanation.scores.Selected()));
    if (explanation.index_hit) {
      EXPECT_TRUE(explanation.result.answered_from_index);
      EXPECT_EQ(explanation.result.members.size(),
                engine.base_hierarchy().LeafCount(
                    explanation.index_community));
    }
    const std::string text =
        explanation.ToString(engine.base_hierarchy());
    EXPECT_NE(text.find("LORE chain"), std::string::npos);
    EXPECT_NE(text.find("C_ell"), std::string::npos);
    EXPECT_NE(text.find("result:"), std::string::npos);
    ++explained;
  }
  EXPECT_GT(explained, 0);
}

TEST(CodEngineTest, FindTopPromotersReturnsVerifiedHolders) {
  const World w = MakeWorld(24);
  CodEngine engine(w.graph, w.attrs, {});
  Rng rng(25);
  engine.BuildHimor(rng);
  const AttributeId attr = 0;
  const auto promoters = engine.FindTopPromoters(attr, 5, 5);
  ASSERT_FALSE(promoters.empty());
  for (size_t i = 0; i < promoters.size(); ++i) {
    EXPECT_TRUE(w.attrs.Has(promoters[i].node, attr));
    EXPECT_LT(promoters[i].rank, 5u);
    EXPECT_EQ(promoters[i].size,
              engine.base_hierarchy().LeafCount(promoters[i].community));
    EXPECT_TRUE(engine.base_hierarchy().Contains(promoters[i].community,
                                                 promoters[i].node));
    if (i > 0) {
      EXPECT_GE(promoters[i - 1].size, promoters[i].size);
    }
  }
}

TEST(CodEngineTest, DeterministicGivenSeeds) {
  const World w = MakeWorld(15);
  CodEngine e1(w.graph, w.attrs, {});
  CodEngine e2(w.graph, w.attrs, {});
  QueryWorkspace ws1 = e1.MakeWorkspace(16);
  QueryWorkspace ws2 = e2.MakeWorkspace(16);
  const NodeId q = 5;
  const CodResult a = e1.QueryCodU(q, 5, ws1);
  const CodResult b = e2.QueryCodU(q, 5, ws2);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.members, b.members);
  EXPECT_EQ(a.rank, b.rank);
}

}  // namespace
}  // namespace cod
