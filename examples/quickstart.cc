// Quickstart: build a small attributed graph, construct a CodEngine, and ask
// for a node's characteristic community — the largest community on the query
// topic in which the node is one of the top-k most influential members.
//
//   $ ./quickstart
//
// The graph is the paper's running example (Fig. 2/Fig. 5): ten researchers,
// fifteen coauthorship edges, and topic attributes DB/IR/ML.

#include <cstdio>

#include "core/cod_engine.h"

int main() {
  // 1. Build the graph (15 undirected edges over 10 nodes).
  cod::GraphBuilder graph_builder(10);
  const std::pair<cod::NodeId, cod::NodeId> edges[] = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3},  // dense group around 0
      {6, 7}, {3, 7}, {2, 6},                  // group {6,7}
      {4, 5}, {2, 4}, {3, 5}, {5, 6},          // group {4,5}
      {8, 9}, {4, 8}, {7, 9},                  // group {8,9}
  };
  for (const auto& [u, v] : edges) graph_builder.AddEdge(u, v);
  const cod::Graph graph = std::move(graph_builder).Build();

  // 2. Attach categorical attributes.
  cod::AttributeTableBuilder attr_builder;
  for (cod::NodeId v : {0, 2, 3, 4, 5, 7}) attr_builder.Add(v, "DB");
  for (cod::NodeId v : {0, 1, 6}) attr_builder.Add(v, "IR");
  for (cod::NodeId v : {8, 9}) attr_builder.Add(v, "ML");
  const cod::AttributeTable attrs = std::move(attr_builder).Build(10);

  // 3. Construct the engine: this clusters the graph into a community
  //    hierarchy and prepares the influence model (weighted-cascade IC).
  cod::EngineOptions options;
  options.k = 1;       // require the query to be the single most influential
  options.theta = 200; // RR graphs per node (tiny graph -> sample generously)
  cod::CodEngine engine(graph, attrs, options);

  // 4. Build the HIMOR index once, then query through a workspace (one
  //    workspace per thread; this example is single-threaded).
  cod::Rng rng(/*seed=*/42);
  engine.BuildHimor(rng);
  cod::QueryWorkspace ws = engine.MakeWorkspace(/*seed=*/42);

  const cod::AttributeId topic = attrs.Find("DB");
  auto show = [&](cod::NodeId query, uint32_t k) {
    const cod::CodResult result = engine.QueryCodL(query, topic, k, ws);
    if (!result.found) {
      std::printf(
          "node %u is not a top-%u influencer in any DB community\n", query,
          k);
      return;
    }
    std::printf("characteristic community of node %u on topic 'DB' (k=%u):\n ",
                query, k);
    for (const cod::NodeId v : result.members) std::printf(" %u", v);
    std::printf("\n  size: %zu   estimated rank of the query: #%u   %s\n",
                result.members.size(), result.rank + 1,
                result.answered_from_index ? "(answered from HIMOR index)"
                                           : "(answered by local evaluation)");
  };

  // The hub (node 2) dominates the whole graph; node 0 only leads smaller
  // groups — loosening k reveals communities at different scales.
  show(/*query=*/2, /*k=*/1);
  show(/*query=*/0, /*k=*/1);
  show(/*query=*/0, /*k=*/2);

  // Compare with the topic-blind variant to see what the attribute adds.
  const cod::CodResult plain = engine.QueryCodU(/*query=*/0, /*k=*/2, ws);
  std::printf("topic-blind characteristic community of node 0 (k=2): %zu "
              "members\n",
              plain.found ? plain.members.size() : 0);
  return 0;
}
