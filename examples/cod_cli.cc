// cod_cli: command-line front end for the whole pipeline — generate or load
// attributed graphs, build and persist HIMOR indices, and answer COD queries.
//
//   cod_cli dataset <registry-name> <out-prefix>
//       writes <out-prefix>.edges and <out-prefix>.attrs
//   cod_cli stats <edges> <attrs>
//   cod_cli index <edges> <attrs> <index-out> [--theta=N] [--seed=S]
//   cod_cli query <edges> <attrs> <node> <attribute-name>
//           [--variant=codl|codl-|codr|codu] [--k=N] [--index=path]
//           [--seed=S] [--explain] [--dot=community.dot]
//   cod_cli promoters <edges> <attrs> <attribute-name> [--k=N] [--count=N]
//   cod_cli serve <edges> <attrs> [--shards=N] [--queries=N] [--threads=N]
//           [--k=N] [--seed=S]
//       builds the serving tier (mono for --shards=1, scatter/gather router
//       over component-scoped shard engines otherwise) and answers a
//       deterministic query batch through the unified CodServiceInterface;
//       the answers are bit-identical for every --shards value.
//
// Example session:
//   cod_cli dataset cora-sim /tmp/cora
//   cod_cli index /tmp/cora.edges /tmp/cora.attrs /tmp/cora.himor
//   cod_cli query /tmp/cora.edges /tmp/cora.attrs 42 label3
//           --index=/tmp/cora.himor --k=5     (one line)
//   cod_cli serve /tmp/cora.edges /tmp/cora.attrs --shards=4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "graph/export.h"
#include "graph/graph_io.h"
#include "serving/service_interface.h"

namespace {

using cod::AttributedGraph;
using cod::CodEngine;
using cod::CodResult;
using cod::CodVariant;
using cod::EngineOptions;
using cod::QuerySpec;
using cod::QueryWorkspace;
using cod::Rng;
using cod::Status;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cod_cli dataset <registry-name> <out-prefix>\n"
      "  cod_cli stats <edges> <attrs>\n"
      "  cod_cli index <edges> <attrs> <index-out> [--theta=N] [--seed=S]\n"
      "  cod_cli query <edges> <attrs> <node> <attribute-name>\n"
      "          [--variant=codl|codl-|codr|codu] [--k=N] [--index=path]\n"
      "          [--seed=S] [--explain] [--dot=out.dot]\n"
      "  cod_cli promoters <edges> <attrs> <attribute-name>\n"
      "          [--k=N] [--count=N] [--index=path]\n"
      "  cod_cli serve <edges> <attrs>\n"
      "          [--shards=N] [--queries=N] [--threads=N] [--k=N] "
      "[--seed=S]\n");
  return 2;
}

// Parses trailing --key=value flags starting at argv[first].
struct CliFlags {
  uint32_t theta = 10;
  uint32_t k = 5;
  uint64_t seed = 1;
  size_t count = 10;
  uint32_t shards = 1;
  size_t queries = 12;
  uint32_t threads = 4;
  std::string variant = "codl";
  std::string index_path;
  std::string dot_path;
  bool explain = false;
  bool ok = true;
};

CliFlags ParseCliFlags(int argc, char** argv, int first) {
  CliFlags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--theta=", 0) == 0) {
      flags.theta = static_cast<uint32_t>(std::strtoul(arg.c_str() + 8,
                                                       nullptr, 10));
    } else if (arg.rfind("--k=", 0) == 0) {
      flags.k = static_cast<uint32_t>(std::strtoul(arg.c_str() + 4, nullptr,
                                                   10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      flags.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--variant=", 0) == 0) {
      flags.variant = arg.substr(10);
    } else if (arg.rfind("--index=", 0) == 0) {
      flags.index_path = arg.substr(8);
    } else if (arg.rfind("--dot=", 0) == 0) {
      flags.dot_path = arg.substr(6);
    } else if (arg.rfind("--count=", 0) == 0) {
      flags.count = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      flags.shards = static_cast<uint32_t>(std::strtoul(arg.c_str() + 9,
                                                        nullptr, 10));
    } else if (arg.rfind("--queries=", 0) == 0) {
      flags.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      flags.threads = static_cast<uint32_t>(std::strtoul(arg.c_str() + 10,
                                                         nullptr, 10));
    } else if (arg == "--explain") {
      flags.explain = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      flags.ok = false;
    }
  }
  return flags;
}

cod::Result<AttributedGraph> LoadPair(const std::string& edges,
                                      const std::string& attrs) {
  cod::Result<cod::Graph> graph = cod::LoadEdgeList(edges);
  if (!graph.ok()) return graph.status();
  cod::Result<cod::AttributeTable> table =
      cod::LoadAttributes(attrs, graph->NumNodes());
  if (!table.ok()) return table.status();
  AttributedGraph data;
  data.graph = std::move(graph).value();
  data.attributes = std::move(table).value();
  return data;
}

int CmdDataset(int argc, char** argv) {
  if (argc < 4) return Usage();
  cod::Result<AttributedGraph> data = cod::MakeDataset(argv[2]);
  if (!data.ok()) return Fail(data.status());
  const std::string prefix = argv[3];
  const Status s1 = cod::SaveEdgeList(data->graph, prefix + ".edges");
  if (!s1.ok()) return Fail(s1);
  const Status s2 = cod::SaveAttributes(data->attributes, prefix + ".attrs");
  if (!s2.ok()) return Fail(s2);
  std::printf("wrote %s.edges (%zu nodes, %zu edges) and %s.attrs (%zu "
              "attributes)\n",
              prefix.c_str(), data->graph.NumNodes(), data->graph.NumEdges(),
              prefix.c_str(), data->attributes.NumAttributes());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 4) return Usage();
  cod::Result<AttributedGraph> data = LoadPair(argv[2], argv[3]);
  if (!data.ok()) return Fail(data.status());
  size_t with_attrs = 0;
  uint32_t max_degree = 0;
  for (cod::NodeId v = 0; v < data->graph.NumNodes(); ++v) {
    with_attrs += !data->attributes.AttributesOf(v).empty();
    max_degree = std::max(max_degree, data->graph.Degree(v));
  }
  std::printf("|V| = %zu\n|E| = %zu\n|A| = %zu\n", data->graph.NumNodes(),
              data->graph.NumEdges(), data->attributes.NumAttributes());
  std::printf("avg degree = %.2f, max degree = %u\n",
              2.0 * data->graph.NumEdges() / data->graph.NumNodes(),
              max_degree);
  std::printf("nodes with attributes: %zu (%.1f%%)\n", with_attrs,
              100.0 * with_attrs / data->graph.NumNodes());
  return 0;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 5) return Usage();
  const CliFlags flags = ParseCliFlags(argc, argv, 5);
  if (!flags.ok) return 2;
  cod::Result<AttributedGraph> data = LoadPair(argv[2], argv[3]);
  if (!data.ok()) return Fail(data.status());
  EngineOptions options;
  options.theta = flags.theta;
  std::printf("clustering %zu nodes and building HIMOR (theta = %u)...\n",
              data->graph.NumNodes(), flags.theta);
  CodEngine engine(data->graph, data->attributes, options);
  Rng rng(flags.seed);
  engine.BuildHimor(rng);
  const Status saved = engine.SaveHimor(argv[4]);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s (%zu entries, %.2f MB)\n", argv[4],
              engine.himor()->NumEntries(),
              engine.himor()->MemoryBytes() / 1e6);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 6) return Usage();
  const CliFlags flags = ParseCliFlags(argc, argv, 6);
  if (!flags.ok) return 2;
  cod::Result<AttributedGraph> data = LoadPair(argv[2], argv[3]);
  if (!data.ok()) return Fail(data.status());
  const cod::NodeId node =
      static_cast<cod::NodeId>(std::strtoul(argv[4], nullptr, 10));
  if (node >= data->graph.NumNodes()) {
    std::fprintf(stderr, "node %u out of range\n", node);
    return 1;
  }
  const cod::AttributeId attr = data->attributes.Find(argv[5]);
  if (attr == cod::kInvalidAttribute) {
    std::fprintf(stderr, "unknown attribute '%s'\n", argv[5]);
    return 1;
  }

  EngineOptions options;
  options.theta = flags.theta;
  CodEngine engine(data->graph, data->attributes, options);
  Rng rng(flags.seed);
  QueryWorkspace ws = engine.MakeWorkspace(flags.seed);

  // Map the variant flag onto the canonical QuerySpec entry point.
  QuerySpec spec;
  spec.node = node;
  spec.k = flags.k;
  if (flags.variant == "codl") {
    spec.variant = CodVariant::kCodL;
  } else if (flags.variant == "codl-") {
    spec.variant = CodVariant::kCodLMinus;
  } else if (flags.variant == "codr") {
    spec.variant = CodVariant::kCodR;
  } else if (flags.variant == "codu") {
    spec.variant = CodVariant::kCodU;
  } else {
    std::fprintf(stderr, "unknown variant '%s'\n", flags.variant.c_str());
    return 2;
  }
  if (spec.variant != CodVariant::kCodU) spec.attrs = {attr};

  CodResult result;
  if (spec.variant == CodVariant::kCodL) {
    if (!flags.index_path.empty()) {
      const Status loaded = engine.LoadHimor(flags.index_path);
      if (!loaded.ok()) return Fail(loaded);
    } else {
      std::printf("(no --index given: building HIMOR in memory)\n");
      engine.BuildHimor(rng);
    }
  }
  if (flags.explain && spec.variant == CodVariant::kCodL) {
    const auto explanation = engine.ExplainCodL(node, attr, flags.k, ws);
    std::printf("%s", explanation.ToString(engine.base_hierarchy()).c_str());
    result = explanation.result;
  } else {
    result = engine.Query(spec, ws);
  }

  if (!result.found) {
    std::printf("no characteristic community: node %u is not top-%u "
                "influential at any scale of its %s hierarchy\n",
                node, flags.k, flags.variant.c_str());
    return 0;
  }
  std::printf("characteristic community (%s, k=%u): %zu members, query rank "
              "#%u%s\n",
              flags.variant.c_str(), flags.k, result.members.size(),
              result.rank + 1,
              result.answered_from_index ? " [index hit]" : "");
  std::printf("  topology density %.3f, attribute density %.3f\n",
              cod::TopologyDensity(data->graph, result.members),
              cod::AttributeDensity(data->attributes, attr, result.members));
  std::printf("  members:");
  const size_t preview = std::min<size_t>(result.members.size(), 25);
  for (size_t i = 0; i < preview; ++i) {
    std::printf(" %u", result.members[i]);
  }
  if (preview < result.members.size()) {
    std::printf(" ... (%zu more)", result.members.size() - preview);
  }
  std::printf("\n");
  if (!flags.dot_path.empty()) {
    const Status exported =
        cod::ExportCommunityDot(data->graph, result.members, node,
                                flags.dot_path);
    if (!exported.ok()) return Fail(exported);
    std::printf("wrote %s (render with: neato -Tpng %s -o community.png)\n",
                flags.dot_path.c_str(), flags.dot_path.c_str());
  }
  return 0;
}

int CmdPromoters(int argc, char** argv) {
  if (argc < 5) return Usage();
  const CliFlags flags = ParseCliFlags(argc, argv, 5);
  if (!flags.ok) return 2;
  cod::Result<AttributedGraph> data = LoadPair(argv[2], argv[3]);
  if (!data.ok()) return Fail(data.status());
  const cod::AttributeId attr = data->attributes.Find(argv[4]);
  if (attr == cod::kInvalidAttribute) {
    std::fprintf(stderr, "unknown attribute '%s'\n", argv[4]);
    return 1;
  }
  EngineOptions options;
  options.theta = flags.theta;
  CodEngine engine(data->graph, data->attributes, options);
  if (!flags.index_path.empty()) {
    const Status loaded = engine.LoadHimor(flags.index_path);
    if (!loaded.ok()) return Fail(loaded);
  } else {
    Rng rng(flags.seed);
    engine.BuildHimor(rng);
  }
  const auto promoters =
      engine.FindTopPromoters(attr, flags.count, flags.k);
  if (promoters.empty()) {
    std::printf("no '%s' holder is top-%u anywhere\n", argv[4], flags.k);
    return 0;
  }
  std::printf("top promoters for '%s' (k = %u):\n", argv[4], flags.k);
  for (const auto& p : promoters) {
    std::printf("  node %-8u audience %-7u rank #%u\n", p.node, p.size,
                p.rank + 1);
  }
  return 0;
}

int CmdServe(int argc, char** argv) {
  if (argc < 4) return Usage();
  const CliFlags flags = ParseCliFlags(argc, argv, 4);
  if (!flags.ok) return 2;
  cod::Result<AttributedGraph> data = LoadPair(argv[2], argv[3]);
  if (!data.ok()) return Fail(data.status());

  cod::ServiceOptions options;
  options.engine.theta = flags.theta;
  options.seed = flags.seed;
  options.num_shards = flags.shards;
  const Status valid = options.Validate();
  if (!valid.ok()) return Fail(valid);

  // Deterministic query workload, drawn before the attribute table moves
  // into the service. Same seed -> same specs for every --shards value, so
  // the printed answers are directly comparable across layouts.
  Rng query_rng(flags.seed + 1);
  const std::vector<cod::Query> sampled =
      cod::GenerateQueries(data->attributes, flags.queries, query_rng);
  std::vector<QuerySpec> specs;
  std::vector<std::string> topics;
  for (const cod::Query& q : sampled) {
    QuerySpec spec;
    spec.variant = CodVariant::kCodL;
    spec.node = q.node;
    spec.k = flags.k;
    spec.attrs = {q.attribute};
    specs.push_back(std::move(spec));
    topics.push_back(data->attributes.Name(q.attribute));
  }

  std::printf("building serving tier: %u shard%s, theta = %u...\n",
              flags.shards, flags.shards == 1 ? "" : "s", flags.theta);
  std::unique_ptr<cod::CodServiceInterface> service = cod::MakeCodService(
      std::move(data->graph), std::move(data->attributes), options);

  cod::TaskScheduler scheduler(flags.threads);
  cod::BatchStats stats;
  const std::vector<CodResult> results = service->QueryBatch(
      specs, scheduler, /*batch_seed=*/flags.seed, cod::BatchOptions{},
      &stats);

  for (size_t i = 0; i < results.size(); ++i) {
    const CodResult& r = results[i];
    std::printf("  node %-6u topic %-8s -> %s (%zu members, rank #%u)%s\n",
                specs[i].node, topics[i].c_str(),
                r.found ? "community" : "none", r.members.size(), r.rank + 1,
                r.degraded ? " [degraded]" : "");
  }
  std::printf("batch of %zu: %lu ok, %lu degraded, %lu shard-missed, epoch "
              "%lu%s\n",
              results.size(), static_cast<unsigned long>(stats.served_ok),
              static_cast<unsigned long>(stats.degraded),
              static_cast<unsigned long>(stats.shard_missed),
              static_cast<unsigned long>(service->epoch()),
              service->epoch_degraded() ? " (degraded)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "dataset") return CmdDataset(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "index") return CmdIndex(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "promoters") return CmdPromoters(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  return Usage();
}
