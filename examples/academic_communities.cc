// Scenario: conference invitations (paper Sec. IV intro).
//
// A coauthorship network where every author belongs to a research community
// and carries its venue attribute (the dblp-sim registry dataset uses the
// paper's own synthetic-attribute scheme for DBLP). To organize a workshop
// on some topic, you want to invite the *characteristic community* of each
// candidate chair: the widest group of researchers on the topic in which the
// chair carries real influence — not just any dense subgraph around them.
//
//   $ ./academic_communities [num_candidates]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/atc.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"

int main(int argc, char** argv) {
  const size_t num_candidates = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  std::printf("building coauthorship network (dblp-sim)...\n");
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("dblp-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  cod::CodEngine engine(data->graph, data->attributes, {});
  cod::Rng rng(7);
  std::printf("building HIMOR index (|V|=%zu, |E|=%zu)...\n",
              data->graph.NumNodes(), data->graph.NumEdges());
  engine.BuildHimor(rng);
  cod::QueryWorkspace ws = engine.MakeWorkspace(7);

  cod::Rng query_rng(11);
  const std::vector<cod::Query> candidates =
      cod::GenerateQueries(data->attributes, num_candidates, query_rng);

  for (const cod::Query& candidate : candidates) {
    const std::string& venue = data->attributes.Name(candidate.attribute);
    std::printf("\ncandidate chair: author %u, topic '%s'\n", candidate.node,
                venue.c_str());

    const cod::CodResult community =
        engine.QueryCodL(candidate.node, candidate.attribute,
                         engine.options().k, ws);
    if (!community.found) {
      std::printf("  no characteristic community: this author is not a top-%u"
                  " influencer at any scale\n",
                  engine.options().k);
      continue;
    }
    const double phi = cod::AttributeDensity(
        data->attributes, candidate.attribute, community.members);
    const double rho = cod::TopologyDensity(data->graph, community.members);
    std::printf(
        "  invite list: %zu researchers (%.0f%% on-topic, density %.3f);\n"
        "  the chair ranks #%u by influence inside the group\n",
        community.members.size(), 100.0 * phi, rho, community.rank + 1);

    // Contrast with what plain attributed community search would return.
    const std::vector<cod::NodeId> atc = cod::AtcSearch(
        data->graph, data->attributes, candidate.node, candidate.attribute);
    std::printf("  (ATC community search would return %zu researchers,"
                " influence-blind)\n",
                atc.size());
  }
  return 0;
}
