// Scenario: community-based social marketing (paper Sec. I).
//
// A brand wants community promoters, not broadcast influencers: people who
// are demonstrably among the most influential *within* a large community
// interested in the product topic. For each candidate promoter we discover
// their characteristic community with CODL and score candidates by the
// community's reach; the result is a shortlist with the audience each
// promoter can credibly move.
//
//   $ ./marketing_campaign [num_candidates]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "eval/query_gen.h"
#include "influence/monte_carlo.h"

int main(int argc, char** argv) {
  const size_t num_candidates =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;

  std::printf("building social network (retweet-sim)...\n");
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("retweet-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  cod::CodEngine engine(data->graph, data->attributes, {});
  cod::Rng rng(3);
  std::printf("indexing influence ranks (HIMOR)...\n");
  engine.BuildHimor(rng);
  cod::QueryWorkspace ws = engine.MakeWorkspace(3);

  cod::Rng candidate_rng(5);
  const std::vector<cod::Query> candidates =
      cod::GenerateQueries(data->attributes, num_candidates, candidate_rng);
  cod::MonteCarloSimulator simulator(engine.model());

  struct Shortlisted {
    cod::NodeId promoter;
    cod::AttributeId topic;
    size_t audience;
    uint32_t rank;
    double raw_influence;
  };
  std::vector<Shortlisted> shortlist;

  for (const cod::Query& candidate : candidates) {
    const cod::CodResult community = engine.QueryCodL(
        candidate.node, candidate.attribute, engine.options().k, ws);
    const double influence =
        simulator.EstimateInfluence(candidate.node, 200, rng);
    if (!community.found) {
      std::printf(
          "candidate %-6u topic %-8s  -> rejected (not top-%u anywhere)"
          "  [raw influence %.1f]\n",
          candidate.node, data->attributes.Name(candidate.attribute).c_str(),
          engine.options().k, influence);
      continue;
    }
    std::printf(
        "candidate %-6u topic %-8s  -> audience %-5zu rank #%u"
        "  [raw influence %.1f]\n",
        candidate.node, data->attributes.Name(candidate.attribute).c_str(),
        community.members.size(), community.rank + 1, influence);
    shortlist.push_back({candidate.node, candidate.attribute,
                         community.members.size(), community.rank,
                         influence});
  }

  if (shortlist.empty()) {
    std::printf("\nno candidate qualifies as a community promoter\n");
    return 0;
  }
  std::sort(shortlist.begin(), shortlist.end(),
            [](const Shortlisted& a, const Shortlisted& b) {
              return a.audience > b.audience;
            });
  const Shortlisted& best = shortlist.front();

  // Reverse search: instead of vetting given candidates, ask the index who
  // the best promoters for a topic are in the first place.
  const cod::AttributeId topic0 = data->attributes.Find("label0");
  if (topic0 != cod::kInvalidAttribute) {
    std::printf("\ntop promoters for topic 'label0' (index-wide search):\n");
    for (const auto& promoter :
         engine.FindTopPromoters(topic0, 3, engine.options().k)) {
      std::printf("  node %-6u audience %-5u rank #%u\n", promoter.node,
                  promoter.size, promoter.rank + 1);
    }
  }
  std::printf(
      "\nrecommended promoter: node %u (topic '%s') — credible reach of %zu"
      " community members at influence rank #%u.\n"
      "Note how this differs from picking the largest raw influence: a\n"
      "globally loud account may be top-%u in no community of its topic.\n",
      best.promoter, data->attributes.Name(best.topic).c_str(), best.audience,
      best.rank + 1, engine.options().k);
  return 0;
}
