// COD over a heterogeneous information network (the paper's future-work
// direction, Sec. VI), via meta-path projection:
//
//   1. synthesize a bibliographic HIN (authors - papers - venues);
//   2. project the Author-Paper-Author meta-path into a weighted
//      co-authorship graph (edge weight = number of co-authored papers);
//   3. attach each author's publication venues as attributes;
//   4. ask for an author's characteristic community on a venue topic with
//      the ordinary CodEngine — the projection made the problem homogeneous.
//
//   $ ./hin_bibliographic [num_authors]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cod_engine.h"
#include "graph/hin.h"
#include "eval/query_gen.h"

namespace {

struct BiblioHin {
  cod::HinGraph hin;
  std::vector<cod::NodeId> authors;
  std::vector<cod::NodeId> venues;
  std::vector<cod::NodeId> paper_venue;  // per paper (by index), its venue
};

// Authors are grouped into research fields; each field favors one venue.
// Papers draw 2-3 authors from one field (occasionally crossing fields).
BiblioHin MakeBiblioHin(size_t num_authors, cod::Rng& rng) {
  BiblioHin out;
  cod::HinGraphBuilder builder;
  const cod::NodeTypeId author = builder.InternType("author");
  const cod::NodeTypeId paper = builder.InternType("paper");
  const cod::NodeTypeId venue = builder.InternType("venue");

  const size_t num_fields = 8;
  const size_t num_venues = 8;
  for (size_t a = 0; a < num_authors; ++a) {
    out.authors.push_back(builder.AddNode(author));
  }
  for (size_t v = 0; v < num_venues; ++v) {
    out.venues.push_back(builder.AddNode(venue));
  }
  const size_t num_papers = num_authors * 2;
  for (size_t p = 0; p < num_papers; ++p) {
    const cod::NodeId paper_node = builder.AddNode(paper);
    const size_t field = rng.UniformInt(num_fields);
    const size_t field_begin = field * num_authors / num_fields;
    const size_t field_end = (field + 1) * num_authors / num_fields;
    const size_t team = 2 + rng.UniformInt(2);
    for (size_t i = 0; i < team; ++i) {
      const bool cross_field = rng.Bernoulli(0.15);
      const size_t lo = cross_field ? 0 : field_begin;
      const size_t hi = cross_field ? num_authors : field_end;
      builder.AddEdge(out.authors[lo + rng.UniformInt(hi - lo)], paper_node);
    }
    // Venue follows the field most of the time.
    const size_t venue_id =
        rng.Bernoulli(0.8) ? field % num_venues : rng.UniformInt(num_venues);
    builder.AddEdge(paper_node, out.venues[venue_id]);
    out.paper_venue.push_back(out.venues[venue_id]);
  }
  out.hin = std::move(builder).Build();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_authors =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  cod::Rng rng(17);
  std::printf("building bibliographic HIN (%zu authors)...\n", num_authors);
  BiblioHin biblio = MakeBiblioHin(num_authors, rng);
  std::printf("  HIN: %zu typed nodes, %zu edges\n", biblio.hin.NumNodes(),
              biblio.hin.graph().NumEdges());

  // Meta-path projection: Author-Paper-Author.
  const cod::NodeTypeId apa[] = {biblio.hin.FindType("author"),
                                 biblio.hin.FindType("paper"),
                                 biblio.hin.FindType("author")};
  cod::Result<cod::MetaPathProjection> projection =
      cod::ProjectMetaPath(biblio.hin, apa);
  if (!projection.ok()) {
    std::fprintf(stderr, "%s\n", projection.status().ToString().c_str());
    return 1;
  }
  std::printf("  APA projection: %zu authors, %zu co-authorship edges\n",
              projection->graph.NumNodes(), projection->graph.NumEdges());

  // Attributes on projected nodes: the venues each author published at.
  cod::AttributeTableBuilder attr_builder;
  {
    // Walk author-paper edges in the HIN; paper -> venue is known.
    const cod::Graph& hg = biblio.hin.graph();
    const cod::NodeTypeId paper_type = biblio.hin.FindType("paper");
    std::vector<cod::NodeId> local_of(hg.NumNodes(), cod::kInvalidNode);
    for (size_t i = 0; i < projection->to_hin.size(); ++i) {
      local_of[projection->to_hin[i]] = static_cast<cod::NodeId>(i);
    }
    const cod::NodeId first_paper = biblio.venues.back() + 1;
    for (cod::NodeId author_hin : projection->to_hin) {
      for (const cod::AdjEntry& a : hg.Neighbors(author_hin)) {
        if (biblio.hin.TypeOf(a.to) != paper_type) continue;
        const cod::NodeId venue_node =
            biblio.paper_venue[a.to - first_paper];
        attr_builder.Add(local_of[author_hin],
                         "venue" + std::to_string(venue_node -
                                                  biblio.venues.front()));
      }
    }
  }
  const cod::AttributeTable attrs =
      std::move(attr_builder).Build(projection->graph.NumNodes());

  // COD on the projected graph.
  cod::CodEngine engine(projection->graph, attrs, {});
  engine.BuildHimorParallel(/*seed=*/23);
  cod::QueryWorkspace ws = engine.MakeWorkspace(0);
  ws.rng() = rng;
  cod::Rng query_rng(29);
  const std::vector<cod::Query> queries =
      cod::GenerateQueries(attrs, 5, query_rng);
  for (const cod::Query& q : queries) {
    const cod::CodResult r =
        engine.QueryCodL(q.node, q.attribute, engine.options().k, ws);
    std::printf("author %-5u topic %-7s -> ", q.node,
                attrs.Name(q.attribute).c_str());
    if (!r.found) {
      std::printf("no characteristic community\n");
      continue;
    }
    std::printf("community of %zu co-authors, author ranks #%u%s\n",
                r.members.size(), r.rank + 1,
                r.answered_from_index ? " [index]" : "");
  }
  return 0;
}
