// Hierarchy explorer: a small CLI that prints everything COD knows about one
// node — its ancestor chain in the community hierarchy, the LORE
// reclustering scores that decide where local reclustering happens, and the
// node's estimated influence rank at every level.
//
//   $ ./hierarchy_explorer [dataset] [node]
//   $ ./hierarchy_explorer cora-sim 42
//
// Also accepts a pair of files instead of a registry dataset:
//   $ ./hierarchy_explorer edges.txt attrs.txt 42

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "core/cod_engine.h"
#include "eval/datasets.h"
#include "graph/graph_io.h"

int main(int argc, char** argv) {
  cod::AttributedGraph data;
  cod::NodeId node = 0;
  if (argc >= 4) {
    cod::Result<cod::Graph> graph = cod::LoadEdgeList(argv[1]);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    data.graph = std::move(graph).value();
    cod::Result<cod::AttributeTable> attrs =
        cod::LoadAttributes(argv[2], data.graph.NumNodes());
    if (!attrs.ok()) {
      std::fprintf(stderr, "%s\n", attrs.status().ToString().c_str());
      return 1;
    }
    data.attributes = std::move(attrs).value();
    node = static_cast<cod::NodeId>(std::strtoul(argv[3], nullptr, 10));
  } else {
    const std::string name = argc > 1 ? argv[1] : "cora-sim";
    cod::Result<cod::AttributedGraph> loaded = cod::MakeDataset(name);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(loaded).value();
    node = argc > 2
               ? static_cast<cod::NodeId>(std::strtoul(argv[2], nullptr, 10))
               : 42;
  }
  if (node >= data.graph.NumNodes()) {
    std::fprintf(stderr, "node %u out of range (|V| = %zu)\n", node,
                 data.graph.NumNodes());
    return 1;
  }

  cod::CodEngine engine(data.graph, data.attributes, {});
  std::printf("node %u: degree %u, attributes:", node,
              data.graph.Degree(node));
  for (const cod::AttributeId a : data.attributes.AttributesOf(node)) {
    std::printf(" %s", data.attributes.Name(a).c_str());
  }
  std::printf("\n\n");

  const auto node_attrs = data.attributes.AttributesOf(node);
  const cod::AttributeId attr =
      node_attrs.empty() ? cod::kInvalidAttribute : node_attrs[0];

  // LORE scores along the ancestor chain.
  if (attr != cod::kInvalidAttribute) {
    const cod::LoreScores scores = cod::ComputeReclusteringScores(
        data.graph, data.attributes, engine.base_hierarchy(),
        engine.base_lca(), node, attr);
    std::printf("ancestor chain and LORE reclustering scores (attribute "
                "'%s'):\n",
                data.attributes.Name(attr).c_str());
    cod::TablePrinter table({"level", "dep", "|C|", "r(C)", "chosen"});
    for (size_t i = 0; i < scores.chain.size(); ++i) {
      table.AddRow(
          {cod::TablePrinter::Fmt(i),
           cod::TablePrinter::Fmt(static_cast<size_t>(
               engine.base_hierarchy().Depth(scores.chain[i]))),
           cod::TablePrinter::Fmt(static_cast<size_t>(
               engine.base_hierarchy().LeafCount(scores.chain[i]))),
           cod::TablePrinter::Fmt(scores.score[i], 4),
           i == scores.selected ? "<- C_ell" : ""});
    }
    table.Print(stdout);
  }

  // Influence ranks at every level of the attribute-aware chain.
  if (attr != cod::kInvalidAttribute) {
    cod::Rng rng(1);
    cod::CompressedEvaluator evaluator(engine.model(), 20);
    const cod::LoreChain lore = engine.BuildCodlChain(node, attr);
    const cod::ChainEvalOutcome outcome =
        evaluator.Evaluate(lore.chain, node, engine.options().k, rng);
    std::printf("\nattribute-aware chain: estimated rank per level "
                "(k = %u, '>=%u' = below top-k):\n",
                engine.options().k, engine.options().k);
    cod::TablePrinter table({"level", "|C|", "rank of node", "top-k?"});
    for (size_t h = 0; h < lore.chain.NumLevels(); ++h) {
      const uint32_t rank = outcome.rank_per_level[h];
      const bool top = rank < engine.options().k;
      table.AddRow({cod::TablePrinter::Fmt(h),
                    cod::TablePrinter::Fmt(
                        static_cast<size_t>(lore.chain.community_size[h])),
                    top ? cod::TablePrinter::Fmt(static_cast<size_t>(rank + 1))
                        : (">=" + std::to_string(engine.options().k + 1)),
                    top ? "yes" : ""});
    }
    table.Print(stdout);
    if (outcome.best_level >= 0) {
      std::printf("\ncharacteristic community: level %d, %u members\n",
                  outcome.best_level,
                  lore.chain.community_size[outcome.best_level]);
    } else {
      std::printf("\nno characteristic community at k = %u\n",
                  engine.options().k);
    }
  }
  return 0;
}
