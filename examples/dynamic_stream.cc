// Scenario: serving COD queries over a stream of edge updates (the paper's
// dynamic-graphs future work, via epoch rebuilds behind
// CodServiceInterface).
//
// A social platform ingests follow/unfollow events while answering "what is
// this user's characteristic community right now?". The service absorbs
// updates in O(1) and always answers from the last built epoch — queries
// NEVER rebuild inline. Rebuilds run as rebuild-priority tasks on a shared
// TaskScheduler (async_rebuild): once accumulated drift crosses the
// threshold, the next update or query schedules the epoch rebuild
// (hierarchy + HIMOR) off-thread while ingest and queries keep serving the
// stale epoch. Interactive queries outrank rebuilds in the scheduler's
// priority order, so serving latency stays flat while a rebuild churns.
//
// The whole demo is written against CodServiceInterface, so the same code
// drives one engine (num_shards = 1, the default) or a sharded
// scatter/gather deployment (pass a shard count as the second argument) —
// only MakeCodService / RecoverCodService know the difference. Under
// sharding, follow events whose endpoints land on different shards are
// rejected (the partition is fixed at construction), which the demo counts.
//
// After the stream the process "restarts": the service is destroyed and
// recovered from the durable epoch snapshots it wrote after each publish
// (options.snapshot_dir; one subdirectory per shard when sharded). Warm
// recovery deserializes the last epoch — graph, hierarchy, HIMOR index —
// instead of rebuilding it, and the demo prints cold vs warm
// time-to-first-query to show the difference.
//
// Bench mode (--bench / --smoke): a sustained-update-rate benchmark of the
// incremental epoch path (ServiceOptions::delta_rebuild). For each churn
// level (fraction of cora-sim's edges mutated per batch) it drives the SAME
// mutation stream into a delta-mode service and a full-rebuild service,
// times every epoch publish, checks the delta epochs answer bit-identically
// to a cold rebuild on the final edge set (hard failure if not), and writes
// the sweep — publish latency, speedup, RR-sample reuse fraction, sustained
// update rate, staleness window — to a JSON file (default BENCH_PR9.json).
// --smoke shrinks theta and the round count for CI.
//
//   $ ./dynamic_stream [num_events] [num_shards]
//   $ ./dynamic_stream --bench [out.json]
//   $ ./dynamic_stream --smoke [out.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "hierarchy/dendrogram_io.h"
#include "serving/dynamic_service.h"
#include "serving/service_interface.h"

namespace {

// ---------------------------------------------------------------------------
// Bench mode.
// ---------------------------------------------------------------------------

std::string HierarchyBytes(const cod::EngineCore& core) {
  cod::BinaryBufferWriter w;
  cod::SerializeDendrogram(core.base_hierarchy(), w);
  return std::move(w).TakeBytes();
}

std::string HimorBytes(const cod::EngineCore& core) {
  cod::BinaryBufferWriter w;
  if (core.himor() != nullptr) core.himor()->SerializeTo(w);
  return std::move(w).TakeBytes();
}

cod::Graph CopyGraph(const cod::Graph& g) {
  cod::GraphBuilder b(g.NumNodes());
  for (cod::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    b.AddEdge(u, v, g.Weight(e));
  }
  return std::move(b).Build();
}

// Exact edge-set bookkeeping so every generated mutation is guaranteed to
// apply (random pairs mostly miss existing edges, which would make the
// realized churn drift from the requested level).
struct EdgeBook {
  std::vector<std::pair<cod::NodeId, cod::NodeId>> edges;
  std::unordered_set<uint64_t> present;

  static uint64_t Key(cod::NodeId u, cod::NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }
  void Add(cod::NodeId u, cod::NodeId v) {
    edges.emplace_back(u, v);
    present.insert(Key(u, v));
  }
  bool Has(cod::NodeId u, cod::NodeId v) const {
    return present.count(Key(u, v)) != 0;
  }
  std::pair<cod::NodeId, cod::NodeId> RemoveAt(size_t i) {
    const auto e = edges[i];
    present.erase(Key(e.first, e.second));
    edges[i] = edges.back();
    edges.pop_back();
    return e;
  }
};

struct Mutation {
  bool add;
  cod::NodeId u, v;
  double weight;
};

// `count` mutations (~2/3 adds, ~1/3 removals) that all apply cleanly.
std::vector<Mutation> MakeBatch(EdgeBook& book, size_t num_nodes, size_t count,
                                cod::Rng& rng) {
  std::vector<Mutation> batch;
  while (batch.size() < count) {
    if (!book.edges.empty() && rng.UniformInt(3) == 0) {
      const auto [u, v] = book.RemoveAt(rng.UniformInt(book.edges.size()));
      batch.push_back(Mutation{false, u, v, 0.0});
      continue;
    }
    const auto u = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
    const auto v = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
    if (u == v || book.Has(u, v)) continue;
    book.Add(u, v);
    // cora-sim is an unweighted citation graph, so churn inserts unit-weight
    // edges. Mixed weights on an otherwise-unit graph also honestly
    // restructure the upper UPGMA levels and would understate sample reuse.
    batch.push_back(Mutation{true, u, v, 1.0});
  }
  return batch;
}

void ApplyBatch(cod::DynamicCodService& service,
                const std::vector<Mutation>& batch) {
  for (const Mutation& m : batch) {
    if (m.add) {
      service.AddEdge(m.u, m.v, m.weight);
    } else {
      service.RemoveEdge(m.u, m.v);
    }
  }
}

uint64_t CounterValue(const char* name) {
  return cod::MetricsRegistry::Instance().GetCounter(name)->Value();
}

struct ChurnRow {
  double churn;
  size_t batch_edges;
  double delta_publish_ms;   // mean over rounds
  double full_publish_ms;    // mean over rounds
  double speedup;
  double reuse_fraction;     // reused RR samples / total, mean over rounds
  double sustained_updates_per_sec;  // batch ingested + delta-published
  double staleness_ms;       // answer lag behind ingest = delta publish
  bool bit_identical;
};

int RunBench(bool smoke, const std::string& json_path) {
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("cora-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const size_t num_nodes = data->graph.NumNodes();
  const size_t base_edges = data->graph.NumEdges();
  auto attrs =
      std::make_shared<const cod::AttributeTable>(std::move(data->attributes));

  const uint32_t theta = smoke ? 16 : 64;
  const int rounds = smoke ? 2 : 5;
  // 0.02% rounds to a single edge per batch — the per-update publish
  // latency a streaming deployment actually pays; the coarser levels batch
  // enough random cross-community edges that RR invalidation fans out
  // through hub vertices and reuse falls off.
  const double churn_levels[] = {0.0002, 0.001, 0.005, 0.01};

  cod::ServiceOptions delta_options;
  delta_options.seed = 5;
  delta_options.rebuild_threshold = 1e9;  // publish only via Refresh()
  delta_options.engine.theta = theta;
  delta_options.delta_rebuild = true;
  cod::ServiceOptions full_options = delta_options;
  full_options.delta_rebuild = false;

  std::printf("cora-sim: %zu nodes, %zu edges, theta %u, %d rounds/level\n",
              num_nodes, base_edges, theta, rounds);
  std::vector<ChurnRow> rows;
  bool all_identical = true;
  for (const double churn : churn_levels) {
    // Fresh services per level so each level measures the same base world.
    cod::DynamicCodService delta_service(CopyGraph(data->graph), attrs,
                                         delta_options);
    cod::DynamicCodService full_service(CopyGraph(data->graph), attrs,
                                        full_options);
    EdgeBook book;
    for (cod::EdgeId e = 0; e < data->graph.NumEdges(); ++e) {
      const auto [u, v] = data->graph.Endpoints(e);
      book.Add(u, v);
    }
    const size_t batch_edges =
        std::max<size_t>(1, static_cast<size_t>(churn * base_edges));
    cod::Rng rng(42 + static_cast<uint64_t>(churn * 1e6));

    ChurnRow row{};
    row.churn = churn;
    row.batch_edges = batch_edges;
    double delta_total_s = 0.0, full_total_s = 0.0, ingest_total_s = 0.0;
    double reuse_total = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const std::vector<Mutation> batch =
          MakeBatch(book, num_nodes, batch_edges, rng);
      cod::WallTimer timer;
      ApplyBatch(delta_service, batch);
      const double ingest_s = timer.ElapsedSeconds();
      const uint64_t reused_before =
          CounterValue("cod_rebuild_delta_samples_reused_total");
      const uint64_t resampled_before =
          CounterValue("cod_rebuild_delta_samples_resampled_total");
      const uint64_t replayed_before =
          CounterValue("cod_rebuild_delta_samples_replayed_total");
      timer.Restart();
      if (!delta_service.Refresh().ok()) {
        std::fprintf(stderr, "delta refresh failed\n");
        return 1;
      }
      const double delta_s = timer.ElapsedSeconds();
      const double reused = static_cast<double>(
          CounterValue("cod_rebuild_delta_samples_reused_total") -
          reused_before);
      const double touched =
          reused +
          static_cast<double>(
              CounterValue("cod_rebuild_delta_samples_resampled_total") -
              resampled_before) +
          static_cast<double>(
              CounterValue("cod_rebuild_delta_samples_replayed_total") -
              replayed_before);
      ApplyBatch(full_service, batch);
      timer.Restart();
      if (!full_service.Refresh().ok()) {
        std::fprintf(stderr, "full refresh failed\n");
        return 1;
      }
      const double full_s = timer.ElapsedSeconds();
      delta_total_s += delta_s;
      full_total_s += full_s;
      ingest_total_s += ingest_s;
      reuse_total += touched > 0.0 ? reused / touched : 0.0;
    }
    row.delta_publish_ms = 1e3 * delta_total_s / rounds;
    row.full_publish_ms = 1e3 * full_total_s / rounds;
    row.speedup = row.delta_publish_ms > 0.0
                      ? row.full_publish_ms / row.delta_publish_ms
                      : 0.0;
    row.reuse_fraction = reuse_total / rounds;
    row.staleness_ms = row.delta_publish_ms;
    const double cycle_s = (ingest_total_s + delta_total_s) / rounds;
    row.sustained_updates_per_sec =
        cycle_s > 0.0 ? static_cast<double>(batch_edges) / cycle_s : 0.0;

    // Bit-identity canary: the delta chain's epoch must match a cold
    // delta-mode service built directly on the final edge set.
    const auto evolved = delta_service.Snapshot();
    cod::DynamicCodService cold(CopyGraph(evolved.core->graph()), attrs,
                                delta_options);
    const auto cold_snap = cold.Snapshot();
    row.bit_identical =
        HierarchyBytes(*evolved.core) == HierarchyBytes(*cold_snap.core) &&
        HimorBytes(*evolved.core) == HimorBytes(*cold_snap.core);
    all_identical = all_identical && row.bit_identical;

    std::printf(
        "churn %.3f%% (%zu edges/batch): delta %.2fms, full %.2fms, "
        "%.1fx, reuse %.1f%%, %s\n",
        100.0 * churn, batch_edges, row.delta_publish_ms, row.full_publish_ms,
        row.speedup, 100.0 * row.reuse_fraction,
        row.bit_identical ? "bit-identical" : "MISMATCH");
    rows.push_back(row);
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"dynamic_stream_delta_rebuild\",\n"
               "  \"dataset\": \"cora-sim\",\n  \"num_nodes\": %zu,\n"
               "  \"num_edges\": %zu,\n  \"theta\": %u,\n"
               "  \"rounds_per_level\": %d,\n  \"smoke\": %s,\n"
               "  \"churn_levels\": [\n",
               num_nodes, base_edges, theta, rounds, smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ChurnRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"churn\": %.4f, \"batch_edges\": %zu,\n"
        "     \"delta_publish_ms\": %.3f, \"full_publish_ms\": %.3f,\n"
        "     \"speedup\": %.2f, \"rr_sample_reuse_fraction\": %.4f,\n"
        "     \"sustained_updates_per_sec\": %.1f, \"staleness_ms\": %.3f,\n"
        "     \"bit_identical_to_cold_rebuild\": %s}%s\n",
        r.churn, r.batch_edges, r.delta_publish_ms, r.full_publish_ms,
        r.speedup, r.reuse_fraction, r.sustained_updates_per_sec,
        r.staleness_ms, r.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: delta epoch diverged from cold rebuild bytes\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--bench") == 0 ||
                   std::strcmp(argv[1], "--smoke") == 0)) {
    return RunBench(std::strcmp(argv[1], "--smoke") == 0,
                    argc > 2 ? argv[2] : "BENCH_PR9.json");
  }
  const size_t num_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;
  const uint32_t num_shards =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 1;

  std::printf("bootstrapping from cora-sim (%u shard%s)...\n", num_shards,
              num_shards == 1 ? "" : "s");
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("cora-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const size_t num_nodes = data->graph.NumNodes();
  // Remember real edges so unfollow events can hit existing ones.
  std::vector<std::pair<cod::NodeId, cod::NodeId>> known_edges;
  for (cod::EdgeId e = 0; e < data->graph.NumEdges(); ++e) {
    known_edges.push_back(data->graph.Endpoints(e));
  }

  // Pick the watched users and remember their topic names BEFORE the
  // attribute table moves into the service — the interface deliberately
  // does not expose engine internals.
  cod::Rng query_rng(9);
  const std::vector<cod::Query> watched =
      cod::GenerateQueries(data->attributes, 3, query_rng);
  std::vector<std::string> watched_topics;
  for (const cod::Query& q : watched) {
    watched_topics.push_back(data->attributes.Name(q.attribute));
  }

  // One scheduler shared by rebuilds and (in a larger deployment) query
  // batches: rebuilds enter at kRebuild, queries at kInteractive. Snapshot
  // writes ride along at kMaintenance.
  cod::TaskScheduler scheduler(2);
  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "cod_dynamic_stream_snaps")
          .string();
  std::filesystem::remove_all(snapshot_dir);  // fresh cold start
  cod::ServiceOptions options;
  options.rebuild_threshold = 0.03;  // rebuild after ~3% edge churn
  options.seed = 5;
  options.async_rebuild = true;
  options.scheduler = &scheduler;
  options.snapshot_dir = snapshot_dir;
  options.num_shards = num_shards;
  if (!options.Validate().ok()) {
    std::fprintf(stderr, "bad options: %s\n",
                 options.Validate().ToString().c_str());
    return 1;
  }
  cod::WallTimer timer;
  std::unique_ptr<cod::CodServiceInterface> service = cod::MakeCodService(
      std::move(data->graph), std::move(data->attributes), options);
  const uint64_t initial_epoch = service->epoch();
  std::printf("epoch %lu ready in %.2fs (%zu edges)\n",
              static_cast<unsigned long>(initial_epoch),
              timer.ElapsedSeconds(), service->NumEdges());

  cod::Rng rng(7);
  size_t adds = 0;
  size_t removals = 0;
  size_t cross_shard_rejects = 0;
  uint64_t seen_epoch = initial_epoch;
  for (size_t event = 1; event <= num_events; ++event) {
    // 70% follows (new random edge), 30% unfollows (drop a random existing
    // edge by trying random pairs).
    if (rng.Bernoulli(0.7)) {
      const cod::NodeId u = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      const cod::NodeId v = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      if (u == v) continue;
      if (service->AddEdge(u, v)) {
        ++adds;
        known_edges.emplace_back(u, v);
      } else if (num_shards > 1) {
        ++cross_shard_rejects;  // endpoints live on different shards
      }
    } else if (!known_edges.empty()) {
      const size_t pick = rng.UniformInt(known_edges.size());
      const auto [u, v] = known_edges[pick];
      known_edges[pick] = known_edges.back();
      known_edges.pop_back();
      if (service->RemoveEdge(u, v)) ++removals;
    }

    // Under async_rebuild the update above already scheduled an epoch
    // rebuild if drift crossed the threshold — the stream never blocks on
    // it. Just report when a freshly built epoch lands.
    if (service->epoch() != seen_epoch) {
      seen_epoch = service->epoch();
      std::printf("[event %zu: background rebuild published epoch %lu%s]\n",
                  event, static_cast<unsigned long>(seen_epoch),
                  service->epoch_degraded() ? ", DEGRADED (no index)" : "");
    }

    // Periodically query the watched users — these serve whatever epoch is
    // published, even while a rebuild is in flight on the scheduler.
    if (event % (num_events / 6 + 1) == 0) {
      std::printf("\n[event %zu: %zu adds, %zu removals, pending %zu]\n",
                  event, adds, removals, service->pending_updates());
      for (size_t w = 0; w < watched.size(); ++w) {
        const cod::Query& q = watched[w];
        const cod::CodResult r = service->QueryCodL(q.node, q.attribute,
                                                    /*k=*/5, rng);
        std::printf("  user %-5u topic %-7s -> %s (%zu members)\n", q.node,
                    watched_topics[w].c_str(),
                    r.found ? "community" : "none", r.members.size());
      }
    }
  }
  // Settle any in-flight background rebuild before the final report.
  service->WaitForRebuild();
  std::printf("\nstream done: %zu adds, %zu removals", adds, removals);
  if (num_shards > 1) {
    std::printf(", %zu cross-shard rejects", cross_shard_rejects);
  }
  std::printf(", final epoch %lu\n",
              static_cast<unsigned long>(service->epoch()));

  // ------------------------------------------------------------------
  // Restart: cold vs warm time-to-first-query.
  //
  // Cold is what the bootstrap above paid: full hierarchy + HIMOR build.
  // Warm loads the newest durable snapshot(s) the service wrote after each
  // publish — same epoch number, same seed stream, bit-identical answers.
  // The final edge set doubles as the cold-start fallback RecoverCodService
  // requires (a sharded service cold-rebuilds any shard whose snapshots
  // are missing).
  // ------------------------------------------------------------------
  const uint64_t final_epoch = service->epoch();
  const cod::Query probe = watched[0];
  service.reset();  // "crash": drops every in-memory epoch
  std::printf("\nservice destroyed; recovering from %s\n",
              snapshot_dir.c_str());

  cod::Result<cod::AttributedGraph> fresh = cod::MakeDataset("cora-sim");
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.status().ToString().c_str());
    return 1;
  }
  cod::GraphBuilder warm_gb(num_nodes);
  for (const auto& [u, v] : known_edges) warm_gb.AddEdge(u, v);
  timer.Restart();
  cod::Result<std::unique_ptr<cod::CodServiceInterface>> recovered =
      cod::RecoverCodService(options, std::move(warm_gb).Build(),
                             std::move(fresh->attributes));
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  cod::Rng warm_rng(11);
  const cod::CodResult warm = (*recovered)->QueryCodL(
      probe.node, probe.attribute, /*k=*/5, warm_rng);
  const double warm_ttfq = timer.ElapsedSeconds();

  // Re-measure the cold path for an apples-to-apples number: rebuild the
  // same final edge set from scratch.
  cod::Result<cod::AttributedGraph> fresh2 = cod::MakeDataset("cora-sim");
  double cold_ttfq = 0.0;
  if (fresh2.ok()) {
    cod::GraphBuilder gb(num_nodes);
    for (const auto& [u, v] : known_edges) gb.AddEdge(u, v);
    cod::ServiceOptions cold_options = options;
    cold_options.snapshot_dir.clear();  // measure the build, not the write
    timer.Restart();
    std::unique_ptr<cod::CodServiceInterface> cold = cod::MakeCodService(
        std::move(gb).Build(), std::move(fresh2->attributes), cold_options);
    cod::Rng cold_rng(11);
    (void)cold->QueryCodL(probe.node, probe.attribute, /*k=*/5, cold_rng);
    cold_ttfq = timer.ElapsedSeconds();
  }

  std::printf("recovered epoch %lu%s: user %u topic %s -> %s (%zu members)\n",
              static_cast<unsigned long>((*recovered)->epoch()),
              (*recovered)->epoch() == final_epoch ? " (matches pre-restart)"
                                                   : "",
              probe.node, watched_topics[0].c_str(),
              warm.found ? "community" : "none", warm.members.size());
  std::printf("time-to-first-query: cold rebuild %.3fs, warm restore %.3fs "
              "(%.1fx faster)\n",
              cold_ttfq, warm_ttfq,
              warm_ttfq > 0.0 ? cold_ttfq / warm_ttfq : 0.0);
  return 0;
}
