// Scenario: serving COD queries over a stream of edge updates (the paper's
// dynamic-graphs future work, via DynamicCodService's epoch rebuilds).
//
// A social platform ingests follow/unfollow events while answering "what is
// this user's characteristic community right now?". The service absorbs
// updates in O(1) and always answers from the last built epoch — queries
// NEVER rebuild inline. The ingest loop (the owner) watches RefreshDue()
// and triggers the epoch rebuild (hierarchy + HIMOR) itself once the
// accumulated drift crosses the threshold; a production deployment would
// use async_rebuild + a rebuild pool for the same effect off-thread.
//
//   $ ./dynamic_stream [num_events]

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/dynamic_service.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"

int main(int argc, char** argv) {
  const size_t num_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;

  std::printf("bootstrapping from cora-sim...\n");
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("cora-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const size_t num_nodes = data->graph.NumNodes();
  // Remember real edges so unfollow events can hit existing ones.
  std::vector<std::pair<cod::NodeId, cod::NodeId>> known_edges;
  for (cod::EdgeId e = 0; e < data->graph.NumEdges(); ++e) {
    known_edges.push_back(data->graph.Endpoints(e));
  }

  cod::DynamicCodService::Options options;
  options.rebuild_threshold = 0.03;  // rebuild after ~3% edge churn
  options.seed = 5;
  cod::WallTimer timer;
  cod::DynamicCodService service(std::move(data->graph),
                                 std::move(data->attributes), options);
  std::printf("epoch %lu ready in %.2fs (%zu edges)\n",
              static_cast<unsigned long>(service.epoch()),
              timer.ElapsedSeconds(), service.NumEdges());

  cod::Rng rng(7);
  cod::Rng query_rng(9);
  const std::vector<cod::Query> watched =
      cod::GenerateQueries(service.engine().attributes(), 3, query_rng);

  size_t adds = 0;
  size_t removals = 0;
  size_t rebuilds = 0;
  for (size_t event = 1; event <= num_events; ++event) {
    // 70% follows (new random edge), 30% unfollows (drop a random existing
    // edge by trying random pairs).
    if (rng.Bernoulli(0.7)) {
      const cod::NodeId u = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      const cod::NodeId v = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      if (u != v && service.AddEdge(u, v)) {
        ++adds;
        known_edges.emplace_back(u, v);
      }
    } else if (!known_edges.empty()) {
      const size_t pick = rng.UniformInt(known_edges.size());
      const auto [u, v] = known_edges[pick];
      known_edges[pick] = known_edges.back();
      known_edges.pop_back();
      if (service.RemoveEdge(u, v)) ++removals;
    }

    // Owner-driven refresh: the ingest loop, not the query path, pays for
    // rebuilds. Queries between refreshes serve the previous epoch.
    if (service.RefreshDue()) {
      timer.Restart();
      const cod::Status s = service.Refresh();
      if (s.ok()) {
        ++rebuilds;
        std::printf("[event %zu: drift threshold crossed, rebuilt to epoch "
                    "%lu in %.2fs%s]\n",
                    event, static_cast<unsigned long>(service.epoch()),
                    timer.ElapsedSeconds(),
                    service.epoch_degraded() ? ", DEGRADED (no index)" : "");
      } else {
        std::printf("[event %zu: rebuild failed: %s]\n", event,
                    s.ToString().c_str());
      }
    }

    // Periodically query the watched users.
    if (event % (num_events / 6 + 1) == 0) {
      std::printf("\n[event %zu: %zu adds, %zu removals, pending %zu]\n",
                  event, adds, removals, service.pending_updates());
      for (const cod::Query& q : watched) {
        const cod::CodResult r = service.QueryCodL(q.node, q.attribute,
                                                   /*k=*/5, rng);
        std::printf("  user %-5u topic %-7s -> %s (%zu members)\n", q.node,
                    service.engine().attributes().Name(q.attribute).c_str(),
                    r.found ? "community" : "none", r.members.size());
      }
    }
  }
  std::printf("\nstream done: %zu adds, %zu removals, %zu rebuild(s), final "
              "epoch %lu\n",
              adds, removals, rebuilds,
              static_cast<unsigned long>(service.epoch()));
  return 0;
}
