// Scenario: serving COD queries over a stream of edge updates (the paper's
// dynamic-graphs future work, via epoch rebuilds behind
// CodServiceInterface).
//
// A social platform ingests follow/unfollow events while answering "what is
// this user's characteristic community right now?". The service absorbs
// updates in O(1) and always answers from the last built epoch — queries
// NEVER rebuild inline. Rebuilds run as rebuild-priority tasks on a shared
// TaskScheduler (async_rebuild): once accumulated drift crosses the
// threshold, the next update or query schedules the epoch rebuild
// (hierarchy + HIMOR) off-thread while ingest and queries keep serving the
// stale epoch. Interactive queries outrank rebuilds in the scheduler's
// priority order, so serving latency stays flat while a rebuild churns.
//
// The whole demo is written against CodServiceInterface, so the same code
// drives one engine (num_shards = 1, the default) or a sharded
// scatter/gather deployment (pass a shard count as the second argument) —
// only MakeCodService / RecoverCodService know the difference. Under
// sharding, follow events whose endpoints land on different shards are
// rejected (the partition is fixed at construction), which the demo counts.
//
// After the stream the process "restarts": the service is destroyed and
// recovered from the durable epoch snapshots it wrote after each publish
// (options.snapshot_dir; one subdirectory per shard when sharded). Warm
// recovery deserializes the last epoch — graph, hierarchy, HIMOR index —
// instead of rebuilding it, and the demo prints cold vs warm
// time-to-first-query to show the difference.
//
//   $ ./dynamic_stream [num_events] [num_shards]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/task_scheduler.h"
#include "common/timer.h"
#include "eval/datasets.h"
#include "eval/query_gen.h"
#include "serving/service_interface.h"

int main(int argc, char** argv) {
  const size_t num_events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;
  const uint32_t num_shards =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 1;

  std::printf("bootstrapping from cora-sim (%u shard%s)...\n", num_shards,
              num_shards == 1 ? "" : "s");
  cod::Result<cod::AttributedGraph> data = cod::MakeDataset("cora-sim");
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const size_t num_nodes = data->graph.NumNodes();
  // Remember real edges so unfollow events can hit existing ones.
  std::vector<std::pair<cod::NodeId, cod::NodeId>> known_edges;
  for (cod::EdgeId e = 0; e < data->graph.NumEdges(); ++e) {
    known_edges.push_back(data->graph.Endpoints(e));
  }

  // Pick the watched users and remember their topic names BEFORE the
  // attribute table moves into the service — the interface deliberately
  // does not expose engine internals.
  cod::Rng query_rng(9);
  const std::vector<cod::Query> watched =
      cod::GenerateQueries(data->attributes, 3, query_rng);
  std::vector<std::string> watched_topics;
  for (const cod::Query& q : watched) {
    watched_topics.push_back(data->attributes.Name(q.attribute));
  }

  // One scheduler shared by rebuilds and (in a larger deployment) query
  // batches: rebuilds enter at kRebuild, queries at kInteractive. Snapshot
  // writes ride along at kMaintenance.
  cod::TaskScheduler scheduler(2);
  const std::string snapshot_dir =
      (std::filesystem::temp_directory_path() / "cod_dynamic_stream_snaps")
          .string();
  std::filesystem::remove_all(snapshot_dir);  // fresh cold start
  cod::ServiceOptions options;
  options.rebuild_threshold = 0.03;  // rebuild after ~3% edge churn
  options.seed = 5;
  options.async_rebuild = true;
  options.scheduler = &scheduler;
  options.snapshot_dir = snapshot_dir;
  options.num_shards = num_shards;
  if (!options.Validate().ok()) {
    std::fprintf(stderr, "bad options: %s\n",
                 options.Validate().ToString().c_str());
    return 1;
  }
  cod::WallTimer timer;
  std::unique_ptr<cod::CodServiceInterface> service = cod::MakeCodService(
      std::move(data->graph), std::move(data->attributes), options);
  const uint64_t initial_epoch = service->epoch();
  std::printf("epoch %lu ready in %.2fs (%zu edges)\n",
              static_cast<unsigned long>(initial_epoch),
              timer.ElapsedSeconds(), service->NumEdges());

  cod::Rng rng(7);
  size_t adds = 0;
  size_t removals = 0;
  size_t cross_shard_rejects = 0;
  uint64_t seen_epoch = initial_epoch;
  for (size_t event = 1; event <= num_events; ++event) {
    // 70% follows (new random edge), 30% unfollows (drop a random existing
    // edge by trying random pairs).
    if (rng.Bernoulli(0.7)) {
      const cod::NodeId u = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      const cod::NodeId v = static_cast<cod::NodeId>(rng.UniformInt(num_nodes));
      if (u == v) continue;
      if (service->AddEdge(u, v)) {
        ++adds;
        known_edges.emplace_back(u, v);
      } else if (num_shards > 1) {
        ++cross_shard_rejects;  // endpoints live on different shards
      }
    } else if (!known_edges.empty()) {
      const size_t pick = rng.UniformInt(known_edges.size());
      const auto [u, v] = known_edges[pick];
      known_edges[pick] = known_edges.back();
      known_edges.pop_back();
      if (service->RemoveEdge(u, v)) ++removals;
    }

    // Under async_rebuild the update above already scheduled an epoch
    // rebuild if drift crossed the threshold — the stream never blocks on
    // it. Just report when a freshly built epoch lands.
    if (service->epoch() != seen_epoch) {
      seen_epoch = service->epoch();
      std::printf("[event %zu: background rebuild published epoch %lu%s]\n",
                  event, static_cast<unsigned long>(seen_epoch),
                  service->epoch_degraded() ? ", DEGRADED (no index)" : "");
    }

    // Periodically query the watched users — these serve whatever epoch is
    // published, even while a rebuild is in flight on the scheduler.
    if (event % (num_events / 6 + 1) == 0) {
      std::printf("\n[event %zu: %zu adds, %zu removals, pending %zu]\n",
                  event, adds, removals, service->pending_updates());
      for (size_t w = 0; w < watched.size(); ++w) {
        const cod::Query& q = watched[w];
        const cod::CodResult r = service->QueryCodL(q.node, q.attribute,
                                                    /*k=*/5, rng);
        std::printf("  user %-5u topic %-7s -> %s (%zu members)\n", q.node,
                    watched_topics[w].c_str(),
                    r.found ? "community" : "none", r.members.size());
      }
    }
  }
  // Settle any in-flight background rebuild before the final report.
  service->WaitForRebuild();
  std::printf("\nstream done: %zu adds, %zu removals", adds, removals);
  if (num_shards > 1) {
    std::printf(", %zu cross-shard rejects", cross_shard_rejects);
  }
  std::printf(", final epoch %lu\n",
              static_cast<unsigned long>(service->epoch()));

  // ------------------------------------------------------------------
  // Restart: cold vs warm time-to-first-query.
  //
  // Cold is what the bootstrap above paid: full hierarchy + HIMOR build.
  // Warm loads the newest durable snapshot(s) the service wrote after each
  // publish — same epoch number, same seed stream, bit-identical answers.
  // The final edge set doubles as the cold-start fallback RecoverCodService
  // requires (a sharded service cold-rebuilds any shard whose snapshots
  // are missing).
  // ------------------------------------------------------------------
  const uint64_t final_epoch = service->epoch();
  const cod::Query probe = watched[0];
  service.reset();  // "crash": drops every in-memory epoch
  std::printf("\nservice destroyed; recovering from %s\n",
              snapshot_dir.c_str());

  cod::Result<cod::AttributedGraph> fresh = cod::MakeDataset("cora-sim");
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.status().ToString().c_str());
    return 1;
  }
  cod::GraphBuilder warm_gb(num_nodes);
  for (const auto& [u, v] : known_edges) warm_gb.AddEdge(u, v);
  timer.Restart();
  cod::Result<std::unique_ptr<cod::CodServiceInterface>> recovered =
      cod::RecoverCodService(options, std::move(warm_gb).Build(),
                             std::move(fresh->attributes));
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  cod::Rng warm_rng(11);
  const cod::CodResult warm = (*recovered)->QueryCodL(
      probe.node, probe.attribute, /*k=*/5, warm_rng);
  const double warm_ttfq = timer.ElapsedSeconds();

  // Re-measure the cold path for an apples-to-apples number: rebuild the
  // same final edge set from scratch.
  cod::Result<cod::AttributedGraph> fresh2 = cod::MakeDataset("cora-sim");
  double cold_ttfq = 0.0;
  if (fresh2.ok()) {
    cod::GraphBuilder gb(num_nodes);
    for (const auto& [u, v] : known_edges) gb.AddEdge(u, v);
    cod::ServiceOptions cold_options = options;
    cold_options.snapshot_dir.clear();  // measure the build, not the write
    timer.Restart();
    std::unique_ptr<cod::CodServiceInterface> cold = cod::MakeCodService(
        std::move(gb).Build(), std::move(fresh2->attributes), cold_options);
    cod::Rng cold_rng(11);
    (void)cold->QueryCodL(probe.node, probe.attribute, /*k=*/5, cold_rng);
    cold_ttfq = timer.ElapsedSeconds();
  }

  std::printf("recovered epoch %lu%s: user %u topic %s -> %s (%zu members)\n",
              static_cast<unsigned long>((*recovered)->epoch()),
              (*recovered)->epoch() == final_epoch ? " (matches pre-restart)"
                                                   : "",
              probe.node, watched_topics[0].c_str(),
              warm.found ? "community" : "none", warm.members.size());
  std::printf("time-to-first-query: cold rebuild %.3fs, warm restore %.3fs "
              "(%.1fx faster)\n",
              cold_ttfq, warm_ttfq,
              warm_ttfq > 0.0 ? cold_ttfq / warm_ttfq : 0.0);
  return 0;
}
