#!/usr/bin/env bash
# Full replication driver: configure, build, run the test suite, and
# regenerate every table/figure of the paper's evaluation.
#
#   scripts/replicate.sh [build-dir]
#
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

{
  for b in "$build_dir"/bench/*; do
    echo "##### $(basename "$b")"
    "$b"
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

echo
echo "Done. See test_output.txt, bench_output.txt, and EXPERIMENTS.md."
