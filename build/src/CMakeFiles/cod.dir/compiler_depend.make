# Empty compiler generated dependencies file for cod.
# This may be replaced when dependencies are built.
