
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/atc.cc" "src/CMakeFiles/cod.dir/baselines/atc.cc.o" "gcc" "src/CMakeFiles/cod.dir/baselines/atc.cc.o.d"
  "/root/repo/src/baselines/ics.cc" "src/CMakeFiles/cod.dir/baselines/ics.cc.o" "gcc" "src/CMakeFiles/cod.dir/baselines/ics.cc.o.d"
  "/root/repo/src/baselines/kcore.cc" "src/CMakeFiles/cod.dir/baselines/kcore.cc.o" "gcc" "src/CMakeFiles/cod.dir/baselines/kcore.cc.o.d"
  "/root/repo/src/baselines/ktruss.cc" "src/CMakeFiles/cod.dir/baselines/ktruss.cc.o" "gcc" "src/CMakeFiles/cod.dir/baselines/ktruss.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/cod.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/cod.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cod.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cod.dir/common/status.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/cod.dir/common/table.cc.o" "gcc" "src/CMakeFiles/cod.dir/common/table.cc.o.d"
  "/root/repo/src/core/adaptive_eval.cc" "src/CMakeFiles/cod.dir/core/adaptive_eval.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/adaptive_eval.cc.o.d"
  "/root/repo/src/core/cod_chain.cc" "src/CMakeFiles/cod.dir/core/cod_chain.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/cod_chain.cc.o.d"
  "/root/repo/src/core/cod_engine.cc" "src/CMakeFiles/cod.dir/core/cod_engine.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/cod_engine.cc.o.d"
  "/root/repo/src/core/compressed_eval.cc" "src/CMakeFiles/cod.dir/core/compressed_eval.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/compressed_eval.cc.o.d"
  "/root/repo/src/core/dynamic_service.cc" "src/CMakeFiles/cod.dir/core/dynamic_service.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/dynamic_service.cc.o.d"
  "/root/repo/src/core/global_recluster.cc" "src/CMakeFiles/cod.dir/core/global_recluster.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/global_recluster.cc.o.d"
  "/root/repo/src/core/himor.cc" "src/CMakeFiles/cod.dir/core/himor.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/himor.cc.o.d"
  "/root/repo/src/core/independent_eval.cc" "src/CMakeFiles/cod.dir/core/independent_eval.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/independent_eval.cc.o.d"
  "/root/repo/src/core/lore.cc" "src/CMakeFiles/cod.dir/core/lore.cc.o" "gcc" "src/CMakeFiles/cod.dir/core/lore.cc.o.d"
  "/root/repo/src/eval/datasets.cc" "src/CMakeFiles/cod.dir/eval/datasets.cc.o" "gcc" "src/CMakeFiles/cod.dir/eval/datasets.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/cod.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/cod.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/query_gen.cc" "src/CMakeFiles/cod.dir/eval/query_gen.cc.o" "gcc" "src/CMakeFiles/cod.dir/eval/query_gen.cc.o.d"
  "/root/repo/src/graph/attributes.cc" "src/CMakeFiles/cod.dir/graph/attributes.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/attributes.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/cod.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/connectivity.cc" "src/CMakeFiles/cod.dir/graph/connectivity.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/connectivity.cc.o.d"
  "/root/repo/src/graph/embeddings.cc" "src/CMakeFiles/cod.dir/graph/embeddings.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/embeddings.cc.o.d"
  "/root/repo/src/graph/export.cc" "src/CMakeFiles/cod.dir/graph/export.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/export.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/cod.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/cod.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/cod.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/hin.cc" "src/CMakeFiles/cod.dir/graph/hin.cc.o" "gcc" "src/CMakeFiles/cod.dir/graph/hin.cc.o.d"
  "/root/repo/src/hierarchy/agglomerative.cc" "src/CMakeFiles/cod.dir/hierarchy/agglomerative.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/agglomerative.cc.o.d"
  "/root/repo/src/hierarchy/dendrogram.cc" "src/CMakeFiles/cod.dir/hierarchy/dendrogram.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/dendrogram.cc.o.d"
  "/root/repo/src/hierarchy/dendrogram_io.cc" "src/CMakeFiles/cod.dir/hierarchy/dendrogram_io.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/dendrogram_io.cc.o.d"
  "/root/repo/src/hierarchy/girvan_newman.cc" "src/CMakeFiles/cod.dir/hierarchy/girvan_newman.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/girvan_newman.cc.o.d"
  "/root/repo/src/hierarchy/lca.cc" "src/CMakeFiles/cod.dir/hierarchy/lca.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/lca.cc.o.d"
  "/root/repo/src/hierarchy/quality.cc" "src/CMakeFiles/cod.dir/hierarchy/quality.cc.o" "gcc" "src/CMakeFiles/cod.dir/hierarchy/quality.cc.o.d"
  "/root/repo/src/influence/cascade_model.cc" "src/CMakeFiles/cod.dir/influence/cascade_model.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/cascade_model.cc.o.d"
  "/root/repo/src/influence/im.cc" "src/CMakeFiles/cod.dir/influence/im.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/im.cc.o.d"
  "/root/repo/src/influence/influence_oracle.cc" "src/CMakeFiles/cod.dir/influence/influence_oracle.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/influence_oracle.cc.o.d"
  "/root/repo/src/influence/monte_carlo.cc" "src/CMakeFiles/cod.dir/influence/monte_carlo.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/monte_carlo.cc.o.d"
  "/root/repo/src/influence/rr_graph.cc" "src/CMakeFiles/cod.dir/influence/rr_graph.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/rr_graph.cc.o.d"
  "/root/repo/src/influence/sketch_oracle.cc" "src/CMakeFiles/cod.dir/influence/sketch_oracle.cc.o" "gcc" "src/CMakeFiles/cod.dir/influence/sketch_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
