file(REMOVE_RECURSE
  "libcod.a"
)
