# Empty compiler generated dependencies file for table2_himor_overhead.
# This may be replaced when dependencies are built.
