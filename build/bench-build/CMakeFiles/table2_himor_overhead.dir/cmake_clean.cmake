file(REMOVE_RECURSE
  "../bench/table2_himor_overhead"
  "../bench/table2_himor_overhead.pdb"
  "CMakeFiles/table2_himor_overhead.dir/table2_himor_overhead.cc.o"
  "CMakeFiles/table2_himor_overhead.dir/table2_himor_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_himor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
