file(REMOVE_RECURSE
  "../bench/fig9_runtime"
  "../bench/fig9_runtime.pdb"
  "CMakeFiles/fig9_runtime.dir/fig9_runtime.cc.o"
  "CMakeFiles/fig9_runtime.dir/fig9_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
