# Empty dependencies file for fig9_runtime.
# This may be replaced when dependencies are built.
