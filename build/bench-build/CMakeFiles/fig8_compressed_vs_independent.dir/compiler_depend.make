# Empty compiler generated dependencies file for fig8_compressed_vs_independent.
# This may be replaced when dependencies are built.
