file(REMOVE_RECURSE
  "../bench/fig8_compressed_vs_independent"
  "../bench/fig8_compressed_vs_independent.pdb"
  "CMakeFiles/fig8_compressed_vs_independent.dir/fig8_compressed_vs_independent.cc.o"
  "CMakeFiles/fig8_compressed_vs_independent.dir/fig8_compressed_vs_independent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_compressed_vs_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
