file(REMOVE_RECURSE
  "../bench/fig4_hierarchy_skew"
  "../bench/fig4_hierarchy_skew.pdb"
  "CMakeFiles/fig4_hierarchy_skew.dir/fig4_hierarchy_skew.cc.o"
  "CMakeFiles/fig4_hierarchy_skew.dir/fig4_hierarchy_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hierarchy_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
