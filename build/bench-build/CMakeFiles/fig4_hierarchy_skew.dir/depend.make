# Empty dependencies file for fig4_hierarchy_skew.
# This may be replaced when dependencies are built.
