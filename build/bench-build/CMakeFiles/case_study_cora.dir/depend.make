# Empty dependencies file for case_study_cora.
# This may be replaced when dependencies are built.
