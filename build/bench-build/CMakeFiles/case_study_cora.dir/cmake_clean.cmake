file(REMOVE_RECURSE
  "../bench/case_study_cora"
  "../bench/case_study_cora.pdb"
  "CMakeFiles/case_study_cora.dir/case_study_cora.cc.o"
  "CMakeFiles/case_study_cora.dir/case_study_cora.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_cora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
