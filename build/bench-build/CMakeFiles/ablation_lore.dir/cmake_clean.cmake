file(REMOVE_RECURSE
  "../bench/ablation_lore"
  "../bench/ablation_lore.pdb"
  "CMakeFiles/ablation_lore.dir/ablation_lore.cc.o"
  "CMakeFiles/ablation_lore.dir/ablation_lore.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
