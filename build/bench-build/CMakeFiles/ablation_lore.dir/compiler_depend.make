# Empty compiler generated dependencies file for ablation_lore.
# This may be replaced when dependencies are built.
