file(REMOVE_RECURSE
  "../bench/fig7_effectiveness"
  "../bench/fig7_effectiveness.pdb"
  "CMakeFiles/fig7_effectiveness.dir/fig7_effectiveness.cc.o"
  "CMakeFiles/fig7_effectiveness.dir/fig7_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
