file(REMOVE_RECURSE
  "CMakeFiles/lore_test.dir/lore_test.cc.o"
  "CMakeFiles/lore_test.dir/lore_test.cc.o.d"
  "lore_test"
  "lore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
