# Empty dependencies file for lore_test.
# This may be replaced when dependencies are built.
