file(REMOVE_RECURSE
  "CMakeFiles/cascade_model_test.dir/cascade_model_test.cc.o"
  "CMakeFiles/cascade_model_test.dir/cascade_model_test.cc.o.d"
  "cascade_model_test"
  "cascade_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
