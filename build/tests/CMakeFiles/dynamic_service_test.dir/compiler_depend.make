# Empty compiler generated dependencies file for dynamic_service_test.
# This may be replaced when dependencies are built.
