file(REMOVE_RECURSE
  "CMakeFiles/dynamic_service_test.dir/dynamic_service_test.cc.o"
  "CMakeFiles/dynamic_service_test.dir/dynamic_service_test.cc.o.d"
  "dynamic_service_test"
  "dynamic_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
