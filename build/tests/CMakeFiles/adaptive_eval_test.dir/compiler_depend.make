# Empty compiler generated dependencies file for adaptive_eval_test.
# This may be replaced when dependencies are built.
