file(REMOVE_RECURSE
  "CMakeFiles/adaptive_eval_test.dir/adaptive_eval_test.cc.o"
  "CMakeFiles/adaptive_eval_test.dir/adaptive_eval_test.cc.o.d"
  "adaptive_eval_test"
  "adaptive_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
