# Empty dependencies file for cod_engine_test.
# This may be replaced when dependencies are built.
