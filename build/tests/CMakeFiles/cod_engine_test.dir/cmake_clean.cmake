file(REMOVE_RECURSE
  "CMakeFiles/cod_engine_test.dir/cod_engine_test.cc.o"
  "CMakeFiles/cod_engine_test.dir/cod_engine_test.cc.o.d"
  "cod_engine_test"
  "cod_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cod_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
