file(REMOVE_RECURSE
  "CMakeFiles/exact_world_test.dir/exact_world_test.cc.o"
  "CMakeFiles/exact_world_test.dir/exact_world_test.cc.o.d"
  "exact_world_test"
  "exact_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
