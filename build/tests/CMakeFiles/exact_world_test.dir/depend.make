# Empty dependencies file for exact_world_test.
# This may be replaced when dependencies are built.
