# Empty dependencies file for ics_test.
# This may be replaced when dependencies are built.
