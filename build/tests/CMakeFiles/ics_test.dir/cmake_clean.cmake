file(REMOVE_RECURSE
  "CMakeFiles/ics_test.dir/ics_test.cc.o"
  "CMakeFiles/ics_test.dir/ics_test.cc.o.d"
  "ics_test"
  "ics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
