# Empty dependencies file for global_recluster_test.
# This may be replaced when dependencies are built.
