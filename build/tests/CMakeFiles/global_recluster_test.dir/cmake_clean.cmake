file(REMOVE_RECURSE
  "CMakeFiles/global_recluster_test.dir/global_recluster_test.cc.o"
  "CMakeFiles/global_recluster_test.dir/global_recluster_test.cc.o.d"
  "global_recluster_test"
  "global_recluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_recluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
