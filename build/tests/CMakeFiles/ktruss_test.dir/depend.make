# Empty dependencies file for ktruss_test.
# This may be replaced when dependencies are built.
