file(REMOVE_RECURSE
  "CMakeFiles/ktruss_test.dir/ktruss_test.cc.o"
  "CMakeFiles/ktruss_test.dir/ktruss_test.cc.o.d"
  "ktruss_test"
  "ktruss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ktruss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
