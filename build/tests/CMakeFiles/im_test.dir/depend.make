# Empty dependencies file for im_test.
# This may be replaced when dependencies are built.
