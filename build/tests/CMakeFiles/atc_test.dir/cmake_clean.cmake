file(REMOVE_RECURSE
  "CMakeFiles/atc_test.dir/atc_test.cc.o"
  "CMakeFiles/atc_test.dir/atc_test.cc.o.d"
  "atc_test"
  "atc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
