# Empty compiler generated dependencies file for atc_test.
# This may be replaced when dependencies are built.
