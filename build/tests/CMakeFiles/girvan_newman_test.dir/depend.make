# Empty dependencies file for girvan_newman_test.
# This may be replaced when dependencies are built.
