file(REMOVE_RECURSE
  "CMakeFiles/girvan_newman_test.dir/girvan_newman_test.cc.o"
  "CMakeFiles/girvan_newman_test.dir/girvan_newman_test.cc.o.d"
  "girvan_newman_test"
  "girvan_newman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/girvan_newman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
