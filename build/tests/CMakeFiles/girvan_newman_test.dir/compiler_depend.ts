# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for girvan_newman_test.
