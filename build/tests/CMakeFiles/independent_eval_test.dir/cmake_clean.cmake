file(REMOVE_RECURSE
  "CMakeFiles/independent_eval_test.dir/independent_eval_test.cc.o"
  "CMakeFiles/independent_eval_test.dir/independent_eval_test.cc.o.d"
  "independent_eval_test"
  "independent_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independent_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
