# Empty compiler generated dependencies file for independent_eval_test.
# This may be replaced when dependencies are built.
