file(REMOVE_RECURSE
  "CMakeFiles/himor_test.dir/himor_test.cc.o"
  "CMakeFiles/himor_test.dir/himor_test.cc.o.d"
  "himor_test"
  "himor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/himor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
