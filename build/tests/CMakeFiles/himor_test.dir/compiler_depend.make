# Empty compiler generated dependencies file for himor_test.
# This may be replaced when dependencies are built.
