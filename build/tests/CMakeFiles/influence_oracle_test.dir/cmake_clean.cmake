file(REMOVE_RECURSE
  "CMakeFiles/influence_oracle_test.dir/influence_oracle_test.cc.o"
  "CMakeFiles/influence_oracle_test.dir/influence_oracle_test.cc.o.d"
  "influence_oracle_test"
  "influence_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
