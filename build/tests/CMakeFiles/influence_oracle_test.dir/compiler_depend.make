# Empty compiler generated dependencies file for influence_oracle_test.
# This may be replaced when dependencies are built.
