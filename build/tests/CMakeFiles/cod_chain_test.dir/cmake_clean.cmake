file(REMOVE_RECURSE
  "CMakeFiles/cod_chain_test.dir/cod_chain_test.cc.o"
  "CMakeFiles/cod_chain_test.dir/cod_chain_test.cc.o.d"
  "cod_chain_test"
  "cod_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cod_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
