# Empty compiler generated dependencies file for cod_chain_test.
# This may be replaced when dependencies are built.
