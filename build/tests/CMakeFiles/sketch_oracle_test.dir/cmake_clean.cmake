file(REMOVE_RECURSE
  "CMakeFiles/sketch_oracle_test.dir/sketch_oracle_test.cc.o"
  "CMakeFiles/sketch_oracle_test.dir/sketch_oracle_test.cc.o.d"
  "sketch_oracle_test"
  "sketch_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
