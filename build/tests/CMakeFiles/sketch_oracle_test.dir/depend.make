# Empty dependencies file for sketch_oracle_test.
# This may be replaced when dependencies are built.
