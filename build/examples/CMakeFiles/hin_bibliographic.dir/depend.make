# Empty dependencies file for hin_bibliographic.
# This may be replaced when dependencies are built.
