file(REMOVE_RECURSE
  "CMakeFiles/hin_bibliographic.dir/hin_bibliographic.cc.o"
  "CMakeFiles/hin_bibliographic.dir/hin_bibliographic.cc.o.d"
  "hin_bibliographic"
  "hin_bibliographic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hin_bibliographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
