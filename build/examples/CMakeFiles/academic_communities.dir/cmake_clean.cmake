file(REMOVE_RECURSE
  "CMakeFiles/academic_communities.dir/academic_communities.cc.o"
  "CMakeFiles/academic_communities.dir/academic_communities.cc.o.d"
  "academic_communities"
  "academic_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/academic_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
