# Empty compiler generated dependencies file for academic_communities.
# This may be replaced when dependencies are built.
