# Empty compiler generated dependencies file for marketing_campaign.
# This may be replaced when dependencies are built.
