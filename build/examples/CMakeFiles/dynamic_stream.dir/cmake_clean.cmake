file(REMOVE_RECURSE
  "CMakeFiles/dynamic_stream.dir/dynamic_stream.cc.o"
  "CMakeFiles/dynamic_stream.dir/dynamic_stream.cc.o.d"
  "dynamic_stream"
  "dynamic_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
