# Empty dependencies file for cod_cli.
# This may be replaced when dependencies are built.
