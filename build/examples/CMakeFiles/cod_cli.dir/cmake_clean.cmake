file(REMOVE_RECURSE
  "CMakeFiles/cod_cli.dir/cod_cli.cc.o"
  "CMakeFiles/cod_cli.dir/cod_cli.cc.o.d"
  "cod_cli"
  "cod_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
