// Reverse-reachable (RR) graph sampling (paper Definitions 2 and 3).
//
// An RR *set* from source s is the set of nodes that reach s in a sampled
// possible world; an RR *graph* additionally keeps the sampled live edges so
// that, for any community C, the subgraph induced on C answers "does v reach
// s inside C?" — the key to sharing one sample across the whole hierarchy
// (Theorem 2).
//
// Correctness requirement (DESIGN.md note 1): for every *reached* node v, the
// coin of every in-edge (u -> v) must be flipped and, when live, recorded —
// even when u is already active. Recording only BFS tree edges would break
// induced reachability.
//
// For the LT model a node's possible world has at most one live in-edge,
// picked with probability proportional to its weight; restriction to a
// community composes the same way, so the shared traversal logic is reused.

#ifndef COD_INFLUENCE_RR_GRAPH_H_
#define COD_INFLUENCE_RR_GRAPH_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "influence/cascade_model.h"

namespace cod {

// One sampled RR graph; node 0 of the local index space is the source.
// `neighbors[offsets[i]..offsets[i+1])` are local indices of nodes u such
// that the live edge (u -> nodes[i]) was sampled: traversing these spans
// walks *away* from the source along reversed live edges.
struct RrGraph {
  NodeId source = kInvalidNode;
  std::vector<NodeId> nodes;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> neighbors;

  size_t NumNodes() const { return nodes.size(); }
  size_t NumEdges() const { return neighbors.size(); }
  std::span<const uint32_t> NeighborsOf(uint32_t local) const {
    return {neighbors.data() + offsets[local],
            offsets[local + 1] - offsets[local]};
  }

  void Clear() {
    source = kInvalidNode;
    nodes.clear();
    offsets.clear();
    neighbors.clear();
  }
};

// Samples RR graphs / RR sets under a DiffusionModel. Owns scratch buffers,
// so one sampler should be reused across many samples; not thread-safe.
// Concurrent sampling uses one RrSampler per thread (they share the const
// model; see core/query_workspace.h for the serving-path pattern).
class RrSampler {
 public:
  explicit RrSampler(const DiffusionModel& model);

  // Re-targets the sampler at a (possibly different) model, reusing scratch
  // capacity where node counts allow. Lets a long-lived per-thread workspace
  // follow epoch swaps without reallocating.
  void Rebind(const DiffusionModel& model);

  // Samples a full RR graph from `source` into `out` (buffers reused).
  void Sample(NodeId source, Rng& rng, RrGraph* out);

  // Samples an RR graph restricted to nodes with `allowed[v] != 0`
  // (`source` must be allowed). Edge coins use the *original* graph's
  // probabilities, which is exactly the induced-community process of Thm 2.
  void SampleRestricted(NodeId source, const std::vector<char>& allowed,
                        Rng& rng, RrGraph* out);

  // Cheaper variant when only the reached node set is needed (no edges).
  // Appends reached nodes (including `source`) to `out`. Given equal RNG
  // state, the reached set equals SampleRestricted's node list (pinned by
  // rr_graph_test.cc).
  void SampleSetRestricted(NodeId source, const std::vector<char>* allowed,
                           Rng& rng, std::vector<NodeId>* out);

  // Capacity of the per-node scratch stamps, in nodes. Rebind only regrows
  // it when the new model's graph is larger — epoch swaps between same- or
  // smaller-sized graphs reuse the allocation (pinned by rr_graph_test.cc).
  size_t ScratchCapacity() const { return visit_epoch_.capacity(); }

 private:
  template <bool kRestricted, bool kRecordEdges>
  void SampleImpl(NodeId source, const std::vector<char>* allowed, Rng& rng,
                  RrGraph* graph_out, std::vector<NodeId>* set_out);

  const DiffusionModel* model_;
  const Graph* graph_;
  // Epoch-marked visit stamps avoid O(|V|) clears per sample.
  std::vector<uint32_t> visit_epoch_;
  std::vector<uint32_t> local_index_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> frontier_;
};

}  // namespace cod

#endif  // COD_INFLUENCE_RR_GRAPH_H_
