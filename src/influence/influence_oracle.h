// Per-community influence estimation by restricted RR sampling.
//
// For a community C, sampling theta RR sets from every member (sources
// stratified over C, traversal confined to C, original edge probabilities)
// gives count_C(v) = number of RR sets containing v, and
// sigma_C(v) ~= count_C(v) / theta (Theorems 1-2). Influence *ranks* within
// C depend only on the raw counts.
//
// This is the workhorse of the Independent baseline evaluator and of the
// top-k precision measurement in the Fig. 8 experiment; the compressed
// evaluator (core/compressed_eval.h) replaces it with hierarchy-shared
// samples.

#ifndef COD_INFLUENCE_INFLUENCE_ORACLE_H_
#define COD_INFLUENCE_INFLUENCE_ORACLE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/deadline.h"
#include "influence/rr_graph.h"
#include "influence/rr_pool.h"

namespace cod {

class TaskScheduler;

class InfluenceOracle {
 public:
  explicit InfluenceOracle(const DiffusionModel& model);

  // counts[i] = number of restricted RR sets (theta per member as source)
  // that contain members[i]. Members must be distinct. Draws exactly ONE
  // value from `rng` (the pool seed); sample i of the members x theta pool
  // uses Rng(RrSampleSeed(pool_seed, i)).
  std::vector<uint32_t> CountsWithin(std::span<const NodeId> members,
                                     uint32_t theta, Rng& rng);

  // Budget-aware form with optional intra-query parallelism on a *borrowed*
  // scheduler (see influence/rr_pool.h for the borrowing rule). Chunked
  // per-chunk counts are summed, so results are bit-identical for any
  // scheduler, including none. The budget (and, in parallel chunks, the
  // "influence/parallel_pool" failpoint) is polled between samples; on a
  // non-kOk return `counts` is incomplete and must be discarded.
  StatusCode CountsWithin(std::span<const NodeId> members, uint32_t theta,
                          uint64_t pool_seed, const Budget& budget,
                          TaskScheduler* scheduler,
                          std::vector<uint32_t>* counts);

  // Influence rank of `q` given per-member counts: the number of members
  // with a strictly larger count (paper's rank_C definition; rank 0 = most
  // influential). `q` must be in `members`.
  static uint32_t RankOf(std::span<const NodeId> members,
                         std::span<const uint32_t> counts, NodeId q);

 private:
  // Per-chunk sampler scratch for the parallel path (grown lazily).
  struct ChunkScratch {
    explicit ChunkScratch(const DiffusionModel& model) : sampler(model) {}
    RrSampler sampler;
    std::vector<NodeId> scratch_set;
    std::vector<uint32_t> counts;
  };

  ChunkScratch& Chunk(size_t i);

  const DiffusionModel* model_;
  RrSampler sampler_;
  std::vector<char> allowed_;
  std::vector<uint32_t> local_;  // member index per node, valid under mask
  std::vector<NodeId> scratch_set_;
  std::vector<std::unique_ptr<ChunkScratch>> chunks_;
};

}  // namespace cod

#endif  // COD_INFLUENCE_INFLUENCE_ORACLE_H_
