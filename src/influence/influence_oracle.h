// Per-community influence estimation by restricted RR sampling.
//
// For a community C, sampling theta RR sets from every member (sources
// stratified over C, traversal confined to C, original edge probabilities)
// gives count_C(v) = number of RR sets containing v, and
// sigma_C(v) ~= count_C(v) / theta (Theorems 1-2). Influence *ranks* within
// C depend only on the raw counts.
//
// This is the workhorse of the Independent baseline evaluator and of the
// top-k precision measurement in the Fig. 8 experiment; the compressed
// evaluator (core/compressed_eval.h) replaces it with hierarchy-shared
// samples.

#ifndef COD_INFLUENCE_INFLUENCE_ORACLE_H_
#define COD_INFLUENCE_INFLUENCE_ORACLE_H_

#include <span>
#include <vector>

#include "influence/rr_graph.h"

namespace cod {

class InfluenceOracle {
 public:
  explicit InfluenceOracle(const DiffusionModel& model);

  // counts[i] = number of restricted RR sets (theta per member as source)
  // that contain members[i]. Members must be distinct.
  std::vector<uint32_t> CountsWithin(std::span<const NodeId> members,
                                     uint32_t theta, Rng& rng);

  // Influence rank of `q` given per-member counts: the number of members
  // with a strictly larger count (paper's rank_C definition; rank 0 = most
  // influential). `q` must be in `members`.
  static uint32_t RankOf(std::span<const NodeId> members,
                         std::span<const uint32_t> counts, NodeId q);

 private:
  const DiffusionModel* model_;
  RrSampler sampler_;
  std::vector<char> allowed_;
  std::vector<uint32_t> local_;  // member index per node, valid under mask
  std::vector<NodeId> scratch_set_;
};

}  // namespace cod

#endif  // COD_INFLUENCE_INFLUENCE_ORACLE_H_
