// Influence maximization (IM): pick `num_seeds` nodes maximizing expected
// spread under the diffusion model.
//
// IM is one of the three research pillars the COD problem connects (paper
// Sec. II-B) and shares the RR-set machinery with compressed COD evaluation,
// so it comes almost for free on top of the substrate:
//
//  * MaximizeInfluenceRis — reverse influence sampling (Borgs et al. [21],
//    TIM/IMM-style): sample Theta RR sets, then greedy maximum coverage,
//    a (1 - 1/e - eps) approximation for the sampled objective.
//  * MaximizeInfluenceGreedyMc — the classic Kempe-Kleinberg-Tardos greedy
//    with Monte-Carlo spread estimates and CELF lazy evaluation; O(n * k *
//    trials) and only practical on small graphs, kept as the reference
//    implementation for tests.

#ifndef COD_INFLUENCE_IM_H_
#define COD_INFLUENCE_IM_H_

#include <vector>

#include "influence/rr_graph.h"

namespace cod {

struct ImResult {
  std::vector<NodeId> seeds;    // in selection order
  double estimated_influence;  // expected spread of the full seed set
};

// RIS greedy over `num_samples` RR sets with uniformly random sources.
// `allowed`, when non-null, restricts both sampling and seed choice to a
// community (the within-community IM variant COD's setting suggests).
ImResult MaximizeInfluenceRis(const DiffusionModel& model, size_t num_seeds,
                              size_t num_samples, Rng& rng,
                              const std::vector<char>* allowed = nullptr);

// Reference CELF greedy with `trials` Monte-Carlo simulations per estimate.
ImResult MaximizeInfluenceGreedyMc(const DiffusionModel& model,
                                   size_t num_seeds, size_t trials, Rng& rng,
                                   const std::vector<char>* allowed = nullptr);

}  // namespace cod

#endif  // COD_INFLUENCE_IM_H_
