#include "influence/coverage_sketch.h"

#include <algorithm>

namespace cod {

void BottomKInsert(std::vector<uint64_t>* sig, uint64_t value, size_t cap) {
  auto it = std::lower_bound(sig->begin(), sig->end(), value);
  if (it != sig->end() && *it == value) return;
  if (sig->size() == cap) {
    if (it == sig->end()) return;  // larger than everything kept
    sig->insert(it, value);
    sig->pop_back();
    return;
  }
  sig->insert(it, value);
}

void BottomKMerge(std::span<const uint64_t> a, std::span<const uint64_t> b,
                  size_t cap, std::vector<uint64_t>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (out->size() < cap && (i < a.size() || j < b.size())) {
    uint64_t next;
    if (j == b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;  // distinct union
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    out->push_back(next);
  }
}

double BottomKEstimate(std::span<const uint64_t> sig, size_t cap) {
  if (sig.size() < cap) return static_cast<double>(sig.size());
  // sig.back() is the cap-th smallest distinct rank; +1 maps the closed
  // integer range onto (0, 1] so a tiny rank can't divide by zero.
  const double kth =
      (static_cast<double>(sig.back()) + 1.0) * 0x1.0p-64;
  return static_cast<double>(cap - 1) / kth;
}

uint32_t CoverageSketchIndex::EstimatedRank(CommunityId c,
                                            uint32_t top_count_q) const {
  const auto thr = ThresholdsOf(c);
  // Thresholds are descending: the prefix strictly above top_count_q is the
  // provable number of nodes beating q.
  const auto it = std::upper_bound(thr.begin(), thr.end(), top_count_q,
                                   [](uint32_t tq, uint32_t t) { return tq >= t; });
  return static_cast<uint32_t>(it - thr.begin());
}

size_t CoverageSketchIndex::MemoryBytes() const {
  return thr_offsets_.size() * sizeof(uint64_t) +
         thr_values_.size() * sizeof(uint32_t) +
         sig_offsets_.size() * sizeof(uint64_t) +
         sig_values_.size() * sizeof(uint64_t) +
         support_.size() * sizeof(uint32_t) +
         top_count_.size() * sizeof(uint32_t);
}

void CoverageSketchIndex::SerializeTo(BinaryBufferWriter& out) const {
  out.WritePod(schedule_seed_);
  out.WritePod(theta_);
  out.WritePod(sketch_bits_);
  out.WritePod(rank_depth_);
  out.WriteVector(thr_offsets_);
  out.WriteVector(thr_values_);
  out.WriteVector(sig_offsets_);
  out.WriteVector(sig_values_);
  out.WriteVector(support_);
  out.WriteVector(top_count_);
}

namespace {

// Offsets must be a monotone prefix-sum over `count` rows ending at `total`.
bool OffsetsValid(const std::vector<uint64_t>& offsets, size_t count,
                  size_t total) {
  if (offsets.size() != count + 1 || offsets.front() != 0 ||
      offsets.back() != total) {
    return false;
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Result<CoverageSketchIndex> CoverageSketchIndex::Deserialize(
    BinarySpanReader& in) {
  CoverageSketchIndex index;
  if (!in.ReadPod(&index.schedule_seed_) || !in.ReadPod(&index.theta_) ||
      !in.ReadPod(&index.sketch_bits_) || !in.ReadPod(&index.rank_depth_) ||
      !in.ReadVector(&index.thr_offsets_) ||
      !in.ReadVector(&index.thr_values_) ||
      !in.ReadVector(&index.sig_offsets_) ||
      !in.ReadVector(&index.sig_values_) || !in.ReadVector(&index.support_) ||
      !in.ReadVector(&index.top_count_)) {
    return in.status();
  }
  if (index.theta_ == 0 || index.rank_depth_ == 0 || index.sketch_bits_ > 30) {
    in.Fail("corrupt coverage sketch (bad parameters)");
    return in.status();
  }
  const size_t count = index.support_.size();
  if (!OffsetsValid(index.thr_offsets_, count, index.thr_values_.size()) ||
      !OffsetsValid(index.sig_offsets_, count, index.sig_values_.size())) {
    in.Fail("inconsistent coverage-sketch offsets");
    return in.status();
  }
  for (CommunityId c = 0; c < count; ++c) {
    const auto thr = index.ThresholdsOf(c);
    if (thr.size() > index.rank_depth_ ||
        (!thr.empty() && thr.size() > index.support_[c])) {
      in.Fail("coverage-sketch thresholds exceed caps");
      return in.status();
    }
    for (size_t i = 1; i < thr.size(); ++i) {
      if (thr[i] > thr[i - 1]) {
        in.Fail("coverage-sketch thresholds not descending");
        return in.status();
      }
    }
    const auto sig = index.SignatureOf(c);
    if (sig.size() > index.sketch_cap()) {
      in.Fail("coverage-sketch signature exceeds cap");
      return in.status();
    }
    for (size_t i = 1; i < sig.size(); ++i) {
      if (sig[i] <= sig[i - 1]) {
        in.Fail("coverage-sketch signature not strictly ascending");
        return in.status();
      }
    }
  }
  return index;
}

}  // namespace cod
