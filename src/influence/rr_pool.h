// Pooled RR-sample storage and deterministic intra-query parallel sampling.
//
// Two pieces, both in service of the compressed evaluator's hot path:
//
//  * RrSlabPool — a structure-of-arrays arena holding every RR graph of one
//    query's shared pool in three contiguous slabs (nodes / offsets /
//    neighbors) plus a per-sample extent table. Chain evaluation walks the
//    slabs linearly instead of chasing per-sample vector-of-vectors, and
//    Clear() keeps capacity so a warmed workspace samples with zero heap
//    allocations per query.
//
//  * ParallelRrPool — builds the full pool for a chain evaluation, either
//    serially or sharded into contiguous sample-index chunks on a *borrowed*
//    TaskScheduler. The j-th sample of source `s` always draws from
//    Rng(RrSampleSeed(pool_seed, s * theta + j)) — keyed by the SOURCE NODE,
//    not the position in the source list — regardless of which thread runs
//    it, and chunks merge back in sample order, so the slab contents are
//    bit-identical for any worker count and any stealing interleaving, and a
//    pool built over a filtered source subset draws exactly the samples the
//    full pool would for those sources (what sketch pruning relies on). Same
//    schedule as every HimorIndex builder.
//
// The borrowing rule: ParallelRrPool never owns a scheduler; chunks are
// interactive-priority tasks tracked by a private TaskGroup. Calling from a
// scheduler worker (the usual case: a QueryBatch chunk fanning out sampling
// on the same scheduler) is fine — the group wait helps run queued tasks
// inline, so there is no self-pool deadlock and no serial fallback path.

#ifndef COD_INFLUENCE_RR_POOL_H_
#define COD_INFLUENCE_RR_POOL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/deadline.h"
#include "common/random.h"
#include "influence/rr_graph.h"

namespace cod {

class TaskScheduler;

// The counter-based per-sample seed schedule: sample `index` of a pool
// seeded `pool_seed` is drawn from Rng(RrSampleSeed(pool_seed, index)),
// independent of sampling order and thread placement. Same mixing as
// BatchQuerySeed (golden-ratio stride into SplitMix64), so distinct indices
// land in decorrelated xoshiro streams.
inline uint64_t RrSampleSeed(uint64_t pool_seed, uint64_t index) {
  uint64_t state = pool_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return SplitMix64(state);
}

// Structure-of-arrays arena of RR graphs. Append copies a sample's rows into
// the shared slabs; Clear drops the samples but keeps slab capacity.
class RrSlabPool {
 public:
  // Read view of one stored sample; mirrors RrGraph's accessors but indexes
  // into the shared slabs. `offsets` has node_count + 1 entries and is
  // relative to `neighbors` (offsets[0] == 0).
  struct View {
    NodeId source;
    const NodeId* nodes;
    const uint32_t* offsets;
    const uint32_t* neighbors;
    uint32_t node_count;

    size_t NumNodes() const { return node_count; }
    std::span<const uint32_t> NeighborsOf(uint32_t local) const {
      return {neighbors + offsets[local], offsets[local + 1] - offsets[local]};
    }
  };

  size_t NumSamples() const { return extents_.size(); }
  // Total RR-graph nodes across all samples (|R| in the paper's analysis).
  size_t TotalNodes() const { return nodes_.size(); }

  View Sample(size_t i) const {
    const Extent& e = extents_[i];
    return View{e.source, nodes_.data() + e.node_begin,
                offsets_.data() + e.off_begin, neighbors_.data() + e.edge_begin,
                e.node_count};
  }

  // Appends `g` as the next sample. `g.offsets` must be self-relative
  // (offsets[0] == 0), which is what RrSampler produces.
  void Append(const RrGraph& g);
  // Appends a stored sample (typically from another pool, e.g. carrying a
  // still-valid RR graph across epochs).
  void Append(const View& v);
  // Appends every sample of `other` in order (chunk merge).
  void AppendPool(const RrSlabPool& other);
  // Appends samples [begin, end) of `other` in order. Samples are stored in
  // append order, so the range occupies one contiguous stretch of each slab
  // and copies as three bulk inserts — the delta rebuild's whole-source
  // reuse path leans on this.
  void AppendRange(const RrSlabPool& other, size_t begin, size_t end);

  // Drops all samples, keeping slab capacity for reuse.
  void Clear() {
    nodes_.clear();
    offsets_.clear();
    neighbors_.clear();
    extents_.clear();
  }

  // Number of times any slab had to grow beyond its capacity. Stable across
  // calls = the zero-steady-state-allocation contract holds (pinned by
  // tests/parallel_sampling_test.cc).
  uint64_t growth_events() const { return growth_events_; }

 private:
  struct Extent {
    NodeId source;
    uint32_t node_begin;
    uint32_t node_count;
    uint32_t edge_begin;
    uint32_t off_begin;
  };

  template <typename T>
  void NoteGrowth(const std::vector<T>& v, size_t required) {
    if (required > v.capacity()) ++growth_events_;
  }

  std::vector<NodeId> nodes_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> neighbors_;
  std::vector<Extent> extents_;
  uint64_t growth_events_ = 0;
};

// Builds one query's RR pool: sources.size() * theta samples, sample i
// drawing source sources[i / theta] under
// Rng(RrSampleSeed(pool_seed, sources[i / theta] * theta + i % theta)).
// Owns per-chunk sampler scratch (grown lazily to the thread count seen), so
// it is not thread-safe itself — one instance per workspace.
class ParallelRrPool {
 public:
  explicit ParallelRrPool(const DiffusionModel& model);

  // Re-targets at a (possibly different) model, keeping every chunk's
  // sampler scratch and slab capacity across epoch swaps.
  void Rebind(const DiffusionModel& model);

  struct BuildStats {
    uint64_t samples = 0;         // samples actually drawn (partial on abort)
    size_t explored_nodes = 0;    // total RR-graph nodes across samples
    size_t chunks = 0;            // parallel chunks used; 0 = serial path
    double sample_seconds = 0.0;
    double merge_seconds = 0.0;   // chunk-merge wall time (parallel only)
  };

  // Fills `out` (cleared first) with the full pool. `scheduler` may be null
  // or single-threaded, in which case sampling is serial; results are
  // bit-identical either way. The budget (and, in the parallel chunk loop,
  // the "influence/parallel_pool" failpoint; "rr/sample" on the serial path)
  // is polled between samples; on exhaustion the first failing code is
  // returned, `out` is cleared, and all scratch is left reusable.
  StatusCode Build(std::span<const NodeId> sources, uint32_t theta,
                   const std::vector<char>& allowed, uint64_t pool_seed,
                   const Budget& budget, TaskScheduler* scheduler,
                   RrSlabPool* out, BuildStats* stats);

  // Growth events summed over the output-independent chunk slabs (the main
  // pool's counter lives on the RrSlabPool the caller owns).
  uint64_t chunk_growth_events() const;

 private:
  struct ChunkScratch {
    explicit ChunkScratch(const DiffusionModel& model) : sampler(model) {}
    RrSampler sampler;
    RrGraph rr;
    RrSlabPool slab;
    uint64_t samples = 0;
    size_t explored_nodes = 0;
  };

  StatusCode BuildSerial(std::span<const NodeId> sources, uint32_t theta,
                         const std::vector<char>& allowed, uint64_t pool_seed,
                         const Budget& budget, RrSlabPool* out,
                         BuildStats* stats);

  ChunkScratch& Chunk(size_t i);

  const DiffusionModel* model_;
  std::vector<std::unique_ptr<ChunkScratch>> chunks_;
};

}  // namespace cod

#endif  // COD_INFLUENCE_RR_POOL_H_
