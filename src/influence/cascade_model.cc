#include "influence/cascade_model.h"

#include <vector>

namespace cod {
namespace {

void FillDegreeNormalized(const Graph& g, std::vector<double>* to_lo,
                          std::vector<double>* to_hi) {
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    (*to_lo)[e] = 1.0 / g.Degree(lo);
    (*to_hi)[e] = 1.0 / g.Degree(hi);
  }
}

}  // namespace

DiffusionModel DiffusionModel::WeightedCascadeIc(const Graph& g) {
  DiffusionModel m(g, DiffusionKind::kIndependentCascade);
  FillDegreeNormalized(g, &m.prob_to_lo_, &m.prob_to_hi_);
  return m;
}

DiffusionModel DiffusionModel::UniformIc(const Graph& g, double p) {
  COD_CHECK(p >= 0.0 && p <= 1.0);
  DiffusionModel m(g, DiffusionKind::kIndependentCascade);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    m.prob_to_lo_[e] = p;
    m.prob_to_hi_[e] = p;
  }
  return m;
}

DiffusionModel DiffusionModel::EdgeWeightedCascadeIc(const Graph& g) {
  DiffusionModel m(g, DiffusionKind::kIndependentCascade);
  std::vector<double> weight_sum(g.NumNodes(), 0.0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    weight_sum[lo] += g.Weight(e);
    weight_sum[hi] += g.Weight(e);
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [lo, hi] = g.Endpoints(e);
    m.prob_to_lo_[e] = g.Weight(e) / weight_sum[lo];
    m.prob_to_hi_[e] = g.Weight(e) / weight_sum[hi];
  }
  return m;
}

DiffusionModel DiffusionModel::TrivalencyIc(const Graph& g, Rng& rng) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  DiffusionModel m(g, DiffusionKind::kIndependentCascade);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    m.prob_to_lo_[e] = kLevels[rng.UniformInt(3)];
    m.prob_to_hi_[e] = kLevels[rng.UniformInt(3)];
  }
  return m;
}

DiffusionModel DiffusionModel::WeightedCascadeLt(const Graph& g) {
  DiffusionModel m(g, DiffusionKind::kLinearThreshold);
  FillDegreeNormalized(g, &m.prob_to_lo_, &m.prob_to_hi_);
  return m;
}

}  // namespace cod
