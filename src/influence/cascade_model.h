// Diffusion models over a graph.
//
// The paper runs the independent cascade (IC) model with weighted-cascade
// probabilities p(u, v) = 1 / |N(v)| (Sec. V-A) and notes that any model
// compatible with reverse-reachable (RR) sampling works; we also provide the
// linear threshold (LT) model with the same degree-normalized weights.
//
// A DiffusionModel stores, for every directed orientation of every edge, the
// activation probability (IC) or edge weight (LT). Probabilities are indexed
// by (EdgeId, direction) so samplers touching a node's incident edges pay no
// lookups.

#ifndef COD_INFLUENCE_CASCADE_MODEL_H_
#define COD_INFLUENCE_CASCADE_MODEL_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace cod {

enum class DiffusionKind {
  kIndependentCascade,
  kLinearThreshold,
};

class DiffusionModel {
 public:
  // IC with p(u, v) = 1 / |N(v)| (weighted cascade, Chen et al.).
  static DiffusionModel WeightedCascadeIc(const Graph& g);
  // IC with p(u, v) = w(u, v) / sum_x w(x, v): the weighted-cascade analogue
  // for weighted graphs (e.g., meta-path projections, where edge weight is
  // the connecting-path count). Equals WeightedCascadeIc on unweighted
  // graphs.
  static DiffusionModel EdgeWeightedCascadeIc(const Graph& g);
  // IC with a single probability on every directed edge.
  static DiffusionModel UniformIc(const Graph& g, double p);
  // IC with the trivalency scheme (Chen et al.): each directed edge draws
  // its probability uniformly from {0.1, 0.01, 0.001}. Deterministic for a
  // given rng state.
  static DiffusionModel TrivalencyIc(const Graph& g, Rng& rng);
  // LT with b(u, v) = 1 / |N(v)| (in-weights of every node sum to 1).
  static DiffusionModel WeightedCascadeLt(const Graph& g);

  DiffusionKind kind() const { return kind_; }
  const Graph& graph() const { return *graph_; }

  // Probability (IC) or weight (LT) of the orientation of edge `e` pointing
  // *toward* node `to` ("to" must be an endpoint of `e`).
  double ProbToward(EdgeId e, NodeId to) const {
    const auto [lo, hi] = graph_->Endpoints(e);
    COD_DCHECK(to == lo || to == hi);
    return to == hi ? prob_to_hi_[e] : prob_to_lo_[e];
  }

 private:
  DiffusionModel(const Graph& g, DiffusionKind kind)
      : graph_(&g),
        kind_(kind),
        prob_to_lo_(g.NumEdges()),
        prob_to_hi_(g.NumEdges()) {}

  const Graph* graph_;
  DiffusionKind kind_;
  std::vector<double> prob_to_lo_;  // toward Endpoints(e).first
  std::vector<double> prob_to_hi_;  // toward Endpoints(e).second
};

}  // namespace cod

#endif  // COD_INFLUENCE_CASCADE_MODEL_H_
