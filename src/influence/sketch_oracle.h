// Bottom-k reachability-sketch influence oracle (Cohen et al., SKIM-style).
//
// A second, independent estimator for *global* influence, complementing the
// RR-set machinery: sample W live-edge worlds; in each world assign every
// node a uniform random rank and compute, per node, the bottom-k set of the
// smallest ranks among the nodes it reaches. The classic bottom-k cardinality
// estimator (k - 1) / (k-th smallest rank) then recovers each node's
// per-world reachable-set size, and averaging over worlds estimates
// sigma(v).
//
// Unlike RR counting, the sketch gives ALL nodes' influences from the same
// W world samples (useful as node weights for ICS or promoter shortlists),
// at the cost of O(W * (|E| + |V| k log k)) preprocessing and community-
// obliviousness (global influence only).
//
// Determinism: SketchInfluence consumes exactly ONE draw from the caller's
// Rng; every world's live-edge stream and rank schedule derive from that
// draw by counter (RrSampleSeed), so world w is a pure function of
// (anchor draw, w) — independent of num_worlds ordering or how many draws
// other worlds consume.

#ifndef COD_INFLUENCE_SKETCH_ORACLE_H_
#define COD_INFLUENCE_SKETCH_ORACLE_H_

#include <vector>

#include "common/random.h"
#include "influence/cascade_model.h"

namespace cod {

struct SketchOptions {
  size_t num_worlds = 64;
  size_t sketch_size = 32;  // k of bottom-k
};

// Estimated global influence of every node.
std::vector<double> SketchInfluence(const DiffusionModel& model,
                                    const SketchOptions& options, Rng& rng);

}  // namespace cod

#endif  // COD_INFLUENCE_SKETCH_ORACLE_H_
