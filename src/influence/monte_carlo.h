// Forward Monte-Carlo influence simulation.
//
// The slow-but-direct estimator of sigma_C(q): repeatedly run the diffusion
// process forward from the seed and average the number of activated nodes.
// Used as ground truth in tests (validating Theorem 1 / Theorem 2 estimators)
// and to report the paper's I(q) effectiveness measure.

#ifndef COD_INFLUENCE_MONTE_CARLO_H_
#define COD_INFLUENCE_MONTE_CARLO_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "influence/cascade_model.h"

namespace cod {

class MonteCarloSimulator {
 public:
  explicit MonteCarloSimulator(const DiffusionModel& model);

  // Average number of nodes activated by seeding `seed`, over `trials` runs.
  // If `allowed` is non-null the process is confined to allowed nodes
  // (the induced-community process with original probabilities).
  double EstimateInfluence(NodeId seed, size_t trials, Rng& rng,
                           const std::vector<char>* allowed = nullptr);

  // Multi-seed variant (used by influence maximization): all seeds start
  // active at step 0. Duplicate seeds are allowed and count once.
  double EstimateInfluenceOfSet(std::span<const NodeId> seeds, size_t trials,
                                Rng& rng,
                                const std::vector<char>* allowed = nullptr);

 private:
  size_t RunOnce(std::span<const NodeId> seeds, Rng& rng,
                 const std::vector<char>* allowed);

  const DiffusionModel* model_;
  const Graph* graph_;
  std::vector<uint32_t> active_epoch_;
  uint32_t epoch_ = 0;
  std::vector<NodeId> frontier_;
  // LT state: per-trial thresholds and accumulated in-weight, epoch-marked.
  std::vector<double> threshold_;
  std::vector<double> in_weight_;
  std::vector<uint32_t> lt_epoch_;
};

}  // namespace cod

#endif  // COD_INFLUENCE_MONTE_CARLO_H_
