#include "influence/monte_carlo.h"

namespace cod {

MonteCarloSimulator::MonteCarloSimulator(const DiffusionModel& model)
    : model_(&model),
      graph_(&model.graph()),
      active_epoch_(model.graph().NumNodes(), 0),
      threshold_(model.graph().NumNodes(), 0.0),
      in_weight_(model.graph().NumNodes(), 0.0),
      lt_epoch_(model.graph().NumNodes(), 0) {}

size_t MonteCarloSimulator::RunOnce(std::span<const NodeId> seeds, Rng& rng,
                                    const std::vector<char>* allowed) {
  ++epoch_;
  frontier_.clear();
  size_t activated = 0;
  for (NodeId seed : seeds) {
    if (active_epoch_[seed] == epoch_) continue;  // duplicate seed
    active_epoch_[seed] = epoch_;
    frontier_.push_back(seed);
    ++activated;
  }
  const bool is_lt = model_->kind() == DiffusionKind::kLinearThreshold;

  size_t head = 0;
  while (head < frontier_.size()) {
    const NodeId u = frontier_[head++];
    for (const AdjEntry& a : graph_->Neighbors(u)) {
      const NodeId v = a.to;
      if (allowed != nullptr && !(*allowed)[v]) continue;
      if (active_epoch_[v] == epoch_) continue;
      bool fires = false;
      if (is_lt) {
        // Lazily draw v's threshold once per trial; v activates when the
        // accumulated weight of its active in-neighbors crosses it.
        if (lt_epoch_[v] != epoch_) {
          lt_epoch_[v] = epoch_;
          threshold_[v] = rng.UniformDouble();
          in_weight_[v] = 0.0;
        }
        in_weight_[v] += model_->ProbToward(a.edge, v);
        fires = in_weight_[v] >= threshold_[v];
      } else {
        fires = rng.Bernoulli(model_->ProbToward(a.edge, v));
      }
      if (fires) {
        active_epoch_[v] = epoch_;
        frontier_.push_back(v);
        ++activated;
      }
    }
  }
  return activated;
}

double MonteCarloSimulator::EstimateInfluence(NodeId seed, size_t trials,
                                              Rng& rng,
                                              const std::vector<char>* allowed) {
  const NodeId seeds[1] = {seed};
  return EstimateInfluenceOfSet(seeds, trials, rng, allowed);
}

double MonteCarloSimulator::EstimateInfluenceOfSet(
    std::span<const NodeId> seeds, size_t trials, Rng& rng,
    const std::vector<char>* allowed) {
  COD_CHECK(trials > 0);
  COD_CHECK(!seeds.empty());
  for (NodeId seed : seeds) {
    COD_CHECK(seed < graph_->NumNodes());
    if (allowed != nullptr) COD_CHECK((*allowed)[seed]);
  }
  size_t total = 0;
  for (size_t t = 0; t < trials; ++t) total += RunOnce(seeds, rng, allowed);
  return static_cast<double>(total) / static_cast<double>(trials);
}

}  // namespace cod
