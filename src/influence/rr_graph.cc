#include "influence/rr_graph.h"

namespace cod {

RrSampler::RrSampler(const DiffusionModel& model)
    : model_(&model),
      graph_(&model.graph()),
      visit_epoch_(model.graph().NumNodes(), 0),
      local_index_(model.graph().NumNodes(), 0) {}

void RrSampler::Rebind(const DiffusionModel& model) {
  model_ = &model;
  graph_ = &model.graph();
  visit_epoch_.assign(graph_->NumNodes(), 0);
  local_index_.assign(graph_->NumNodes(), 0);
  epoch_ = 0;
  frontier_.clear();
}

template <bool kRestricted, bool kRecordEdges>
void RrSampler::SampleImpl(NodeId source, const std::vector<char>* allowed,
                           Rng& rng, RrGraph* graph_out,
                           std::vector<NodeId>* set_out) {
  COD_DCHECK(source < graph_->NumNodes());
  if constexpr (kRestricted) COD_DCHECK((*allowed)[source]);
  ++epoch_;

  auto visit = [&](NodeId v) -> uint32_t {
    visit_epoch_[v] = epoch_;
    uint32_t local = 0;
    if constexpr (kRecordEdges) {
      local = static_cast<uint32_t>(graph_out->nodes.size());
      local_index_[v] = local;
      graph_out->nodes.push_back(v);
    } else {
      set_out->push_back(v);
    }
    return local;
  };

  if constexpr (kRecordEdges) {
    graph_out->Clear();
    graph_out->source = source;
  }
  visit(source);

  const bool is_lt = model_->kind() == DiffusionKind::kLinearThreshold;
  // BFS by position: nodes are appended in discovery order and processed in
  // the same order, so (for kRecordEdges) CSR rows line up with `nodes`.
  size_t head = 0;
  frontier_.clear();
  if constexpr (!kRecordEdges) frontier_.push_back(source);
  while (true) {
    NodeId v;
    if constexpr (kRecordEdges) {
      if (head >= graph_out->nodes.size()) break;
      v = graph_out->nodes[head];
      graph_out->offsets.push_back(
          static_cast<uint32_t>(graph_out->neighbors.size()));
    } else {
      if (head >= frontier_.size()) break;
      v = frontier_[head];
    }
    ++head;

    if (is_lt) {
      // LT possible world: at most one live in-edge, chosen with probability
      // proportional to its weight (weights of a node sum to <= 1).
      double r = rng.UniformDouble();
      for (const AdjEntry& a : graph_->Neighbors(v)) {
        if constexpr (kRestricted) {
          if (!(*allowed)[a.to]) continue;
        }
        r -= model_->ProbToward(a.edge, v);
        if (r < 0.0) {
          const NodeId u = a.to;
          if (visit_epoch_[u] != epoch_) {
            visit(u);
            if constexpr (!kRecordEdges) frontier_.push_back(u);
          }
          if constexpr (kRecordEdges) {
            graph_out->neighbors.push_back(local_index_[u]);
          }
          break;
        }
      }
    } else {
      // IC: independent coin for every in-edge of v (live edges recorded
      // even when the other endpoint is already active; see header).
      for (const AdjEntry& a : graph_->Neighbors(v)) {
        if constexpr (kRestricted) {
          if (!(*allowed)[a.to]) continue;
        }
        if (!rng.Bernoulli(model_->ProbToward(a.edge, v))) continue;
        const NodeId u = a.to;
        if (visit_epoch_[u] != epoch_) {
          visit(u);
          if constexpr (!kRecordEdges) frontier_.push_back(u);
        }
        if constexpr (kRecordEdges) {
          graph_out->neighbors.push_back(local_index_[u]);
        }
      }
    }
  }
  if constexpr (kRecordEdges) {
    graph_out->offsets.push_back(
        static_cast<uint32_t>(graph_out->neighbors.size()));
  }
}

void RrSampler::Sample(NodeId source, Rng& rng, RrGraph* out) {
  SampleImpl</*kRestricted=*/false, /*kRecordEdges=*/true>(source, nullptr,
                                                           rng, out, nullptr);
}

void RrSampler::SampleRestricted(NodeId source,
                                 const std::vector<char>& allowed, Rng& rng,
                                 RrGraph* out) {
  SampleImpl</*kRestricted=*/true, /*kRecordEdges=*/true>(source, &allowed,
                                                          rng, out, nullptr);
}

void RrSampler::SampleSetRestricted(NodeId source,
                                    const std::vector<char>* allowed, Rng& rng,
                                    std::vector<NodeId>* out) {
  if (allowed == nullptr) {
    SampleImpl</*kRestricted=*/false, /*kRecordEdges=*/false>(
        source, nullptr, rng, nullptr, out);
  } else {
    SampleImpl</*kRestricted=*/true, /*kRecordEdges=*/false>(source, allowed,
                                                             rng, nullptr, out);
  }
}

}  // namespace cod
