#include "influence/rr_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/failpoint.h"
#include "common/task_scheduler.h"

namespace cod {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void RrSlabPool::Append(const RrGraph& g) {
  Extent e;
  e.source = g.source;
  e.node_begin = static_cast<uint32_t>(nodes_.size());
  e.node_count = static_cast<uint32_t>(g.nodes.size());
  e.edge_begin = static_cast<uint32_t>(neighbors_.size());
  e.off_begin = static_cast<uint32_t>(offsets_.size());
  NoteGrowth(nodes_, nodes_.size() + g.nodes.size());
  NoteGrowth(offsets_, offsets_.size() + g.offsets.size());
  NoteGrowth(neighbors_, neighbors_.size() + g.neighbors.size());
  NoteGrowth(extents_, extents_.size() + 1);
  nodes_.insert(nodes_.end(), g.nodes.begin(), g.nodes.end());
  offsets_.insert(offsets_.end(), g.offsets.begin(), g.offsets.end());
  neighbors_.insert(neighbors_.end(), g.neighbors.begin(), g.neighbors.end());
  extents_.push_back(e);
}

void RrSlabPool::Append(const View& v) {
  const size_t edge_count = v.offsets[v.node_count];
  Extent e;
  e.source = v.source;
  e.node_begin = static_cast<uint32_t>(nodes_.size());
  e.node_count = v.node_count;
  e.edge_begin = static_cast<uint32_t>(neighbors_.size());
  e.off_begin = static_cast<uint32_t>(offsets_.size());
  NoteGrowth(nodes_, nodes_.size() + v.node_count);
  NoteGrowth(offsets_, offsets_.size() + v.node_count + 1);
  NoteGrowth(neighbors_, neighbors_.size() + edge_count);
  NoteGrowth(extents_, extents_.size() + 1);
  nodes_.insert(nodes_.end(), v.nodes, v.nodes + v.node_count);
  offsets_.insert(offsets_.end(), v.offsets, v.offsets + v.node_count + 1);
  neighbors_.insert(neighbors_.end(), v.neighbors, v.neighbors + edge_count);
  extents_.push_back(e);
}

void RrSlabPool::AppendPool(const RrSlabPool& other) {
  const size_t node_base = nodes_.size();
  const size_t edge_base = neighbors_.size();
  const size_t off_base = offsets_.size();
  NoteGrowth(nodes_, node_base + other.nodes_.size());
  NoteGrowth(offsets_, off_base + other.offsets_.size());
  NoteGrowth(neighbors_, edge_base + other.neighbors_.size());
  NoteGrowth(extents_, extents_.size() + other.extents_.size());
  nodes_.insert(nodes_.end(), other.nodes_.begin(), other.nodes_.end());
  offsets_.insert(offsets_.end(), other.offsets_.begin(),
                  other.offsets_.end());
  neighbors_.insert(neighbors_.end(), other.neighbors_.begin(),
                    other.neighbors_.end());
  for (const Extent& e : other.extents_) {
    extents_.push_back(Extent{
        e.source, static_cast<uint32_t>(e.node_begin + node_base),
        e.node_count, static_cast<uint32_t>(e.edge_begin + edge_base),
        static_cast<uint32_t>(e.off_begin + off_base)});
  }
}

void RrSlabPool::AppendRange(const RrSlabPool& other, size_t begin,
                             size_t end) {
  if (begin >= end) return;
  const Extent& first = other.extents_[begin];
  const bool to_back = end == other.extents_.size();
  const size_t node_end =
      to_back ? other.nodes_.size() : other.extents_[end].node_begin;
  const size_t edge_end =
      to_back ? other.neighbors_.size() : other.extents_[end].edge_begin;
  const size_t off_end =
      to_back ? other.offsets_.size() : other.extents_[end].off_begin;
  const size_t node_base = nodes_.size();
  const size_t edge_base = neighbors_.size();
  const size_t off_base = offsets_.size();
  NoteGrowth(nodes_, node_base + (node_end - first.node_begin));
  NoteGrowth(offsets_, off_base + (off_end - first.off_begin));
  NoteGrowth(neighbors_, edge_base + (edge_end - first.edge_begin));
  NoteGrowth(extents_, extents_.size() + (end - begin));
  nodes_.insert(nodes_.end(), other.nodes_.begin() + first.node_begin,
                other.nodes_.begin() + node_end);
  offsets_.insert(offsets_.end(), other.offsets_.begin() + first.off_begin,
                  other.offsets_.begin() + off_end);
  neighbors_.insert(neighbors_.end(),
                    other.neighbors_.begin() + first.edge_begin,
                    other.neighbors_.begin() + edge_end);
  for (size_t i = begin; i < end; ++i) {
    const Extent& e = other.extents_[i];
    extents_.push_back(Extent{
        e.source,
        static_cast<uint32_t>(e.node_begin - first.node_begin + node_base),
        e.node_count,
        static_cast<uint32_t>(e.edge_begin - first.edge_begin + edge_base),
        static_cast<uint32_t>(e.off_begin - first.off_begin + off_base)});
  }
}

ParallelRrPool::ParallelRrPool(const DiffusionModel& model)
    : model_(&model) {}

void ParallelRrPool::Rebind(const DiffusionModel& model) {
  model_ = &model;
  for (auto& chunk : chunks_) chunk->sampler.Rebind(model);
}

ParallelRrPool::ChunkScratch& ParallelRrPool::Chunk(size_t i) {
  while (chunks_.size() <= i) {
    chunks_.push_back(std::make_unique<ChunkScratch>(*model_));
  }
  return *chunks_[i];
}

uint64_t ParallelRrPool::chunk_growth_events() const {
  uint64_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->slab.growth_events();
  return total;
}

StatusCode ParallelRrPool::BuildSerial(std::span<const NodeId> sources,
                                       uint32_t theta,
                                       const std::vector<char>& allowed,
                                       uint64_t pool_seed, const Budget& budget,
                                       RrSlabPool* out, BuildStats* stats) {
  ChunkScratch& cs = Chunk(0);
  const auto start = std::chrono::steady_clock::now();
  const size_t total = sources.size() * theta;
  for (size_t s = 0; s < total; ++s) {
    // Check between samples only — the clean points where aborting leaves
    // no dirty scratch. The "rr/sample" failpoint injects a mid-evaluation
    // abort at the same point (tests of partial-work unwinding).
    const StatusCode code = COD_FAILPOINT("rr/sample")
                                ? StatusCode::kCancelled
                                : budget.ExhaustedCode();
    if (code != StatusCode::kOk) {
      stats->sample_seconds = SecondsSince(start);
      out->Clear();
      return code;
    }
    const NodeId source = sources[s / theta];
    Rng rng(RrSampleSeed(pool_seed, uint64_t{source} * theta + s % theta));
    cs.sampler.SampleRestricted(source, allowed, rng, &cs.rr);
    out->Append(cs.rr);
    ++stats->samples;
    stats->explored_nodes += cs.rr.NumNodes();
  }
  stats->sample_seconds = SecondsSince(start);
  return StatusCode::kOk;
}

StatusCode ParallelRrPool::Build(std::span<const NodeId> sources,
                                 uint32_t theta,
                                 const std::vector<char>& allowed,
                                 uint64_t pool_seed, const Budget& budget,
                                 TaskScheduler* scheduler, RrSlabPool* out,
                                 BuildStats* stats) {
  out->Clear();
  *stats = BuildStats{};
  const size_t total = sources.size() * theta;
  if (scheduler == nullptr || scheduler->num_threads() <= 1 || total < 2) {
    return BuildSerial(sources, theta, allowed, pool_seed, budget, out, stats);
  }

  const auto start = std::chrono::steady_clock::now();
  const size_t num_chunks = std::min(scheduler->num_threads(), total);
  for (size_t c = 0; c < num_chunks; ++c) Chunk(c);

  // First failing status code wins; workers stop drawing once any chunk
  // aborts. Chunks are interactive tasks in a private group; waiting from a
  // scheduler worker (the batch-chunk case) runs them inline, so sampling on
  // the very scheduler that carries the batch cannot deadlock.
  std::atomic<uint32_t> abort_code{0};
  TaskGroup group(*scheduler);

  for (size_t c = 0; c < num_chunks; ++c) {
    scheduler->Submit(TaskPriority::kInteractive, group, [&, c] {
      ChunkScratch& cs = *chunks_[c];
      cs.slab.Clear();
      cs.samples = 0;
      cs.explored_nodes = 0;
      const size_t begin = total * c / num_chunks;
      const size_t end = total * (c + 1) / num_chunks;
      for (size_t s = begin; s < end; ++s) {
        if (abort_code.load(std::memory_order_relaxed) != 0) break;
        const StatusCode code = COD_FAILPOINT("influence/parallel_pool")
                                    ? StatusCode::kCancelled
                                    : budget.ExhaustedCode();
        if (code != StatusCode::kOk) {
          uint32_t expected = 0;
          abort_code.compare_exchange_strong(
              expected, static_cast<uint32_t>(code),
              std::memory_order_relaxed);
          break;
        }
        const NodeId source = sources[s / theta];
        Rng rng(RrSampleSeed(pool_seed, uint64_t{source} * theta + s % theta));
        cs.sampler.SampleRestricted(source, allowed, rng, &cs.rr);
        cs.slab.Append(cs.rr);
        ++cs.samples;
        cs.explored_nodes += cs.rr.NumNodes();
      }
    });
  }
  group.Wait();

  stats->chunks = num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    stats->samples += chunks_[c]->samples;
    stats->explored_nodes += chunks_[c]->explored_nodes;
  }
  stats->sample_seconds = SecondsSince(start);

  const auto code =
      static_cast<StatusCode>(abort_code.load(std::memory_order_relaxed));
  if (code != StatusCode::kOk) {
    out->Clear();
    return code;
  }

  // Deterministic merge: chunks cover contiguous, increasing sample-index
  // ranges, so appending them in chunk order reproduces the serial layout
  // exactly.
  const auto merge_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < num_chunks; ++c) out->AppendPool(chunks_[c]->slab);
  stats->merge_seconds = SecondsSince(merge_start);
  return StatusCode::kOk;
}

}  // namespace cod
