#include "influence/sketch_oracle.h"

#include <algorithm>

#include "influence/rr_pool.h"

namespace cod {
namespace {

// Per-node bottom-k accumulator over one world. Ranks arrive in strictly
// increasing order (nodes are processed by ascending rank), so insertion is
// an append until the sketch is full.
struct Sketch {
  uint32_t count = 0;     // inserted ranks (saturates at k)
  double kth_rank = 0.0;  // valid when count == k
};

}  // namespace

std::vector<double> SketchInfluence(const DiffusionModel& model,
                                    const SketchOptions& options, Rng& rng) {
  const Graph& g = model.graph();
  const size_t n = g.NumNodes();
  COD_CHECK(options.num_worlds >= 1);
  COD_CHECK(options.sketch_size >= 2);
  const uint32_t k = static_cast<uint32_t>(options.sketch_size);
  const bool is_lt = model.kind() == DiffusionKind::kLinearThreshold;

  std::vector<double> total(n, 0.0);

  // Reverse adjacency of the live world: rev[v] = nodes u with live u -> v
  // stored CSR-style (rebuilt per world).
  std::vector<uint32_t> rev_offsets(n + 1);
  std::vector<NodeId> rev_targets;
  std::vector<std::pair<double, NodeId>> by_rank(n);
  std::vector<Sketch> sketch(n);
  std::vector<NodeId> frontier;
  std::vector<uint32_t> visit_epoch(n, 0);
  uint32_t epoch = 0;

  // Scratch for live-edge sampling: for node v, the live in-edges point
  // FROM rev sources; we need reverse-of-influence edges, i.e., for the
  // pruned reverse BFS we walk from u to nodes that can reach u: those are
  // predecessors in the influence direction, so we need in-edges of the
  // influence DAG = rev adjacency below.
  std::vector<std::pair<NodeId, NodeId>> live;  // (from, to) influence edges

  // Counter-seeded world schedule (same discipline as the RR pools): ONE
  // draw from the caller's stream anchors the whole run, then world w's
  // live-edge stream seeds from RrSampleSeed(base_seed, 2w) and its rank
  // schedule from RrSampleSeed(base_seed, 2w + 1). Each world is a pure
  // function of (base_seed, w) — independent of how many draws other
  // worlds consumed — instead of every world's randomness shifting with
  // the live-edge draw count of all worlds before it.
  const uint64_t base_seed = rng.Next();

  for (size_t world = 0; world < options.num_worlds; ++world) {
    Rng live_rng(RrSampleSeed(base_seed, 2 * uint64_t{world}));
    live.clear();
    if (is_lt) {
      for (NodeId v = 0; v < n; ++v) {
        double r = live_rng.UniformDouble();
        for (const AdjEntry& a : g.Neighbors(v)) {
          r -= model.ProbToward(a.edge, v);
          if (r < 0.0) {
            live.emplace_back(a.to, v);
            break;
          }
        }
      }
    } else {
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        const auto [lo, hi] = g.Endpoints(e);
        if (live_rng.Bernoulli(model.ProbToward(e, hi))) {
          live.emplace_back(lo, hi);
        }
        if (live_rng.Bernoulli(model.ProbToward(e, lo))) {
          live.emplace_back(hi, lo);
        }
      }
    }

    // CSR of predecessors: for influence edge (from, to), `from` reaches
    // whatever `to` reaches, so the pruned BFS from a target u must expand
    // to u's influence-predecessors.
    std::fill(rev_offsets.begin(), rev_offsets.end(), 0);
    for (const auto& [from, to] : live) ++rev_offsets[to + 1];
    for (size_t i = 1; i <= n; ++i) rev_offsets[i] += rev_offsets[i - 1];
    rev_targets.resize(live.size());
    {
      std::vector<uint32_t> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
      for (const auto& [from, to] : live) {
        rev_targets[cursor[to]++] = from;
      }
    }

    // Random ranks from the world's counter-seeded rank schedule (node v's
    // rank is RrSampleSeed(rank_base, v) folded to [0, 1) exactly like
    // Rng::UniformDouble), processed ascending with pruned reverse BFS.
    const uint64_t rank_base = RrSampleSeed(base_seed, 2 * uint64_t{world} + 1);
    for (NodeId v = 0; v < n; ++v) {
      const uint64_t bits = RrSampleSeed(rank_base, v);
      by_rank[v] = {static_cast<double>(bits >> 11) * 0x1.0p-53, v};
    }
    std::sort(by_rank.begin(), by_rank.end());
    for (Sketch& s : sketch) s = Sketch{};

    for (const auto& [rank, u] : by_rank) {
      ++epoch;
      frontier.assign(1, u);
      visit_epoch[u] = epoch;
      for (size_t head = 0; head < frontier.size(); ++head) {
        const NodeId w = frontier[head];
        Sketch& s = sketch[w];
        if (s.count >= k) continue;  // full: all predecessors already full
        ++s.count;
        if (s.count == k) s.kth_rank = rank;
        for (uint32_t i = rev_offsets[w]; i < rev_offsets[w + 1]; ++i) {
          const NodeId p = rev_targets[i];
          if (visit_epoch[p] != epoch) {
            visit_epoch[p] = epoch;
            frontier.push_back(p);
          }
        }
      }
    }

    for (NodeId v = 0; v < n; ++v) {
      const Sketch& s = sketch[v];
      total[v] += s.count < k
                      ? static_cast<double>(s.count)
                      : static_cast<double>(k - 1) / s.kth_rank;
    }
  }
  for (double& x : total) x /= static_cast<double>(options.num_worlds);
  return total;
}

}  // namespace cod
