// Influence-coverage sketches over the community hierarchy (ROADMAP item 3,
// the chopper sketch_bits idiom): tiny mergeable per-community summaries of
// RR-set coverage, built bottom-up alongside HimorIndex and queried in two
// ways.
//
//  * Safe pruning (one-sided, answer-preserving). For every MATERIALIZED
//    community C the index stores the top `rank_depth` exact cumulative
//    coverage counts (the same counts HIMOR ranks against), plus each
//    node's count at its topmost materialized ancestor (`top_count`). By
//    monotonicity of cumulative counts up the chain, count_C(q) <=
//    top_count(q) for every ancestor C of q, so
//        thresholds(C)[k-1] > top_count(q)
//    proves at least k nodes of C beat q there — rank_C(q) is exactly k
//    (clamped) — BEFORE any sampling. CompressedEvaluator uses this to skip
//    whole levels; the pruned evaluation is bit-identical to the unpruned
//    one because the pool follows the same counter-seeded schedule
//    RrSampleSeed(schedule_seed, source * theta + j) the index was built
//    with (see SketchPruneGuide in core/compressed_eval.h).
//
//  * The sketch rung. The same thresholds answer "first ancestor where q is
//    top-k" with zero sampling (EstimatedRank), and bottom-k signatures of
//    SketchNodeRank values estimate each community's covered-set size
//    (EstimatedCoverage). Both power CodVariant::kCodSketch, the degraded
//    bottom rung of the batch ladder.
//
// Signatures use a COUNTER-SEEDED rank schedule: a node's 64-bit rank is a
// pure function of (schedule_seed, node), so unions are associative and
// commutative, parallel bottom-up merges are bit-identical to serial ones,
// and delta rebuilds that re-sketch only dirty components reproduce clean
// components byte-for-byte.

#ifndef COD_INFLUENCE_COVERAGE_SKETCH_H_
#define COD_INFLUENCE_COVERAGE_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// Deterministic 64-bit sketch rank of a node. XOR-mixes the node into the
// seed (where RrSampleSeed mixes additively) so the two schedules stay
// decorrelated even when fed the same seed.
inline uint64_t SketchNodeRank(uint64_t seed, NodeId v) {
  uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (uint64_t{v} + 1));
  return SplitMix64(state);
}

// Bottom-k signature algebra. A signature is a strictly ascending vector of
// distinct 64-bit ranks, at most `cap` long: the `cap` smallest distinct
// ranks of the underlying node set. Distinctness (rather than a multiset)
// is what makes Merge associative, commutative, and idempotent, and keeps
// the cardinality estimator unbiased.

// Inserts `value` into signature `sig`, keeping the `cap` smallest distinct
// values. No-op if the value is present or too large for a full signature.
void BottomKInsert(std::vector<uint64_t>* sig, uint64_t value, size_t cap);

// `*out` = the `cap` smallest distinct values of a ∪ b. `out` must not
// alias either input.
void BottomKMerge(std::span<const uint64_t> a, std::span<const uint64_t> b,
                  size_t cap, std::vector<uint64_t>* out);

// Distinct-set cardinality estimate from a bottom-k signature: exact while
// the signature is under-full, else the classic (cap - 1) / U_(cap) with
// the cap-th smallest rank normalized to (0, 1].
double BottomKEstimate(std::span<const uint64_t> sig, size_t cap);

// The immutable sketch index, CSR over communities. Rows exist for every
// community id of the dendrogram it was built from; non-materialized
// communities (HIMOR's purity rule) have empty rows and never prune.
class CoverageSketchIndex {
 public:
  // Schedule identity: pruning is sound only against a pool built with this
  // exact (seed, theta) schedule, so the evaluator checks both.
  uint64_t schedule_seed() const { return schedule_seed_; }
  uint32_t theta() const { return theta_; }
  uint32_t sketch_bits() const { return sketch_bits_; }
  // Signature capacity: 1 << sketch_bits.
  uint32_t sketch_cap() const { return uint32_t{1} << sketch_bits_; }
  // Thresholds kept per community (== himor_max_rank at build time).
  uint32_t rank_depth() const { return rank_depth_; }

  size_t NumCommunities() const { return support_.size(); }
  size_t NumNodes() const { return top_count_.size(); }

  // q's exact cumulative coverage count at its topmost materialized
  // ancestor; an upper bound on count_C(q) for every ancestor C.
  uint32_t TopCountOf(NodeId v) const { return top_count_[v]; }

  // Descending exact coverage counts of C's top-min(rank_depth, support)
  // covered nodes. Empty for non-materialized communities.
  std::span<const uint32_t> ThresholdsOf(CommunityId c) const {
    return std::span<const uint32_t>(thr_values_)
        .subspan(thr_offsets_[c], thr_offsets_[c + 1] - thr_offsets_[c]);
  }
  // Bottom-k signature of C's covered set (empty when not materialized).
  std::span<const uint64_t> SignatureOf(CommunityId c) const {
    return std::span<const uint64_t>(sig_values_)
        .subspan(sig_offsets_[c], sig_offsets_[c + 1] - sig_offsets_[c]);
  }
  // Exact size of C's covered set (nodes with nonzero coverage count).
  uint32_t SupportOf(CommunityId c) const { return support_[c]; }

  // One-sided pruning bound: true only when >= k nodes of C have exact
  // counts strictly above q's best possible count there, i.e. the exact
  // evaluator is GUARANTEED to report rank k (clamped) at C. Unknown
  // communities (including kInvalidCommunity) never prove anything.
  bool ProvesNotTopK(CommunityId c, uint32_t k, uint32_t top_count_q) const {
    if (c >= NumCommunities()) return false;
    const auto thr = ThresholdsOf(c);
    return k <= thr.size() && thr[k - 1] > top_count_q;
  }

  // Lower bound on q's exact clamped rank in C (number of stored thresholds
  // strictly above top_count_q). The sketch rung treats it as the rank.
  uint32_t EstimatedRank(CommunityId c, uint32_t top_count_q) const;

  // Bottom-k estimate of |covered set of C|; exact (== SupportOf) whenever
  // the signature is under-full.
  double EstimatedCoverage(CommunityId c) const {
    return BottomKEstimate(SignatureOf(c), sketch_cap());
  }

  size_t MemoryBytes() const;

  // Snapshot codec (section payload; the container adds magic/CRC).
  // Deserialize validates structure: monotone offsets, descending
  // thresholds, strictly ascending signatures, caps respected.
  void SerializeTo(BinaryBufferWriter& out) const;
  static Result<CoverageSketchIndex> Deserialize(BinarySpanReader& in);

  // Transient build timings (not serialized): bottom-up signature merging
  // vs final CSR packing, for the cod_sketch_build_stage_seconds metric.
  double build_merge_seconds() const { return build_merge_seconds_; }
  double build_finalize_seconds() const { return build_finalize_seconds_; }

 private:
  friend class CoverageSketchBuilder;

  uint64_t schedule_seed_ = 0;
  uint32_t theta_ = 0;
  uint32_t sketch_bits_ = 0;
  uint32_t rank_depth_ = 0;

  std::vector<uint64_t> thr_offsets_;  // NumCommunities() + 1
  std::vector<uint32_t> thr_values_;
  std::vector<uint64_t> sig_offsets_;  // NumCommunities() + 1
  std::vector<uint64_t> sig_values_;
  std::vector<uint32_t> support_;    // per community
  std::vector<uint32_t> top_count_;  // per node

  double build_merge_seconds_ = 0.0;
  double build_finalize_seconds_ = 0.0;
};

}  // namespace cod

#endif  // COD_INFLUENCE_COVERAGE_SKETCH_H_
