#include "influence/influence_oracle.h"

namespace cod {

InfluenceOracle::InfluenceOracle(const DiffusionModel& model)
    : model_(&model),
      sampler_(model),
      allowed_(model.graph().NumNodes(), 0),
      local_(model.graph().NumNodes(), 0) {}

std::vector<uint32_t> InfluenceOracle::CountsWithin(
    std::span<const NodeId> members, uint32_t theta, Rng& rng) {
  COD_CHECK(theta > 0);
  for (size_t i = 0; i < members.size(); ++i) {
    allowed_[members[i]] = 1;
    local_[members[i]] = static_cast<uint32_t>(i);
  }
  std::vector<uint32_t> counts(members.size(), 0);
  for (NodeId source : members) {
    for (uint32_t t = 0; t < theta; ++t) {
      scratch_set_.clear();
      sampler_.SampleSetRestricted(source, &allowed_, rng, &scratch_set_);
      for (NodeId v : scratch_set_) ++counts[local_[v]];
    }
  }
  for (NodeId v : members) allowed_[v] = 0;
  return counts;
}

uint32_t InfluenceOracle::RankOf(std::span<const NodeId> members,
                                 std::span<const uint32_t> counts, NodeId q) {
  COD_CHECK_EQ(members.size(), counts.size());
  uint32_t q_count = 0;
  bool found = false;
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] == q) {
      q_count = counts[i];
      found = true;
      break;
    }
  }
  COD_CHECK(found);
  uint32_t rank = 0;
  for (uint32_t c : counts) {
    if (c > q_count) ++rank;
  }
  return rank;
}

}  // namespace cod
