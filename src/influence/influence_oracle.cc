#include "influence/influence_oracle.h"

#include <algorithm>
#include <atomic>

#include "common/failpoint.h"
#include "common/task_scheduler.h"

namespace cod {

InfluenceOracle::InfluenceOracle(const DiffusionModel& model)
    : model_(&model),
      sampler_(model),
      allowed_(model.graph().NumNodes(), 0),
      local_(model.graph().NumNodes(), 0) {}

InfluenceOracle::ChunkScratch& InfluenceOracle::Chunk(size_t i) {
  while (chunks_.size() <= i) {
    chunks_.push_back(std::make_unique<ChunkScratch>(*model_));
  }
  return *chunks_[i];
}

std::vector<uint32_t> InfluenceOracle::CountsWithin(
    std::span<const NodeId> members, uint32_t theta, Rng& rng) {
  std::vector<uint32_t> counts;
  const StatusCode code =
      CountsWithin(members, theta, rng.Next(), Budget{}, nullptr, &counts);
  COD_CHECK(code == StatusCode::kOk);
  return counts;
}

StatusCode InfluenceOracle::CountsWithin(std::span<const NodeId> members,
                                         uint32_t theta, uint64_t pool_seed,
                                         const Budget& budget,
                                         TaskScheduler* scheduler,
                                         std::vector<uint32_t>* counts) {
  COD_CHECK(theta > 0);
  for (size_t i = 0; i < members.size(); ++i) {
    allowed_[members[i]] = 1;
    local_[members[i]] = static_cast<uint32_t>(i);
  }
  counts->assign(members.size(), 0);
  const size_t total = members.size() * theta;
  StatusCode result = StatusCode::kOk;

  const bool parallel =
      scheduler != nullptr && scheduler->num_threads() > 1 && total >= 2;
  if (!parallel) {
    for (size_t s = 0; s < total; ++s) {
      result = budget.ExhaustedCode();
      if (result != StatusCode::kOk) break;
      Rng sample_rng(RrSampleSeed(pool_seed, s));
      scratch_set_.clear();
      sampler_.SampleSetRestricted(members[s / theta], &allowed_, sample_rng,
                                   &scratch_set_);
      for (NodeId v : scratch_set_) ++(*counts)[local_[v]];
    }
  } else {
    const size_t num_chunks = std::min(scheduler->num_threads(), total);
    for (size_t c = 0; c < num_chunks; ++c) Chunk(c);
    std::atomic<uint32_t> abort_code{0};
    TaskGroup group(*scheduler);
    for (size_t c = 0; c < num_chunks; ++c) {
      scheduler->Submit(TaskPriority::kInteractive, group,
                        [&, c, members, theta, pool_seed] {
        ChunkScratch& cs = *chunks_[c];
        cs.counts.assign(members.size(), 0);
        const size_t begin = total * c / num_chunks;
        const size_t end = total * (c + 1) / num_chunks;
        for (size_t s = begin; s < end; ++s) {
          if (abort_code.load(std::memory_order_relaxed) != 0) break;
          const StatusCode code = COD_FAILPOINT("influence/parallel_pool")
                                      ? StatusCode::kCancelled
                                      : budget.ExhaustedCode();
          if (code != StatusCode::kOk) {
            uint32_t expected = 0;
            abort_code.compare_exchange_strong(
                expected, static_cast<uint32_t>(code),
                std::memory_order_relaxed);
            break;
          }
          Rng sample_rng(RrSampleSeed(pool_seed, s));
          cs.scratch_set.clear();
          cs.sampler.SampleSetRestricted(members[s / theta], &allowed_,
                                         sample_rng, &cs.scratch_set);
          for (NodeId v : cs.scratch_set) ++cs.counts[local_[v]];
        }
      });
    }
    group.Wait();
    // Per-chunk count sums commute, so the merged counts are independent of
    // chunk boundaries and thread count.
    for (size_t c = 0; c < num_chunks; ++c) {
      const auto& chunk_counts = chunks_[c]->counts;
      for (size_t i = 0; i < chunk_counts.size(); ++i) {
        (*counts)[i] += chunk_counts[i];
      }
    }
    result = static_cast<StatusCode>(abort_code.load(std::memory_order_relaxed));
  }

  for (NodeId v : members) allowed_[v] = 0;
  return result;
}

uint32_t InfluenceOracle::RankOf(std::span<const NodeId> members,
                                 std::span<const uint32_t> counts, NodeId q) {
  COD_CHECK_EQ(members.size(), counts.size());
  uint32_t q_count = 0;
  bool found = false;
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i] == q) {
      q_count = counts[i];
      found = true;
      break;
    }
  }
  COD_CHECK(found);
  uint32_t rank = 0;
  for (uint32_t c : counts) {
    if (c > q_count) ++rank;
  }
  return rank;
}

}  // namespace cod
