#include "influence/im.h"

#include <algorithm>
#include <queue>

#include "influence/monte_carlo.h"

namespace cod {
namespace {

std::vector<NodeId> CandidateNodes(const Graph& g,
                                   const std::vector<char>* allowed) {
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (allowed == nullptr || (*allowed)[v]) nodes.push_back(v);
  }
  return nodes;
}

}  // namespace

ImResult MaximizeInfluenceRis(const DiffusionModel& model, size_t num_seeds,
                              size_t num_samples, Rng& rng,
                              const std::vector<char>* allowed) {
  const Graph& g = model.graph();
  COD_CHECK(num_seeds >= 1);
  COD_CHECK(num_samples >= 1);
  const std::vector<NodeId> candidates = CandidateNodes(g, allowed);
  COD_CHECK(!candidates.empty());

  // Sample RR sets and build the inverted index node -> RR sets containing
  // it. Sources are uniform over the candidate universe.
  RrSampler sampler(model);
  std::vector<std::vector<uint32_t>> sets_of(g.NumNodes());
  std::vector<NodeId> scratch;
  for (uint32_t s = 0; s < num_samples; ++s) {
    const NodeId source = candidates[rng.UniformInt(candidates.size())];
    scratch.clear();
    sampler.SampleSetRestricted(source, allowed, rng, &scratch);
    for (NodeId v : scratch) sets_of[v].push_back(s);
  }

  // Greedy maximum coverage with CELF-style lazy gain re-evaluation.
  std::vector<char> covered(num_samples, 0);
  std::vector<size_t> gain(g.NumNodes(), 0);
  // Max-heap of (stale gain, node); gains only decrease, so a popped entry
  // whose recomputed gain still tops the heap is exactly optimal.
  std::priority_queue<std::pair<size_t, NodeId>> heap;
  for (NodeId v : candidates) {
    gain[v] = sets_of[v].size();
    heap.emplace(gain[v], v);
  }

  ImResult result;
  size_t covered_count = 0;
  std::vector<char> chosen(g.NumNodes(), 0);
  while (result.seeds.size() < num_seeds && !heap.empty()) {
    auto [stale_gain, v] = heap.top();
    heap.pop();
    if (chosen[v]) continue;
    // Recompute the true marginal gain.
    size_t fresh = 0;
    for (uint32_t s : sets_of[v]) fresh += !covered[s];
    if (!heap.empty() && fresh < heap.top().first) {
      heap.emplace(fresh, v);  // push back with the corrected key
      continue;
    }
    chosen[v] = 1;
    result.seeds.push_back(v);
    for (uint32_t s : sets_of[v]) {
      if (!covered[s]) {
        covered[s] = 1;
        ++covered_count;
      }
    }
  }
  result.estimated_influence = static_cast<double>(covered_count) /
                               static_cast<double>(num_samples) *
                               static_cast<double>(candidates.size());
  return result;
}

ImResult MaximizeInfluenceGreedyMc(const DiffusionModel& model,
                                   size_t num_seeds, size_t trials, Rng& rng,
                                   const std::vector<char>* allowed) {
  const Graph& g = model.graph();
  COD_CHECK(num_seeds >= 1);
  const std::vector<NodeId> candidates = CandidateNodes(g, allowed);
  COD_CHECK(!candidates.empty());
  MonteCarloSimulator simulator(model);

  ImResult result;
  result.estimated_influence = 0.0;
  std::vector<char> chosen(g.NumNodes(), 0);
  // CELF: (stale marginal gain, node) max-heap, valid because marginal
  // gains are monotonically non-increasing under submodularity.
  std::priority_queue<std::pair<double, NodeId>> heap;
  for (NodeId v : candidates) {
    heap.emplace(static_cast<double>(g.NumNodes()), v);  // optimistic init
  }
  std::vector<NodeId> with_candidate;
  double current = 0.0;
  while (result.seeds.size() < num_seeds && !heap.empty()) {
    auto [stale, v] = heap.top();
    heap.pop();
    if (chosen[v]) continue;
    with_candidate = result.seeds;
    with_candidate.push_back(v);
    const double spread =
        simulator.EstimateInfluenceOfSet(with_candidate, trials, rng, allowed);
    const double fresh = spread - current;
    if (!heap.empty() && fresh < heap.top().first) {
      heap.emplace(fresh, v);
      continue;
    }
    chosen[v] = 1;
    result.seeds.push_back(v);
    current = spread;
  }
  result.estimated_influence = current;
  return result;
}

}  // namespace cod
