// Attribute-weighted graph transform and global reclustering (the CODR
// variant, paper Section IV intro).
//
// To make a community hierarchy reflect a query attribute l_q, the graph is
// rewritten as g_l: every edge whose two endpoints both carry l_q has its
// weight boosted by `beta` (w = 1 + beta instead of 1), and hierarchical
// clustering is run on the weighted graph. The paper leaves the exact
// transform open ("any method [25], [26]"); this additive boost is the
// simplest member of that family and is configurable.

#ifndef COD_CORE_GLOBAL_RECLUSTER_H_
#define COD_CORE_GLOBAL_RECLUSTER_H_

#include "common/deadline.h"
#include "common/status.h"
#include "graph/attributes.h"
#include "graph/embeddings.h"
#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

// How the query attribute reshapes edge weights in g_l. The paper leaves the
// scheme open ("any method [25], [26]"); three members of that family:
//  * kQueryBoost (default): w = base + beta if both endpoints carry the
//    query attribute, else base.
//  * kJaccard: w = base * (1 + beta * J(A(u), A(v))) with J the Jaccard
//    similarity of the full attribute sets — attribute-blind to the query
//    but rewards overall homophily.
//  * kQueryJaccard: like kJaccard, but only edges whose endpoints share the
//    query attribute get the homophily bonus.
enum class AttributeTransform {
  kQueryBoost,
  kJaccard,
  kQueryJaccard,
  // Non-categorical attributes via embeddings (paper Sec. II-A):
  // w = base * (1 + beta * max(0, cosine(u, v))); requires
  // TransformOptions::embeddings. The query attribute is ignored.
  kEmbeddingCosine,
};

struct TransformOptions {
  AttributeTransform transform = AttributeTransform::kQueryBoost;
  double beta = 2.0;
  // Required by kEmbeddingCosine; must outlive every transform call.
  const EmbeddingTable* embeddings = nullptr;
};

// Whole-graph transform: same topology, attribute-reshaped weights. The
// span overloads treat an edge as query-attributed when both endpoints carry
// at least one of `query_attrs` (multi-attribute "topic set" queries); the
// AttributeId overloads are the single-attribute convenience forms
// (kInvalidAttribute = no query attribute, i.e., no boost).
Graph BuildAttributeWeightedGraph(const Graph& g, const AttributeTable& attrs,
                                  std::span<const AttributeId> query_attrs,
                                  const TransformOptions& options);
Graph BuildAttributeWeightedGraph(const Graph& g, const AttributeTable& attrs,
                                  AttributeId query_attribute,
                                  const TransformOptions& options);

// Induced-subgraph transform used by LORE: only `members` and their mutual
// edges, with the same weighting rule; `to_parent` maps local to parent ids.
InducedSubgraph BuildAttributeWeightedSubgraph(
    const Graph& g, const AttributeTable& attrs,
    std::span<const AttributeId> query_attrs, const TransformOptions& options,
    std::span<const NodeId> members);
InducedSubgraph BuildAttributeWeightedSubgraph(
    const Graph& g, const AttributeTable& attrs, AttributeId query_attribute,
    const TransformOptions& options, std::span<const NodeId> members);

// CODR's hierarchy: agglomerative clustering of the transformed graph.
Dendrogram GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                           std::span<const AttributeId> query_attrs,
                           const TransformOptions& options);
Dendrogram GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                           AttributeId query_attribute,
                           const TransformOptions& options);

// Budget-aware forms: the clustering pass polls `budget` (see the NN-chain
// poll in hierarchy/agglomerative.h) and unwinds with kTimeout / kCancelled
// instead of overshooting a deadline by a whole agglomerative run.
Result<Dendrogram> GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                                   std::span<const AttributeId> query_attrs,
                                   const TransformOptions& options,
                                   const Budget& budget);
Result<Dendrogram> GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                                   AttributeId query_attribute,
                                   const TransformOptions& options,
                                   const Budget& budget);

}  // namespace cod

#endif  // COD_CORE_GLOBAL_RECLUSTER_H_
