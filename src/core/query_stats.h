// Per-query instrumentation, filled by EngineCore query paths and carried
// back on CodResult.
//
// QueryStats answers "where did THIS query's time go" — the per-stage costs
// the paper reports in aggregate (chain build vs. sampling, Fig. 9; HIMOR
// hit rates, Table 2) attributed inside one live query. The QueryWorkspace
// owns the accumulator (queries are single-threaded over one workspace);
// EngineCore::Query resets it, the stage implementations add to it, and the
// final CodResult copies it out. The same numbers also feed the process-wide
// MetricsRegistry histograms, tagged by CodVariant, in exactly one place
// (EngineCore::Query).
//
// The struct intentionally holds plain doubles/ints — it is written by one
// thread and is part of the query's return value, not a shared metric.

#ifndef COD_CORE_QUERY_STATS_H_
#define COD_CORE_QUERY_STATS_H_

#include <cstddef>
#include <cstdint>

namespace cod {

struct QueryStats {
  // Wall time per stage, seconds. Stages that a variant skips stay 0.
  double chain_build_seconds = 0.0;  // (re)clustering + chain construction
  double lore_scan_seconds = 0.0;    // LORE reclustering-score edge scan
  double sample_seconds = 0.0;       // RR-pool construction (sampling only)
  double merge_seconds = 0.0;        // parallel chunk merge (0 when serial)
  double eval_seconds = 0.0;         // HFS bucketing + incremental top-k

  uint64_t rr_samples = 0;       // RR graphs drawn
  uint64_t explored_nodes = 0;   // total RR-graph nodes explored (|R|)
  size_t levels_examined = 0;    // chain levels the evaluation covered

  // Intra-query parallel sampling provenance (see influence/rr_pool.h).
  size_t parallel_chunks = 0;  // chunks of the pool build; 0 = serial

  // Index / cache provenance.
  bool index_hit = false;        // HIMOR alone answered (CODL fast path)
  bool codr_cache_hit = false;   // CODR hierarchy served from the cache

  // Sketch-guided pruning (core/compressed_eval.h): chain levels skipped by
  // the coverage-sketch bound / levels a prune pass considered. Both stay 0
  // when the engine has no sketch or the chain carries no community ids.
  size_t sketch_levels_pruned = 0;
  size_t sketch_levels_considered = 0;

  double TotalStageSeconds() const {
    return chain_build_seconds + lore_scan_seconds + sample_seconds +
           merge_seconds + eval_seconds;
  }
};

}  // namespace cod

#endif  // COD_CORE_QUERY_STATS_H_
