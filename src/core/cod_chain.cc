#include "core/cod_chain.h"

#include <algorithm>

namespace cod {

std::vector<NodeId> CodChain::MembersOfLevel(uint32_t h) const {
  COD_CHECK(h < NumLevels());
  std::vector<NodeId> members;
  members.reserve(community_size[h]);
  for (NodeId v : universe) {
    if (level[v] <= h) members.push_back(v);
  }
  COD_CHECK_EQ(members.size(), community_size[h]);
  return members;
}

CodChain BuildChainFromDendrogram(const Dendrogram& dendrogram, NodeId q,
                                  CommunityId top,
                                  const std::vector<NodeId>* node_map,
                                  size_t parent_num_nodes) {
  std::vector<CommunityId> path = dendrogram.PathToRoot(q);
  if (top != kInvalidCommunity) {
    const auto it = std::find(path.begin(), path.end(), top);
    COD_CHECK(it != path.end());  // `top` must be an ancestor of q
    path.erase(it + 1, path.end());
  }
  const size_t num_nodes =
      node_map == nullptr ? dendrogram.NumLeaves() : parent_num_nodes;
  auto map_id = [&](NodeId local) {
    return node_map == nullptr ? local : (*node_map)[local];
  };

  CodChain chain;
  chain.level.assign(num_nodes, 0);
  chain.in_universe.assign(num_nodes, 0);
  chain.community_size.reserve(path.size());

  // Members(C_{h-1}) is a contiguous sub-span of Members(C_h) over the same
  // underlying leaf order, so each level's fresh nodes are a prefix plus a
  // suffix of its member span.
  const NodeId* prev_begin = nullptr;
  const NodeId* prev_end = nullptr;
  for (size_t h = 0; h < path.size(); ++h) {
    const auto span = dendrogram.Members(path[h]);
    const NodeId* begin = span.data();
    const NodeId* end = span.data() + span.size();
    auto assign = [&](const NodeId* lo, const NodeId* hi) {
      for (const NodeId* p = lo; p < hi; ++p) {
        const NodeId v = map_id(*p);
        chain.level[v] = static_cast<uint32_t>(h);
        chain.in_universe[v] = 1;
        chain.universe.push_back(v);
      }
    };
    if (h == 0) {
      assign(begin, end);
    } else {
      COD_CHECK(begin <= prev_begin && prev_end <= end);
      assign(begin, prev_begin);
      assign(prev_end, end);
    }
    prev_begin = begin;
    prev_end = end;
    chain.community_size.push_back(static_cast<uint32_t>(span.size()));
  }
  return chain;
}

void AppendLevelWithNewMembers(CodChain* chain,
                               std::span<const NodeId> new_members,
                               uint32_t expected_size) {
  const uint32_t h = static_cast<uint32_t>(chain->NumLevels());
  for (NodeId v : new_members) {
    COD_CHECK(v < chain->level.size());
    COD_CHECK(!chain->in_universe[v]);
    chain->in_universe[v] = 1;
    chain->level[v] = h;
    chain->universe.push_back(v);
  }
  COD_CHECK_EQ(chain->universe.size(), expected_size);
  chain->community_size.push_back(expected_size);
}

void AppendLevel(CodChain* chain, std::span<const NodeId> members) {
  const uint32_t h = static_cast<uint32_t>(chain->NumLevels());
  for (NodeId v : members) {
    COD_CHECK(v < chain->level.size());
    if (chain->in_universe[v]) continue;
    chain->in_universe[v] = 1;
    chain->level[v] = h;
    chain->universe.push_back(v);
  }
  chain->community_size.push_back(static_cast<uint32_t>(chain->universe.size()));
}

}  // namespace cod
