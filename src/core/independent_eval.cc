#include "core/independent_eval.h"

namespace cod {

IndependentEvaluator::IndependentEvaluator(const DiffusionModel& model,
                                           uint32_t theta)
    : model_(&model), theta_(theta), oracle_(model) {
  COD_CHECK(theta > 0);
}

ChainEvalOutcome IndependentEvaluator::Evaluate(const CodChain& chain,
                                                NodeId q, uint32_t k, Rng& rng,
                                                const Budget& budget,
                                                TaskScheduler* scheduler) {
  const size_t num_levels = chain.NumLevels();
  COD_CHECK(num_levels >= 1);
  COD_CHECK(chain.in_universe[q]);
  COD_CHECK_EQ(chain.level[q], 0u);

  last_timed_out_ = false;
  last_explored_nodes_ = 0;

  ChainEvalOutcome outcome;
  outcome.rank_per_level.assign(num_levels, k);
  for (uint32_t h = 0; h < num_levels; ++h) {
    const StatusCode budget_code = budget.ExhaustedCode();
    if (budget_code != StatusCode::kOk) {
      outcome.code = budget_code;
      last_timed_out_ = true;
      break;
    }
    const std::vector<NodeId> members = chain.MembersOfLevel(h);
    std::vector<uint32_t> counts;
    const StatusCode level_code = oracle_.CountsWithin(
        members, theta_, rng.Next(), budget, scheduler, &counts);
    if (level_code != StatusCode::kOk) {
      outcome.code = level_code;
      last_timed_out_ = true;
      break;
    }
    for (uint32_t c : counts) last_explored_nodes_ += c;
    const uint32_t rank = InfluenceOracle::RankOf(members, counts, q);
    outcome.rank_per_level[h] = rank;
    if (rank < k) {
      outcome.best_level = static_cast<int>(h);
      outcome.rank_at_best = rank;
    }
  }
  return outcome;
}

}  // namespace cod
