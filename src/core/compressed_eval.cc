#include "core/compressed_eval.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <span>

namespace cod {
namespace {

// Small sorted top-k candidate set (descending count, ties toward smaller
// node id). k is tiny, so linear maintenance beats a heap and, unlike one,
// supports in-place value increases. Storage is borrowed from the evaluator
// so repeated queries reuse its capacity.
class TopKCandidates {
 public:
  TopKCandidates(uint32_t k, std::vector<std::pair<uint32_t, NodeId>>* items)
      : k_(k), items_(*items) {
    items_.clear();
  }

  void Update(NodeId v, uint32_t count) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].second == v) {
        items_[i].first = count;
        Resort(i);
        return;
      }
    }
    if (items_.size() < k_) {
      items_.emplace_back(count, v);
      Resort(items_.size() - 1);
      return;
    }
    const auto& worst = items_.back();
    if (count > worst.first ||
        (count == worst.first && v < worst.second)) {
      items_.back() = {count, v};
      Resort(items_.size() - 1);
    }
  }

  // Number of candidates with a strictly larger count than `count`. When the
  // candidate set holds the k largest cumulative counts, this equals the
  // query's true rank whenever that rank is < k (see DESIGN.md note 4).
  uint32_t RankAgainst(uint32_t count) const {
    uint32_t rank = 0;
    for (const auto& [c, v] : items_) {
      if (c > count) ++rank;
    }
    return rank;
  }

 private:
  void Resort(size_t i) {
    // Bubble the updated entry toward the front to restore descending order.
    while (i > 0 && (items_[i].first > items_[i - 1].first ||
                     (items_[i].first == items_[i - 1].first &&
                      items_[i].second < items_[i - 1].second))) {
      std::swap(items_[i], items_[i - 1]);
      --i;
    }
  }

  uint32_t k_;
  std::vector<std::pair<uint32_t, NodeId>>& items_;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

CompressedEvaluator::CompressedEvaluator(const DiffusionModel& model,
                                         uint32_t theta)
    : model_(&model), theta_(theta), pool_builder_(model) {
  COD_CHECK(theta > 0);
}

void CompressedEvaluator::Rebind(const DiffusionModel& model, uint32_t theta) {
  COD_CHECK(theta > 0);
  model_ = &model;
  theta_ = theta;
  pool_builder_.Rebind(model);
  last_explored_nodes_ = 0;
  last_samples_ = 0;
  last_sample_seconds_ = 0.0;
  last_merge_seconds_ = 0.0;
  last_eval_seconds_ = 0.0;
  last_parallel_chunks_ = 0;
  last_levels_pruned_ = 0;
  last_levels_considered_ = 0;
  // The stamp arrays are query-scoped; capacity survives (they only regrow
  // when the new graph is larger), so epoch swaps between same-sized graphs
  // stay allocation-free.
}

ChainEvalOutcome CompressedEvaluator::Evaluate(const CodChain& chain, NodeId q,
                                               uint32_t k, Rng& rng,
                                               const Budget& budget,
                                               TaskScheduler* scheduler,
                                               const SketchPruneGuide* guide) {
  const size_t num_levels = chain.NumLevels();
  COD_CHECK(num_levels >= 1);
  COD_CHECK(chain.in_universe[q]);
  COD_CHECK_EQ(chain.level[q], 0u);
  COD_CHECK(k >= 1);

  // One draw is consumed from the caller's stream whether or not it ends up
  // seeding the pool — callers rely on Evaluate advancing rng by exactly one
  // draw per call. Every RR sample then derives its own Rng from
  // RrSampleSeed(pool_seed, source * theta + j), making the pool
  // independent of sampling order, thread placement, and source filtering.
  const uint64_t drawn_seed = rng.Next();

  // An active guide pins the pool to the sketch's build schedule (same seed,
  // same theta, source-keyed), so the sketch's exact per-community bounds
  // apply verbatim to the pool this evaluation will draw. Pinning is
  // deliberately independent of guide->prune: prune on and off evaluate the
  // very same pool, which is what makes them bit-comparable.
  const CoverageSketchIndex* sketch =
      guide != nullptr ? guide->sketch : nullptr;
  const bool pinned = sketch != nullptr && sketch->theta() == theta_ &&
                      chain.level_community.size() == num_levels &&
                      q < sketch->NumNodes();
  const uint64_t pool_seed = pinned ? sketch->schedule_seed() : drawn_seed;

  // Top-down prune pass: the top-contiguous run of levels whose sketch
  // thresholds prove rank_C(q) == k (clamped) is skipped entirely — their
  // sources never sample and their occurrence lists are never scanned. Only
  // a SUFFIX is pruned: a sample's contributions land at levels >= its
  // source's level, so dropping sources of pruned levels leaves every
  // retained level's data byte-identical.
  last_levels_pruned_ = 0;
  last_levels_considered_ = 0;
  size_t keep = num_levels;
  if (pinned && guide->prune) {
    const uint32_t tq = sketch->TopCountOf(q);
    while (keep > 0 &&
           sketch->ProvesNotTopK(chain.level_community[keep - 1], k, tq)) {
      --keep;
    }
    last_levels_considered_ = num_levels;
    last_levels_pruned_ = num_levels - keep;
  }

  if (keep == 0) {
    // Every level proved: q is outside the top-k everywhere, with zero
    // sampling. Mirror the pool builder's entry poll so an exhausted budget
    // still reports as such.
    last_samples_ = 0;
    last_explored_nodes_ = 0;
    last_sample_seconds_ = 0.0;
    last_merge_seconds_ = 0.0;
    last_eval_seconds_ = 0.0;
    last_parallel_chunks_ = 0;
    ChainEvalOutcome outcome;
    outcome.code = budget.ExhaustedCode();
    if (outcome.code == StatusCode::kOk) {
      outcome.rank_per_level.assign(num_levels, k);
    }
    return outcome;
  }

  std::span<const NodeId> sources(chain.universe);
  if (keep < num_levels) {
    pruned_sources_.clear();
    for (const NodeId v : chain.universe) {
      if (chain.level[v] < keep) pruned_sources_.push_back(v);
    }
    sources = pruned_sources_;
  }

  // --- Stage 1: shared sample generation into the slab pool. ---
  ParallelRrPool::BuildStats build_stats;
  const StatusCode code =
      pool_builder_.Build(sources, theta_, chain.in_universe, pool_seed,
                          budget, scheduler, &slab_, &build_stats);
  last_samples_ = build_stats.samples;
  last_explored_nodes_ = build_stats.explored_nodes;
  last_sample_seconds_ = build_stats.sample_seconds;
  last_merge_seconds_ = build_stats.merge_seconds;
  last_eval_seconds_ = 0.0;
  last_parallel_chunks_ = build_stats.chunks;
  if (code != StatusCode::kOk) {
    ChainEvalOutcome aborted;
    aborted.code = code;
    return aborted;
  }

  // --- Stage 2: HFS bucketing + incremental top-k evaluation. ---
  const auto stage2_start = std::chrono::steady_clock::now();
  if (level_queue_.size() < num_levels) level_queue_.resize(num_levels);
  if (level_nodes_.size() < num_levels) level_nodes_.resize(num_levels);
  for (size_t h = 0; h < num_levels; ++h) level_nodes_[h].clear();

  // HFS per stored sample: every reached node lands in level_nodes_ exactly
  // once per sample, at the minimal level where a live path from the source
  // exists. heap_ is a min-heap of pending non-empty levels so sparse chains
  // don't pay O(L) per RR graph.
  const size_t num_samples = slab_.NumSamples();
  for (size_t s = 0; s < num_samples; ++s) {
    // HFS is cheap relative to sampling but still O(|R|); poll the budget at
    // a coarse interval so a mid-evaluation expiry surfaces promptly. Sample
    // boundaries are clean points (queues drained, heap empty).
    if ((s & 63u) == 0u) {
      const StatusCode hfs_code = budget.ExhaustedCode();
      if (hfs_code != StatusCode::kOk) {
        last_eval_seconds_ = SecondsSince(stage2_start);
        ChainEvalOutcome aborted;
        aborted.code = hfs_code;
        return aborted;
      }
    }
    const RrSlabPool::View rr = slab_.Sample(s);
    const size_t n_local = rr.NumNodes();
    if (queued_.size() < n_local) queued_.resize(n_local);
    std::fill(queued_.begin(), queued_.begin() + n_local, 0);

    const uint32_t source_level = chain.level[rr.source];
    queued_[0] = 1;
    level_queue_[source_level].push_back(0);
    heap_.push_back(source_level);

    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      const uint32_t h = heap_.back();
      heap_.pop_back();
      auto& queue = level_queue_[h];
      auto& bucket = level_nodes_[h];
      // Index loop: same-level discoveries extend `queue` while iterating.
      for (size_t idx = 0; idx < queue.size(); ++idx) {
        const uint32_t i = queue[idx];
        bucket.push_back(rr.nodes[i]);
        for (uint32_t u : rr.NeighborsOf(i)) {
          if (queued_[u]) continue;
          queued_[u] = 1;
          const uint32_t h2 = std::max(h, chain.level[rr.nodes[u]]);
          if (h2 != h && level_queue_[h2].empty()) {
            heap_.push_back(h2);
            std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
          }
          level_queue_[h2].push_back(u);
        }
      }
      queue.clear();
    }
  }

  // Incremental top-k from the deepest community outward. tau_ carries
  // cumulative counts, stamped per query; seen_mark_ dedups a level's
  // occurrence list so each node is presented to the candidate set once per
  // level, with its final count (presentation order — first occurrence
  // order — does not affect the resulting top-k set; see DESIGN.md).
  const size_t n = model_->graph().NumNodes();
  if (tau_.size() < n) {
    tau_.resize(n);
    tau_mark_.resize(n, 0);
    seen_mark_.resize(n, 0);
  }
  ++query_epoch_;

  // Levels >= keep were proved by the sketch: the unpruned run would report
  // rank exactly k (clamped) there, so write that directly. Their occurrence
  // lists may hold spill from retained-level sources (h2 rounds up) but are
  // incomplete without the dropped sources, so they must not be scanned.
  ChainEvalOutcome outcome;
  outcome.rank_per_level.resize(num_levels);
  for (size_t h = keep; h < num_levels; ++h) outcome.rank_per_level[h] = k;
  TopKCandidates candidates(k, &topk_items_);
  uint32_t tau_q = 0;
  for (uint32_t h = 0; h < keep; ++h) {
    ++level_epoch_;
    touched_.clear();
    for (const NodeId v : level_nodes_[h]) {
      if (tau_mark_[v] != query_epoch_) {
        tau_mark_[v] = query_epoch_;
        tau_[v] = 0;
      }
      ++tau_[v];
      if (seen_mark_[v] != level_epoch_) {
        seen_mark_[v] = level_epoch_;
        touched_.push_back(v);
      }
    }
    for (const NodeId v : touched_) {
      candidates.Update(v, tau_[v]);
      if (v == q) tau_q = tau_[v];
    }
    const uint32_t rank = candidates.RankAgainst(tau_q);
    outcome.rank_per_level[h] = rank;
    if (rank < k) {
      outcome.best_level = static_cast<int>(h);
      outcome.rank_at_best = rank;
    }
  }
  last_eval_seconds_ = SecondsSince(stage2_start);
  return outcome;
}

}  // namespace cod
