#include "core/compressed_eval.h"

#include <algorithm>
#include <chrono>
#include <queue>

#include "common/failpoint.h"

namespace cod {
namespace {

// Small sorted top-k candidate set (descending count, ties toward smaller
// node id). k is tiny, so linear maintenance beats a heap and, unlike one,
// supports in-place value increases.
class TopKCandidates {
 public:
  explicit TopKCandidates(uint32_t k) : k_(k) {}

  void Update(NodeId v, uint32_t count) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].second == v) {
        items_[i].first = count;
        Resort(i);
        return;
      }
    }
    if (items_.size() < k_) {
      items_.emplace_back(count, v);
      Resort(items_.size() - 1);
      return;
    }
    const auto& worst = items_.back();
    if (count > worst.first ||
        (count == worst.first && v < worst.second)) {
      items_.back() = {count, v};
      Resort(items_.size() - 1);
    }
  }

  // Number of candidates with a strictly larger count than `count`. When the
  // candidate set holds the k largest cumulative counts, this equals the
  // query's true rank whenever that rank is < k (see DESIGN.md note 4).
  uint32_t RankAgainst(uint32_t count) const {
    uint32_t rank = 0;
    for (const auto& [c, v] : items_) {
      if (c > count) ++rank;
    }
    return rank;
  }

 private:
  void Resort(size_t i) {
    // Bubble the updated entry toward the front to restore descending order.
    while (i > 0 && (items_[i].first > items_[i - 1].first ||
                     (items_[i].first == items_[i - 1].first &&
                      items_[i].second < items_[i - 1].second))) {
      std::swap(items_[i], items_[i - 1]);
      --i;
    }
  }

  uint32_t k_;
  std::vector<std::pair<uint32_t, NodeId>> items_;  // (count, node), desc
};

}  // namespace

CompressedEvaluator::CompressedEvaluator(const DiffusionModel& model,
                                         uint32_t theta)
    : model_(&model), theta_(theta), sampler_(model) {
  COD_CHECK(theta > 0);
}

void CompressedEvaluator::Rebind(const DiffusionModel& model, uint32_t theta) {
  COD_CHECK(theta > 0);
  model_ = &model;
  theta_ = theta;
  sampler_.Rebind(model);
  last_explored_nodes_ = 0;
  last_samples_ = 0;
  last_sample_seconds_ = 0.0;
  last_eval_seconds_ = 0.0;
}

ChainEvalOutcome CompressedEvaluator::Evaluate(const CodChain& chain, NodeId q,
                                               uint32_t k, Rng& rng,
                                               const Budget& budget) {
  const size_t num_levels = chain.NumLevels();
  COD_CHECK(num_levels >= 1);
  COD_CHECK(chain.in_universe[q]);
  COD_CHECK_EQ(chain.level[q], 0u);
  COD_CHECK(k >= 1);

  // --- Stage 1: shared sample generation with hierarchical-first search. ---
  std::vector<std::unordered_map<NodeId, uint32_t>> buckets(num_levels);
  if (level_queue_.size() < num_levels) level_queue_.resize(num_levels);
  last_explored_nodes_ = 0;
  last_samples_ = 0;
  last_sample_seconds_ = 0.0;
  last_eval_seconds_ = 0.0;
  const auto stage1_start = std::chrono::steady_clock::now();

  // Min-heap of pending non-empty levels so sparse chains don't pay O(L)
  // per RR graph.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>>
      pending_levels;

  for (NodeId source : chain.universe) {
    for (uint32_t t = 0; t < theta_; ++t) {
      // Check between samples only: here the level queues are drained and
      // pending_levels is empty, so aborting leaves no dirty scratch. The
      // "rr/sample" failpoint injects a mid-evaluation abort at the same
      // clean point (tests of partial-work unwinding).
      const StatusCode budget_code = COD_FAILPOINT("rr/sample")
                                         ? StatusCode::kCancelled
                                         : budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        last_sample_seconds_ = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() -
                                   stage1_start)
                                   .count();
        ChainEvalOutcome aborted;
        aborted.code = budget_code;
        return aborted;
      }
      sampler_.SampleRestricted(source, chain.in_universe, rng, &rr_);
      last_explored_nodes_ += rr_.NumNodes();
      ++last_samples_;

      const size_t n_local = rr_.NumNodes();
      if (queued_.size() < n_local) queued_.resize(n_local);
      std::fill(queued_.begin(), queued_.begin() + n_local, 0);

      const uint32_t source_level = chain.level[rr_.source];
      queued_[0] = 1;
      level_queue_[source_level].push_back(0);
      pending_levels.push(source_level);

      while (!pending_levels.empty()) {
        const uint32_t h = pending_levels.top();
        pending_levels.pop();
        auto& queue = level_queue_[h];
        // Index loop: same-level discoveries extend `queue` while iterating.
        for (size_t idx = 0; idx < queue.size(); ++idx) {
          const uint32_t i = queue[idx];
          const NodeId v = rr_.nodes[i];
          ++buckets[h][v];
          for (uint32_t u : rr_.NeighborsOf(i)) {
            if (queued_[u]) continue;
            queued_[u] = 1;
            const uint32_t h2 = std::max(h, chain.level[rr_.nodes[u]]);
            if (h2 != h && level_queue_[h2].empty()) pending_levels.push(h2);
            level_queue_[h2].push_back(u);
          }
        }
        queue.clear();
      }
    }
  }

  const auto stage2_start = std::chrono::steady_clock::now();
  last_sample_seconds_ =
      std::chrono::duration<double>(stage2_start - stage1_start).count();

  // --- Stage 2: incremental top-k evaluation. ---
  ChainEvalOutcome outcome;
  outcome.rank_per_level.resize(num_levels);
  TopKCandidates candidates(k);
  std::unordered_map<NodeId, uint32_t> tau;  // cumulative counts
  tau.reserve(1024);
  uint32_t tau_q = 0;
  for (uint32_t h = 0; h < num_levels; ++h) {
    for (const auto& [v, count] : buckets[h]) {
      uint32_t& total = tau[v];
      total += count;
      candidates.Update(v, total);
      if (v == q) tau_q = total;
    }
    const uint32_t rank = candidates.RankAgainst(tau_q);
    outcome.rank_per_level[h] = rank;
    if (rank < k) {
      outcome.best_level = static_cast<int>(h);
      outcome.rank_at_best = rank;
    }
  }
  last_eval_seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - stage2_start)
                           .count();
  return outcome;
}

}  // namespace cod
