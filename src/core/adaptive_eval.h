// Sample-adaptive compressed COD evaluation.
//
// The paper fixes theta = 10 RR graphs per node; the stop-and-stare line of
// work it cites ([23], [24]) instead grows the sample until the decision is
// confident. This evaluator applies that idea to COD pragmatically: run the
// compressed evaluation with theta, 2*theta, 4*theta, ... independent sample
// pools until the reported best level is identical for `stable_rounds`
// consecutive doublings (or a budget is reached), then answer from the
// largest pool. This is a stabilization heuristic, not a formal
// (epsilon, delta) guarantee — the test suite pins its behaviour at the
// distribution extremes and its monotone cost.

#ifndef COD_CORE_ADAPTIVE_EVAL_H_
#define COD_CORE_ADAPTIVE_EVAL_H_

#include "core/compressed_eval.h"

namespace cod {

struct AdaptiveOptions {
  uint32_t initial_theta = 5;
  uint32_t max_theta = 80;
  // Consecutive doublings that must agree on best_level before stopping.
  int stable_rounds = 2;
};

struct AdaptiveOutcome {
  ChainEvalOutcome outcome;   // from the final (largest) pool
  uint32_t final_theta = 0;   // theta of that pool
  int rounds = 0;             // evaluation rounds executed
};

class AdaptiveEvaluator {
 public:
  AdaptiveEvaluator(const DiffusionModel& model, const AdaptiveOptions& options);

  // `guide`, when non-null, is forwarded to every round's compressed
  // evaluation. It only bites on the round whose theta matches the sketch's
  // build theta (CompressedEvaluator checks); other rounds run unguided, so
  // the adaptive ladder's doubling schedule is unchanged.
  AdaptiveOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                           Rng& rng, const SketchPruneGuide* guide = nullptr);

 private:
  const DiffusionModel* model_;
  AdaptiveOptions options_;
};

}  // namespace cod

#endif  // COD_CORE_ADAPTIVE_EVAL_H_
