// The "Independent" baseline of the paper's Fig. 8 experiment: evaluate the
// query's influence rank in every chain community from scratch, sampling
// theta RR sets per member *per community*. Asymptotically this costs
// Theta * sum_h |C_h| * omega — the chain length multiplies the sampling
// cost, which is exactly what compressed evaluation removes.

#ifndef COD_CORE_INDEPENDENT_EVAL_H_
#define COD_CORE_INDEPENDENT_EVAL_H_

#include "common/deadline.h"
#include "core/cod_chain.h"
#include "core/compressed_eval.h"
#include "influence/influence_oracle.h"

namespace cod {

class IndependentEvaluator {
 public:
  IndependentEvaluator(const DiffusionModel& model, uint32_t theta);

  // Same contract as CompressedEvaluator::Evaluate. An exhausted budget
  // aborts between levels with outcome.code set and best_level of whatever
  // was computed so far (levels are independent here, so partial results
  // stay meaningful) — the paper's Independent runs hit multi-hour timeouts
  // on larger datasets.
  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, const Budget& budget) {
    return Evaluate(chain, q, k, rng, budget, nullptr);
  }

  // With optional intra-query parallel sampling on a borrowed `scheduler`:
  // per-level counts shard across it (see InfluenceOracle::CountsWithin);
  // results are bit-identical for any scheduler, and `rng` advances by
  // exactly one draw per level either way.
  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, const Budget& budget,
                            TaskScheduler* scheduler);

  // Compatibility shim for the fig8/fig9 paper-experiment benches: a
  // positive `deadline_seconds` bounds the run, 0 means unlimited.
  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, double deadline_seconds = 0.0) {
    return Evaluate(chain, q, k, rng,
                    Budget{deadline_seconds > 0.0
                               ? Deadline::After(deadline_seconds)
                               : Deadline::Infinite()});
  }

  bool last_timed_out() const { return last_timed_out_; }
  size_t last_explored_nodes() const { return last_explored_nodes_; }

 private:
  const DiffusionModel* model_;
  uint32_t theta_;
  InfluenceOracle oracle_;
  bool last_timed_out_ = false;
  size_t last_explored_nodes_ = 0;
};

}  // namespace cod

#endif  // COD_CORE_INDEPENDENT_EVAL_H_
