// Nested community chains: the input shape of COD evaluation.
//
// For a query node q, H(q) is a chain of nested communities
// C_0 subset C_1 subset ... subset C_{L-1} (paper Sec. II-A). Evaluators do
// not care where the chain came from (plain hierarchy, global recluster, or
// LORE's spliced local + global hierarchy), only about:
//  * the universe: the members of the largest community, and
//  * level(v): the index of the smallest chain community containing v.
//
// CodChain captures exactly that, in the *parent graph's* node ids, so one
// representation serves CODU, CODR, CODL- and the reclustered tail of CODL.

#ifndef COD_CORE_COD_CHAIN_H_
#define COD_CORE_COD_CHAIN_H_

#include <vector>

#include "graph/graph.h"
#include "hierarchy/dendrogram.h"

namespace cod {

struct CodChain {
  // level_[v] is only meaningful for nodes with in_universe[v] != 0.
  std::vector<uint32_t> level;    // size: parent graph's NumNodes()
  std::vector<char> in_universe;  // size: parent graph's NumNodes()
  std::vector<NodeId> universe;   // members of C_{L-1}
  std::vector<uint32_t> community_size;  // |C_h| per level, non-decreasing

  // Optional: the dendrogram community id of each level, in the SAME
  // dendrogram the engine's CoverageSketchIndex was built against. Empty
  // (the default) means "unknown" and disables sketch guidance for this
  // chain. Only call sites that can vouch for the mapping fill it (engine
  // CODU chains, and the spliced-level tail of CODL chains); the chain
  // builders below never do — a reclustered chain's local communities live
  // in a different dendrogram, and kInvalidCommunity entries mark exactly
  // those levels as unprunable.
  std::vector<CommunityId> level_community;

  size_t NumLevels() const { return community_size.size(); }

  // Materializes the members of C_h (all universe nodes with level <= h).
  std::vector<NodeId> MembersOfLevel(uint32_t h) const;
};

// Builds the chain H(q) from a dendrogram: levels are q's ancestors from
// Parent(leaf(q)) up to `top` inclusive (`top` defaults to the root and must
// be an ancestor of q). `node_map`, when non-null, translates the
// dendrogram's leaf ids to parent-graph ids (used when the dendrogram was
// built on an induced subgraph); `parent_num_nodes` sizes the per-node
// arrays in that case.
CodChain BuildChainFromDendrogram(const Dendrogram& dendrogram, NodeId q,
                                  CommunityId top = kInvalidCommunity,
                                  const std::vector<NodeId>* node_map = nullptr,
                                  size_t parent_num_nodes = 0);

// Appends further enclosing communities on top of `chain`: each call adds
// one level containing every node of `members` (parent ids) not yet in the
// universe. Used to splice the global ancestors of C_ell above a locally
// reclustered chain.
void AppendLevel(CodChain* chain, std::span<const NodeId> members);

// Cheaper variant when the caller already knows which members are new at the
// appended level (e.g., from nested dendrogram leaf intervals):
// `expected_size` is the total size of the appended community and must equal
// the universe size after insertion.
void AppendLevelWithNewMembers(CodChain* chain,
                               std::span<const NodeId> new_members,
                               uint32_t expected_size);

}  // namespace cod

#endif  // COD_CORE_COD_CHAIN_H_
