// Epoch-based COD serving over a changing graph.
//
// The paper (Sec. IV-B discussion, conclusion) leaves truly incremental
// maintenance of the hierarchy and HIMOR under updates as an open problem —
// the compressed influence computation over the hierarchy does not update
// efficiently. This service takes the standard engineering route instead
// (compare LSM compaction): queries are answered from the last built
// *epoch* (graph snapshot + hierarchy + index) while edge updates
// accumulate; when the accumulated drift exceeds `rebuild_threshold`
// (fraction of the snapshot's edge count), the next query triggers a
// rebuild, or the caller forces one with Refresh(). Between rebuilds,
// answers are stale by at most the pending-update set, which is always
// inspectable.

#ifndef COD_CORE_DYNAMIC_SERVICE_H_
#define COD_CORE_DYNAMIC_SERVICE_H_

#include <memory>
#include <unordered_map>

#include "core/cod_engine.h"

namespace cod {

class DynamicCodService {
 public:
  struct Options {
    EngineOptions engine;
    // Rebuild when pending updates exceed this fraction of the snapshot's
    // edges (0 = rebuild on every update; large = manual Refresh only).
    double rebuild_threshold = 0.05;
    uint64_t seed = 1;  // drives HIMOR sampling at every rebuild
  };

  // Takes ownership of the initial graph; `attrs` must cover the same node
  // set and is fixed for the service's lifetime (node set is fixed too).
  DynamicCodService(Graph initial_graph, AttributeTable attrs,
                    const Options& options);

  // ---- Updates (O(1), no rebuild). Duplicate inserts overwrite weight;
  // removing an absent edge returns false. Self-loops are rejected. ----
  bool AddEdge(NodeId u, NodeId v, double weight = 1.0);
  bool RemoveEdge(NodeId u, NodeId v);

  size_t pending_updates() const { return pending_updates_; }
  uint64_t epoch() const { return epoch_; }
  size_t NumEdges() const { return edges_.size(); }

  // Rebuilds the snapshot, hierarchy, and index from the current edge set.
  void Refresh();

  // Serves from the current epoch, first refreshing if drift crossed the
  // threshold.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k, Rng& rng);
  CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng);

  // The engine of the current epoch (stale by up to pending_updates()).
  const CodEngine& engine() const { return *engine_; }

 private:
  void MaybeRefresh();
  static uint64_t EdgeKey(NodeId u, NodeId v, size_t n);

  AttributeTable attrs_;
  Options options_;
  size_t num_nodes_;
  std::unordered_map<uint64_t, double> edges_;  // canonical key -> weight

  uint64_t epoch_ = 0;
  size_t pending_updates_ = 0;
  size_t snapshot_edges_ = 0;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<CodEngine> engine_;
};

}  // namespace cod

#endif  // COD_CORE_DYNAMIC_SERVICE_H_
