// Epoch-based COD serving over a changing graph.
//
// The paper (Sec. IV-B discussion, conclusion) leaves truly incremental
// maintenance of the hierarchy and HIMOR under updates as an open problem —
// the compressed influence computation over the hierarchy does not update
// efficiently. This service takes the standard engineering route instead
// (compare LSM compaction): queries are answered from the last built
// *epoch* (graph snapshot + hierarchy + index) while edge updates
// accumulate; when the accumulated drift exceeds `rebuild_threshold`
// (fraction of the snapshot's edge count), the next query triggers a
// rebuild, or the caller forces one with Refresh(). Between rebuilds,
// answers are stale by at most the pending-update set, which is always
// inspectable.
//
// Concurrency model (RCU-style epoch publication): each epoch is an
// immutable EngineCore published through an atomic shared_ptr. Readers call
// Snapshot() — a single atomic load — and query the returned core with
// their own QueryWorkspace; they never block, and a snapshot stays valid
// (and answer-stable) for as long as the caller holds it, across any number
// of later rebuilds. Writers (AddEdge / RemoveEdge) mutate only the pending
// edge set under a mutex. With `async_rebuild`, a threshold-crossing query
// schedules the rebuild on `rebuild_pool` and keeps serving the stale epoch;
// the new epoch is swapped in atomically when ready. Without it, the
// crossing query rebuilds synchronously before answering — the original,
// strictly bounded staleness semantics.
//
// Epoch determinism: every build ticket t (0-based) samples with RNG seed
// `options.seed + t`, so a service replaying the same
// update/refresh/failure sequence publishes bit-identical epochs regardless
// of whether rebuilds ran inline or on the pool. (A FAILED build consumes
// its ticket, so after failures the published epoch number no longer equals
// the ticket number — determinism is per replayed sequence, not per epoch
// number.)
//
// Failure containment: a rebuild can fail — the HIMOR build runs out of its
// `rebuild_budget_seconds`, or a failpoint ("dynamic_service/rebuild",
// "himor/build"; see common/failpoint.h) simulates an infrastructure error.
// A failed rebuild NEVER touches the published epoch: queries keep serving
// the last good epoch, the captured pending-update count is restored so the
// drift threshold can re-trigger, and the error is recorded in
// rebuild_stats(). Async rebuilds retry in place with capped exponential
// backoff (max_rebuild_retries / rebuild_backoff_*_ms) before giving up.

#ifndef COD_CORE_DYNAMIC_SERVICE_H_
#define COD_CORE_DYNAMIC_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/metrics.h"
#include "core/cod_engine.h"

namespace cod {

class DynamicCodService {
 public:
  struct Options {
    EngineOptions engine;
    // Rebuild when pending updates exceed this fraction of the snapshot's
    // edges (0 = rebuild on every update; large = manual Refresh only).
    double rebuild_threshold = 0.05;
    uint64_t seed = 1;  // drives HIMOR sampling at every rebuild
    // Build threshold-crossing rebuilds on `rebuild_pool` instead of the
    // querying thread; queries keep serving the stale epoch meanwhile.
    bool async_rebuild = false;
    ThreadPool* rebuild_pool = nullptr;  // required iff async_rebuild
    // Failed ASYNC rebuilds retry in place up to this many times (so up to
    // 1 + max_rebuild_retries attempts per ticket), sleeping
    // rebuild_backoff_initial_ms, then doubling up to rebuild_backoff_max_ms,
    // between attempts. Synchronous Refresh() never retries — the caller
    // sees the Status and decides.
    uint32_t max_rebuild_retries = 3;
    uint32_t rebuild_backoff_initial_ms = 10;
    uint32_t rebuild_backoff_max_ms = 1000;
    // Wall-clock budget for each rebuild's HIMOR construction (0 =
    // unlimited). An over-budget build fails like any other rebuild error.
    double rebuild_budget_seconds = 0.0;
  };

  // Cumulative rebuild bookkeeping, inspectable at any time (test /
  // monitoring hook). attempts counts every BuildEpochCore call including
  // retries; published counts successful epoch swaps.
  struct RebuildStats {
    uint64_t attempts = 0;
    uint64_t failures = 0;
    uint64_t retries = 0;
    uint64_t published = 0;
    Status last_error;  // most recent failure; Ok() if none ever failed
  };

  // A published epoch: queries against `core` are answered as of that
  // epoch's graph snapshot. Holding the shared_ptr keeps the epoch alive
  // after later rebuilds retire it.
  struct EpochSnapshot {
    std::shared_ptr<const EngineCore> core;
    uint64_t epoch = 0;
  };

  // Takes ownership of the initial graph; `attrs` must cover the same node
  // set and is fixed for the service's lifetime (node set is fixed too).
  // The first epoch is built synchronously, so the service is immediately
  // queryable; its build CHECK-fails on error (there is no good epoch to
  // fall back to), so arm rebuild failpoints only AFTER construction.
  DynamicCodService(Graph initial_graph, AttributeTable attrs,
                    const Options& options);
  // Blocks until any in-flight background rebuild has finished.
  ~DynamicCodService();

  // ---- Updates (O(1), no rebuild). Duplicate inserts overwrite weight;
  // removing an absent edge returns false. Self-loops are rejected.
  // Thread-safe against queries and each other. ----
  bool AddEdge(NodeId u, NodeId v, double weight = 1.0);
  bool RemoveEdge(NodeId u, NodeId v);

  size_t pending_updates() const;
  uint64_t epoch() const { return published_.load()->epoch; }
  size_t NumEdges() const;
  RebuildStats rebuild_stats() const;

  // Synchronously rebuilds the snapshot, hierarchy, and index from the
  // current edge set and publishes the new epoch before returning (waits
  // out an in-flight background rebuild first). On failure the old epoch
  // stays published, the captured pending updates are restored, and the
  // build error is returned (no retries — call again to retry).
  Status Refresh();

  // Schedules a rebuild on `rebuild_pool` and returns immediately; false if
  // one is already in flight (callers keep serving the stale epoch either
  // way). Requires Options::async_rebuild. Failed builds retry on the pool
  // with capped exponential backoff (see Options); if every attempt fails,
  // the old epoch keeps serving and rebuild_stats().last_error records why.
  bool RefreshAsync();

  // Blocks until no background rebuild is in flight (test/shutdown hook).
  void WaitForRebuild();

  // The current epoch, via one atomic load — never blocks, including during
  // a background rebuild.
  EpochSnapshot Snapshot() const;

  // Serves from the current epoch, first refreshing (or scheduling a
  // background refresh, under async_rebuild) if drift crossed the
  // threshold.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k, Rng& rng);
  CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng);

  // Fans a workload across `pool` against ONE snapshot of the current
  // epoch; deterministic given (snapshot, specs, batch_seed) — see
  // core/query_batch.h. Never triggers or waits for rebuilds.
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    ThreadPool& pool,
                                    uint64_t batch_seed) const;
  // With per-query budgets, batch deadline / cancellation, and the
  // degradation ladder (see BatchOptions in core/query_batch.h).
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    ThreadPool& pool, uint64_t batch_seed,
                                    const BatchOptions& options) const;

  // The engine core of the current epoch (stale by up to
  // pending_updates()). The reference is only guaranteed until the next
  // rebuild publishes — concurrent callers must use Snapshot() instead.
  const EngineCore& engine() const { return *published_.load()->core; }

 private:
  struct Epoch {
    uint64_t epoch = 0;
    std::shared_ptr<const EngineCore> core;
  };
  using EdgeMap = std::unordered_map<uint64_t, double>;

  void MaybeRefresh();
  // Captures the edge set + build ticket under mu_; returns false when a
  // rebuild is already in flight (async dedupe). `captured_pending_out`
  // receives the pending-update count the capture absorbed, so a failed
  // build can restore it.
  bool BeginRebuild(EdgeMap* edges_out, uint64_t* build_index_out,
                    size_t* captured_pending_out);
  // Builds an epoch core from an edge snapshot (no locks held). Fails on
  // the "dynamic_service/rebuild" failpoint or an over-budget HIMOR build.
  Result<std::shared_ptr<const EngineCore>> BuildEpochCore(
      const EdgeMap& edges, uint64_t build_index) const;
  // Async rebuild body: attempt / retry with backoff until success or the
  // retry cap, then clear rebuild_in_flight_ and notify.
  void AsyncRebuildLoop(EdgeMap edges, uint64_t build_index,
                        size_t captured_pending);
  void PublishEpoch(std::shared_ptr<const EngineCore> core);
  static uint64_t EdgeKey(NodeId u, NodeId v, size_t n);

  std::shared_ptr<const AttributeTable> attrs_;  // shared by every epoch
  Options options_;
  size_t num_nodes_;

  mutable std::mutex mu_;  // guards the pending state below
  EdgeMap edges_;          // canonical key -> weight
  size_t pending_updates_ = 0;
  size_t snapshot_edges_ = 0;
  uint64_t builds_started_ = 0;
  bool rebuild_in_flight_ = false;
  RebuildStats stats_;
  std::condition_variable rebuild_done_;

  // RCU-style publication point; readers atomically load, writers
  // atomically store a fresh Epoch. Never null after construction.
  std::atomic<std::shared_ptr<const Epoch>> published_;

  // steady_clock time of the last PublishEpoch, as nanoseconds since the
  // clock's epoch; feeds the epoch-age callback gauge.
  std::atomic<int64_t> last_publish_ns_{0};

  // Scrape-time gauges (epoch number / age, pending updates), registered at
  // the end of construction and RAII-unregistered before the state they read
  // is destroyed. Two live services emit one sample each under the same
  // name — like two replicas scraping alike.
  std::optional<ScopedCallbackGauge> epoch_gauge_;
  std::optional<ScopedCallbackGauge> epoch_age_gauge_;
  std::optional<ScopedCallbackGauge> pending_gauge_;
};

}  // namespace cod

#endif  // COD_CORE_DYNAMIC_SERVICE_H_
