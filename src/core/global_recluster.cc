#include "core/global_recluster.h"

#include <algorithm>

#include "hierarchy/agglomerative.h"

namespace cod {
namespace {

// Jaccard similarity of two sorted attribute id spans.
double AttributeJaccard(std::span<const AttributeId> a,
                        std::span<const AttributeId> b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t unioned = a.size() + b.size() - common;
  return unioned == 0 ? 0.0
                      : static_cast<double>(common) /
                            static_cast<double>(unioned);
}

double EdgeWeight(const Graph& g, const AttributeTable& attrs,
                  std::span<const AttributeId> query_attrs,
                  const TransformOptions& options, EdgeId e) {
  const auto [u, v] = g.Endpoints(e);
  const double base = g.Weight(e);
  const bool share_query = !query_attrs.empty() &&
                           attrs.HasAny(u, query_attrs) &&
                           attrs.HasAny(v, query_attrs);
  switch (options.transform) {
    case AttributeTransform::kQueryBoost:
      return base + (share_query ? options.beta : 0.0);
    case AttributeTransform::kJaccard:
      return base * (1.0 + options.beta *
                               AttributeJaccard(attrs.AttributesOf(u),
                                                attrs.AttributesOf(v)));
    case AttributeTransform::kQueryJaccard:
      if (!share_query) return base;
      return base * (1.0 + options.beta *
                               AttributeJaccard(attrs.AttributesOf(u),
                                                attrs.AttributesOf(v)));
    case AttributeTransform::kEmbeddingCosine: {
      COD_CHECK(options.embeddings != nullptr);
      const double cosine = options.embeddings->Cosine(u, v);
      return base * (1.0 + options.beta * std::max(0.0, cosine));
    }
  }
  COD_CHECK(false);
  return base;
}

// Normalizes the single-attribute convenience form to a span (empty when
// kInvalidAttribute, i.e., no query attribute).
std::span<const AttributeId> AsSpan(const AttributeId& attr) {
  return attr == kInvalidAttribute
             ? std::span<const AttributeId>()
             : std::span<const AttributeId>(&attr, 1);
}

}  // namespace

Graph BuildAttributeWeightedGraph(const Graph& g, const AttributeTable& attrs,
                                  std::span<const AttributeId> query_attrs,
                                  const TransformOptions& options) {
  GraphBuilder builder(g.NumNodes());
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const auto [u, v] = g.Endpoints(e);
    builder.AddEdge(u, v, EdgeWeight(g, attrs, query_attrs, options, e));
  }
  return std::move(builder).Build();
}

Graph BuildAttributeWeightedGraph(const Graph& g, const AttributeTable& attrs,
                                  AttributeId query_attribute,
                                  const TransformOptions& options) {
  return BuildAttributeWeightedGraph(g, attrs, AsSpan(query_attribute),
                                     options);
}

InducedSubgraph BuildAttributeWeightedSubgraph(
    const Graph& g, const AttributeTable& attrs,
    std::span<const AttributeId> query_attrs, const TransformOptions& options,
    std::span<const NodeId> members) {
  std::vector<NodeId> to_local(g.NumNodes(), kInvalidNode);
  for (size_t i = 0; i < members.size(); ++i) {
    to_local[members[i]] = static_cast<NodeId>(i);
  }
  InducedSubgraph sub;
  sub.to_parent.assign(members.begin(), members.end());
  GraphBuilder builder(members.size());
  for (NodeId parent_u : members) {
    const NodeId lu = to_local[parent_u];
    for (const AdjEntry& a : g.Neighbors(parent_u)) {
      const NodeId lv = to_local[a.to];
      if (lv == kInvalidNode || lv <= lu) continue;
      builder.AddEdge(
          lu, lv, EdgeWeight(g, attrs, query_attrs, options, a.edge));
    }
  }
  sub.graph = std::move(builder).Build();
  return sub;
}

InducedSubgraph BuildAttributeWeightedSubgraph(
    const Graph& g, const AttributeTable& attrs, AttributeId query_attribute,
    const TransformOptions& options, std::span<const NodeId> members) {
  return BuildAttributeWeightedSubgraph(g, attrs, AsSpan(query_attribute),
                                        options, members);
}

Dendrogram GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                           std::span<const AttributeId> query_attrs,
                           const TransformOptions& options) {
  const Graph weighted =
      BuildAttributeWeightedGraph(g, attrs, query_attrs, options);
  return AgglomerativeCluster(weighted);
}

Dendrogram GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                           AttributeId query_attribute,
                           const TransformOptions& options) {
  return GlobalRecluster(g, attrs, AsSpan(query_attribute), options);
}

Result<Dendrogram> GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                                   std::span<const AttributeId> query_attrs,
                                   const TransformOptions& options,
                                   const Budget& budget) {
  // The transform itself is one O(|E|) pass — cheap next to clustering — so
  // the budget only gates the agglomerative run.
  const Graph weighted =
      BuildAttributeWeightedGraph(g, attrs, query_attrs, options);
  return AgglomerativeCluster(weighted, AgglomerativeOptions{}, budget);
}

Result<Dendrogram> GlobalRecluster(const Graph& g, const AttributeTable& attrs,
                                   AttributeId query_attribute,
                                   const TransformOptions& options,
                                   const Budget& budget) {
  return GlobalRecluster(g, attrs, AsSpan(query_attribute), options, budget);
}

}  // namespace cod
