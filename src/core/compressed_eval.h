// Compressed COD evaluation (paper Section III, Algorithm 1).
//
// Evaluates whether the query node is top-k influential in every community of
// a nested chain using ONE shared pool of RR graphs:
//
//  1. Shared sample generation / hierarchical-first search (HFS): theta RR
//     graphs are sampled from each universe node; each RR graph is traversed
//     level-by-level so that every reached node is recorded exactly once, in
//     the bucket of the smallest chain community containing a live path from
//     the source (Theorem 2 makes the induced counts unbiased).
//  2. Incremental top-k evaluation: buckets are scanned from the deepest
//     community outward, carrying cumulative counts and the current top-k
//     candidates; Theorem 3 guarantees no other node can enter the top-k.
//
// Cost is O(Theta * omega + L) — the chain length L is decoupled from the
// sampling cost (Theorem 4). RR graphs are streamed: each is traversed right
// after sampling and then discarded, so memory stays O(|V| + bucket totals).

#ifndef COD_CORE_COMPRESSED_EVAL_H_
#define COD_CORE_COMPRESSED_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "core/cod_chain.h"
#include "influence/rr_graph.h"

namespace cod {

// Per-level outcome of a chain evaluation, shared with IndependentEvaluator.
struct ChainEvalOutcome {
  // kOk for a complete evaluation; kTimeout / kCancelled when the budget ran
  // out first. CompressedEvaluator aborts with NO partial answer (its shared
  // counts are incomplete at every level); IndependentEvaluator keeps the
  // levels finished so far (each level is evaluated independently).
  StatusCode code = StatusCode::kOk;
  // Largest level h where q's rank < k, or -1 if none.
  int best_level = -1;
  // q's estimated rank (number of strictly more influential nodes) at the
  // best level; undefined when best_level == -1.
  uint32_t rank_at_best = 0;
  // q's estimated rank at every level, clamped to k (any value >= k only
  // means "not in the top-k"); for tests and diagnostics.
  std::vector<uint32_t> rank_per_level;
};

// Owns per-query scratch, so it is not thread-safe; concurrent serving uses
// one evaluator per thread (see core/query_workspace.h).
class CompressedEvaluator {
 public:
  // `theta`: RR graphs sampled per universe node.
  CompressedEvaluator(const DiffusionModel& model, uint32_t theta);

  // Re-targets the evaluator at a (possibly different) model and theta,
  // reusing scratch allocations. Lets a per-thread workspace follow serving
  // epoch swaps without being reconstructed.
  void Rebind(const DiffusionModel& model, uint32_t theta);

  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng) {
    return Evaluate(chain, q, k, rng, Budget{});
  }

  // Budget-aware form. The budget is polled between RR samples — the only
  // points where the reusable scratch is clean — so an exhausted budget
  // aborts within one sample's work and the evaluator stays usable for the
  // next query. An already-exhausted budget aborts before the first sample,
  // which makes sub-nanosecond test budgets deterministic (see
  // common/deadline.h).
  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, const Budget& budget);

  // Total RR-graph nodes explored by the last Evaluate call (|R| in the
  // paper's analysis); exposed for the Fig. 8 sample-cost comparison.
  size_t last_explored_nodes() const { return last_explored_nodes_; }

  // ---- Per-call instrumentation of the last Evaluate (QueryStats feed). --
  // RR graphs actually drawn (theta * |universe| when not aborted early).
  uint64_t last_samples() const { return last_samples_; }
  // Stage 1 (shared sample generation + HFS bucketing) wall seconds.
  double last_sample_seconds() const { return last_sample_seconds_; }
  // Stage 2 (incremental top-k evaluation) wall seconds.
  double last_eval_seconds() const { return last_eval_seconds_; }

 private:
  const DiffusionModel* model_;
  uint32_t theta_;
  RrSampler sampler_;
  size_t last_explored_nodes_ = 0;
  uint64_t last_samples_ = 0;
  double last_sample_seconds_ = 0.0;
  double last_eval_seconds_ = 0.0;

  // Reusable per-query scratch (sized lazily to the graph).
  RrGraph rr_;
  std::vector<std::vector<uint32_t>> level_queue_;  // local node ids per level
  std::vector<char> queued_;                        // per local node id
};

}  // namespace cod

#endif  // COD_CORE_COMPRESSED_EVAL_H_
