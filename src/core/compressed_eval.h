// Compressed COD evaluation (paper Section III, Algorithm 1).
//
// Evaluates whether the query node is top-k influential in every community of
// a nested chain using ONE shared pool of RR graphs:
//
//  1. Shared sample generation: theta RR graphs are sampled from each
//     universe node into a contiguous slab pool (see influence/rr_pool.h).
//     The j-th sample of source s always draws from
//     Rng(RrSampleSeed(pool_seed, s * theta + j)) where pool_seed is ONE
//     draw from the caller's RNG, so the pool is identical whether it was
//     built serially or sharded across a thread pool.
//  2. Hierarchical-first search (HFS) + incremental top-k evaluation: each
//     stored RR graph is traversed level-by-level so that every reached node
//     is recorded exactly once, at the smallest chain community containing a
//     live path from the source (Theorem 2 makes the induced counts
//     unbiased); per-level occurrences are then scanned from the deepest
//     community outward, carrying cumulative counts and the current top-k
//     candidates (Theorem 3 guarantees no other node can enter the top-k).
//
// Cost is O(Theta * omega + L) — the chain length L is decoupled from the
// sampling cost (Theorem 4). All scratch (slabs, per-level lists, stamp
// arrays, candidate storage) is reused across queries, so a warmed evaluator
// performs zero heap allocations per query beyond the returned outcome.

#ifndef COD_CORE_COMPRESSED_EVAL_H_
#define COD_CORE_COMPRESSED_EVAL_H_

#include <vector>

#include "common/deadline.h"
#include "core/cod_chain.h"
#include "influence/coverage_sketch.h"
#include "influence/rr_pool.h"

namespace cod {

class TaskScheduler;

// Optional sketch guidance for Evaluate (core/engine_core.cc wires it when
// the engine carries a CoverageSketchIndex and the chain knows its level
// communities). Activating the guide PINS the pool seed to the sketch's
// schedule seed — the evaluation samples the exact pool the index build
// proved its bounds against — which is what makes `prune` answer-preserving:
// a pruned level is one where >= k universe nodes provably beat q's best
// possible cumulative count, so the unpruned run would have reported rank k
// (clamped) there anyway, and the retained levels draw byte-identical
// samples because the source-keyed schedule is position-independent.
//
// The guide only takes effect when the sketch's (schedule_seed, theta)
// matches the evaluator's theta and the chain carries level communities for
// every level; otherwise Evaluate silently falls back to the normal
// rng-seeded pool. With `prune` false the schedule is still pinned but no
// level is skipped — the prune-on/prune-off property tests compare exactly
// these two modes.
struct SketchPruneGuide {
  const CoverageSketchIndex* sketch = nullptr;
  bool prune = true;
};

// Per-level outcome of a chain evaluation, shared with IndependentEvaluator.
struct ChainEvalOutcome {
  // kOk for a complete evaluation; kTimeout / kCancelled when the budget ran
  // out first. CompressedEvaluator aborts with NO partial answer (its shared
  // counts are incomplete at every level); IndependentEvaluator keeps the
  // levels finished so far (each level is evaluated independently).
  StatusCode code = StatusCode::kOk;
  // Largest level h where q's rank < k, or -1 if none.
  int best_level = -1;
  // q's estimated rank (number of strictly more influential nodes) at the
  // best level; undefined when best_level == -1.
  uint32_t rank_at_best = 0;
  // q's estimated rank at every level, clamped to k (any value >= k only
  // means "not in the top-k"); for tests and diagnostics.
  std::vector<uint32_t> rank_per_level;
};

// Owns per-query scratch, so it is not thread-safe; concurrent serving uses
// one evaluator per thread (see core/query_workspace.h).
class CompressedEvaluator {
 public:
  // `theta`: RR graphs sampled per universe node.
  CompressedEvaluator(const DiffusionModel& model, uint32_t theta);

  // Re-targets the evaluator at a (possibly different) model and theta,
  // reusing scratch allocations (slab capacity included). Lets a per-thread
  // workspace follow serving epoch swaps without being reconstructed.
  void Rebind(const DiffusionModel& model, uint32_t theta);

  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng) {
    return Evaluate(chain, q, k, rng, Budget{});
  }

  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, const Budget& budget) {
    return Evaluate(chain, q, k, rng, budget, nullptr);
  }

  // Budget-aware form with optional intra-query parallel sampling: when
  // `scheduler` is non-null and multi-threaded, RR-pool construction is
  // sharded across it (calling from one of its workers is fine — the chunk
  // group waits with inline help). Results are bit-identical for any
  // scheduler (the per-sample seed schedule decouples the RNG stream from
  // thread placement), and `rng` advances by exactly ONE draw per call
  // either way.
  //
  // The budget is polled between RR samples — the only points where the
  // reusable scratch is clean — so an exhausted budget aborts within one
  // sample's work and the evaluator stays usable for the next query. An
  // already-exhausted budget aborts before the first sample, which makes
  // sub-nanosecond test budgets deterministic (see common/deadline.h).
  ChainEvalOutcome Evaluate(const CodChain& chain, NodeId q, uint32_t k,
                            Rng& rng, const Budget& budget,
                            TaskScheduler* scheduler,
                            const SketchPruneGuide* guide = nullptr);

  uint32_t theta() const { return theta_; }

  // Total RR-graph nodes explored by the last Evaluate call (|R| in the
  // paper's analysis); exposed for the Fig. 8 sample-cost comparison.
  size_t last_explored_nodes() const { return last_explored_nodes_; }

  // ---- Per-call instrumentation of the last Evaluate (QueryStats feed). --
  // RR graphs actually drawn (theta * |universe| when not aborted early).
  uint64_t last_samples() const { return last_samples_; }
  // RR-pool construction wall seconds (sampling only; HFS moved to eval).
  double last_sample_seconds() const { return last_sample_seconds_; }
  // Parallel chunk-merge wall seconds (0 on the serial path).
  double last_merge_seconds() const { return last_merge_seconds_; }
  // HFS bucketing + incremental top-k wall seconds.
  double last_eval_seconds() const { return last_eval_seconds_; }
  // Parallel chunks used by the last pool build (0 = serial path).
  size_t last_parallel_chunks() const { return last_parallel_chunks_; }

  // Sketch pruning on the last Evaluate: chain levels the guide proved
  // skippable / total levels a prune pass considered (0 when no active
  // guide — see SketchPruneGuide for the activation conditions).
  size_t last_levels_pruned() const { return last_levels_pruned_; }
  size_t last_levels_considered() const { return last_levels_considered_; }

  // Slab growth events across the pool and all chunk scratch — stable across
  // repeated same-shape queries once warmed (the zero-allocation contract).
  uint64_t slab_growth_events() const {
    return slab_.growth_events() + pool_builder_.chunk_growth_events();
  }

 private:
  const DiffusionModel* model_;
  uint32_t theta_;
  ParallelRrPool pool_builder_;
  RrSlabPool slab_;
  size_t last_explored_nodes_ = 0;
  uint64_t last_samples_ = 0;
  double last_sample_seconds_ = 0.0;
  double last_merge_seconds_ = 0.0;
  double last_eval_seconds_ = 0.0;
  size_t last_parallel_chunks_ = 0;
  size_t last_levels_pruned_ = 0;
  size_t last_levels_considered_ = 0;

  // Reusable per-query scratch (sized lazily to the graph / chain).
  std::vector<std::vector<uint32_t>> level_queue_;  // local node ids per level
  std::vector<char> queued_;                        // per local node id
  // Per-level node occurrences across all samples (each reached node once
  // per sample, at its minimal level). Duplicates across samples allowed;
  // stage 2 dedups with the stamp arrays below.
  std::vector<std::vector<NodeId>> level_nodes_;
  std::vector<uint32_t> tau_;        // cumulative counts, valid per query
  std::vector<uint64_t> tau_mark_;   // query stamp for tau_
  std::vector<uint64_t> seen_mark_;  // per-level first-touch stamp
  uint64_t query_epoch_ = 0;
  uint64_t level_epoch_ = 0;
  std::vector<NodeId> touched_;      // nodes first seen at the current level
  std::vector<uint32_t> heap_;       // pending_levels min-heap storage
  std::vector<std::pair<uint32_t, NodeId>> topk_items_;  // TopK storage
  std::vector<NodeId> pruned_sources_;  // universe minus pruned-level sources
};

}  // namespace cod

#endif  // COD_CORE_COMPRESSED_EVAL_H_
