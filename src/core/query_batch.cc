#include "core/query_batch.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/query_workspace.h"

namespace cod {
namespace {

// One rung of the degradation ladder: which variant to run and (for sampled
// variants) how much to shrink theta. Rung 0 is always the requested spec.
struct LadderStep {
  CodVariant variant;
  uint32_t theta_divisor = 1;
};

// Cost-DECREASING ladder per the paper's Fig. 9 query-time ordering
// (CODR >> CODL- > CODL > index-only; see DESIGN.md "Failure taxonomy and
// graceful degradation"). Index rungs are only offered when the core has a
// HIMOR index that can answer rank k.
std::vector<LadderStep> DegradationLadder(const EngineCore& core,
                                          CodVariant requested, uint32_t k,
                                          bool allow_degradation) {
  std::vector<LadderStep> ladder;
  ladder.push_back(LadderStep{requested, 1});
  if (!allow_degradation) return ladder;
  const bool index_ok =
      core.himor() != nullptr && k <= core.himor()->max_rank();
  switch (requested) {
    case CodVariant::kCodR:
      ladder.push_back(LadderStep{CodVariant::kCodLMinus, 1});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodL, 1});
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodLMinus:
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodL, 1});
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodL:
      ladder.push_back(LadderStep{CodVariant::kCodL, 4});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodU:
      ladder.push_back(LadderStep{CodVariant::kCodU, 4});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodUIndexed:
      break;  // already the cheapest rung
  }
  return ladder;
}

// Runs `spec` as ladder rung `step` (spec's node / attrs, `step`'s variant,
// possibly shrunken theta). Restores the workspace's theta before returning
// so the next query sees the engine default.
CodResult RunLadderStep(const EngineCore& core, const QuerySpec& spec,
                        const LadderStep& step, uint32_t k,
                        QueryWorkspace& ws) {
  const uint32_t full_theta = core.options().theta;
  if (step.theta_divisor > 1) {
    ws.evaluator().Rebind(core.model(),
                          std::max(1u, full_theta / step.theta_divisor));
  }
  CodResult result;
  switch (step.variant) {
    case CodVariant::kCodU:
      result = core.QueryCodU(spec.node, k, ws);
      break;
    case CodVariant::kCodUIndexed:
      result = core.QueryCodUIndexed(spec.node, k);
      break;
    case CodVariant::kCodR:
      result = spec.attrs.size() == 1
                   ? core.QueryCodR(spec.node, spec.attrs[0], k, ws)
                   : core.QueryCodR(spec.node,
                                    std::span<const AttributeId>(spec.attrs),
                                    k, ws);
      break;
    case CodVariant::kCodLMinus:
      result =
          spec.attrs.size() == 1
              ? core.QueryCodLMinus(spec.node, spec.attrs[0], k, ws)
              : core.QueryCodLMinus(
                    spec.node, std::span<const AttributeId>(spec.attrs), k,
                    ws);
      break;
    case CodVariant::kCodL:
      result = spec.attrs.size() == 1
                   ? core.QueryCodL(spec.node, spec.attrs[0], k, ws)
                   : core.QueryCodL(spec.node,
                                    std::span<const AttributeId>(spec.attrs),
                                    k, ws);
      break;
  }
  if (step.theta_divisor > 1) {
    ws.evaluator().Rebind(core.model(), full_theta);
  }
  return result;
}

}  // namespace

CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws) {
  const uint32_t k = spec.k == 0 ? core.options().k : spec.k;
  switch (spec.variant) {
    case CodVariant::kCodU:
      return core.QueryCodU(spec.node, k, ws);
    case CodVariant::kCodUIndexed:
      return core.QueryCodUIndexed(spec.node, k);
    case CodVariant::kCodR:
      if (spec.attrs.size() == 1) {
        return core.QueryCodR(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodR(spec.node, std::span<const AttributeId>(spec.attrs),
                            k, ws);
    case CodVariant::kCodLMinus:
      if (spec.attrs.size() == 1) {
        return core.QueryCodLMinus(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodLMinus(
          spec.node, std::span<const AttributeId>(spec.attrs), k, ws);
    case CodVariant::kCodL:
      if (spec.attrs.size() == 1) {
        return core.QueryCodL(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodL(spec.node, std::span<const AttributeId>(spec.attrs),
                            k, ws);
  }
  COD_CHECK(false);
  return CodResult{};
}

CodResult RunQuerySpecWithBudget(const EngineCore& core, const QuerySpec& spec,
                                 QueryWorkspace& ws,
                                 const BatchOptions& options,
                                 uint64_t query_seed) {
  const uint32_t k = spec.k == 0 ? core.options().k : spec.k;
  const double budget_seconds = spec.budget_seconds > 0.0
                                    ? spec.budget_seconds
                                    : options.default_budget_seconds;
  const Deadline per_query = budget_seconds > 0.0
                                 ? Deadline::After(budget_seconds)
                                 : Deadline::Infinite();
  const Budget budget{Deadline::Earliest(per_query, options.batch_deadline),
                      options.cancel};

  const std::vector<LadderStep> ladder =
      DegradationLadder(core, spec.variant, k, options.allow_degradation);
  CodResult result;
  for (size_t s = 0; s < ladder.size(); ++s) {
    // Same seed on every rung: a degraded answer is exactly what a direct
    // query of the served variant would have returned.
    ws.ReseedRng(query_seed);
    ws.SetBudget(budget);
    result = RunLadderStep(core, spec, ladder[s], k, ws);
    ws.ClearBudget();
    if (result.code == StatusCode::kOk) {
      result.degraded = s > 0;
      return result;
    }
    if (result.code == StatusCode::kCancelled) return result;  // no retries
  }
  return result;  // every rung timed out
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed) {
  return RunQueryBatch(core, specs, pool, batch_seed, BatchOptions{});
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed,
                                     const BatchOptions& options) {
  COD_DCHECK(!pool.IsWorkerThread() &&
             "RunQueryBatch called from a worker thread of its own pool; "
             "this deadlocks once the pool saturates -- run the batch from "
             "a different pool or thread");
  std::vector<CodResult> results(specs.size());
  if (specs.empty()) return results;

  const size_t num_chunks = std::min(pool.num_threads(), specs.size());
  // Private completion latch: the batch must not wait on pool idleness,
  // which would couple it to unrelated tasks (e.g., a background rebuild).
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = num_chunks;

  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = specs.size() * c / num_chunks;
    const size_t end = specs.size() * (c + 1) / num_chunks;
    pool.Submit([&core, &results, specs, batch_seed, begin, end, &options,
                 &mu, &done, &remaining] {
      QueryWorkspace ws(core, /*seed=*/0);
      for (size_t i = begin; i < end; ++i) {
        // Failure site for tests: a worker "dying" on a query marks that
        // slot cancelled instead of crashing the batch.
        if (COD_FAILPOINT("query_batch/worker")) {
          CodResult killed;
          killed.code = StatusCode::kCancelled;
          killed.variant_served = specs[i].variant;
          results[i] = std::move(killed);
          continue;
        }
        results[i] = RunQuerySpecWithBudget(core, specs[i], ws, options,
                                            BatchQuerySeed(batch_seed, i));
      }
      // Notify under the lock: the caller owns mu/done on its stack and may
      // destroy them the instant it observes remaining == 0, so the notify
      // must complete before the waiter can get past the mutex.
      std::lock_guard<std::mutex> lock(mu);
      --remaining;
      done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
  return results;
}

}  // namespace cod
