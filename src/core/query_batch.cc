#include "core/query_batch.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/thread_pool.h"
#include "core/query_workspace.h"

namespace cod {

CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws) {
  const uint32_t k = spec.k == 0 ? core.options().k : spec.k;
  switch (spec.variant) {
    case CodVariant::kCodU:
      return core.QueryCodU(spec.node, k, ws);
    case CodVariant::kCodUIndexed:
      return core.QueryCodUIndexed(spec.node, k);
    case CodVariant::kCodR:
      if (spec.attrs.size() == 1) {
        return core.QueryCodR(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodR(spec.node, std::span<const AttributeId>(spec.attrs),
                            k, ws);
    case CodVariant::kCodLMinus:
      if (spec.attrs.size() == 1) {
        return core.QueryCodLMinus(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodLMinus(
          spec.node, std::span<const AttributeId>(spec.attrs), k, ws);
    case CodVariant::kCodL:
      if (spec.attrs.size() == 1) {
        return core.QueryCodL(spec.node, spec.attrs[0], k, ws);
      }
      return core.QueryCodL(spec.node, std::span<const AttributeId>(spec.attrs),
                            k, ws);
  }
  COD_CHECK(false);
  return CodResult{};
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     ThreadPool& pool, uint64_t batch_seed) {
  std::vector<CodResult> results(specs.size());
  if (specs.empty()) return results;

  const size_t num_chunks = std::min(pool.num_threads(), specs.size());
  // Private completion latch: the batch must not wait on pool idleness,
  // which would couple it to unrelated tasks (e.g., a background rebuild).
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = num_chunks;

  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = specs.size() * c / num_chunks;
    const size_t end = specs.size() * (c + 1) / num_chunks;
    pool.Submit([&core, &results, specs, batch_seed, begin, end, &mu, &done,
                 &remaining] {
      QueryWorkspace ws(core, /*seed=*/0);
      for (size_t i = begin; i < end; ++i) {
        ws.ReseedRng(BatchQuerySeed(batch_seed, i));
        results[i] = RunQuerySpec(core, specs[i], ws);
      }
      // Notify under the lock: the caller owns mu/done on its stack and may
      // destroy them the instant it observes remaining == 0, so the notify
      // must complete before the waiter can get past the mutex.
      std::lock_guard<std::mutex> lock(mu);
      --remaining;
      done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
  return results;
}

}  // namespace cod
