#include "core/query_batch.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "core/query_workspace.h"

namespace cod {
namespace {

// One rung of the degradation ladder: which variant to run and (for sampled
// variants) how much to shrink theta. Rung 0 is always the requested spec.
struct LadderStep {
  CodVariant variant;
  uint32_t theta_divisor = 1;
};

// Cost-DECREASING ladder per the paper's Fig. 9 query-time ordering
// (CODR >> CODL- > CODL > index-only > sketch; see DESIGN.md "Failure
// taxonomy and graceful degradation"). Index rungs are only offered when
// the core has a HIMOR index that can answer rank k — on an index-absent
// (degraded) core they vanish and the ladder is exactly the no-index
// subset; the core's own in-variant fallbacks (CODL -> CODL-) then mark
// rung-0 answers degraded themselves. When the core carries a
// coverage-sketch index deep enough for rank k (and sketch_rung is on),
// every ladder additionally bottoms out in the approximate sketch rung —
// an answer read straight off the sketch tables, microseconds instead of
// milliseconds, always tagged degraded.
std::vector<LadderStep> DegradationLadder(const EngineCore& core,
                                          CodVariant requested, uint32_t k,
                                          bool allow_degradation) {
  std::vector<LadderStep> ladder;
  ladder.push_back(LadderStep{requested, 1});
  if (!allow_degradation) return ladder;
  const bool index_ok =
      core.himor() != nullptr && k <= core.himor()->max_rank();
  switch (requested) {
    case CodVariant::kCodR:
      ladder.push_back(LadderStep{CodVariant::kCodLMinus, 1});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodL, 1});
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodLMinus:
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodL, 1});
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodL:
      ladder.push_back(LadderStep{CodVariant::kCodL, 4});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodU:
      ladder.push_back(LadderStep{CodVariant::kCodU, 4});
      if (index_ok) {
        ladder.push_back(LadderStep{CodVariant::kCodUIndexed, 1});
      }
      break;
    case CodVariant::kCodUIndexed:
      break;  // cheapest exact rung
    case CodVariant::kCodSketch:
      break;  // already approximate; nothing cheaper exists
  }
  // The sketch rung bottoms out EVERY ladder (when available): it cannot
  // time out in practice, so a batch under a hopeless deadline still
  // returns approximate answers instead of kTimeout.
  if (requested != CodVariant::kCodSketch && core.sketch() != nullptr &&
      core.options().sketch_rung && k <= core.sketch()->rank_depth()) {
    ladder.push_back(LadderStep{CodVariant::kCodSketch, 1});
  }
  return ladder;
}

// Runs `spec` as ladder rung `step` (spec's node / attrs, `step`'s variant,
// possibly shrunken theta). Restores the workspace's theta before returning
// so the next query sees the engine default. Routing through
// EngineCore::Query means every rung — including degraded ones — is tagged
// in the metrics registry under the variant it actually ran.
CodResult RunLadderStep(const EngineCore& core, const QuerySpec& spec,
                        const LadderStep& step, uint32_t k,
                        QueryWorkspace& ws) {
  const uint32_t full_theta = core.options().theta;
  if (step.theta_divisor > 1) {
    ws.evaluator().Rebind(core.model(),
                          std::max(1u, full_theta / step.theta_divisor));
  }
  QuerySpec rung = spec;
  rung.variant = step.variant;
  rung.k = k;
  CodResult result = core.Query(rung, ws);
  if (step.theta_divisor > 1) {
    ws.evaluator().Rebind(core.model(), full_theta);
  }
  return result;
}

// Tallies one finished query into a batch's aggregate stats.
void TallyResult(const CodResult& result, BatchStats* stats) {
  switch (result.code) {
    case StatusCode::kOk:
      if (result.degraded) {
        ++stats->degraded;
      } else {
        ++stats->served_ok;
      }
      if (result.ladder_rung < BatchStats::kMaxRungs) {
        ++stats->per_rung[result.ladder_rung];
      }
      break;
    case StatusCode::kCancelled:
      ++stats->cancelled;
      break;
    default:
      ++stats->timeout;
      break;
  }
}

// Publishes one batch's merged tallies into the process-wide registry
// (one registry touch per outcome class per batch, not per query).
void PublishBatchMetrics(const BatchStats& stats) {
  if (!MetricsRegistry::enabled()) return;
  struct Sites {
    Counter* ok;
    Counter* degraded;
    Counter* timeout;
    Counter* cancelled;
    Counter* shard_missed;
    Counter* per_rung[BatchStats::kMaxRungs];
  };
  static const Sites sites = [] {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    Sites s{};
    s.ok = reg.GetCounter("cod_batch_queries_total{outcome=\"ok\"}");
    s.degraded =
        reg.GetCounter("cod_batch_queries_total{outcome=\"degraded\"}");
    s.timeout = reg.GetCounter("cod_batch_queries_total{outcome=\"timeout\"}");
    s.cancelled =
        reg.GetCounter("cod_batch_queries_total{outcome=\"cancelled\"}");
    s.shard_missed = reg.GetCounter("cod_batch_shard_missed_total");
    for (size_t r = 0; r < BatchStats::kMaxRungs; ++r) {
      s.per_rung[r] = reg.GetCounter("cod_batch_degraded_total{rung=\"" +
                                     std::to_string(r) + "\"}");
    }
    return s;
  }();
  if (stats.served_ok > 0) sites.ok->Increment(stats.served_ok);
  if (stats.degraded > 0) sites.degraded->Increment(stats.degraded);
  if (stats.timeout > 0) sites.timeout->Increment(stats.timeout);
  if (stats.cancelled > 0) sites.cancelled->Increment(stats.cancelled);
  if (stats.shard_missed > 0) {
    sites.shard_missed->Increment(stats.shard_missed);
  }
  for (size_t r = 1; r < BatchStats::kMaxRungs; ++r) {
    if (stats.per_rung[r] > 0) sites.per_rung[r]->Increment(stats.per_rung[r]);
  }
}

// The sharded tier's "answer anyway" conversion: a query whose shard (or
// whose own ladder) missed the deadline is served as a definitive-looking
// non-answer tagged degraded, never as an error (RunShardedQueryBatch
// contract). Pure per-query rewrite — no ordering dependence.
CodResult ShardMissedResult(const QuerySpec& spec) {
  CodResult result;
  result.code = StatusCode::kOk;
  result.found = false;
  result.degraded = true;
  result.variant_served = spec.variant;
  return result;
}

}  // namespace

CodResult RunQuerySpec(const EngineCore& core, const QuerySpec& spec,
                       QueryWorkspace& ws) {
  return core.Query(spec, ws);
}

CodResult RunQuerySpecWithBudget(const EngineCore& core, const QuerySpec& spec,
                                 QueryWorkspace& ws,
                                 const BatchOptions& options,
                                 uint64_t query_seed) {
  const uint32_t k = spec.k == 0 ? core.options().k : spec.k;
  const double budget_seconds = spec.budget_seconds > 0.0
                                    ? spec.budget_seconds
                                    : options.default_budget_seconds;
  const Deadline per_query = budget_seconds > 0.0
                                 ? Deadline::After(budget_seconds)
                                 : Deadline::Infinite();
  const Budget budget{Deadline::Earliest(per_query, options.batch_deadline),
                      options.cancel};

  const std::vector<LadderStep> ladder =
      DegradationLadder(core, spec.variant, k, options.allow_degradation);
  // Admission shedding enters the ladder below rung 0 (clamped: the
  // cheapest rung always runs). Rung numbering is unchanged, so a shed
  // answer is tagged exactly like a timeout-degraded one.
  const size_t first_rung = std::min(options.shed_rungs, ladder.size() - 1);
  CodResult result;
  for (size_t s = first_rung; s < ladder.size(); ++s) {
    // Same seed on every rung: a degraded answer is exactly what a direct
    // query of the served variant would have returned.
    ws.ReseedRng(query_seed);
    ws.SetBudget(budget);
    result = RunLadderStep(core, spec, ladder[s], k, ws);
    ws.ClearBudget();
    result.ladder_rung = static_cast<uint8_t>(s);
    if (result.code == StatusCode::kOk) {
      // OR, don't overwrite: rung 0 can already be degraded when the core
      // itself degraded it (index-absent CODL fallback, CODR base-hierarchy
      // fallback).
      result.degraded = result.degraded || s > 0;
      return result;
    }
    if (result.code == StatusCode::kCancelled) return result;  // no retries
  }
  return result;  // every rung timed out
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed) {
  return RunQueryBatch(core, specs, scheduler, batch_seed, BatchOptions{});
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed,
                                     const BatchOptions& options) {
  return RunQueryBatch(core, specs, scheduler, batch_seed, options, nullptr);
}

std::vector<CodResult> RunQueryBatch(const EngineCore& core,
                                     std::span<const QuerySpec> specs,
                                     TaskScheduler& scheduler,
                                     uint64_t batch_seed,
                                     const BatchOptions& options,
                                     BatchStats* stats) {
  if (stats != nullptr) *stats = BatchStats{};
  std::vector<CodResult> results(specs.size());
  if (specs.empty()) return results;

  const size_t num_chunks = std::min(scheduler.num_threads(), specs.size());

  // Admission control, decided ONCE before any chunk runs: a shed batch
  // starts every query one rung down its ladder (degraded but cheap)
  // instead of queueing at full cost behind an already-deep interactive
  // backlog. One decision per batch keeps the whole result vector
  // deterministic and reproducible via RunQuerySpecWithBudget with the same
  // effective options.
  BatchOptions effective = options;
  bool shed = false;
  if (options.allow_degradation &&
      scheduler.ShouldShed(TaskPriority::kInteractive, num_chunks)) {
    effective.shed_rungs = std::max<size_t>(effective.shed_rungs, 1);
    shed = true;
  }

  std::mutex mu;  // guards merged (chunks finish concurrently)
  BatchStats merged;
  merged.shed = shed;

  // Queue wait: how long each chunk sat behind other scheduler work before
  // its first query ran. Only measured when the registry is on (two clock
  // reads per chunk otherwise wasted).
  Histogram* queue_hist =
      MetricsRegistry::enabled()
          ? MetricsRegistry::Instance().GetHistogram(
                "cod_batch_queue_to_start_seconds")
          : nullptr;
  const auto submit_time = std::chrono::steady_clock::now();

  // The group scopes completion to THIS batch. Waiting from a scheduler
  // worker is safe (inline help), so batches may be issued from tasks.
  TaskGroup group(scheduler);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = specs.size() * c / num_chunks;
    const size_t end = specs.size() * (c + 1) / num_chunks;
    scheduler.Submit(TaskPriority::kInteractive, group, [&core, &results,
                                                         specs, batch_seed,
                                                         begin, end,
                                                         &effective, &mu,
                                                         &merged, queue_hist,
                                                         submit_time] {
      if (queue_hist != nullptr) {
        queue_hist->Observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - submit_time)
                                .count());
      }
      QueryWorkspace ws(core, /*seed=*/0);
      if (effective.sampling_pool != nullptr) {
        ws.SetSamplingPool(effective.sampling_pool);
      }
      BatchStats local;
      for (size_t i = begin; i < end; ++i) {
        // Failure site for tests: a worker "dying" on a query marks that
        // slot cancelled instead of crashing the batch.
        if (COD_FAILPOINT("query_batch/worker")) {
          CodResult killed;
          killed.code = StatusCode::kCancelled;
          killed.variant_served = specs[i].variant;
          results[i] = std::move(killed);
        } else {
          results[i] = RunQuerySpecWithBudget(core, specs[i], ws, effective,
                                              BatchQuerySeed(batch_seed, i));
        }
        TallyResult(results[i], &local);
      }
      std::lock_guard<std::mutex> lock(mu);
      merged.served_ok += local.served_ok;
      merged.degraded += local.degraded;
      merged.timeout += local.timeout;
      merged.cancelled += local.cancelled;
      for (size_t r = 0; r < BatchStats::kMaxRungs; ++r) {
        merged.per_rung[r] += local.per_rung[r];
      }
    });
  }
  group.Wait();

  PublishBatchMetrics(merged);
  if (stats != nullptr) *stats = merged;
  return results;
}

std::vector<CodResult> RunShardedQueryBatch(
    std::span<const ShardBatchInput> shards, std::span<const QuerySpec> specs,
    TaskScheduler& scheduler, uint64_t batch_seed, const BatchOptions& options,
    BatchStats* stats) {
  if (stats != nullptr) *stats = BatchStats{};
  std::vector<CodResult> results(specs.size());
  if (specs.empty()) return results;

  // One shed decision for the WHOLE sharded batch, exactly like the mono
  // path: per-shard decisions would make the merged vector depend on the
  // instantaneous queue depth between shard submissions.
  size_t total_chunks = 0;
  for (const ShardBatchInput& shard : shards) {
    total_chunks +=
        std::min(scheduler.num_threads(), shard.indices.size());
  }
  BatchOptions effective = options;
  bool shed = false;
  if (options.allow_degradation &&
      scheduler.ShouldShed(TaskPriority::kInteractive, total_chunks)) {
    effective.shed_rungs = std::max<size_t>(effective.shed_rungs, 1);
    shed = true;
  }

  std::mutex mu;
  BatchStats merged;
  merged.shed = shed;

  // Scatter: every shard's chunks go into ONE group, submitted before any
  // wait, so shards progress independently (a stalled shard's chunks just
  // sit on the queues; they never gate another shard's workers).
  TaskGroup group(scheduler);
  for (const ShardBatchInput& shard : shards) {
    if (shard.indices.empty()) continue;
    COD_CHECK(shard.core != nullptr);
    // Whole-shard deadline miss, emulated: polled per shard in ascending
    // shard order on the calling thread, BEFORE submission, so tests arming
    // a count get a deterministic set of missed shards. The shard's queries
    // become degraded non-answers without touching its core.
    if (COD_FAILPOINT("serving/shard_deadline")) {
      // Outcome buckets partition: a shard-missed query counts ONLY in
      // shard_missed, never also in degraded / per_rung (the result object
      // still carries degraded=true for the caller).
      size_t missed = 0;
      for (size_t index : shard.indices) {
        results[index] = ShardMissedResult(specs[index]);
        ++missed;
      }
      std::lock_guard<std::mutex> lock(mu);
      merged.shard_missed += missed;
      continue;
    }
    const EngineCore& core = *shard.core;
    const std::vector<size_t>& indices = shard.indices;
    const size_t num_chunks =
        std::min(scheduler.num_threads(), indices.size());
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = indices.size() * c / num_chunks;
      const size_t end = indices.size() * (c + 1) / num_chunks;
      scheduler.Submit(TaskPriority::kInteractive, group, [&core, &results,
                                                           specs, &indices,
                                                           batch_seed, begin,
                                                           end, &effective,
                                                           &mu, &merged] {
        QueryWorkspace ws(core, /*seed=*/0);
        if (effective.sampling_pool != nullptr) {
          ws.SetSamplingPool(effective.sampling_pool);
        }
        BatchStats local;
        for (size_t pos = begin; pos < end; ++pos) {
          const size_t i = indices[pos];
          if (COD_FAILPOINT("query_batch/worker")) {
            CodResult killed;
            killed.code = StatusCode::kCancelled;
            killed.variant_served = specs[i].variant;
            results[i] = std::move(killed);
          } else {
            // Seeded by the ORIGINAL batch position: the answer does not
            // depend on which shard (or chunk) served the query.
            results[i] = RunQuerySpecWithBudget(core, specs[i], ws, effective,
                                                BatchQuerySeed(batch_seed, i));
            if (results[i].code == StatusCode::kTimeout) {
              // Shard-aware degradation: the deadline ate every rung —
              // serve the degraded non-answer instead of an error. Counts
              // only as shard_missed; TallyResult would re-bucket it as
              // degraded and double it into the partition.
              results[i] = ShardMissedResult(specs[i]);
              ++local.shard_missed;
              continue;
            }
          }
          TallyResult(results[i], &local);
        }
        std::lock_guard<std::mutex> lock(mu);
        merged.served_ok += local.served_ok;
        merged.degraded += local.degraded;
        merged.timeout += local.timeout;
        merged.cancelled += local.cancelled;
        merged.shard_missed += local.shard_missed;
        for (size_t r = 0; r < BatchStats::kMaxRungs; ++r) {
          merged.per_rung[r] += local.per_rung[r];
        }
      });
    }
  }
  group.Wait();

  PublishBatchMetrics(merged);
  if (stats != nullptr) *stats = merged;
  return results;
}

}  // namespace cod
