#include "core/adaptive_eval.h"

namespace cod {

AdaptiveEvaluator::AdaptiveEvaluator(const DiffusionModel& model,
                                     const AdaptiveOptions& options)
    : model_(&model), options_(options) {
  COD_CHECK(options.initial_theta >= 1);
  COD_CHECK(options.max_theta >= options.initial_theta);
  COD_CHECK(options.stable_rounds >= 1);
}

AdaptiveOutcome AdaptiveEvaluator::Evaluate(const CodChain& chain, NodeId q,
                                            uint32_t k, Rng& rng,
                                            const SketchPruneGuide* guide) {
  AdaptiveOutcome result;
  int agreement = 0;
  int previous_best = -2;  // sentinel distinct from "not found" (-1)
  for (uint32_t theta = options_.initial_theta;; theta *= 2) {
    CompressedEvaluator evaluator(*model_, theta);
    result.outcome =
        evaluator.Evaluate(chain, q, k, rng, Budget{}, nullptr, guide);
    result.final_theta = theta;
    ++result.rounds;
    if (result.outcome.best_level == previous_best) {
      if (++agreement >= options_.stable_rounds) break;
    } else {
      agreement = 0;
      previous_best = result.outcome.best_level;
    }
    if (theta >= options_.max_theta) break;
  }
  return result;
}

}  // namespace cod
