// HIMOR index: precomputed Hierarchical Influence-rank Materialization Over
// the non-attributed community hierarchy (paper Section IV-B).
//
// For every node v and every community C on v's ancestor chain in the
// non-attributed dendrogram T, the index stores v's influence rank in C.
// LORE only alters the hierarchy *below* the reclustered community C_ell, so
// a CODL query can answer from the index whenever some ancestor of C_ell
// already has the query in its top-k, and only falls back to compressed
// evaluation inside C_ell otherwise (Algorithm 3).
//
// Construction (compressed, Theorem 6) extends compressed COD evaluation to
// the whole tree: one shared pool of Theta = theta * |V| RR graphs is
// traversed by hierarchical-first search with *tree-structured* buckets (one
// per community, holding each reached node's count at the deepest community
// containing a live source path); buckets are then merged bottom-up as
// sorted runs, producing every community's full ranking in
// O(Theta*omega + |R| log |V| + sum_v dep(v)).
//
// Every builder draws sample (source, j) from the counter-seeded schedule
// RrSampleSeed(seed, source * theta + j) — independent of epoch, thread
// placement, and every other sample. That one schedule is what makes the
// parallel/scoped/delta builders bit-compatible, lets BuildDelta reuse any
// subset of samples byte-identically, and lets the coverage-sketch index
// (influence/coverage_sketch.h) prove query-time pruning bounds against the
// very pool a pinned evaluation will draw.
//
// Incremental construction (BuildDelta, DESIGN.md Sec. 15): under a small
// edge delta, most RR graphs and most of their hierarchical-first tags are
// unchanged. BuildDelta reuses, per sample, as much of the previous
// epoch's work as a dirty-vertex bitmap and a member-set comparison of the
// two dendrograms prove safe. A delta build is bit-identical to a cold
// BuildDelta on the same graph.

#ifndef COD_CORE_HIMOR_H_
#define COD_CORE_HIMOR_H_

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/deadline.h"
#include "common/status.h"
#include "hierarchy/dendrogram.h"
#include "hierarchy/lca.h"
#include "influence/coverage_sketch.h"
#include "influence/rr_graph.h"
#include "influence/rr_pool.h"

namespace cod {

class CoverageSketchBuilder;

// Cross-epoch carry state for BuildDelta: everything epoch N's build must
// remember so epoch N+1 can skip the untouched fraction. Owned by the
// serving layer (one double-buffered pair per service), opaque to queries.
//
//  * `rr` holds every RR graph of the epoch, sample (s, j) at slab index
//    s * theta + j. A sample whose visited set avoids the dirty bitmap
//    replays bit-identically (the sampler consumes randomness per VISITED
//    node, as a function of that node's adjacency only), so its bytes are
//    carried forward instead of resampled.
//  * The pair arrays record, per visited node of each sample, its
//    hierarchical-first tag: `pair_pos` is the chain position (distance
//    from the leaf, 0 = the source's leaf parent) of the deepest source
//    ancestor containing the node, `pair_tag` the position the node was
//    emitted at (the path-bottleneck clamp of pos), `pair_node` the node.
//    When the source's old and new ancestor chains agree (by member-set
//    size + fingerprint) at every position a sample referenced, the cached
//    pairs remap to the new chain without re-walking the RR graph.
//  * `parent` / `set_hash` / `set_size` describe the OLD dendrogram's
//    ancestor structure, so the matching needs no reference to the previous
//    epoch's engine core.
//  * `rows` carries the aggregated bucket contents, keyed by community
//    member-set fingerprint rather than community id so the key survives
//    dendrogram renumbering. A sample whose every tag sits at a member-set
//    preserved chain position contributes the identical (fingerprint, node)
//    multiset in both epochs, so BuildDelta moves the whole map forward
//    (stealing it from `prev`) and applies only the sparse sub/add delta of
//    the samples that actually changed. A cross-community fingerprint
//    collision would merge two buckets — the same ~2^-60 risk class as the
//    chain match (DESIGN.md Sec. 15). Cache-only carry state, never
//    serialized.
struct HimorSampleCache {
  struct BucketRow {
    std::vector<NodeId> node;
    std::vector<uint32_t> count;  // parallel to `node`; entries stay > 0
  };

  uint32_t theta = 0;
  uint64_t seed = 0;
  uint32_t max_rank = 0;
  size_t num_leaves = 0;
  std::vector<CommunityId> parent;  // per old dendrogram vertex
  std::vector<uint64_t> set_hash;   // commutative member-set fingerprint
  std::vector<uint32_t> set_size;   // leaf count
  RrSlabPool rr;
  std::vector<uint64_t> pair_begin;  // per sample, CSR into the pair arrays
  std::vector<uint32_t> pair_pos;
  std::vector<uint32_t> pair_tag;
  std::vector<NodeId> pair_node;
  std::unordered_map<uint64_t, BucketRow> rows;
  bool valid = false;
};

// Per-build reuse accounting (BuildDelta outputs; the serving layer turns
// these into cod_rebuild_delta_samples_* counters).
struct HimorDeltaStats {
  uint64_t samples_total = 0;
  uint64_t samples_resampled = 0;  // RR set touched a dirty vertex
  uint64_t samples_replayed = 0;   // RR bytes reused, HFS walk re-run
  uint64_t samples_reused = 0;     // RR bytes and cached tags both reused
};

class HimorIndex {
 public:
  struct Entry {
    CommunityId community;
    uint32_t rank;  // number of members with strictly larger influence
  };

  // Builds the index over `dendrogram` (which, with `model`'s graph and
  // `lca`, must outlive the returned index's *construction* only — the index
  // itself owns its data). `theta` RR graphs are sampled per node.
  //
  // `max_rank` implements the paper's "selected communities": only
  // (community, rank) pairs with rank < max_rank are materialized, since a
  // query with requirement k <= max_rank never needs the others (an absent
  // ancestor means rank >= max_rank > k - 1). This keeps the index size near
  // the input data size even on skewed hierarchies; pass
  // std::numeric_limits<uint32_t>::max() to materialize every ancestor.
  static HimorIndex Build(const DiffusionModel& model,
                          const Dendrogram& dendrogram, const LcaIndex& lca,
                          uint32_t theta, Rng& rng, uint32_t max_rank = 16);

  // Multi-threaded construction. Sources are split into a FIXED number of
  // batches, each with its own seeded RNG stream, so the produced index is a
  // pure function of (seed, theta) — identical for any thread count
  // (num_threads == 0 uses the hardware concurrency).
  static HimorIndex BuildParallel(const DiffusionModel& model,
                                  const Dendrogram& dendrogram,
                                  const LcaIndex& lca, uint32_t theta,
                                  uint64_t seed, uint32_t max_rank = 16,
                                  size_t num_threads = 0);

  // Budget-aware builders, used by the serving stack (see
  // serving/dynamic_service.h): an exhausted budget or an armed "himor/build"
  // failpoint returns kTimeout / kCancelled / kIoError instead of running
  // unbounded. The budget is polled once per source node (the per-source RR
  // batch is the check interval); parallel workers share an abort flag, so
  // one worker's budget miss stops the others within a source. On failure
  // nothing is returned — either the full deterministic index or an error,
  // never a partial index. The unbudgeted builders above forward here with
  // an infinite budget and CHECK success, so they also observe the
  // failpoint (arm it only around code using these Result forms).
  //
  // Every budgeted builder optionally co-builds the coverage-sketch index:
  // with sketch_bits > 0 and `sketch` non-null, *sketch receives a
  // CoverageSketchIndex built from the very same RR samples and bucket
  // runs, at seed = the schedule seed the samples were drawn from. An armed
  // "influence/sketch_build" failpoint (or sketch_bits == 0) leaves *sketch
  // empty while the index itself still builds — sketch loss degrades
  // pruning, never correctness. Build(rng) spends exactly one rng.Next()
  // draw on the schedule seed.
  static Result<HimorIndex> Build(const DiffusionModel& model,
                                  const Dendrogram& dendrogram,
                                  const LcaIndex& lca, uint32_t theta,
                                  Rng& rng, uint32_t max_rank,
                                  const Budget& budget,
                                  uint32_t sketch_bits = 0,
                                  std::optional<CoverageSketchIndex>* sketch =
                                      nullptr);
  static Result<HimorIndex> BuildParallel(const DiffusionModel& model,
                                          const Dendrogram& dendrogram,
                                          const LcaIndex& lca, uint32_t theta,
                                          uint64_t seed, uint32_t max_rank,
                                          size_t num_threads,
                                          const Budget& budget,
                                          uint32_t sketch_bits = 0,
                                          std::optional<CoverageSketchIndex>*
                                              sketch = nullptr);

  // Component-scoped builder (sharded serving; see
  // EngineOptions::component_scoped). Two differences from Build:
  //
  //  1. Samples come from the shared source-keyed schedule
  //     RrSampleSeed(seed, source * theta + j), so a node's samples — and
  //     therefore every within-component rank — are a pure function of
  //     (seed, theta, its own component's subgraph), independent of which
  //     other components share the shard graph.
  //  2. Only "pure" communities (LeafCount <= the size of their members'
  //     connected component, i.e. subtrees that never cross a component
  //     boundary) are materialized into the per-node entry lists. The
  //     impure merge vertices a dendrogram over a disconnected graph stacks
  //     on top carry no influence signal and would differ per shard layout.
  //
  // `comp_size_of_node[v]` is v's connected-component size (from
  // graph::ConnectedComponents). On a connected graph every community is
  // pure and the entry set matches Build at the same schedule seed.
  static Result<HimorIndex> BuildScoped(
      const DiffusionModel& model, const Dendrogram& dendrogram,
      const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
      const Budget& budget, const std::vector<uint32_t>& comp_size_of_node,
      uint32_t sketch_bits = 0,
      std::optional<CoverageSketchIndex>* sketch = nullptr);

  // Incremental builder (the delta-rebuild serving mode). Samples on the
  // same counter-seeded schedule RrSampleSeed(seed, s * theta + j) as every
  // other builder — delta mode still joins the service options fingerprint
  // because the serving layer derives the SEED VALUE differently per epoch
  // (seed + ticket vs a ticket-seeded rng draw; see
  // ServiceOptions::delta_rebuild). With prev == nullptr (or an unusable
  // cache) every sample
  // is drawn fresh: the cold build. With a valid `prev` plus the `dirty`
  // bitmap of vertices incident to any edge changed since prev's epoch,
  // each sample takes the cheapest sound tier:
  //
  //   1. resample — some visited vertex is dirty; redraw from the sample's
  //      own seed and re-walk (identical to what the cold build does);
  //   2. replay  — the RR bytes are clean but the source's ancestor chain
  //      changed at a referenced position; reuse the bytes, re-run the
  //      hierarchical-first walk against the new dendrogram;
  //   3. reuse   — bytes clean and every chain position the sample's tags
  //      reference is member-set-preserved at a consecutively shifted new
  //      position; the cached (pos, node) pairs are emitted directly.
  //
  // The produced index is bit-identical to the prev == nullptr build on the
  // same graph (the delta-vs-cold equivalence suite pins this; set
  // fingerprints have a ~2^-60 collision risk, see DESIGN.md Sec. 15).
  // `next` (required, != prev) receives the carry state for the following
  // epoch; it is valid only when the build returns Ok. A SUCCESSFUL build
  // consumes prev->rows (the bucket carry is moved, not copied — prev is
  // retired by the caller's double-buffer flip anyway); a failed build
  // leaves `prev` fully reusable.
  // `comp_size_of_node` enables BuildScoped's component-pure
  // materialization (nullptr = materialize everything, the mono behavior).
  static Result<HimorIndex> BuildDelta(
      const DiffusionModel& model, const Dendrogram& dendrogram,
      const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
      const Budget& budget, const std::vector<uint32_t>* comp_size_of_node,
      const std::vector<char>* dirty, HimorSampleCache* prev,
      HimorSampleCache* next, HimorDeltaStats* stats,
      uint32_t sketch_bits = 0,
      std::optional<CoverageSketchIndex>* sketch = nullptr);

  uint32_t max_rank() const { return max_rank_; }

  // v's stored (community, rank) pairs along its ancestor chain, deepest
  // first (only ancestors where v's rank < max_rank appear).
  std::span<const Entry> RanksOf(NodeId v) const {
    COD_DCHECK(v + 1 < offsets_.size());
    return {entries_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  // Algorithm 3, lines 1-2: the largest community that (a) contains
  // `c_ell` (ancestor-or-equal on q's chain) and (b) has q in its top-k.
  // Returns nullptr if none qualifies. Requires k <= max_rank().
  const Entry* FindTopKAncestor(NodeId q, CommunityId c_ell, uint32_t k,
                                const Dendrogram& dendrogram) const;

  size_t NumEntries() const { return entries_.size(); }
  size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(Entry) + offsets_.size() * sizeof(size_t);
  }

  // Binary persistence; a loaded index is only valid together with the
  // dendrogram it was built over (persist that with SaveDendrogram). The
  // file format carries a CRC32C envelope, so corruption (bit flips,
  // truncation) fails the load cleanly instead of producing a wrong index.
  Status Save(const std::string& path) const;
  static Result<HimorIndex> Load(const std::string& path);

  // Buffer forms of the payload codec, for embedding into checksummed
  // containers (storage/epoch_snapshot.h). Deserialize performs the same
  // structural validation as Load.
  void SerializeTo(BinaryBufferWriter& out) const;
  static Result<HimorIndex> Deserialize(BinarySpanReader& in);

 private:
  // Stage-1 output in community-major CSR form: bucket c's aggregated
  // (node, count) items live at [item_begin[c], item_begin[c + 1]).
  struct BucketTable {
    std::vector<size_t> item_begin;  // num_vertices + 1
    std::vector<NodeId> node;
    std::vector<uint32_t> count;
  };

  // Aggregates raw (community, node) tag pairs into the CSR bucket table
  // (counting sort by community, then per-segment dedup with node stamps).
  static BucketTable BuildBuckets(
      std::span<const std::pair<CommunityId, NodeId>> pairs,
      size_t num_vertices, size_t num_nodes);

  // Stage 2 (bottom-up bucket merging), shared by all builders. When
  // `comp_size_of_node` is non-null, only pure communities (see BuildScoped)
  // are materialized into per-node entries. `items_of(c, emit)` supplies the
  // aggregated bucket items of non-leaf community c in any order;
  // BuildFromBuckets adapts a BucketTable onto it, the delta builder its
  // incrementally maintained fingerprint-keyed rows. A non-null `sketch`
  // observes every community's bucket run, merged run, and (for
  // materialized communities) member counts — the coverage-sketch build
  // rides stage 2 instead of re-walking anything.
  template <typename ItemsOf>
  static HimorIndex BuildFromItems(
      const Dendrogram& dendrogram, uint32_t max_rank, ItemsOf&& items_of,
      const std::vector<uint32_t>* comp_size_of_node,
      CoverageSketchBuilder* sketch = nullptr);

  static HimorIndex BuildFromBuckets(
      const Dendrogram& dendrogram, uint32_t max_rank,
      const BucketTable& buckets,
      const std::vector<uint32_t>* comp_size_of_node = nullptr,
      CoverageSketchBuilder* sketch = nullptr);

  uint32_t max_rank_ = 0;
  std::vector<size_t> offsets_;  // per node, into entries_
  std::vector<Entry> entries_;
};

}  // namespace cod

#endif  // COD_CORE_HIMOR_H_
