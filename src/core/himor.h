// HIMOR index: precomputed Hierarchical Influence-rank Materialization Over
// the non-attributed community hierarchy (paper Section IV-B).
//
// For every node v and every community C on v's ancestor chain in the
// non-attributed dendrogram T, the index stores v's influence rank in C.
// LORE only alters the hierarchy *below* the reclustered community C_ell, so
// a CODL query can answer from the index whenever some ancestor of C_ell
// already has the query in its top-k, and only falls back to compressed
// evaluation inside C_ell otherwise (Algorithm 3).
//
// Construction (compressed, Theorem 6) extends compressed COD evaluation to
// the whole tree: one shared pool of Theta = theta * |V| RR graphs is
// traversed by hierarchical-first search with *tree-structured* buckets (one
// per community, holding each reached node's count at the deepest community
// containing a live source path); buckets are then merged bottom-up as
// sorted runs, producing every community's full ranking in
// O(Theta*omega + |R| log |V| + sum_v dep(v)).

#ifndef COD_CORE_HIMOR_H_
#define COD_CORE_HIMOR_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/deadline.h"
#include "common/status.h"
#include "hierarchy/dendrogram.h"
#include "hierarchy/lca.h"
#include "influence/rr_graph.h"

namespace cod {

class HimorIndex {
 public:
  struct Entry {
    CommunityId community;
    uint32_t rank;  // number of members with strictly larger influence
  };

  // Builds the index over `dendrogram` (which, with `model`'s graph and
  // `lca`, must outlive the returned index's *construction* only — the index
  // itself owns its data). `theta` RR graphs are sampled per node.
  //
  // `max_rank` implements the paper's "selected communities": only
  // (community, rank) pairs with rank < max_rank are materialized, since a
  // query with requirement k <= max_rank never needs the others (an absent
  // ancestor means rank >= max_rank > k - 1). This keeps the index size near
  // the input data size even on skewed hierarchies; pass
  // std::numeric_limits<uint32_t>::max() to materialize every ancestor.
  static HimorIndex Build(const DiffusionModel& model,
                          const Dendrogram& dendrogram, const LcaIndex& lca,
                          uint32_t theta, Rng& rng, uint32_t max_rank = 16);

  // Multi-threaded construction. Sources are split into a FIXED number of
  // batches, each with its own seeded RNG stream, so the produced index is a
  // pure function of (seed, theta) — identical for any thread count
  // (num_threads == 0 uses the hardware concurrency).
  static HimorIndex BuildParallel(const DiffusionModel& model,
                                  const Dendrogram& dendrogram,
                                  const LcaIndex& lca, uint32_t theta,
                                  uint64_t seed, uint32_t max_rank = 16,
                                  size_t num_threads = 0);

  // Budget-aware builders, used by the serving stack (see
  // serving/dynamic_service.h): an exhausted budget or an armed "himor/build"
  // failpoint returns kTimeout / kCancelled / kIoError instead of running
  // unbounded. The budget is polled once per source node (the per-source RR
  // batch is the check interval); parallel workers share an abort flag, so
  // one worker's budget miss stops the others within a source. On failure
  // nothing is returned — either the full deterministic index or an error,
  // never a partial index. The unbudgeted builders above forward here with
  // an infinite budget and CHECK success, so they also observe the
  // failpoint (arm it only around code using these Result forms).
  static Result<HimorIndex> Build(const DiffusionModel& model,
                                  const Dendrogram& dendrogram,
                                  const LcaIndex& lca, uint32_t theta,
                                  Rng& rng, uint32_t max_rank,
                                  const Budget& budget);
  static Result<HimorIndex> BuildParallel(const DiffusionModel& model,
                                          const Dendrogram& dendrogram,
                                          const LcaIndex& lca, uint32_t theta,
                                          uint64_t seed, uint32_t max_rank,
                                          size_t num_threads,
                                          const Budget& budget);

  // Component-scoped builder (sharded serving; see
  // EngineOptions::component_scoped). Two differences from Build:
  //
  //  1. Every source draws its RR graphs from a PRIVATE RNG stream seeded by
  //     SplitMix64(seed + source), so a node's samples — and therefore every
  //     within-component rank — are a pure function of (seed, theta, its own
  //     component's subgraph), independent of which other components share
  //     the shard graph.
  //  2. Only "pure" communities (LeafCount <= the size of their members'
  //     connected component, i.e. subtrees that never cross a component
  //     boundary) are materialized into the per-node entry lists. The
  //     impure merge vertices a dendrogram over a disconnected graph stacks
  //     on top carry no influence signal and would differ per shard layout.
  //
  // `comp_size_of_node[v]` is v's connected-component size (from
  // graph::ConnectedComponents). On a connected graph every community is
  // pure and the entry set matches Build with the per-source seeding.
  static Result<HimorIndex> BuildScoped(
      const DiffusionModel& model, const Dendrogram& dendrogram,
      const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
      const Budget& budget, const std::vector<uint32_t>& comp_size_of_node);

  uint32_t max_rank() const { return max_rank_; }

  // v's stored (community, rank) pairs along its ancestor chain, deepest
  // first (only ancestors where v's rank < max_rank appear).
  std::span<const Entry> RanksOf(NodeId v) const {
    COD_DCHECK(v + 1 < offsets_.size());
    return {entries_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  // Algorithm 3, lines 1-2: the largest community that (a) contains
  // `c_ell` (ancestor-or-equal on q's chain) and (b) has q in its top-k.
  // Returns nullptr if none qualifies. Requires k <= max_rank().
  const Entry* FindTopKAncestor(NodeId q, CommunityId c_ell, uint32_t k,
                                const Dendrogram& dendrogram) const;

  size_t NumEntries() const { return entries_.size(); }
  size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t MemoryBytes() const {
    return entries_.size() * sizeof(Entry) + offsets_.size() * sizeof(size_t);
  }

  // Binary persistence; a loaded index is only valid together with the
  // dendrogram it was built over (persist that with SaveDendrogram). The
  // file format carries a CRC32C envelope, so corruption (bit flips,
  // truncation) fails the load cleanly instead of producing a wrong index.
  Status Save(const std::string& path) const;
  static Result<HimorIndex> Load(const std::string& path);

  // Buffer forms of the payload codec, for embedding into checksummed
  // containers (storage/epoch_snapshot.h). Deserialize performs the same
  // structural validation as Load.
  void SerializeTo(BinaryBufferWriter& out) const;
  static Result<HimorIndex> Deserialize(BinarySpanReader& in);

 private:
  // Stage 2 (bottom-up bucket merging), shared by all builders. When
  // `comp_size_of_node` is non-null, only pure communities (see BuildScoped)
  // are materialized into per-node entries.
  static HimorIndex BuildFromBuckets(
      const Dendrogram& dendrogram, uint32_t max_rank,
      std::vector<std::unordered_map<NodeId, uint32_t>> buckets,
      const std::vector<uint32_t>* comp_size_of_node = nullptr);

  uint32_t max_rank_ = 0;
  std::vector<size_t> offsets_;  // per node, into entries_
  std::vector<Entry> entries_;
};

}  // namespace cod

#endif  // COD_CORE_HIMOR_H_
