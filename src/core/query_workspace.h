// QueryWorkspace: the mutable half of a COD query.
//
// EngineCore holds everything a query reads; this object holds everything a
// query writes — the compressed evaluator with its RR-sampling scratch and
// bucket buffers, plus the RNG that drives sampling. One workspace serves
// one thread: allocate it once, reuse it across any number of queries
// against the same core, and Rebind() it when an epoch swap replaces the
// core (scratch capacity is kept).
//
// A workspace is bound to the core it was created from (the evaluator
// references that core's diffusion model); EngineCore query methods
// DCHECK the binding.

#ifndef COD_CORE_QUERY_WORKSPACE_H_
#define COD_CORE_QUERY_WORKSPACE_H_

#include <cstdint>

#include "common/deadline.h"
#include "common/random.h"
#include "core/compressed_eval.h"
#include "core/query_stats.h"

namespace cod {

class EngineCore;

class QueryWorkspace {
 public:
  // Binds to `core`'s diffusion model and theta; `seed` initializes the
  // workspace RNG. `core` must outlive the workspace or be replaced via
  // Rebind before further use.
  QueryWorkspace(const EngineCore& core, uint64_t seed);

  // Re-binds to a (possibly different) core, reusing scratch allocations.
  // The RNG stream is left untouched; ReseedRng to restart it.
  void Rebind(const EngineCore& core);

  Rng& rng() { return rng_; }
  void ReseedRng(uint64_t seed) { rng_ = Rng(seed); }

  CompressedEvaluator& evaluator() { return evaluator_; }
  const EngineCore* bound_core() const { return core_; }

  // Optional intra-query sampling scheduler (borrowed, never owned; see
  // influence/rr_pool.h). When set, queries through this workspace shard
  // their RR-pool construction across it — unless the active QuerySpec
  // disables `parallel_sampling`. Sharing the batch scheduler is the normal
  // case: sampling chunks are interactive tasks whose group wait helps
  // inline, so there is no self-scheduler hazard. Results are bit-identical
  // with or without a scheduler.
  void SetSamplingPool(TaskScheduler* scheduler) {
    sampling_pool_ = scheduler;
  }
  TaskScheduler* sampling_pool() const { return sampling_pool_; }

  // Per-query effective toggle, set by EngineCore::Query from the spec
  // (defaults to on). EvaluateChain consults the combination.
  void SetParallelSampling(bool on) { parallel_sampling_ = on; }
  bool parallel_sampling() const { return parallel_sampling_; }
  TaskScheduler* effective_sampling_pool() const {
    return parallel_sampling_ ? sampling_pool_ : nullptr;
  }

  // Per-query budget: EngineCore query methods poll this between units of
  // work (RR samples, LORE edge strides) and unwind with kTimeout /
  // kCancelled when it is exhausted. Defaults to unlimited; the batch API
  // (core/query_batch.h) sets it around each ladder rung.
  void SetBudget(const Budget& budget) { budget_ = budget; }
  void ClearBudget() { budget_ = Budget{}; }
  const Budget& budget() const { return budget_; }

  // |R| explored by the most recent evaluation (diagnostics; see
  // CompressedEvaluator::last_explored_nodes).
  size_t last_explored_nodes() const {
    return evaluator_.last_explored_nodes();
  }

  // Per-query stage accumulator: EngineCore::Query resets it, the variant
  // implementations add to it, and the final CodResult copies it out. After
  // a query it still holds that query's numbers (diagnostics).
  QueryStats& stats() { return stats_; }
  const QueryStats& stats() const { return stats_; }

 private:
  const EngineCore* core_;
  CompressedEvaluator evaluator_;
  Rng rng_;
  Budget budget_;
  QueryStats stats_;
  TaskScheduler* sampling_pool_ = nullptr;  // borrowed, never owned
  bool parallel_sampling_ = true;
};

}  // namespace cod

#endif  // COD_CORE_QUERY_WORKSPACE_H_
