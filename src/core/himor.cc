#include "core/himor.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <unordered_map>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/task_scheduler.h"

namespace cod {
namespace {

// (count, node) runs sorted by descending count, ascending node id on ties.
using Run = std::vector<std::pair<uint32_t, NodeId>>;

bool RunLess(const std::pair<uint32_t, NodeId>& a,
             const std::pair<uint32_t, NodeId>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

// Merges `a` and `b` into `out` (appending), skipping entries whose node is
// in `exclude`.
void MergeRuns(const Run& a, const Run& b,
               const std::unordered_map<NodeId, uint32_t>& exclude, Run* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j == b.size() || (i < a.size() && RunLess(a[i], b[j]));
    const auto& item = take_a ? a[i++] : b[j++];
    if (exclude.contains(item.second)) continue;
    out->push_back(item);
  }
}

// Stage-1 worker: samples RR graphs from a contiguous source range and
// performs hierarchical-first search on the tree, emitting one
// (community, node) pair per first visit. Each worker owns its scratch, so
// independent workers can run on a thread pool; pairs are merged into
// count maps afterwards (addition commutes, so any merge order works).
class TreeHfsSampler {
 public:
  TreeHfsSampler(const DiffusionModel& model, const Dendrogram& dendrogram,
                 const LcaIndex& lca)
      : dendrogram_(&dendrogram), lca_(&lca), sampler_(model) {
    max_depth_ = 0;
    for (CommunityId c = 0; c < dendrogram.NumVertices(); ++c) {
      max_depth_ = std::max(max_depth_, dendrogram.Depth(c));
    }
    depth_queue_.resize(max_depth_ + 1);
  }

  // Returns kOk, or the first exhausted-budget/abort code observed. The
  // budget is polled once per source (a source's theta RR graphs are the
  // check interval); `abort_code`, when non-null, is shared across parallel
  // workers so one worker's failure stops the rest at their next source.
  StatusCode ProcessSources(NodeId begin, NodeId end, uint32_t theta,
                            Rng& rng,
                            std::vector<std::pair<CommunityId, NodeId>>* pairs,
                            const Budget& budget,
                            std::atomic<int>* abort_code) {
    const Dendrogram& dendrogram = *dendrogram_;
    for (NodeId source = begin; source < end; ++source) {
      if (abort_code != nullptr) {
        const int aborted = abort_code->load(std::memory_order_relaxed);
        if (aborted != 0) return static_cast<StatusCode>(aborted);
      }
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        if (abort_code != nullptr) {
          int expected = 0;
          abort_code->compare_exchange_strong(expected,
                                             static_cast<int>(budget_code),
                                             std::memory_order_relaxed);
        }
        return budget_code;
      }
      // Ancestors of the source, indexed by depth.
      source_chain_.assign(max_depth_ + 1, kInvalidCommunity);
      uint32_t source_level = 0;
      {
        CommunityId c = dendrogram.Parent(dendrogram.LeafOf(source));
        source_level = dendrogram.Depth(c);
        while (c != kInvalidCommunity) {
          source_chain_[dendrogram.Depth(c)] = c;
          c = dendrogram.Parent(c);
        }
      }
      for (uint32_t t = 0; t < theta; ++t) {
        sampler_.Sample(source, rng, &rr_);
        const size_t n_local = rr_.NumNodes();
        if (queued_.size() < n_local) queued_.resize(n_local);
        std::fill(queued_.begin(), queued_.begin() + n_local, 0);

        queued_[0] = 1;
        depth_queue_[source_level].push_back(0);
        pending_.push(source_level);
        while (!pending_.empty()) {
          const uint32_t d = pending_.top();
          pending_.pop();
          auto& queue = depth_queue_[d];
          const CommunityId community = source_chain_[d];
          for (size_t idx = 0; idx < queue.size(); ++idx) {
            const uint32_t i = queue[idx];
            pairs->emplace_back(community, rr_.nodes[i]);
            for (uint32_t u : rr_.NeighborsOf(i)) {
              if (queued_[u]) continue;
              queued_[u] = 1;
              // Smallest source-ancestor containing u has depth
              // Depth(lca(u, source)); the live path so far is within depth
              // d, so u's tag is the shallower of the two.
              const uint32_t lvl_u =
                  dendrogram.Depth(lca_->LcaOfNodes(rr_.nodes[u], source));
              const uint32_t d2 = std::min(d, lvl_u);
              if (d2 != d && depth_queue_[d2].empty()) pending_.push(d2);
              depth_queue_[d2].push_back(u);
            }
          }
          queue.clear();
        }
      }
    }
    return StatusCode::kOk;
  }

 private:
  const Dendrogram* dendrogram_;
  const LcaIndex* lca_;
  RrSampler sampler_;
  RrGraph rr_;
  uint32_t max_depth_ = 0;
  std::vector<std::vector<uint32_t>> depth_queue_;
  std::priority_queue<uint32_t> pending_;  // max-heap: deepest first
  std::vector<char> queued_;
  std::vector<CommunityId> source_chain_;
};

// Error for a build aborted with the (non-ok) budget code recorded at the
// check site — never re-polls the budget, which may have changed since.
Status BudgetStatus(StatusCode code, const char* what) {
  return code == StatusCode::kCancelled
             ? Status::Cancelled(std::string(what) + " cancelled")
             : Status::Timeout(std::string(what) + " deadline exceeded");
}

}  // namespace

// Stage 2 entry point shared by the serial and parallel builders.
HimorIndex HimorIndex::BuildFromBuckets(
    const Dendrogram& dendrogram, uint32_t max_rank,
    std::vector<std::unordered_map<NodeId, uint32_t>> buckets,
    const std::vector<uint32_t>* comp_size_of_node) {
  const size_t n = dendrogram.NumLeaves();
  const size_t num_vertices = dendrogram.NumVertices();
  // ---- Stage 2: bottom-up merge of tree-structured buckets. ----
  // Internal vertex ids increase bottom-up (children precede parents), so a
  // simple ascending sweep is a valid post-order replacement.
  std::vector<Run> runs(num_vertices);
  std::vector<uint32_t> acc(n, 0);        // cumulative count along each
                                          // node's processed chain
  std::vector<uint32_t> rank_of(n, 0);    // scratch, epoch-guarded
  std::vector<uint32_t> rank_epoch(n, 0);
  uint32_t epoch = 0;

  std::vector<std::vector<Entry>> per_node(n);
  for (NodeId v = 0; v < n; ++v) {
    per_node[v].reserve(dendrogram.Depth(dendrogram.LeafOf(v)));
  }

  Run scratch;
  for (CommunityId c = 0; c < num_vertices; ++c) {
    if (dendrogram.IsLeaf(c)) continue;
    auto& bucket = buckets[c];

    // Nodes recorded at c get their accumulated totals bumped; they will be
    // re-inserted with fresh values, so child-run copies are excluded.
    Run updated;
    updated.reserve(bucket.size());
    for (const auto& [v, count] : bucket) {
      acc[v] += count;
      updated.emplace_back(acc[v], v);
    }
    std::sort(updated.begin(), updated.end(), RunLess);

    // Merge child runs (2-way cascade; agglomerative trees are binary except
    // possibly at the root).
    Run merged;
    const auto kids = dendrogram.Children(c);
    bool first = true;
    for (CommunityId child : kids) {
      Run& child_run = runs[child];
      if (first) {
        merged.clear();
        MergeRuns(child_run, Run{}, bucket, &merged);
        first = false;
      } else {
        scratch.clear();
        MergeRuns(merged, child_run, bucket, &scratch);
        merged.swap(scratch);
      }
      Run().swap(child_run);  // free child memory
    }
    scratch.clear();
    MergeRuns(merged, updated, /*exclude=*/{}, &scratch);
    merged.swap(scratch);

    // Ranks in c: position of the first entry with the same count.
    ++epoch;
    uint32_t tie_rank = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (i == 0 || merged[i].first != merged[i - 1].first) {
        tie_rank = static_cast<uint32_t>(i);
      }
      rank_of[merged[i].second] = tie_rank;
      rank_epoch[merged[i].second] = epoch;
    }
    const uint32_t absent_rank = static_cast<uint32_t>(merged.size());
    // Component-scoped builds materialize only pure communities: a subtree
    // larger than its members' connected component must span components
    // (it includes every node of that component plus outsiders), so its
    // ranks depend on shard composition and are never served. Membership is
    // tested via the first member — a community either lies inside one
    // component or contains whole components, so one probe decides purity.
    bool materialize = true;
    if (comp_size_of_node != nullptr) {
      const auto members = dendrogram.Members(c);
      materialize =
          dendrogram.LeafCount(c) <= (*comp_size_of_node)[*members.begin()];
    }
    if (materialize) {
      for (NodeId v : dendrogram.Members(c)) {
        const uint32_t r =
            rank_epoch[v] == epoch ? rank_of[v] : absent_rank;
        // "Selected communities": entries a query with k <= max_rank could
        // ever need. An ancestor absent from v's list implies rank >=
        // max_rank.
        if (r < max_rank) per_node[v].push_back(Entry{c, r});
      }
    }
    runs[c] = std::move(merged);
    bucket.clear();
  }

  // ---- CSR-pack the per-node entry lists. ----
  HimorIndex index;
  index.max_rank_ = max_rank;
  index.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    index.offsets_[v + 1] = index.offsets_[v] + per_node[v].size();
  }
  index.entries_.resize(index.offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::copy(per_node[v].begin(), per_node[v].end(),
              index.entries_.begin() + index.offsets_[v]);
  }
  return index;
}

HimorIndex HimorIndex::Build(const DiffusionModel& model,
                             const Dendrogram& dendrogram, const LcaIndex& lca,
                             uint32_t theta, Rng& rng, uint32_t max_rank) {
  Result<HimorIndex> built =
      Build(model, dendrogram, lca, theta, rng, max_rank, Budget{});
  COD_CHECK(built.ok());  // infinite budget: only an armed failpoint fails
  return std::move(built).value();
}

HimorIndex HimorIndex::BuildParallel(const DiffusionModel& model,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, uint32_t theta,
                                     uint64_t seed, uint32_t max_rank,
                                     size_t num_threads) {
  Result<HimorIndex> built = BuildParallel(model, dendrogram, lca, theta,
                                           seed, max_rank, num_threads,
                                           Budget{});
  COD_CHECK(built.ok());
  return std::move(built).value();
}

Result<HimorIndex> HimorIndex::Build(const DiffusionModel& model,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, uint32_t theta,
                                     Rng& rng, uint32_t max_rank,
                                     const Budget& budget) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  COD_CHECK_EQ(model.graph().NumNodes(), dendrogram.NumLeaves());
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  TreeHfsSampler worker(model, dendrogram, lca);
  std::vector<std::pair<CommunityId, NodeId>> pairs;
  const StatusCode code = worker.ProcessSources(
      0, static_cast<NodeId>(model.graph().NumNodes()), theta, rng, &pairs,
      budget, /*abort_code=*/nullptr);
  if (code != StatusCode::kOk) return BudgetStatus(code, "HIMOR build");
  std::vector<std::unordered_map<NodeId, uint32_t>> buckets(
      dendrogram.NumVertices());
  for (const auto& [community, node] : pairs) ++buckets[community][node];
  return BuildFromBuckets(dendrogram, max_rank, std::move(buckets));
}

Result<HimorIndex> HimorIndex::BuildScoped(
    const DiffusionModel& model, const Dendrogram& dendrogram,
    const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
    const Budget& budget, const std::vector<uint32_t>& comp_size_of_node) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  const size_t n = model.graph().NumNodes();
  COD_CHECK_EQ(n, dendrogram.NumLeaves());
  COD_CHECK_EQ(n, comp_size_of_node.size());
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  // One private RNG stream per source: a source's samples never depend on
  // how many RR graphs other sources (possibly in other components) drew
  // before it. ProcessSources polls the budget once per call, which at one
  // source per call is exactly the serial builder's check cadence.
  TreeHfsSampler worker(model, dendrogram, lca);
  std::vector<std::pair<CommunityId, NodeId>> pairs;
  for (NodeId source = 0; source < n; ++source) {
    uint64_t mix = seed + source;
    Rng rng(SplitMix64(mix));
    const StatusCode code = worker.ProcessSources(source, source + 1, theta,
                                                  rng, &pairs, budget,
                                                  /*abort_code=*/nullptr);
    if (code != StatusCode::kOk) {
      return BudgetStatus(code, "HIMOR scoped build");
    }
  }
  std::vector<std::unordered_map<NodeId, uint32_t>> buckets(
      dendrogram.NumVertices());
  for (const auto& [community, node] : pairs) ++buckets[community][node];
  return BuildFromBuckets(dendrogram, max_rank, std::move(buckets),
                          &comp_size_of_node);
}

Result<HimorIndex> HimorIndex::BuildParallel(const DiffusionModel& model,
                                             const Dendrogram& dendrogram,
                                             const LcaIndex& lca,
                                             uint32_t theta, uint64_t seed,
                                             uint32_t max_rank,
                                             size_t num_threads,
                                             const Budget& budget) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  const size_t n = model.graph().NumNodes();
  COD_CHECK_EQ(n, dendrogram.NumLeaves());
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  // Fixed batching (independent of thread count) with one RNG stream per
  // batch makes the result a pure function of (seed, theta): running with 1
  // or 16 threads produces the identical index.
  const size_t num_batches = std::min<size_t>(64, n);
  std::vector<std::vector<std::pair<CommunityId, NodeId>>> batch_pairs(
      num_batches);
  std::atomic<int> abort_code{0};
  {
    // A build-local scheduler: index construction owns its threads for the
    // duration (callers embedding the build in a serving process submit the
    // whole build as one rebuild-priority task on the serving scheduler).
    TaskScheduler scheduler(num_threads);
    TaskGroup group(scheduler);
    for (size_t b = 0; b < num_batches; ++b) {
      scheduler.Submit(TaskPriority::kRebuild, group, [&, b] {
        TreeHfsSampler worker(model, dendrogram, lca);
        uint64_t mix = seed + b;
        Rng rng(SplitMix64(mix));
        const NodeId begin = static_cast<NodeId>(b * n / num_batches);
        const NodeId end = static_cast<NodeId>((b + 1) * n / num_batches);
        worker.ProcessSources(begin, end, theta, rng, &batch_pairs[b],
                              budget, &abort_code);
      });
    }
    group.Wait();
  }
  const int aborted = abort_code.load(std::memory_order_relaxed);
  if (aborted != 0) {
    // Budget failures are all-or-nothing: partial batches are discarded so a
    // successful build is always the same deterministic index.
    return BudgetStatus(static_cast<StatusCode>(aborted),
                        "HIMOR parallel build");
  }
  std::vector<std::unordered_map<NodeId, uint32_t>> buckets(
      dendrogram.NumVertices());
  for (const auto& pairs : batch_pairs) {
    for (const auto& [community, node] : pairs) ++buckets[community][node];
  }
  return BuildFromBuckets(dendrogram, max_rank, std::move(buckets));
}


namespace {
constexpr uint32_t kHimorMagic = 0x434F4449;  // "CODI"
// v2: CRC32C envelope (WriteChecksummedFile); v1 (no checksum) dropped.
constexpr uint32_t kHimorVersion = 2;
}  // namespace

void HimorIndex::SerializeTo(BinaryBufferWriter& out) const {
  out.WritePod(max_rank_);
  out.WriteVector(offsets_);
  out.WriteVector(entries_);
}

Result<HimorIndex> HimorIndex::Deserialize(BinarySpanReader& in) {
  HimorIndex index;
  if (!in.ReadPod(&index.max_rank_) || !in.ReadVector(&index.offsets_) ||
      !in.ReadVector(&index.entries_)) {
    return in.status();
  }
  if (index.max_rank_ == 0) {
    in.Fail("corrupt HIMOR index (max_rank 0)");
    return in.status();
  }
  // Structural validation: offsets must be a monotone prefix-sum ending at
  // the entry count.
  if (index.offsets_.empty() || index.offsets_.front() != 0 ||
      index.offsets_.back() != index.entries_.size()) {
    in.Fail("inconsistent HIMOR offsets");
    return in.status();
  }
  for (size_t i = 1; i < index.offsets_.size(); ++i) {
    if (index.offsets_[i] < index.offsets_[i - 1]) {
      in.Fail("inconsistent HIMOR offsets");
      return in.status();
    }
  }
  return index;
}

Status HimorIndex::Save(const std::string& path) const {
  BinaryBufferWriter payload;
  SerializeTo(payload);
  return WriteChecksummedFile(path, kHimorMagic, kHimorVersion,
                              payload.bytes());
}

Result<HimorIndex> HimorIndex::Load(const std::string& path) {
  Result<std::string> payload =
      ReadChecksummedFile(path, kHimorMagic, kHimorVersion, "HIMOR index");
  if (!payload.ok()) return payload.status();
  BinarySpanReader reader(*payload, path);
  Result<HimorIndex> index = Deserialize(reader);
  if (!index.ok()) return index.status();
  if (!reader.exhausted()) {
    return Status::InvalidArgument(path + ": trailing bytes after index");
  }
  return index;
}

const HimorIndex::Entry* HimorIndex::FindTopKAncestor(
    NodeId q, CommunityId c_ell, uint32_t k,
    const Dendrogram& dendrogram) const {
  COD_CHECK(k <= max_rank_);
  const auto entries = RanksOf(q);
  // Entries are deepest-first; scan from the root downward and return the
  // first (largest) qualifying community, stopping once below c_ell.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (!dendrogram.IsAncestorOrSelf(it->community, c_ell)) break;
    if (it->rank < k) return &*it;
  }
  return nullptr;
}

}  // namespace cod
