#include "core/himor.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/task_scheduler.h"
#include "hierarchy/sketch_builder.h"

namespace cod {
namespace {

constexpr uint32_t kNoPos = static_cast<uint32_t>(-1);

// (count, node) runs sorted by descending count, ascending node id on ties.
using Run = std::vector<std::pair<uint32_t, NodeId>>;

bool RunLess(const std::pair<uint32_t, NodeId>& a,
             const std::pair<uint32_t, NodeId>& b) {
  if (a.first != b.first) return a.first > b.first;
  return a.second < b.second;
}

// Merges `a` and `b` into `out` (appending). When `bucket_stamp` is non-null,
// entries whose node is stamped with `token` (i.e. present in the current
// community's bucket) are skipped — they re-enter with fresh totals.
void MergeRuns(const Run& a, const Run& b,
               const std::vector<uint32_t>* bucket_stamp, uint32_t token,
               Run* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j == b.size() || (i < a.size() && RunLess(a[i], b[j]));
    const auto& item = take_a ? a[i++] : b[j++];
    if (bucket_stamp != nullptr && (*bucket_stamp)[item.second] == token) {
      continue;
    }
    out->push_back(item);
  }
}

// Stage-1 worker: samples RR graphs and performs hierarchical-first search
// on the tree, emitting one (community, node) pair per first visit. Each
// worker owns its scratch, so independent workers can run on a thread pool;
// pairs are aggregated into buckets afterwards (addition commutes, so any
// merge order works).
//
// The walk is split from the sampling so the delta builder can re-run it
// over RR bytes carried from the previous epoch (RrSlabPool::View) as well
// as over freshly drawn RrGraphs — both expose nodes[] / NeighborsOf().
class TreeHfsSampler {
 public:
  TreeHfsSampler(const DiffusionModel& model, const Dendrogram& dendrogram,
                 const LcaIndex& lca)
      : dendrogram_(&dendrogram), lca_(&lca), sampler_(model) {
    max_depth_ = 0;
    for (CommunityId c = 0; c < dendrogram.NumVertices(); ++c) {
      max_depth_ = std::max(max_depth_, dendrogram.Depth(c));
    }
    depth_queue_.resize(max_depth_ + 1);
    source_chain_.resize(max_depth_ + 1);
  }

  // Loads `source`'s ancestor chain; must precede Walk / SampleAndWalk.
  // Ancestor depths are contiguous (a parent is exactly one level
  // shallower), so the chain occupies slots [0, source_level_] and stale
  // entries above it are never read — no per-source clear needed.
  void BeginSource(NodeId source) {
    const Dendrogram& dendrogram = *dendrogram_;
    source_ = source;
    CommunityId c = dendrogram.Parent(dendrogram.LeafOf(source));
    source_level_ = dendrogram.Depth(c);
    while (c != kInvalidCommunity) {
      source_chain_[dendrogram.Depth(c)] = c;
      c = dendrogram.Parent(c);
    }
  }

  // Number of non-leaf ancestors of the current source (= chain length).
  uint32_t source_level() const { return source_level_; }

  // The current source's ancestor at leaf-up position `pos` (0 = the leaf's
  // parent, source_level() - 1 = the root).
  CommunityId ChainAtLeafUp(uint32_t pos) const {
    return source_chain_[source_level_ - pos];
  }

  // Leaf-up slot of lca(w, source) on the current source's chain — the
  // position the walk would assign `w` before any clamping.
  uint32_t SlotOf(NodeId w) const {
    if (w == source_) return 0;
    return source_level_ - dendrogram_->Depth(lca_->LcaOfNodes(w, source_));
  }

  // Hierarchical-first search over one RR graph of the current source:
  // depth queues drained deepest-first, each node emitted once at the
  // shallowest depth its live path has been clamped to. When `cache` is
  // non-null, each emission also records (pos, tag, node) in LEAF-UP chain
  // positions — see HimorSampleCache. `pairs` may be null when only the
  // cache records are wanted (the delta builder maintains its bucket rows
  // incrementally instead of re-aggregating raw pairs).
  template <typename RrT>
  void Walk(const RrT& rr, std::vector<std::pair<CommunityId, NodeId>>* pairs,
            HimorSampleCache* cache) {
    WalkClamped(
        rr,
        [this](NodeId v) {
          return dendrogram_->Depth(lca_->LcaOfNodes(v, source_));
        },
        pairs, cache);
  }

  // The clamped hierarchical-first search with node depths supplied by
  // `lvl_of` instead of LCA queries. The delta rebuild's replay path knows
  // every node's new chain slot already, so it walks without touching the
  // LCA tables; results are bit-identical to Walk when `lvl_of` returns
  // Depth(lca(v, source)).
  template <typename RrT, typename LvlFn>
  void WalkClamped(const RrT& rr, LvlFn lvl_of,
                   std::vector<std::pair<CommunityId, NodeId>>* pairs,
                   HimorSampleCache* cache) {
    const size_t n_local = rr.NumNodes();
    if (queued_.size() < n_local) {
      queued_.resize(n_local);
      pos_depth_.resize(n_local);
    }
    std::fill(queued_.begin(), queued_.begin() + n_local, 0);

    queued_[0] = 1;
    pos_depth_[0] = source_level_;
    depth_queue_[source_level_].push_back(0);
    pending_.push(source_level_);
    while (!pending_.empty()) {
      const uint32_t d = pending_.top();
      pending_.pop();
      auto& queue = depth_queue_[d];
      const CommunityId community = source_chain_[d];
      for (size_t idx = 0; idx < queue.size(); ++idx) {
        const uint32_t i = queue[idx];
        if (pairs != nullptr) pairs->emplace_back(community, rr.nodes[i]);
        if (cache != nullptr) {
          cache->pair_pos.push_back(source_level_ - pos_depth_[i]);
          cache->pair_tag.push_back(source_level_ - d);
          cache->pair_node.push_back(rr.nodes[i]);
        }
        for (uint32_t u : rr.NeighborsOf(i)) {
          if (queued_[u]) continue;
          queued_[u] = 1;
          // Smallest source-ancestor containing u has depth
          // Depth(lca(u, source)); the live path so far is within depth
          // d, so u's tag is the shallower of the two.
          const uint32_t lvl_u = lvl_of(rr.nodes[u]);
          pos_depth_[u] = lvl_u;
          const uint32_t d2 = std::min(d, lvl_u);
          if (d2 != d && depth_queue_[d2].empty()) pending_.push(d2);
          depth_queue_[d2].push_back(u);
        }
      }
      queue.clear();
    }
  }

  // Draws one RR graph for the current source from `rng` and walks it. The
  // drawn bytes stay available via last_rr() until the next draw.
  void SampleAndWalk(Rng& rng,
                     std::vector<std::pair<CommunityId, NodeId>>* pairs,
                     HimorSampleCache* cache) {
    sampler_.Sample(source_, rng, &rr_);
    Walk(rr_, pairs, cache);
  }

  const RrGraph& last_rr() const { return rr_; }

  // Returns kOk, or the first exhausted-budget/abort code observed. The
  // budget is polled once per source (a source's theta RR graphs are the
  // check interval); `abort_code`, when non-null, is shared across parallel
  // workers so one worker's failure stops the rest at their next source.
  // Sample (source, t) draws from Rng(RrSampleSeed(seed, source * theta +
  // t)) — the one schedule every HIMOR builder shares, so any source range
  // partition (serial, batched, per-source) produces identical bytes.
  StatusCode ProcessSources(NodeId begin, NodeId end, uint32_t theta,
                            uint64_t seed,
                            std::vector<std::pair<CommunityId, NodeId>>* pairs,
                            const Budget& budget,
                            std::atomic<int>* abort_code) {
    for (NodeId source = begin; source < end; ++source) {
      if (abort_code != nullptr) {
        const int aborted = abort_code->load(std::memory_order_relaxed);
        if (aborted != 0) return static_cast<StatusCode>(aborted);
      }
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        if (abort_code != nullptr) {
          int expected = 0;
          abort_code->compare_exchange_strong(expected,
                                             static_cast<int>(budget_code),
                                             std::memory_order_relaxed);
        }
        return budget_code;
      }
      BeginSource(source);
      for (uint32_t t = 0; t < theta; ++t) {
        Rng rng(RrSampleSeed(seed, uint64_t{source} * theta + t));
        SampleAndWalk(rng, pairs, /*cache=*/nullptr);
      }
    }
    return StatusCode::kOk;
  }

 private:
  const Dendrogram* dendrogram_;
  const LcaIndex* lca_;
  RrSampler sampler_;
  RrGraph rr_;
  uint32_t max_depth_ = 0;
  std::vector<std::vector<uint32_t>> depth_queue_;
  std::priority_queue<uint32_t> pending_;  // max-heap: deepest first
  std::vector<char> queued_;
  std::vector<uint32_t> pos_depth_;  // per local node, Depth(lca(., source))
  std::vector<CommunityId> source_chain_;
  NodeId source_ = kInvalidNode;
  uint32_t source_level_ = 0;
};

// Error for a build aborted with the (non-ok) budget code recorded at the
// check site — never re-polls the budget, which may have changed since.
Status BudgetStatus(StatusCode code, const char* what) {
  return code == StatusCode::kCancelled
             ? Status::Cancelled(std::string(what) + " cancelled")
             : Status::Timeout(std::string(what) + " deadline exceeded");
}

// Member-set fingerprint of a leaf. Internal vertices sum (mod 2^64) their
// children's fingerprints, so equal hashes mean equal leaf sets regardless
// of tree shape (up to collisions; DESIGN.md Sec. 15).
uint64_t LeafFingerprint(NodeId v) {
  uint64_t mix = 0x9e3779b97f4a7c15ULL * (uint64_t{v} + 1);
  return SplitMix64(mix);
}

// Shared sketch co-build gate. An armed "influence/sketch_build" failpoint
// (or sketch_bits == 0, or no output slot) drops the sketch while the index
// itself still builds — sketch loss degrades pruning, never correctness.
std::optional<CoverageSketchBuilder> MaybeSketchBuilder(
    const Dendrogram& dendrogram, uint64_t schedule_seed, uint32_t theta,
    uint32_t max_rank, uint32_t sketch_bits,
    std::optional<CoverageSketchIndex>* sketch) {
  if (sketch != nullptr) sketch->reset();
  if (sketch == nullptr || sketch_bits == 0 ||
      COD_FAILPOINT("influence/sketch_build")) {
    return std::nullopt;
  }
  return std::make_optional<CoverageSketchBuilder>(
      dendrogram.NumVertices(), dendrogram.NumLeaves(), schedule_seed, theta,
      sketch_bits, max_rank);
}

}  // namespace

HimorIndex::BucketTable HimorIndex::BuildBuckets(
    std::span<const std::pair<CommunityId, NodeId>> pairs,
    size_t num_vertices, size_t num_nodes) {
  BucketTable table;
  table.item_begin.assign(num_vertices + 1, 0);

  // Counting sort of the tag pairs by community.
  std::vector<size_t> start(num_vertices + 1, 0);
  for (const auto& [community, node] : pairs) ++start[community + 1];
  for (size_t c = 1; c <= num_vertices; ++c) start[c] += start[c - 1];
  std::vector<NodeId> sorted(pairs.size());
  {
    std::vector<size_t> cursor(start.begin(), start.end() - 1);
    for (const auto& [community, node] : pairs) sorted[cursor[community]++] = node;
  }

  // Per-community aggregation: node stamps (token = community + 1, unique
  // per segment) turn dedup into O(1) array probes.
  std::vector<uint32_t> stamp(num_nodes, 0);
  std::vector<size_t> slot(num_nodes, 0);
  for (size_t c = 0; c < num_vertices; ++c) {
    table.item_begin[c] = table.node.size();
    const uint32_t token = static_cast<uint32_t>(c) + 1;
    for (size_t i = start[c]; i < start[c + 1]; ++i) {
      const NodeId v = sorted[i];
      if (stamp[v] != token) {
        stamp[v] = token;
        slot[v] = table.node.size();
        table.node.push_back(v);
        table.count.push_back(1);
      } else {
        ++table.count[slot[v]];
      }
    }
  }
  table.item_begin[num_vertices] = table.node.size();
  return table;
}

// Stage 2 core, templated over the bucket-item source: `items_of(c, emit)`
// must call emit(node, count) once per aggregated bucket item of community
// c (non-leaf communities only; emission order within a bucket is free —
// `updated` is re-sorted and the accumulators commute). The batch builders
// feed it a BucketTable; the delta builder feeds it the fingerprint-keyed
// rows it maintains incrementally.
template <typename ItemsOf>
HimorIndex HimorIndex::BuildFromItems(
    const Dendrogram& dendrogram, uint32_t max_rank, ItemsOf&& items_of,
    const std::vector<uint32_t>* comp_size_of_node,
    CoverageSketchBuilder* sketch) {
  const size_t n = dendrogram.NumLeaves();
  const size_t num_vertices = dendrogram.NumVertices();
  // ---- Stage 2: bottom-up merge of tree-structured buckets. ----
  // Internal vertex ids increase bottom-up (children precede parents), so a
  // simple ascending sweep is a valid post-order replacement.
  std::vector<Run> runs(num_vertices);
  std::vector<uint32_t> acc(n, 0);        // cumulative count along each
                                          // node's processed chain
  std::vector<uint32_t> rank_of(n, 0);    // scratch, epoch-guarded
  std::vector<uint32_t> rank_epoch(n, 0);
  uint32_t epoch = 0;
  // "In the current community's bucket" stamps, consulted on the merge path.
  std::vector<uint32_t> bucket_stamp(n, 0);

  std::vector<std::vector<Entry>> per_node(n);
  for (NodeId v = 0; v < n; ++v) {
    per_node[v].reserve(dendrogram.Depth(dendrogram.LeafOf(v)));
  }

  Run scratch;
  Run updated;
  for (CommunityId c = 0; c < num_vertices; ++c) {
    if (dendrogram.IsLeaf(c)) continue;
    const uint32_t token = c + 1;

    // Nodes recorded at c get their accumulated totals bumped; they will be
    // re-inserted with fresh values, so child-run copies are excluded.
    updated.clear();
    items_of(c, [&](NodeId v, uint32_t count) {
      acc[v] += count;
      updated.emplace_back(acc[v], v);
      bucket_stamp[v] = token;
    });
    std::sort(updated.begin(), updated.end(), RunLess);

    const auto kids = dendrogram.Children(c);
    // The bucket run is exactly the nodes first covered at c, so the sketch
    // union (children's signatures + this bucket) sees c's full covered set
    // without any extra traversal.
    if (sketch != nullptr) sketch->MergeUp(c, kids, updated);

    // Merge child runs (2-way cascade; agglomerative trees are binary except
    // possibly at the root).
    Run merged;
    bool first = true;
    for (CommunityId child : kids) {
      Run& child_run = runs[child];
      if (first) {
        merged.clear();
        MergeRuns(child_run, Run{}, &bucket_stamp, token, &merged);
        first = false;
      } else {
        scratch.clear();
        MergeRuns(merged, child_run, &bucket_stamp, token, &scratch);
        merged.swap(scratch);
      }
      Run().swap(child_run);  // free child memory
    }
    scratch.clear();
    MergeRuns(merged, updated, /*bucket_stamp=*/nullptr, 0, &scratch);
    merged.swap(scratch);

    // Ranks in c: position of the first entry with the same count.
    ++epoch;
    uint32_t tie_rank = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
      if (i == 0 || merged[i].first != merged[i - 1].first) {
        tie_rank = static_cast<uint32_t>(i);
      }
      rank_of[merged[i].second] = tie_rank;
      rank_epoch[merged[i].second] = epoch;
    }
    const uint32_t absent_rank = static_cast<uint32_t>(merged.size());
    // Component-scoped builds materialize only pure communities: a subtree
    // larger than its members' connected component must span components
    // (it includes every node of that component plus outsiders), so its
    // ranks depend on shard composition and are never served. Membership is
    // tested via the first member — a community either lies inside one
    // component or contains whole components, so one probe decides purity.
    bool materialize = true;
    if (comp_size_of_node != nullptr) {
      const auto members = dendrogram.Members(c);
      materialize =
          dendrogram.LeafCount(c) <= (*comp_size_of_node)[*members.begin()];
    }
    if (materialize) {
      for (NodeId v : dendrogram.Members(c)) {
        const uint32_t r =
            rank_epoch[v] == epoch ? rank_of[v] : absent_rank;
        // "Selected communities": entries a query with k <= max_rank could
        // ever need. An ancestor absent from v's list implies rank >=
        // max_rank.
        if (r < max_rank) per_node[v].push_back(Entry{c, r});
        // acc[v] is v's exact cumulative count at c; the ascending sweep
        // overwrites, so each node ends at its TOPMOST materialized
        // ancestor — the monotone upper bound sketch pruning compares
        // thresholds against.
        if (sketch != nullptr) sketch->SetTopCount(v, acc[v]);
      }
      if (sketch != nullptr) sketch->RecordCommunity(c, merged);
    }
    runs[c] = std::move(merged);
  }

  // ---- CSR-pack the per-node entry lists. ----
  HimorIndex index;
  index.max_rank_ = max_rank;
  index.offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    index.offsets_[v + 1] = index.offsets_[v] + per_node[v].size();
  }
  index.entries_.resize(index.offsets_[n]);
  for (NodeId v = 0; v < n; ++v) {
    std::copy(per_node[v].begin(), per_node[v].end(),
              index.entries_.begin() + index.offsets_[v]);
  }
  return index;
}

// Stage 2 entry point shared by the batch builders.
HimorIndex HimorIndex::BuildFromBuckets(
    const Dendrogram& dendrogram, uint32_t max_rank,
    const BucketTable& buckets,
    const std::vector<uint32_t>* comp_size_of_node,
    CoverageSketchBuilder* sketch) {
  return BuildFromItems(
      dendrogram, max_rank,
      [&buckets](CommunityId c, auto&& emit) {
        for (size_t i = buckets.item_begin[c]; i < buckets.item_begin[c + 1];
             ++i) {
          emit(buckets.node[i], buckets.count[i]);
        }
      },
      comp_size_of_node, sketch);
}

HimorIndex HimorIndex::Build(const DiffusionModel& model,
                             const Dendrogram& dendrogram, const LcaIndex& lca,
                             uint32_t theta, Rng& rng, uint32_t max_rank) {
  Result<HimorIndex> built =
      Build(model, dendrogram, lca, theta, rng, max_rank, Budget{});
  COD_CHECK(built.ok());  // infinite budget: only an armed failpoint fails
  return std::move(built).value();
}

HimorIndex HimorIndex::BuildParallel(const DiffusionModel& model,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, uint32_t theta,
                                     uint64_t seed, uint32_t max_rank,
                                     size_t num_threads) {
  Result<HimorIndex> built = BuildParallel(model, dendrogram, lca, theta,
                                           seed, max_rank, num_threads,
                                           Budget{});
  COD_CHECK(built.ok());
  return std::move(built).value();
}

Result<HimorIndex> HimorIndex::Build(const DiffusionModel& model,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, uint32_t theta,
                                     Rng& rng, uint32_t max_rank,
                                     const Budget& budget,
                                     uint32_t sketch_bits,
                                     std::optional<CoverageSketchIndex>*
                                         sketch) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  COD_CHECK_EQ(model.graph().NumNodes(), dendrogram.NumLeaves());
  if (sketch != nullptr) sketch->reset();
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  // The entire build runs off one schedule seed — the only draw taken from
  // the caller's rng.
  const uint64_t seed = rng.Next();
  TreeHfsSampler worker(model, dendrogram, lca);
  std::vector<std::pair<CommunityId, NodeId>> pairs;
  const StatusCode code = worker.ProcessSources(
      0, static_cast<NodeId>(model.graph().NumNodes()), theta, seed, &pairs,
      budget, /*abort_code=*/nullptr);
  if (code != StatusCode::kOk) return BudgetStatus(code, "HIMOR build");
  std::optional<CoverageSketchBuilder> sb =
      MaybeSketchBuilder(dendrogram, seed, theta, max_rank, sketch_bits,
                         sketch);
  const BucketTable buckets =
      BuildBuckets(pairs, dendrogram.NumVertices(), dendrogram.NumLeaves());
  HimorIndex index = BuildFromBuckets(dendrogram, max_rank, buckets,
                                      /*comp_size_of_node=*/nullptr,
                                      sb ? &*sb : nullptr);
  if (sb) *sketch = sb->Finish();
  return index;
}

Result<HimorIndex> HimorIndex::BuildScoped(
    const DiffusionModel& model, const Dendrogram& dendrogram,
    const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
    const Budget& budget, const std::vector<uint32_t>& comp_size_of_node,
    uint32_t sketch_bits, std::optional<CoverageSketchIndex>* sketch) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  const size_t n = model.graph().NumNodes();
  COD_CHECK_EQ(n, dendrogram.NumLeaves());
  COD_CHECK_EQ(n, comp_size_of_node.size());
  if (sketch != nullptr) sketch->reset();
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  // The source-keyed schedule already gives every source its private
  // sample streams — a source's samples never depend on how many RR graphs
  // other sources (possibly in other components) drew before it.
  // ProcessSources polls the budget once per source, the serial builder's
  // check cadence.
  TreeHfsSampler worker(model, dendrogram, lca);
  std::vector<std::pair<CommunityId, NodeId>> pairs;
  const StatusCode code =
      worker.ProcessSources(0, static_cast<NodeId>(n), theta, seed, &pairs,
                            budget, /*abort_code=*/nullptr);
  if (code != StatusCode::kOk) {
    return BudgetStatus(code, "HIMOR scoped build");
  }
  std::optional<CoverageSketchBuilder> sb =
      MaybeSketchBuilder(dendrogram, seed, theta, max_rank, sketch_bits,
                         sketch);
  const BucketTable buckets = BuildBuckets(pairs, dendrogram.NumVertices(), n);
  HimorIndex index = BuildFromBuckets(dendrogram, max_rank, buckets,
                                      &comp_size_of_node,
                                      sb ? &*sb : nullptr);
  if (sb) *sketch = sb->Finish();
  return index;
}

Result<HimorIndex> HimorIndex::BuildParallel(const DiffusionModel& model,
                                             const Dendrogram& dendrogram,
                                             const LcaIndex& lca,
                                             uint32_t theta, uint64_t seed,
                                             uint32_t max_rank,
                                             size_t num_threads,
                                             const Budget& budget,
                                             uint32_t sketch_bits,
                                             std::optional<CoverageSketchIndex>*
                                                 sketch) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  const size_t n = model.graph().NumNodes();
  COD_CHECK_EQ(n, dendrogram.NumLeaves());
  if (sketch != nullptr) sketch->reset();
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  // Fixed batching (independent of thread count) over the source-keyed
  // sample schedule makes the result a pure function of (seed, theta):
  // running with 1 or 16 threads produces the identical index, and it is
  // byte-identical to the serial Build at the same schedule seed.
  const size_t num_batches = std::min<size_t>(64, n);
  std::vector<std::vector<std::pair<CommunityId, NodeId>>> batch_pairs(
      num_batches);
  std::atomic<int> abort_code{0};
  {
    // A build-local scheduler: index construction owns its threads for the
    // duration (callers embedding the build in a serving process submit the
    // whole build as one rebuild-priority task on the serving scheduler).
    TaskScheduler scheduler(num_threads);
    TaskGroup group(scheduler);
    for (size_t b = 0; b < num_batches; ++b) {
      scheduler.Submit(TaskPriority::kRebuild, group, [&, b] {
        TreeHfsSampler worker(model, dendrogram, lca);
        const NodeId begin = static_cast<NodeId>(b * n / num_batches);
        const NodeId end = static_cast<NodeId>((b + 1) * n / num_batches);
        worker.ProcessSources(begin, end, theta, seed, &batch_pairs[b],
                              budget, &abort_code);
      });
    }
    group.Wait();
  }
  const int aborted = abort_code.load(std::memory_order_relaxed);
  if (aborted != 0) {
    // Budget failures are all-or-nothing: partial batches are discarded so a
    // successful build is always the same deterministic index.
    return BudgetStatus(static_cast<StatusCode>(aborted),
                        "HIMOR parallel build");
  }
  std::vector<std::pair<CommunityId, NodeId>> pairs;
  {
    size_t total = 0;
    for (const auto& batch : batch_pairs) total += batch.size();
    pairs.reserve(total);
    for (const auto& batch : batch_pairs) {
      pairs.insert(pairs.end(), batch.begin(), batch.end());
    }
  }
  std::optional<CoverageSketchBuilder> sb =
      MaybeSketchBuilder(dendrogram, seed, theta, max_rank, sketch_bits,
                         sketch);
  const BucketTable buckets = BuildBuckets(pairs, dendrogram.NumVertices(), n);
  HimorIndex index = BuildFromBuckets(dendrogram, max_rank, buckets,
                                      /*comp_size_of_node=*/nullptr,
                                      sb ? &*sb : nullptr);
  if (sb) *sketch = sb->Finish();
  return index;
}

Result<HimorIndex> HimorIndex::BuildDelta(
    const DiffusionModel& model, const Dendrogram& dendrogram,
    const LcaIndex& lca, uint32_t theta, uint64_t seed, uint32_t max_rank,
    const Budget& budget, const std::vector<uint32_t>* comp_size_of_node,
    const std::vector<char>* dirty, HimorSampleCache* prev,
    HimorSampleCache* next, HimorDeltaStats* stats,
    uint32_t sketch_bits, std::optional<CoverageSketchIndex>* sketch) {
  COD_CHECK(theta > 0);
  COD_CHECK(max_rank > 0);
  const size_t n = model.graph().NumNodes();
  COD_CHECK_EQ(n, dendrogram.NumLeaves());
  COD_CHECK(next != nullptr);
  COD_CHECK(next != prev);
  if (comp_size_of_node != nullptr) {
    COD_CHECK_EQ(n, comp_size_of_node->size());
  }
  if (sketch != nullptr) sketch->reset();
  if (COD_FAILPOINT("himor/build")) {
    return Status::IoError("failpoint himor/build armed");
  }

  const uint64_t num_samples = uint64_t{n} * theta;

  // `next` is valid only once the build fully succeeds.
  next->valid = false;
  next->theta = theta;
  next->seed = seed;
  next->max_rank = max_rank;
  next->num_leaves = n;
  next->rr.Clear();
  next->rows.clear();
  next->pair_begin.clear();
  next->pair_begin.reserve(num_samples + 1);
  next->pair_begin.push_back(0);
  next->pair_pos.clear();
  next->pair_tag.clear();
  next->pair_node.clear();

  // A previous-epoch cache is only consulted when it was produced by the
  // same (theta, seed, max_rank) schedule on a same-sized graph, together
  // with a dirty bitmap relating the two graphs. The rows check is
  // defensive: a cache whose bucket rows were already consumed must never
  // re-enter the reuse path. Anything else (including a node-count change,
  // which invalidates the whole id space) falls back to sampling
  // everything — which is exactly the cold build.
  const bool reusable =
      prev != nullptr && prev->valid && prev->theta == theta &&
      prev->seed == seed && prev->max_rank == max_rank &&
      prev->num_leaves == n && prev->rr.NumSamples() == num_samples &&
      prev->pair_begin.size() == num_samples + 1 && !prev->rows.empty() &&
      dirty != nullptr && dirty->size() == n;

  // New dendrogram shape + member-set fingerprints: carried in `next` for
  // the following epoch, and matched against `prev`'s below.
  const size_t num_vertices = dendrogram.NumVertices();
  next->parent.resize(num_vertices);
  next->set_hash.resize(num_vertices);
  next->set_size.resize(num_vertices);
  for (CommunityId c = 0; c < num_vertices; ++c) {
    next->parent[c] = dendrogram.Parent(c);
    next->set_size[c] = dendrogram.LeafCount(c);
    if (dendrogram.IsLeaf(c)) {
      next->set_hash[c] = LeafFingerprint(dendrogram.LeafNode(c));
    } else {
      uint64_t h = 0;
      for (CommunityId child : dendrogram.Children(c)) {
        h += next->set_hash[child];
      }
      next->set_hash[c] = h;
    }
  }

  TreeHfsSampler worker(model, dendrogram, lca);
  HimorDeltaStats tally;
  tally.samples_total = num_samples;

  // Converts a freshly aggregated bucket table into the fingerprint-keyed
  // rows the next delta build carries forward (cold builds, and incremental
  // builds whose delta volume makes re-aggregation the cheaper move).
  const auto rows_from_buckets = [&](const BucketTable& buckets) {
    next->rows.clear();
    for (CommunityId c = 0; c < num_vertices; ++c) {
      const size_t ib = buckets.item_begin[c];
      const size_t ie = buckets.item_begin[c + 1];
      if (ib == ie) continue;
      HimorSampleCache::BucketRow& row = next->rows[next->set_hash[c]];
      row.node.insert(row.node.end(), buckets.node.begin() + ib,
                      buckets.node.begin() + ie);
      row.count.insert(row.count.end(), buckets.count.begin() + ib,
                       buckets.count.begin() + ie);
    }
  };

  if (!reusable) {
    // Cold build on the delta schedule: draw and walk everything, then
    // aggregate buckets the batch way.
    std::vector<std::pair<CommunityId, NodeId>> pairs;
    for (NodeId source = 0; source < n; ++source) {
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        return BudgetStatus(budget_code, "HIMOR delta build");
      }
      worker.BeginSource(source);
      for (uint32_t j = 0; j < theta; ++j) {
        Rng rng(RrSampleSeed(seed, uint64_t{source} * theta + j));
        worker.SampleAndWalk(rng, &pairs, next);
        next->rr.Append(worker.last_rr());
        next->pair_begin.push_back(next->pair_node.size());
      }
    }
    tally.samples_resampled = num_samples;
    const BucketTable buckets = BuildBuckets(pairs, num_vertices, n);
    rows_from_buckets(buckets);
    std::optional<CoverageSketchBuilder> sb = MaybeSketchBuilder(
        dendrogram, seed, theta, max_rank, sketch_bits, sketch);
    HimorIndex index = BuildFromBuckets(dendrogram, max_rank, buckets,
                                        comp_size_of_node, sb ? &*sb : nullptr);
    if (sb) *sketch = sb->Finish();
    next->valid = true;
    if (stats != nullptr) *stats = tally;
    return index;
  }

  // ---- Incremental path. ----
  // At low churn the new pair population is close to the old one; one
  // up-front reservation keeps the hot loop free of geometric regrowth.
  next->pair_pos.reserve(prev->pair_pos.size());
  next->pair_tag.reserve(prev->pair_tag.size());
  next->pair_node.reserve(prev->pair_node.size());

  // Per-source scratch for the old-chain -> new-chain position match.
  std::vector<CommunityId> old_chain;
  std::vector<uint32_t> match;
  std::vector<char> pos_valid;

  // Per-source memo of each node's new chain slot (SlotOf), filled lazily:
  // pairs at preserved positions read `match`, pairs at damaged positions
  // pay one LCA query per distinct node per source.
  std::vector<uint32_t> new_slot(n, 0);
  std::vector<NodeId> new_slot_stamp(n, kInvalidNode);
  // Per-sample old-slot -> new-slot map (stamped by sample index + 1) for
  // the monotone-remap rescue below; old slots are bounded by chain length
  // and chains are shorter than n. The same arrays double as the per-row
  // node index when the bucket deltas are applied after the loop (tokens
  // there start past num_samples).
  std::vector<uint32_t> slot_to(n, 0);
  std::vector<uint64_t> slot_stamp(n, 0);
  std::vector<uint32_t> sample_slots;  // distinct old slots of one sample
  // Per-sample node -> old tag fingerprint memo for the replay diff: the
  // re-walk visits the exact node set of the cached sample, so a node whose
  // tag fingerprint is unchanged owes no bucket delta.
  std::vector<uint64_t> node_old_hash(n, 0);
  std::vector<uint64_t> node_hash_stamp(n, 0);

  // Sparse bucket maintenance: a sample whose every tag sits at a
  // member-set-preserved chain position contributes the SAME
  // (fingerprint, node) multiset in both epochs — no bucket change at all.
  // Only resampled and replayed samples, plus the restructured-tag pairs of
  // rescued samples, push +-1 deltas here; they are aggregated and applied
  // to the carried rows once the loop is done.
  struct BucketDelta {
    uint64_t hash;
    NodeId node;
    int32_t d;
  };
  std::vector<BucketDelta> deltas;
  const auto sub_pair = [&](uint32_t old_tag, NodeId v) {
    deltas.push_back({prev->set_hash[old_chain[old_tag]], v, -1});
  };
  const auto add_pair = [&](uint32_t new_tag, NodeId v) {
    deltas.push_back({next->set_hash[worker.ChainAtLeafUp(new_tag)], v, +1});
  };

  // Cached RR bytes are carried over in maximal contiguous sample-index
  // runs: one AppendRange per run instead of one Append per sample keeps
  // the slab copy at memcpy speed. A run is flushed whenever a sample has
  // to be redrawn (its bytes differ) so the slab stays in sample order.
  uint64_t run_lo = 0, run_hi = 0;
  const auto flush_run = [&] {
    if (run_hi > run_lo) next->rr.AppendRange(prev->rr, run_lo, run_hi);
    run_lo = run_hi = 0;
  };
  const auto carry_rr = [&](uint64_t lo, uint64_t hi) {
    if (run_hi == lo && run_hi > run_lo) {
      run_hi = hi;
    } else {
      flush_run();
      run_lo = lo;
      run_hi = hi;
    }
  };
  // Same batching for the cached pair records of verbatim samples (the
  // common case at low churn): three bulk inserts plus a pair_begin rebase
  // per run, instead of three pushes per pair.
  uint64_t prun_lo = 0, prun_hi = 0;
  const auto flush_pairs = [&] {
    if (prun_hi > prun_lo) {
      const uint64_t kb = prev->pair_begin[prun_lo];
      const uint64_t ke = prev->pair_begin[prun_hi];
      const uint64_t base = next->pair_node.size();
      next->pair_pos.insert(next->pair_pos.end(),
                            prev->pair_pos.begin() + kb,
                            prev->pair_pos.begin() + ke);
      next->pair_tag.insert(next->pair_tag.end(),
                            prev->pair_tag.begin() + kb,
                            prev->pair_tag.begin() + ke);
      next->pair_node.insert(next->pair_node.end(),
                             prev->pair_node.begin() + kb,
                             prev->pair_node.begin() + ke);
      for (uint64_t s = prun_lo; s < prun_hi; ++s) {
        next->pair_begin.push_back(base + prev->pair_begin[s + 1] - kb);
      }
    }
    prun_lo = prun_hi = 0;
  };
  const auto carry_pairs = [&](uint64_t idx) {
    if (prun_hi == idx && prun_hi > prun_lo) {
      prun_hi = idx + 1;
    } else {
      flush_pairs();
      prun_lo = idx;
      prun_hi = idx + 1;
    }
  };

  for (NodeId source = 0; source < n; ++source) {
    const StatusCode budget_code = budget.ExhaustedCode();
    if (budget_code != StatusCode::kOk) {
      return BudgetStatus(budget_code, "HIMOR delta build");
    }
    worker.BeginSource(source);
    const uint32_t new_len = worker.source_level();

    // Old ancestor chain of `source`, leaf-up (deepest first).
    old_chain.clear();
    for (CommunityId c = prev->parent[source]; c != kInvalidCommunity;
         c = prev->parent[c]) {
      old_chain.push_back(c);
    }
    // Two-pointer match on (size, fingerprint): member counts strictly
    // increase along both chains, so each new position is considered for
    // at most one old position and vice versa.
    match.assign(old_chain.size(), kNoPos);
    uint32_t q = 0;
    for (size_t p = 0; p < old_chain.size(); ++p) {
      const uint32_t sz = prev->set_size[old_chain[p]];
      while (q < new_len && next->set_size[worker.ChainAtLeafUp(q)] < sz) {
        ++q;
      }
      if (q < new_len) {
        const CommunityId nc = worker.ChainAtLeafUp(q);
        if (next->set_size[nc] == sz &&
            next->set_hash[nc] == prev->set_hash[old_chain[p]]) {
          match[p] = q++;
        }
      }
    }
    // Position p is PRESERVED when both the community at p and the one
    // directly below it survive with their member sets intact and still
    // adjacent: then "deepest ancestor containing w is at p" transfers to
    // match[p] verbatim (w is in the new community at match[p], not in
    // the one below it, and everything deeper is a subset of that). For
    // p == 0 the community below is the singleton leaf, so the match must
    // land on the new leaf parent. Preservation of every position a
    // sample referenced makes the remap order-preserving, which is all
    // the walk's min/max clamps observe — hence tier 3's verbatim reuse.
    pos_valid.assign(old_chain.size(), 0);
    for (size_t p = 0; p < old_chain.size(); ++p) {
      if (match[p] == kNoPos) continue;
      const bool below_ok = p == 0
                                ? match[0] == 0
                                : (match[p - 1] != kNoPos &&
                                   match[p] == match[p - 1] + 1);
      if (below_ok) pos_valid[p] = 1;
    }
    // `first_bad` is the first chain position NOT preserved. Below it the
    // below-adjacency rule forces `match` to be the identity (match[0] == 0
    // and match[p] == match[p - 1] + 1 by induction), so a clean sample
    // whose deepest tag stays below first_bad is this epoch's sample
    // VERBATIM. Cached pairs are tag-sorted (the walk drains depths
    // deepest-first) and pos <= tag per pair, so the sample's last tag
    // bounds every slot it references — an O(1) crossing test.
    uint32_t first_bad = static_cast<uint32_t>(old_chain.size());
    for (uint32_t p = 0; p < first_bad; ++p) {
      if (!pos_valid[p]) {
        first_bad = p;
        break;
      }
    }

    for (uint32_t j = 0; j < theta; ++j) {
      const uint64_t idx = uint64_t{source} * theta + j;
      const RrSlabPool::View view = prev->rr.Sample(idx);
      bool clean = view.source == source;
      for (uint32_t i = 0; clean && i < view.node_count; ++i) {
        clean = (*dirty)[view.nodes[i]] == 0;
      }
      const uint64_t kb = prev->pair_begin[idx];
      const uint64_t ke = prev->pair_begin[idx + 1];
      if (!clean) {
        // Tier 1: a dirty vertex was visited — redraw from the sample's
        // own seed, exactly as a cold build, and swap the sample's bucket
        // contribution (unchanged (fingerprint, node) entries cancel when
        // the deltas are aggregated).
        flush_pairs();
        flush_run();
        const uint64_t pair_base = next->pair_node.size();
        Rng rng(RrSampleSeed(seed, idx));
        worker.SampleAndWalk(rng, /*pairs=*/nullptr, next);
        next->rr.Append(worker.last_rr());
        for (uint64_t k = kb; k < ke; ++k) {
          sub_pair(prev->pair_tag[k], prev->pair_node[k]);
        }
        for (uint64_t k = pair_base; k < next->pair_node.size(); ++k) {
          add_pair(next->pair_tag[k], next->pair_node[k]);
        }
        next->pair_begin.push_back(next->pair_node.size());
        ++tally.samples_resampled;
        continue;
      }
      // The sampler consumes randomness per visited node as a function of
      // that node's adjacency only, so a clean visited set replays
      // bit-identically: the cached bytes ARE this epoch's sample.
      if (kb == ke || prev->pair_tag[ke - 1] < first_bad) {
        // Every referenced slot is identity-preserved: carry the pair
        // records and RR bytes verbatim, zero bucket change.
        carry_pairs(idx);
        carry_rr(idx, idx + 1);
        ++tally.samples_reused;
        continue;
      }
      flush_pairs();
      bool all_valid = true;
      for (uint64_t k = kb; all_valid && k < ke; ++k) {
        const uint32_t p = prev->pair_pos[k];
        const uint32_t t = prev->pair_tag[k];
        all_valid = p < pos_valid.size() && pos_valid[p] &&
                    t < pos_valid.size() && pos_valid[t];
      }
      if (all_valid) {
        // Tier 3: every referenced chain position is preserved (the sample
        // straddles the damaged stretch without touching it) — emit the
        // cached tags at their shifted positions. Preserved fingerprints
        // mean no bucket change.
        for (uint64_t k = kb; k < ke; ++k) {
          next->pair_pos.push_back(match[prev->pair_pos[k]]);
          next->pair_tag.push_back(match[prev->pair_tag[k]]);
          next->pair_node.push_back(prev->pair_node[k]);
        }
        ++tally.samples_reused;
      } else {
        // Some referenced position was damaged. Resolve every node's TRUE
        // new slot (preserved positions via `match`, damaged ones via one
        // memoized LCA query per node) and collect the induced old-slot ->
        // new-slot map. Tags are path bottlenecks — a pure min/max
        // function of the nodes' slots — so whenever that map is
        // single-valued and strictly monotone over the sample's slots, the
        // cached tags transfer through it verbatim and the walk is
        // skipped. Emission order survives too: pairs sort by tag, and a
        // monotone remap preserves that order.
        const uint64_t sample_stamp = idx + 1;
        bool remap_ok = true;
        sample_slots.clear();
        for (uint64_t k = kb; remap_ok && k < ke; ++k) {
          const uint32_t p = prev->pair_pos[k];
          const NodeId w = prev->pair_node[k];
          uint32_t np;
          if (p < pos_valid.size() && pos_valid[p]) {
            np = match[p];
          } else {
            if (new_slot_stamp[w] != source) {
              new_slot_stamp[w] = source;
              new_slot[w] = worker.SlotOf(w);
            }
            np = new_slot[w];
          }
          if (slot_stamp[p] != sample_stamp) {
            slot_stamp[p] = sample_stamp;
            slot_to[p] = np;
            sample_slots.push_back(p);
          } else if (slot_to[p] != np) {
            remap_ok = false;  // two nodes at one old slot diverged
          }
        }
        if (remap_ok) {
          // Every tag is some sample node's slot (the bottleneck is
          // attained on the path), so it must already be mapped.
          for (uint64_t k = kb; remap_ok && k < ke; ++k) {
            remap_ok = slot_stamp[prev->pair_tag[k]] == sample_stamp;
          }
        }
        if (remap_ok && sample_slots.size() > 1) {
          std::sort(sample_slots.begin(), sample_slots.end());
          for (size_t i = 1; remap_ok && i < sample_slots.size(); ++i) {
            remap_ok =
                slot_to[sample_slots[i - 1]] < slot_to[sample_slots[i]];
          }
        }
        if (remap_ok) {
          // Only pairs whose tag community's fingerprint genuinely moved
          // change buckets. A tag slot can fail pos_valid merely because
          // ADJACENCY below it broke; when the old community still sits
          // (by fingerprint) exactly at the new tag position, the pair's
          // (fingerprint, node) key is unchanged and no delta is owed.
          for (uint64_t k = kb; k < ke; ++k) {
            const uint32_t t_old = prev->pair_tag[k];
            const uint32_t t = slot_to[t_old];
            const NodeId v = prev->pair_node[k];
            next->pair_pos.push_back(slot_to[prev->pair_pos[k]]);
            next->pair_tag.push_back(t);
            next->pair_node.push_back(v);
            if (!(t_old < pos_valid.size() && pos_valid[t_old]) &&
                match[t_old] != t) {
              sub_pair(t_old, v);
              add_pair(t, v);
            }
          }
          ++tally.samples_reused;
        } else {
          // Tier 2: the sample genuinely restructured — re-walk it on the
          // cached RR bytes. Slots resolved above seed the walk, so it
          // runs without LCA queries; finish the memo first for nodes
          // whose pairs sat at preserved positions (the loop above may
          // have bailed before reaching them).
          for (uint64_t k = kb; k < ke; ++k) {
            const NodeId w = prev->pair_node[k];
            if (new_slot_stamp[w] != source) {
              new_slot_stamp[w] = source;
              const uint32_t p = prev->pair_pos[k];
              new_slot[w] = p < pos_valid.size() && pos_valid[p]
                                ? match[p]
                                : worker.SlotOf(w);
            }
          }
          const uint64_t pair_base = next->pair_node.size();
          worker.WalkClamped(
              view, [&](NodeId v) { return new_len - new_slot[v]; },
              /*pairs=*/nullptr, next);
          // Both walks emit every visited node exactly once, so diffing the
          // per-node tag fingerprints finds the (few) moved pairs without
          // flooding the delta list with cancelling entries.
          for (uint64_t k = kb; k < ke; ++k) {
            const NodeId v = prev->pair_node[k];
            node_hash_stamp[v] = sample_stamp;
            node_old_hash[v] = prev->set_hash[old_chain[prev->pair_tag[k]]];
          }
          for (uint64_t k = pair_base; k < next->pair_node.size(); ++k) {
            const NodeId v = next->pair_node[k];
            const uint64_t h =
                next->set_hash[worker.ChainAtLeafUp(next->pair_tag[k])];
            if (node_hash_stamp[v] == sample_stamp &&
                node_old_hash[v] == h) {
              continue;
            }
            if (node_hash_stamp[v] == sample_stamp) {
              deltas.push_back({node_old_hash[v], v, -1});
            }
            deltas.push_back({h, v, +1});
          }
          ++tally.samples_replayed;
        }
      }
      carry_rr(idx, idx + 1);
      next->pair_begin.push_back(next->pair_node.size());
    }
  }
  flush_pairs();
  flush_run();

  // ---- Produce this epoch's bucket rows. ----
  // A heavily restructured epoch (tags moved for a sizable fraction of all
  // pairs) re-aggregates from scratch: the counting sort costs a flat pass
  // over the pair arrays, while sorted delta application scales with the
  // delta volume and loses past roughly a fifth of the pairs. Both branches
  // produce the same row multisets, so the choice never shows in the index.
  if (deltas.size() * 5 > next->pair_node.size()) {
    prev->rows.clear();  // retired either way on success; free it early
    std::vector<std::pair<CommunityId, NodeId>> pairs;
    pairs.reserve(next->pair_node.size());
    for (NodeId source = 0; source < n; ++source) {
      worker.BeginSource(source);
      const uint64_t pb = next->pair_begin[uint64_t{source} * theta];
      const uint64_t pe = next->pair_begin[uint64_t{source} * theta + theta];
      for (uint64_t k = pb; k < pe; ++k) {
        pairs.emplace_back(worker.ChainAtLeafUp(next->pair_tag[k]),
                           next->pair_node[k]);
      }
    }
    const BucketTable buckets = BuildBuckets(pairs, num_vertices, n);
    rows_from_buckets(buckets);
    std::optional<CoverageSketchBuilder> sb = MaybeSketchBuilder(
        dendrogram, seed, theta, max_rank, sketch_bits, sketch);
    HimorIndex index = BuildFromBuckets(dendrogram, max_rank, buckets,
                                        comp_size_of_node, sb ? &*sb : nullptr);
    if (sb) *sketch = sb->Finish();
    next->valid = true;
    if (stats != nullptr) *stats = tally;
    return index;
  }

  // Sparse case: carry the rows across and apply the delta. Stealing (not
  // copying) the row map is what makes benign epochs cheap; it happens only
  // here, past every failure point, so an aborted build leaves `prev`
  // fully reusable.
  next->rows = std::move(prev->rows);
  prev->rows.clear();  // moved-from: make it deterministically empty

  if (!deltas.empty()) {
    std::sort(deltas.begin(), deltas.end(),
              [](const BucketDelta& a, const BucketDelta& b) {
                if (a.hash != b.hash) return a.hash < b.hash;
                return a.node < b.node;
              });
    uint64_t token = num_samples;  // continues past the per-sample stamps
    size_t g = 0;
    while (g < deltas.size()) {
      const uint64_t h = deltas[g].hash;
      size_t ge = g;
      while (ge < deltas.size() && deltas[ge].hash == h) ++ge;
      HimorSampleCache::BucketRow& row = next->rows[h];
      ++token;
      for (size_t i = 0; i < row.node.size(); ++i) {
        slot_stamp[row.node[i]] = token;
        slot_to[row.node[i]] = static_cast<uint32_t>(i);
      }
      for (size_t i = g; i < ge;) {
        const NodeId v = deltas[i].node;
        int64_t d = 0;
        for (; i < ge && deltas[i].node == v; ++i) d += deltas[i].d;
        if (d == 0) continue;
        if (slot_stamp[v] == token) {
          const int64_t updated = int64_t{row.count[slot_to[v]]} + d;
          COD_CHECK(updated >= 0);
          row.count[slot_to[v]] = static_cast<uint32_t>(updated);
        } else {
          COD_CHECK(d > 0);  // subtracting a pair the row never held
          slot_stamp[v] = token;
          slot_to[v] = static_cast<uint32_t>(row.node.size());
          row.node.push_back(v);
          row.count.push_back(static_cast<uint32_t>(d));
        }
      }
      // Compact: zero-count entries would be semantically neutral
      // downstream, but dropping them keeps rows from growing across
      // epochs and lets an emptied row (a vanished community) be erased.
      size_t w = 0;
      for (size_t i = 0; i < row.node.size(); ++i) {
        if (row.count[i] == 0) continue;
        row.node[w] = row.node[i];
        row.count[w] = row.count[i];
        ++w;
      }
      if (w == 0) {
        next->rows.erase(h);
      } else {
        row.node.resize(w);
        row.count.resize(w);
      }
      g = ge;
    }
  }

  // Stage 2 always re-runs over the (carried + refreshed) bucket rows, so
  // the sketch co-build inherits the delta discipline for free: clean
  // components feed byte-identical rows, dirty components freshly
  // recomputed ones, and the resulting sketch equals a cold build's.
  std::optional<CoverageSketchBuilder> sb =
      MaybeSketchBuilder(dendrogram, seed, theta, max_rank, sketch_bits,
                         sketch);
  HimorIndex index = BuildFromItems(
      dendrogram, max_rank,
      [&](CommunityId c, auto&& emit) {
        const auto it = next->rows.find(next->set_hash[c]);
        if (it == next->rows.end()) return;
        const HimorSampleCache::BucketRow& row = it->second;
        for (size_t i = 0; i < row.node.size(); ++i) {
          emit(row.node[i], row.count[i]);
        }
      },
      comp_size_of_node, sb ? &*sb : nullptr);
  if (sb) *sketch = sb->Finish();
  next->valid = true;
  if (stats != nullptr) *stats = tally;
  return index;
}


namespace {
constexpr uint32_t kHimorMagic = 0x434F4449;  // "CODI"
// v2: CRC32C envelope (WriteChecksummedFile); v1 (no checksum) dropped.
constexpr uint32_t kHimorVersion = 2;
}  // namespace

void HimorIndex::SerializeTo(BinaryBufferWriter& out) const {
  out.WritePod(max_rank_);
  out.WriteVector(offsets_);
  out.WriteVector(entries_);
}

Result<HimorIndex> HimorIndex::Deserialize(BinarySpanReader& in) {
  HimorIndex index;
  if (!in.ReadPod(&index.max_rank_) || !in.ReadVector(&index.offsets_) ||
      !in.ReadVector(&index.entries_)) {
    return in.status();
  }
  if (index.max_rank_ == 0) {
    in.Fail("corrupt HIMOR index (max_rank 0)");
    return in.status();
  }
  // Structural validation: offsets must be a monotone prefix-sum ending at
  // the entry count.
  if (index.offsets_.empty() || index.offsets_.front() != 0 ||
      index.offsets_.back() != index.entries_.size()) {
    in.Fail("inconsistent HIMOR offsets");
    return in.status();
  }
  for (size_t i = 1; i < index.offsets_.size(); ++i) {
    if (index.offsets_[i] < index.offsets_[i - 1]) {
      in.Fail("inconsistent HIMOR offsets");
      return in.status();
    }
  }
  return index;
}

Status HimorIndex::Save(const std::string& path) const {
  BinaryBufferWriter payload;
  SerializeTo(payload);
  return WriteChecksummedFile(path, kHimorMagic, kHimorVersion,
                              payload.bytes());
}

Result<HimorIndex> HimorIndex::Load(const std::string& path) {
  Result<std::string> payload =
      ReadChecksummedFile(path, kHimorMagic, kHimorVersion, "HIMOR index");
  if (!payload.ok()) return payload.status();
  BinarySpanReader reader(*payload, path);
  Result<HimorIndex> index = Deserialize(reader);
  if (!index.ok()) return index.status();
  if (!reader.exhausted()) {
    return Status::InvalidArgument(path + ": trailing bytes after index");
  }
  return index;
}

const HimorIndex::Entry* HimorIndex::FindTopKAncestor(
    NodeId q, CommunityId c_ell, uint32_t k,
    const Dendrogram& dendrogram) const {
  COD_CHECK(k <= max_rank_);
  const auto entries = RanksOf(q);
  // Entries are deepest-first; scan from the root downward and return the
  // first (largest) qualifying community, stopping once below c_ell.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (!dendrogram.IsAncestorOrSelf(it->community, c_ell)) break;
    if (it->rank < k) return &*it;
  }
  return nullptr;
}

}  // namespace cod
