// LORE: LOcal hierarchical REclustering (paper Section IV-A, Algorithm 2).
//
// Global reclustering skews hierarchies around hubs, so even the deepest
// community containing an average query node is huge (paper Fig. 4). LORE
// instead picks ONE community C_ell on q's ancestor chain — the one most
// entangled with the query attribute — reclusters only its induced subgraph
// with attribute weights, and splices the local hierarchy back under C_ell's
// untouched global ancestors.
//
// The reclustering score of ancestor C_i (Definition 4, fixed against the
// paper's worked Examples 5/6) is
//     r(C_i) = ( sum_{j<=i} Delta_j * dep(C_j(q)) ) / |C_i|,
// where Delta_j counts query-attributed edges (both endpoints carry l_q)
// whose lca is exactly C_j(q). Scores for the whole chain are computed in
// O(|E|) with one lca per query-attributed edge plus the Eq. 3 recursion
// (Theorem 5).

#ifndef COD_CORE_LORE_H_
#define COD_CORE_LORE_H_

#include <span>
#include <vector>

#include "common/deadline.h"
#include "graph/attributes.h"
#include "hierarchy/dendrogram.h"
#include "hierarchy/lca.h"

namespace cod {

struct LoreScores {
  std::vector<CommunityId> chain;  // H(q): q's ancestors, deepest first
  std::vector<double> score;       // r(C_i) per chain position
  // argmax over positions 1..L-1 (the deepest community C_0 and positions
  // with zero score are not recluster candidates; falls back to position 1
  // when no query-attributed edge is split on the chain).
  size_t selected = 1;
  // kOk for a complete scan; kTimeout / kCancelled when the budget-aware
  // overload aborted mid-scan (scores are then partial — callers must check
  // before trusting Selected()).
  StatusCode code = StatusCode::kOk;

  CommunityId Selected() const { return chain[selected]; }
};

// Computes all reclustering scores for query q and attribute `query_attr`.
// Requires |H(q)| >= 1; degenerate one-level chains fall back to the root.
LoreScores ComputeReclusteringScores(const Graph& g,
                                     const AttributeTable& attrs,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, NodeId q,
                                     AttributeId query_attr);

// Multi-attribute ("topic set") variant: an edge is query-attributed when
// both endpoints carry at least one of `query_attrs`. With a single-element
// set this is identical to the single-attribute form.
LoreScores ComputeReclusteringScores(const Graph& g,
                                     const AttributeTable& attrs,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, NodeId q,
                                     std::span<const AttributeId> query_attrs);

// Budget-aware form: the O(|E|) edge scan polls the budget every few
// thousand edges and aborts with `code` set (the degradation path of
// budgeted CODL/CODL- queries; see core/query_batch.h).
//
// `top` (component-scoped serving, EngineOptions::component_scoped): when a
// valid ancestor of q, the chain is truncated at `top` inclusive and depth
// weights are measured RELATIVE to it (dep' = dep - dep(top) + 1), so the
// scores are a pure function of the subtree under `top` — independent of
// whatever else shares the graph. kInvalidCommunity keeps the full chain;
// the root then has relative depth equal to its absolute depth, making the
// scoped arithmetic exactly the historical unscoped computation.
LoreScores ComputeReclusteringScores(const Graph& g,
                                     const AttributeTable& attrs,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, NodeId q,
                                     std::span<const AttributeId> query_attrs,
                                     const Budget& budget,
                                     CommunityId top = kInvalidCommunity);

}  // namespace cod

#endif  // COD_CORE_LORE_H_
