#include "core/lore.h"

namespace cod {

LoreScores ComputeReclusteringScores(const Graph& g,
                                     const AttributeTable& attrs,
                                     const Dendrogram& dendrogram,
                                     const LcaIndex& lca, NodeId q,
                                     AttributeId query_attr) {
  return ComputeReclusteringScores(g, attrs, dendrogram, lca, q,
                                   std::span<const AttributeId>(&query_attr,
                                                                1));
}

LoreScores ComputeReclusteringScores(
    const Graph& g, const AttributeTable& attrs, const Dendrogram& dendrogram,
    const LcaIndex& lca, NodeId q,
    std::span<const AttributeId> query_attrs) {
  return ComputeReclusteringScores(g, attrs, dendrogram, lca, q, query_attrs,
                                   Budget{});
}

LoreScores ComputeReclusteringScores(
    const Graph& g, const AttributeTable& attrs, const Dendrogram& dendrogram,
    const LcaIndex& lca, NodeId q, std::span<const AttributeId> query_attrs,
    const Budget& budget, CommunityId top) {
  LoreScores result;
  result.chain = dendrogram.PathToRoot(q);
  COD_CHECK(!result.chain.empty());
  // chain[i] has Depth == Depth(chain[0]) - i: truncating at `top` keeps a
  // prefix. `top` must be an ancestor of q (on the chain), so the resize is
  // exact.
  const uint32_t deepest_depth = dendrogram.Depth(result.chain.front());
  if (top != kInvalidCommunity) {
    const uint32_t top_depth = dendrogram.Depth(top);
    COD_CHECK(top_depth >= 1 && top_depth <= deepest_depth);
    result.chain.resize(deepest_depth - top_depth + 1);
    COD_DCHECK(result.chain.back() == top);
  }
  const size_t num_levels = result.chain.size();
  // Scoped depths are measured relative to the chain top (top itself at
  // relative depth 1). Unscoped, the chain ends at the root (absolute depth
  // 1), so relative == absolute and the arithmetic below is unchanged.
  const uint32_t top_depth = dendrogram.Depth(result.chain.back());
  // Degenerate chain (q's parent is the root): the only recluster candidate
  // is the root itself, i.e., LORE degrades to global reclustering.
  if (num_levels == 1) {
    result.score.assign(1, 0.0);
    result.selected = 0;
    return result;
  }

  // Delta[i]: query-attributed edges whose lca is exactly chain[i]. An lca
  // community c on the chain maps to position Depth(chain[0]) - Depth(c).
  // Pre-size the scores so a budget abort still returns a structurally
  // valid object (all-zero scores, fallback selection).
  result.score.assign(num_levels, 0.0);

  std::vector<uint64_t> delta(num_levels, 0);
  // Budget check interval: one stride of edges costs a few microseconds, so
  // an exhausted budget surfaces almost immediately — and at e == 0 the
  // check fires before any work, making already-expired budgets
  // deterministic.
  constexpr EdgeId kBudgetStride = 4096;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e % kBudgetStride == 0) {
      const StatusCode budget_code = budget.ExhaustedCode();
      if (budget_code != StatusCode::kOk) {
        result.code = budget_code;
        return result;
      }
    }
    const auto [u, v] = g.Endpoints(e);
    if (!attrs.HasAny(u, query_attrs) || !attrs.HasAny(v, query_attrs)) {
      continue;
    }
    const CommunityId c = lca.LcaOfNodes(u, v);
    if (!dendrogram.Contains(c, q)) continue;  // lca must be an ancestor of q
    const uint32_t depth = dendrogram.Depth(c);
    COD_DCHECK(depth >= 1 && depth <= deepest_depth);
    // Scoped chains can in principle see an ancestor above `top`; edges
    // whose endpoints share q's connected component always lca inside it,
    // so this guard never fires on component-scoped shard graphs — it is
    // defense for arbitrary `top` values.
    if (depth < top_depth) continue;
    ++delta[deepest_depth - depth];
  }

  // Eq. 3 recursion: r(C_i)*|C_i| = r(C_{i-1})*|C_{i-1}| + Delta_i*dep(C_i),
  // unrolled as a running numerator S = sum_{j<=i} Delta_j * dep(C_j).
  // Edges whose lca is the deepest community C_0 are never "divided" from
  // q's perspective (Algorithm 2 accumulates from i = 1), so delta[0] is
  // excluded and r(C_0) = 0.
  result.score[0] = 0.0;
  double numerator = 0.0;
  double best = 0.0;
  result.selected = 1;
  for (size_t i = 1; i < num_levels; ++i) {
    numerator += static_cast<double>(delta[i]) *
                 static_cast<double>(dendrogram.Depth(result.chain[i]) -
                                     top_depth + 1);
    result.score[i] =
        numerator / static_cast<double>(dendrogram.LeafCount(result.chain[i]));
    if (result.score[i] > best) {
      best = result.score[i];
      result.selected = i;
    }
  }
  return result;
}

}  // namespace cod
