// CodEngine: the top-level facade of the library.
//
// Wires together the substrates and exposes the four COD variants the paper
// evaluates (Sec. V-A):
//   * CODU  — non-attributed hierarchy + compressed COD evaluation;
//   * CODR  — global recluster of the attribute-weighted graph g_l, then
//             compressed evaluation;
//   * CODL- — LORE local recluster, compressed evaluation over the whole
//             spliced chain (no index);
//   * CODL  — LORE + HIMOR index: answer from precomputed ranks above C_ell,
//             compressed evaluation inside C_ell otherwise.
//
// Typical use:
//   CodEngine engine(graph, attrs, {.k = 5, .theta = 10});
//   engine.BuildHimor(rng);                       // once, for CODL
//   CodResult r = engine.QueryCodL(q, attr, 5, rng);
//
// Influence is always evaluated on the ORIGINAL graph's probabilities;
// attribute weights only shape the hierarchy.

#ifndef COD_CORE_COD_ENGINE_H_
#define COD_CORE_COD_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cod_chain.h"
#include "core/compressed_eval.h"
#include "core/global_recluster.h"
#include "core/himor.h"
#include "core/lore.h"
#include "graph/attributes.h"
#include "hierarchy/agglomerative.h"
#include "hierarchy/lca.h"
#include "influence/cascade_model.h"

namespace cod {

struct EngineOptions {
  uint32_t k = 5;          // default top-k requirement
  uint32_t theta = 10;     // RR graphs per source node
  // The g_l transform (see core/global_recluster.h): how the query
  // attribute reshapes edge weights before (re)clustering.
  TransformOptions transform;
  DiffusionKind diffusion = DiffusionKind::kIndependentCascade;
  // Largest k the HIMOR index can answer (ranks >= this are not stored;
  // see HimorIndex::Build).
  uint32_t himor_max_rank = 16;
  // Reuse CODR hierarchies across queries with the same attribute (results
  // are identical; only timing changes — keep false for runtime benches).
  bool cache_codr_hierarchies = false;
};

struct CodResult {
  bool found = false;
  std::vector<NodeId> members;  // the characteristic community C*(q)
  uint32_t rank = 0;            // q's estimated rank in C*(q) (0-based)
  size_t num_levels = 0;        // |H_l(q)| levels examined
  bool answered_from_index = false;  // CODL: resolved by HIMOR alone
};

// A LORE-spliced chain plus provenance.
struct LoreChain {
  CodChain chain;
  CommunityId c_ell = kInvalidCommunity;
  size_t local_levels = 0;  // chain positions below (and incl.) C_ell
};

class CodEngine {
 public:
  // `graph` and `attrs` must outlive the engine. The non-attributed base
  // hierarchy, its LCA index, and the diffusion model are built eagerly.
  CodEngine(const Graph& graph, const AttributeTable& attrs,
            const EngineOptions& options);

  const Graph& graph() const { return *graph_; }
  const AttributeTable& attributes() const { return *attrs_; }
  const DiffusionModel& model() const { return model_; }
  const Dendrogram& base_hierarchy() const { return base_; }
  const LcaIndex& base_lca() const { return lca_; }
  const EngineOptions& options() const { return options_; }

  // ---- Chain builders (exposed for benches and tests). ----
  CodChain BuildCoduChain(NodeId q) const;
  CodChain BuildCodrChain(NodeId q, AttributeId attr);
  LoreChain BuildCodlChain(NodeId q, AttributeId attr) const;
  LoreChain BuildCodlChain(NodeId q,
                           std::span<const AttributeId> attrs) const;

  // ---- Query variants. Each attributed variant also accepts a topic SET
  // (an edge counts as query-attributed when both endpoints carry at least
  // one of the attributes). ----
  CodResult QueryCodU(NodeId q, uint32_t k, Rng& rng);
  CodResult QueryCodR(NodeId q, AttributeId attr, uint32_t k, Rng& rng);
  CodResult QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, Rng& rng);
  CodResult QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k, Rng& rng);
  CodResult QueryCodLMinus(NodeId q, std::span<const AttributeId> attrs,
                           uint32_t k, Rng& rng);
  // Index-only CODU: the largest base-hierarchy community where q is top-k,
  // answered entirely from HIMOR in O(dep(q)) — no sampling at query time.
  // Same semantics as QueryCodU up to the index's own estimation. Requires
  // BuildHimor() and k <= options().himor_max_rank.
  CodResult QueryCodUIndexed(NodeId q, uint32_t k) const;

  // Requires BuildHimor() to have been called.
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k, Rng& rng);
  CodResult QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, Rng& rng);

  // ---- Explanation. ----
  // Runs QueryCodL with full instrumentation: which community LORE chose
  // and why (the whole score profile), whether HIMOR answered, and the
  // final result. For debugging, demos, and the hierarchy explorer.
  struct QueryExplanation {
    LoreScores scores;
    uint32_t c_ell_size = 0;
    bool index_hit = false;
    CommunityId index_community = kInvalidCommunity;
    uint32_t index_rank = 0;
    CodResult result;

    // Human-readable multi-line report.
    std::string ToString(const Dendrogram& hierarchy) const;
  };
  QueryExplanation ExplainCodL(NodeId q, AttributeId attr, uint32_t k,
                               Rng& rng);

  // ---- Reverse (promoter) search. ----
  // Which attribute holders have the LARGEST characteristic communities in
  // the base (non-attributed) hierarchy? Answered entirely from HIMOR, so it
  // scans all candidates in O(sum depth). Useful as a CBSM shortlist; refine
  // the survivors with QueryCodL. Requires BuildHimor().
  struct Promoter {
    NodeId node;
    CommunityId community;
    uint32_t size;
    uint32_t rank;
  };
  std::vector<Promoter> FindTopPromoters(AttributeId attr, size_t count,
                                         uint32_t k) const;

  // Builds (or rebuilds) the HIMOR index over the base hierarchy.
  void BuildHimor(Rng& rng);
  // Multi-threaded variant; the result depends on `seed` only, never on the
  // thread count (see HimorIndex::BuildParallel).
  void BuildHimorParallel(uint64_t seed, size_t num_threads = 0);
  const HimorIndex* himor() const {
    return himor_.has_value() ? &*himor_ : nullptr;
  }

  // Persists / restores the HIMOR index (the base hierarchy is deterministic
  // from the graph, so the index alone suffices to resume query serving).
  Status SaveHimor(const std::string& path) const;
  Status LoadHimor(const std::string& path);

 private:
  CodResult EvaluateChain(const CodChain& chain, NodeId q, uint32_t k,
                          Rng& rng);

  const Graph* graph_;
  const AttributeTable* attrs_;
  EngineOptions options_;
  DiffusionModel model_;
  Dendrogram base_;
  LcaIndex lca_;
  CompressedEvaluator evaluator_;
  std::optional<HimorIndex> himor_;
  std::unordered_map<AttributeId, std::unique_ptr<Dendrogram>> codr_cache_;
};

}  // namespace cod

#endif  // COD_CORE_COD_ENGINE_H_
