// CodEngine: the top-level facade of the library.
//
// Wires together the substrates and exposes the four COD variants the paper
// evaluates (Sec. V-A):
//   * CODU  — non-attributed hierarchy + compressed COD evaluation;
//   * CODR  — global recluster of the attribute-weighted graph g_l, then
//             compressed evaluation;
//   * CODL- — LORE local recluster, compressed evaluation over the whole
//             spliced chain (no index);
//   * CODL  — LORE + HIMOR index: answer from precomputed ranks above C_ell,
//             compressed evaluation inside C_ell otherwise.
//
// Since the EngineCore/QueryWorkspace split, the engine is a thin facade
// over an immutable, shareable EngineCore (see core/engine_core.h):
//
//   CodEngine engine(graph, attrs, {.k = 5, .theta = 10});
//   engine.BuildHimor(rng);                       // once, for CODL
//
//   // Concurrent serving: const engine, one workspace per thread —
//   const CodEngine& shared = engine;
//   QueryWorkspace ws = shared.MakeWorkspace(seed);
//   CodResult r = shared.QueryCodL(q, attr, 5, ws);
//   // — or fan a whole workload across a scheduler, deterministically:
//   std::vector<CodResult> rs = shared.QueryBatch(specs, sched, batch_seed);
//
// Influence is always evaluated on the ORIGINAL graph's probabilities;
// attribute weights only shape the hierarchy.

#ifndef COD_CORE_COD_ENGINE_H_
#define COD_CORE_COD_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine_core.h"
#include "core/query_batch.h"
#include "core/query_workspace.h"

namespace cod {

class TaskScheduler;

class CodEngine {
 public:
  // `graph` and `attrs` must outlive the engine. The non-attributed base
  // hierarchy, its LCA index, and the diffusion model are built eagerly.
  CodEngine(const Graph& graph, const AttributeTable& attrs,
            const EngineOptions& options);
  // Owning variant: the engine (and its published core) keep the inputs
  // alive — the serving path.
  CodEngine(std::shared_ptr<const Graph> graph,
            std::shared_ptr<const AttributeTable> attrs,
            const EngineOptions& options);

  const Graph& graph() const { return core_->graph(); }
  const AttributeTable& attributes() const { return core_->attributes(); }
  const DiffusionModel& model() const { return core_->model(); }
  const Dendrogram& base_hierarchy() const { return core_->base_hierarchy(); }
  const LcaIndex& base_lca() const { return core_->base_lca(); }
  const EngineOptions& options() const { return core_->options(); }

  // The immutable core, shareable across threads. Grab a snapshot before
  // spawning readers; setup mutators (BuildHimor, LoadHimor) must
  // happen-before sharing.
  std::shared_ptr<const EngineCore> core() const { return core_; }

  // A fresh workspace bound to the current core (one per serving thread).
  QueryWorkspace MakeWorkspace(uint64_t seed) const {
    return QueryWorkspace(*core_, seed);
  }

  // ---- Chain builders (exposed for benches and tests). ----
  CodChain BuildCoduChain(NodeId q) const { return core_->BuildCoduChain(q); }
  CodChain BuildCodrChain(NodeId q, AttributeId attr) const {
    return core_->BuildCodrChain(q, attr);
  }
  LoreChain BuildCodlChain(NodeId q, AttributeId attr) const {
    return core_->BuildCodlChain(q, attr);
  }
  LoreChain BuildCodlChain(NodeId q,
                           std::span<const AttributeId> attrs) const {
    return core_->BuildCodlChain(q, attrs);
  }

  // The canonical query entry point (see EngineCore::Query): dispatches on
  // spec.variant, fills result.stats, and records per-variant metrics.
  CodResult Query(const QuerySpec& spec, QueryWorkspace& ws) const {
    return core_->Query(spec, ws);
  }

  // ---- Query variants, workspace form: const and thread-safe (one
  // workspace per thread). Each attributed variant also accepts a topic SET
  // (an edge counts as query-attributed when both endpoints carry at least
  // one of the attributes). ----
  CodResult QueryCodU(NodeId q, uint32_t k, QueryWorkspace& ws) const {
    return core_->QueryCodU(q, k, ws);
  }
  CodResult QueryCodR(NodeId q, AttributeId attr, uint32_t k,
                      QueryWorkspace& ws) const {
    return core_->QueryCodR(q, attr, k, ws);
  }
  CodResult QueryCodR(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, QueryWorkspace& ws) const {
    return core_->QueryCodR(q, attrs, k, ws);
  }
  CodResult QueryCodLMinus(NodeId q, AttributeId attr, uint32_t k,
                           QueryWorkspace& ws) const {
    return core_->QueryCodLMinus(q, attr, k, ws);
  }
  CodResult QueryCodLMinus(NodeId q, std::span<const AttributeId> attrs,
                           uint32_t k, QueryWorkspace& ws) const {
    return core_->QueryCodLMinus(q, attrs, k, ws);
  }
  CodResult QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                      QueryWorkspace& ws) const {
    return core_->QueryCodL(q, attr, k, ws);
  }
  CodResult QueryCodL(NodeId q, std::span<const AttributeId> attrs,
                      uint32_t k, QueryWorkspace& ws) const {
    return core_->QueryCodL(q, attrs, k, ws);
  }

  // (The legacy Rng-form QueryCodX forwarders are gone: use MakeWorkspace
  // once, then the const QueryCodX(..., ws) overloads or Query(spec, ws).)

  // Index-only CODU: the largest base-hierarchy community where q is top-k,
  // answered entirely from HIMOR in O(dep(q)) — no sampling at query time.
  // Same semantics as QueryCodU up to the index's own estimation. Requires
  // BuildHimor() and k <= options().himor_max_rank.
  CodResult QueryCodUIndexed(NodeId q, uint32_t k) const {
    return core_->QueryCodUIndexed(q, k);
  }

  // ---- Concurrent batch queries. Fans `specs` across `scheduler` with one
  // workspace per worker and an independently seeded RNG per query;
  // bit-identical results for any pool size (see core/query_batch.h). ----
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed) const;
  // With per-query budgets, batch deadline / cancellation, and the
  // degradation ladder (see BatchOptions in core/query_batch.h).
  std::vector<CodResult> QueryBatch(std::span<const QuerySpec> specs,
                                    TaskScheduler& scheduler,
                                    uint64_t batch_seed,
                                    const BatchOptions& options) const;

  // ---- Explanation (see QueryExplanation in core/engine_core.h). ----
  using QueryExplanation = cod::QueryExplanation;
  QueryExplanation ExplainCodL(NodeId q, AttributeId attr, uint32_t k,
                               Rng& rng);
  QueryExplanation ExplainCodL(NodeId q, AttributeId attr, uint32_t k,
                               QueryWorkspace& ws) const {
    return core_->ExplainCodL(q, attr, k, ws);
  }

  // ---- Reverse (promoter) search. ----
  // Which attribute holders have the LARGEST characteristic communities in
  // the base (non-attributed) hierarchy? Answered entirely from HIMOR, so it
  // scans all candidates in O(sum depth). Useful as a CBSM shortlist; refine
  // the survivors with QueryCodL. Requires BuildHimor().
  using Promoter = cod::Promoter;
  std::vector<Promoter> FindTopPromoters(AttributeId attr, size_t count,
                                         uint32_t k) const {
    return core_->FindTopPromoters(attr, count, k);
  }

  // Builds (or rebuilds) the HIMOR index over the base hierarchy. Setup
  // step: must happen-before sharing core() across threads.
  void BuildHimor(Rng& rng) { core_->BuildHimor(rng); }
  // Multi-threaded variant; the result depends on `seed` only, never on the
  // thread count (see HimorIndex::BuildParallel).
  void BuildHimorParallel(uint64_t seed, size_t num_threads = 0) {
    core_->BuildHimorParallel(seed, num_threads);
  }
  const HimorIndex* himor() const { return core_->himor(); }
  // Index-absent degraded mode (see EngineCore::MarkIndexAbsent): CODL
  // serves the CODL- computation tagged degraded, indexed CODU falls back
  // to sampled CODU. Used by the serving stack when a budgeted index build
  // fails; exposed here for parity.
  void MarkIndexAbsent() { core_->MarkIndexAbsent(); }
  bool index_present() const { return core_->index_present(); }

  // Persists / restores the HIMOR index (the base hierarchy is deterministic
  // from the graph, so the index alone suffices to resume query serving).
  Status SaveHimor(const std::string& path) const {
    return core_->SaveHimor(path);
  }
  Status LoadHimor(const std::string& path) {
    return core_->LoadHimor(path);
  }

 private:
  std::shared_ptr<EngineCore> core_;
  QueryWorkspace ws_;  // scratch for the Rng-form ExplainCodL
};

}  // namespace cod

#endif  // COD_CORE_COD_ENGINE_H_
