#include "core/dynamic_service.h"

namespace cod {

uint64_t DynamicCodService::EdgeKey(NodeId u, NodeId v, size_t n) {
  if (u > v) std::swap(u, v);
  return static_cast<uint64_t>(u) * n + v;
}

DynamicCodService::DynamicCodService(Graph initial_graph,
                                     AttributeTable attrs,
                                     const Options& options)
    : attrs_(std::move(attrs)),
      options_(options),
      num_nodes_(initial_graph.NumNodes()) {
  COD_CHECK_EQ(num_nodes_, attrs_.NumNodes());
  for (EdgeId e = 0; e < initial_graph.NumEdges(); ++e) {
    const auto [u, v] = initial_graph.Endpoints(e);
    edges_[EdgeKey(u, v, num_nodes_)] = initial_graph.Weight(e);
  }
  Refresh();
}

bool DynamicCodService::AddEdge(NodeId u, NodeId v, double weight) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  if (u == v) return false;
  edges_[EdgeKey(u, v, num_nodes_)] = weight;
  ++pending_updates_;
  return true;
}

bool DynamicCodService::RemoveEdge(NodeId u, NodeId v) {
  COD_CHECK(u < num_nodes_);
  COD_CHECK(v < num_nodes_);
  if (edges_.erase(EdgeKey(u, v, num_nodes_)) == 0) return false;
  ++pending_updates_;
  return true;
}

void DynamicCodService::Refresh() {
  GraphBuilder builder(num_nodes_);
  for (const auto& [key, weight] : edges_) {
    builder.AddEdge(static_cast<NodeId>(key / num_nodes_),
                    static_cast<NodeId>(key % num_nodes_), weight);
  }
  // The engine holds pointers into graph_/attrs_: tear it down before the
  // graph it references, then rebuild both.
  engine_.reset();
  graph_ = std::make_unique<Graph>(std::move(builder).Build());
  engine_ = std::make_unique<CodEngine>(*graph_, attrs_, options_.engine);
  // Per-epoch deterministic sampling stream.
  Rng rng(options_.seed + epoch_);
  engine_->BuildHimor(rng);
  snapshot_edges_ = edges_.size();
  pending_updates_ = 0;
  ++epoch_;
}

void DynamicCodService::MaybeRefresh() {
  const double drift =
      snapshot_edges_ == 0
          ? (pending_updates_ > 0 ? 1.0 : 0.0)
          : static_cast<double>(pending_updates_) /
                static_cast<double>(snapshot_edges_);
  if (pending_updates_ > 0 && drift > options_.rebuild_threshold) {
    Refresh();
  }
}

CodResult DynamicCodService::QueryCodL(NodeId q, AttributeId attr, uint32_t k,
                                       Rng& rng) {
  MaybeRefresh();
  return engine_->QueryCodL(q, attr, k, rng);
}

CodResult DynamicCodService::QueryCodU(NodeId q, uint32_t k, Rng& rng) {
  MaybeRefresh();
  return engine_->QueryCodU(q, k, rng);
}

}  // namespace cod
